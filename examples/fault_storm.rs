//! Fault storm: apply an increasing sequence of random link failures to a 3D
//! HyperX and watch SurePath's throughput degrade gracefully (the style of
//! Figure 6 of the paper).
//!
//! Run with `cargo run --release --example fault_storm`.

use hyperx_routing::MechanismSpec;
use hyperx_topology::DistanceMatrix;
use surepath_core::{Experiment, FaultScenario, TrafficSpec};

fn main() {
    let fault_seed = 2024;
    let steps: Vec<usize> = (0..=5).map(|i| i * 10).collect();
    let load = 0.8;

    println!("Random fault storm on a 4x4x4 HyperX, uniform traffic, offered load {load}");
    println!();
    println!(
        "{:>7}  {:>12}  {:>16}  {:>16}",
        "faults", "diameter", "OmniSP accepted", "PolSP accepted"
    );

    for &count in &steps {
        let scenario = FaultScenario::Random {
            count,
            seed: fault_seed,
        };
        // Report the diameter of the surviving network alongside throughput.
        let hx = Experiment::quick_3d(MechanismSpec::OmniSP, TrafficSpec::Uniform).topology();
        let mut net = hx.network().clone();
        scenario.faults(&hx).apply(&mut net);
        let diameter = DistanceMatrix::compute(&net)
            .diameter_checked()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "disconnected".to_string());

        let mut row = vec![format!("{count:>7}"), format!("{diameter:>12}")];
        for mechanism in [MechanismSpec::OmniSP, MechanismSpec::PolSP] {
            let experiment = Experiment::quick_3d(mechanism, TrafficSpec::Uniform)
                .with_scenario(scenario.clone())
                // The fault experiments of the paper run SurePath with 4 VCs
                // (3 routing + 1 escape).
                .with_num_vcs(4);
            let metrics = experiment.run_rate(load);
            row.push(format!("{:>16.3}", metrics.accepted_load));
        }
        println!("{}", row.join("  "));
    }

    println!();
    println!("SurePath keeps delivering every packet as long as the network stays connected;");
    println!("throughput decreases smoothly instead of collapsing at the first failure.");
}
