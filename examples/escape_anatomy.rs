//! Anatomy of the SurePath escape subnetwork (Figure 2 of the paper).
//!
//! Builds the 4×4 HyperX of the paper's illustration, classifies every link
//! as Up/Down (black) or horizontal (red) with respect to the root, prints the
//! level histogram and the link census, and shows how the classification and
//! the Up/Down distances adapt when a Cross fault hits the root.
//!
//! Run with `cargo run --release --example escape_anatomy`.

use hyperx_topology::{FaultSet, FaultShape, HyperX, LinkClass, Network, UpDownEscape};

fn describe(hx: &HyperX, net: &Network, esc: &UpDownEscape, title: &str) {
    println!("== {title} ==");
    println!("root: {:?}", hx.switch_coords(esc.root()));
    // Level histogram.
    let max_level = (0..hx.num_switches()).map(|s| esc.level(s)).max().unwrap();
    for level in 0..=max_level {
        let count = (0..hx.num_switches())
            .filter(|&s| esc.level(s) == level)
            .count();
        println!("  level {level}: {count} switches");
    }
    let census = esc.class_census(net);
    println!(
        "  links: {} Up/Down (black), {} horizontal (red), {} total alive",
        census.updown,
        census.horizontal,
        net.num_links()
    );
    // A worked escape-candidate example, as in the paper's text: (0,1) -> (0,3).
    let a = hx.switch_id(&[0, 1]);
    let b = hx.switch_id(&[0, 3]);
    println!(
        "  Up/Down distance from (0,1) to (0,3): {}",
        esc.updown_distance(a, b)
    );
    for c in esc.escape_candidates(net, a, b) {
        let class = match c.class {
            LinkClass::Up => "Up",
            LinkClass::Down => "Down",
            LinkClass::Horizontal => "shortcut",
        };
        println!(
            "    candidate towards {:?}: {class}, reduces Up/Down distance by {}",
            hx.switch_coords(c.neighbor),
            c.reduction
        );
    }
    println!();
}

fn main() {
    // The healthy 4×4 HyperX of Figure 2, rooted at (0,0).
    let hx = HyperX::regular(2, 4);
    let root = hx.switch_id(&[0, 0]);
    let esc = UpDownEscape::new(hx.network(), root);
    describe(&hx, hx.network(), &esc, "Healthy 4x4 HyperX, root (0,0)");

    // The same network after a Cross fault through the root: the escape
    // subnetwork is rebuilt by BFS over the surviving links and keeps serving
    // every destination.
    let shape = FaultShape::Cross {
        center: vec![0, 0],
        margin: 1,
    };
    let mut net = hx.network().clone();
    let faults = FaultSet::from_shape(&shape, &hx);
    faults.apply(&mut net);
    println!(
        "Applying a Cross fault through the root removes {} links; the network {} connected.",
        faults.len(),
        if net.is_connected() {
            "stays"
        } else {
            "is NOT"
        }
    );
    println!();
    let esc_faulty = UpDownEscape::new(&net, root);
    describe(&hx, &net, &esc_faulty, "After the Cross fault, same root");

    // Every pair still has an escape path.
    let mut worst = 0;
    for a in 0..hx.num_switches() {
        for b in 0..hx.num_switches() {
            worst = worst.max(esc_faulty.updown_distance(a, b));
        }
    }
    println!(
        "Worst-case Up/Down distance after the fault: {worst} hops — every pair is still \
         reachable through the escape subnetwork."
    );
}
