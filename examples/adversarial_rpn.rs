//! Adversarial traffic: the Regular Permutation to Neighbour pattern the paper
//! introduces to separate Omnidimensional routes from Polarized routes.
//!
//! Omnidimensional routing never leaves the row shared by source and
//! destination, so it is capped at 0.5 accepted load under this pattern;
//! Polarized routes can leave the row and exceed the cap (paper §5, Figure 5,
//! rightmost column).
//!
//! Run with `cargo run --release --example adversarial_rpn`.

use hyperx_routing::MechanismSpec;
use surepath_core::{format_rate_table, sweep_mechanisms, Experiment, FaultScenario, TrafficSpec};

fn main() {
    let template = Experiment::quick_3d(
        MechanismSpec::OmniSP,
        TrafficSpec::RegularPermutationToNeighbour,
    );
    println!(
        "Regular Permutation to Neighbour on a {}x{}x{} HyperX",
        template.sides[0], template.sides[1], template.sides[2]
    );
    println!();

    let mechanisms = [
        MechanismSpec::Minimal,
        MechanismSpec::Valiant,
        MechanismSpec::OmniWAR,
        MechanismSpec::Polarized,
        MechanismSpec::OmniSP,
        MechanismSpec::PolSP,
    ];
    let loads = [0.4, 0.6, 0.8];
    let points = sweep_mechanisms(
        &template,
        &mechanisms,
        TrafficSpec::RegularPermutationToNeighbour,
        &FaultScenario::None,
        &loads,
    );
    println!("{}", format_rate_table(&points));

    // Summarize the headline comparison at the highest load.
    let at_peak: Vec<(&str, f64)> = points
        .iter()
        .filter(|p| (p.offered_load - 0.8).abs() < 1e-9)
        .map(|p| (p.mechanism.as_str(), p.metrics.accepted_load))
        .collect();
    let get = |name: &str| {
        at_peak
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    println!();
    println!(
        "At offered load 0.8: OmniSP accepts {:.3}, PolSP accepts {:.3} — the Polarized route set \
         is what lets SurePath escape the 0.5 row bound.",
        get("OmniSP"),
        get("PolSP")
    );
}
