//! VC budget study: how many virtual channels does SurePath really need?
//!
//! The Ladder mechanisms of the paper need 2n VCs on an n-dimensional HyperX
//! (and more once faults lengthen routes), while SurePath is functional with
//! 2 VCs and uses 4 in the paper's fault experiments. This example runs PolSP
//! on the scaled-down 3D network with 2, 3, 4 and 6 VCs, healthy and with 30
//! random faults, and prints the accepted load of each configuration.
//!
//! Run with `cargo run --release --example vc_budget`.

use hyperx_routing::MechanismSpec;
use surepath_core::{vc_count_study, Experiment, FaultScenario, TrafficSpec};

fn main() {
    let load = 0.9;
    let vc_counts = [2usize, 3, 4, 6];

    for (label, scenario) in [
        ("healthy network", FaultScenario::None),
        (
            "30 random faults",
            FaultScenario::Random { count: 30, seed: 7 },
        ),
    ] {
        println!("PolSP on a 4x4x4 HyperX, uniform traffic at offered load {load}, {label}");
        println!(
            "{:>6}  {:>10}  {:>10}  {:>9}",
            "VCs", "accepted", "latency", "escape%"
        );
        let template = Experiment::quick_3d(MechanismSpec::PolSP, TrafficSpec::Uniform)
            .with_scenario(scenario);
        for point in vc_count_study(&template, &vc_counts, load) {
            println!(
                "{:>6}  {:>10.3}  {:>10.1}  {:>9.1}",
                point.value,
                point.accepted_load,
                point.average_latency,
                100.0 * point.escape_fraction
            );
        }
        println!();
    }

    println!("The escape subnetwork, not a deep VC ladder, is what guarantees deadlock freedom,");
    println!("so the accepted load barely moves with the VC budget — the paper's cost argument.");
}
