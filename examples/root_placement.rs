//! Escape-root placement under Star faults: reproducing the paper's §6 advice
//! that the root of the escape subnetwork should not be a switch with many
//! faulty links.
//!
//! The Star configuration leaves its centre with only three live links; the
//! paper deliberately roots the escape subnetwork there to stress SurePath,
//! then observes the resulting in-cast contention in Figure 10. This example
//! compares that stressful choice with the root-selection policies of
//! `hyperx_topology::RootPolicy` on the scaled-down 3D network.
//!
//! Run with `cargo run --release --example root_placement`.

use hyperx_routing::MechanismSpec;
use hyperx_topology::{FaultShape, RootPolicy};
use surepath_core::{Experiment, FaultScenario, RootPlacement, TrafficSpec};

fn main() {
    let load = 0.9;
    let scenario = FaultScenario::Shape(FaultShape::Cross {
        center: vec![2, 2, 2],
        margin: 1,
    });

    let template = Experiment::quick_3d(MechanismSpec::PolSP, TrafficSpec::Uniform)
        .with_scenario(scenario)
        .with_num_vcs(4);

    // Show which switch each placement actually picks before running it.
    let placements: Vec<(String, RootPlacement)> = vec![
        (
            "in-fault centre (paper)".to_string(),
            RootPlacement::Suggested,
        ),
        (
            RootPolicy::MaxAliveDegree.name(),
            RootPlacement::Policy(RootPolicy::MaxAliveDegree),
        ),
        (
            RootPolicy::MinEccentricity.name(),
            RootPlacement::Policy(RootPolicy::MinEccentricity),
        ),
    ];

    println!(
        "PolSP on a 4x4x4 HyperX with Star faults (centre keeps 3 links), uniform load {load}"
    );
    println!(
        "{:>26}  {:>6}  {:>12}  {:>10}  {:>10}",
        "placement", "root", "root degree", "accepted", "latency"
    );
    for (label, placement) in placements {
        let experiment = template.clone().with_root(placement);
        let view = experiment.build_view();
        let root = view.escape_root();
        let degree = view.network().degree(root);
        let metrics = experiment.run_rate(load);
        println!(
            "{:>26}  {:>6}  {:>12}  {:>10.3}  {:>10.1}",
            label, root, degree, metrics.accepted_load, metrics.average_latency
        );
    }

    println!();
    println!("Rooting the escape subnetwork at a healthy, well-connected switch avoids funnelling");
    println!("escape traffic through the three surviving links of the Star centre.");
}
