//! Render SVG charts from freshly measured data: a Figure-5-style throughput
//! curve (accepted load versus offered load, one line per mechanism) and a
//! Figure-9-style bar chart (accepted load under Star faults with the healthy
//! value as a dashed reference mark).
//!
//! Run with `cargo run --release --example plot_report`; the SVG files are
//! written to `results/`.

use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{
    sweep_mechanisms, throughput_chart, BarChart, BarGroup, Experiment, FaultScenario, TrafficSpec,
};

fn main() -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;

    // A scaled-down Figure 5 (Uniform panel): all six mechanisms, eleven loads.
    let template = Experiment::quick_3d(MechanismSpec::OmniSP, TrafficSpec::Uniform);
    let loads: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
    let points = sweep_mechanisms(
        &template,
        &MechanismSpec::fault_free_lineup(),
        TrafficSpec::Uniform,
        &FaultScenario::None,
        &loads,
    );
    let line = throughput_chart("Figure 5 style: 3D HyperX, Uniform traffic", &points);
    std::fs::write("results/plot_fig5_uniform.svg", line.to_svg())?;
    println!(
        "wrote results/plot_fig5_uniform.svg ({} series)",
        line.series.len()
    );

    // A scaled-down Figure 9 (Star panel): OmniSP and PolSP under Star faults,
    // healthy throughput as the reference mark.
    let star = FaultScenario::Shape(FaultShape::Cross {
        center: vec![2, 2, 2],
        margin: 1,
    });
    let mut chart = BarChart::new(
        "Figure 9 style: Star faults on the 3D HyperX",
        "accepted load",
        1.0,
    );
    for traffic in [
        TrafficSpec::Uniform,
        TrafficSpec::RegularPermutationToNeighbour,
    ] {
        let mut values = Vec::new();
        let mut references = Vec::new();
        for mechanism in MechanismSpec::surepath_lineup() {
            let faulty = Experiment::quick_3d(mechanism, traffic)
                .with_scenario(star.clone())
                .with_num_vcs(4)
                .run_rate(0.9);
            let healthy = Experiment::quick_3d(mechanism, traffic)
                .with_num_vcs(4)
                .run_rate(0.9);
            values.push((mechanism.name().to_string(), faulty.accepted_load));
            references.push(Some(healthy.accepted_load));
        }
        chart = chart.with_group(BarGroup::new(traffic.name(), values).with_references(references));
    }
    std::fs::write("results/plot_fig9_star.svg", chart.to_svg())?;
    println!("wrote results/plot_fig9_star.svg");
    Ok(())
}
