//! Quickstart: build a HyperX, pick a routing mechanism, run uniform traffic
//! and print the paper's three metrics.
//!
//! Run with `cargo run --release --example quickstart`.

use hyperx_routing::MechanismSpec;
use surepath_core::{format_rate_table, sweep_loads, Experiment, TrafficSpec};

fn main() {
    // A laptop-sized 8×8 HyperX (64 switches, 512 servers) so the example
    // finishes in seconds. Swap `quick_2d` for `paper_2d` to reproduce the
    // full-scale 16×16 network of the paper.
    let experiment = Experiment::quick_2d(MechanismSpec::PolSP, TrafficSpec::Uniform);
    println!("Experiment: {}", experiment.label());
    println!(
        "Topology: {} switches, {} servers, {} VCs per port",
        experiment.topology().num_switches(),
        experiment.topology().num_switches() * experiment.concentration,
        experiment.num_vcs
    );
    println!();

    // One point: moderate load.
    let metrics = experiment.run_rate(0.5);
    println!("At offered load 0.50:");
    println!(
        "  accepted load    = {:.3} phits/cycle/server",
        metrics.accepted_load
    );
    println!("  average latency  = {:.1} cycles", metrics.average_latency);
    println!("  Jain fairness    = {:.4}", metrics.jain_generated);
    println!(
        "  escape usage     = {:.1}% of packets",
        100.0 * metrics.escape_fraction
    );
    println!();

    // A short load sweep, like one panel of Figure 4.
    let loads = [0.2, 0.4, 0.6, 0.8, 1.0];
    let points = sweep_loads(&experiment, &loads);
    println!("{}", format_rate_table(&points));
}
