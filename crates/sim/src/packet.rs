//! Packets: the unit of simulation.
//!
//! The simulator is packet-granular with phit-accurate timing: a packet
//! occupies buffers as a unit (virtual cut-through) but its serialization
//! over crossbars and links takes `packet_length` phit times.

use hyperx_routing::PacketState;
use serde::{Deserialize, Serialize};

/// Unique, monotonically increasing packet identifier.
pub type PacketId = u64;

/// A packet in flight.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id (generation order).
    pub id: PacketId,
    /// Generating server.
    pub src_server: usize,
    /// Destination server.
    pub dst_server: usize,
    /// Switch the destination server hangs from.
    pub dst_switch: usize,
    /// Cycle the packet was created at the source queue.
    pub created_at: u64,
    /// Cycle the packet finished entering its source switch (0 until then).
    pub injected_at: u64,
    /// Per-packet routing state maintained by the routing mechanism.
    pub state: PacketState,
    /// Number of hops taken on the escape subnetwork (SurePath statistics).
    pub escape_hops: u16,
}

impl Packet {
    /// Creates a packet; the routing state must come from the routing
    /// mechanism's `init_packet`.
    pub fn new(
        id: PacketId,
        src_server: usize,
        dst_server: usize,
        dst_switch: usize,
        created_at: u64,
        state: PacketState,
    ) -> Self {
        Packet {
            id,
            src_server,
            dst_server,
            dst_switch,
            created_at,
            injected_at: 0,
            state,
            escape_hops: 0,
        }
    }

    /// End-to-end latency if delivered at `cycle` (from creation, i.e.
    /// including the time spent in the source queue).
    pub fn latency_at(&self, cycle: u64) -> u64 {
        cycle.saturating_sub(self.created_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_measured_from_creation() {
        let p = Packet::new(1, 0, 99, 9, 100, PacketState::new(0, 9));
        assert_eq!(p.latency_at(150), 50);
        assert_eq!(p.latency_at(100), 0);
        assert_eq!(p.latency_at(50), 0, "saturates instead of underflowing");
    }

    #[test]
    fn new_packet_has_no_escape_hops() {
        let p = Packet::new(7, 3, 4, 1, 0, PacketState::new(0, 1));
        assert_eq!(p.escape_hops, 0);
        assert_eq!(p.injected_at, 0);
        assert_eq!(p.state.source, 0);
        assert_eq!(p.state.dest, 1);
    }
}
