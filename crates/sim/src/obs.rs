//! Engine observability: a fixed-slot counter registry and an optional
//! packet-lifecycle tracer.
//!
//! Both obey a **zero-perturbation contract**: they observe the engine
//! without feeding anything back into it. Counters are plain `u64` adds on
//! pre-allocated slots (no branches on the hot path beyond the add itself),
//! and the tracer appends into a preallocated buffer behind a single
//! `Option` check — neither touches the RNG, the event wheel, or any
//! scheduling decision, so metrics bytes, store bytes and RNG draw order are
//! byte-identical with observability enabled or disabled. The A/B tests in
//! `engine.rs` and `tests/integration_obs.rs` pin this the same way the
//! `full-scan` scheduler contract is pinned.

use serde::{Deserialize, Error, Number, Serialize, Value};

/// Version tag embedded in every serialized counter set (`"v"` field).
/// Readers reject tags they do not understand instead of silently
/// misdecoding, mirroring the latency-histogram schema rule.
pub const COUNTERS_FORMAT_VERSION: u64 = 1;

/// The fixed counter slots of the engine. The discriminants are the
/// serialized slot indices, so **never reorder or reuse them** — append new
/// counters at the end and bump [`COUNTERS_FORMAT_VERSION`] only if an
/// existing slot changes meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Output requests produced by head packets (allocation stage).
    AllocRequests = 0,
    /// Requests granted (packet moved input VC → output staging).
    AllocGrants = 1,
    /// Requests denied after the sort: port grant caps, staging filled up,
    /// or the downstream credit vanished between scoring and granting.
    AllocConflicts = 2,
    /// Head-packet candidate lists served from the per-VC cache.
    CandCacheHits = 3,
    /// Head-packet candidate lists that had to be recomputed.
    CandCacheMisses = 4,
    /// Grants that took an escape-tree hop.
    EscapeGrants = 5,
    /// Switches visited by the allocation stage (active-set size per cycle).
    AllocSwitchVisits = 6,
    /// Switches visited by the transmit stage (active-set size per cycle).
    XmitSwitchVisits = 7,
    /// Binomial draws of the rate contract v2 counting sampler.
    BinomialDraws = 8,
    /// Cycles with in-flight packets but zero progress (the watchdog's
    /// evidence trail).
    BlockedCycles = 9,
}

impl Counter {
    /// Number of counter slots.
    pub const COUNT: usize = 10;

    /// Every counter, in slot order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::AllocRequests,
        Counter::AllocGrants,
        Counter::AllocConflicts,
        Counter::CandCacheHits,
        Counter::CandCacheMisses,
        Counter::EscapeGrants,
        Counter::AllocSwitchVisits,
        Counter::XmitSwitchVisits,
        Counter::BinomialDraws,
        Counter::BlockedCycles,
    ];

    /// Stable snake_case name, used by `--report --counters` tables.
    pub fn name(&self) -> &'static str {
        match self {
            Counter::AllocRequests => "alloc_requests",
            Counter::AllocGrants => "alloc_grants",
            Counter::AllocConflicts => "alloc_conflicts",
            Counter::CandCacheHits => "cand_cache_hits",
            Counter::CandCacheMisses => "cand_cache_misses",
            Counter::EscapeGrants => "escape_grants",
            Counter::AllocSwitchVisits => "alloc_switch_visits",
            Counter::XmitSwitchVisits => "xmit_switch_visits",
            Counter::BinomialDraws => "binomial_draws",
            Counter::BlockedCycles => "blocked_cycles",
        }
    }
}

/// A fixed-slot set of engine counters.
///
/// Merging is exact per-slot addition — associative and commutative — so
/// folding per-replica or per-worker counter sets in any order yields the
/// same totals, exactly like [`crate::LatencyHistogram`] merging. That is
/// what lets `--report --counters` aggregate replica groups and lets counter
/// fields ride the distributed fold byte-identically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterRegistry {
    slots: [u64; Counter::COUNT],
}

impl CounterRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        CounterRegistry::default()
    }

    /// Adds `n` to a counter. O(1), no allocation, no branch.
    #[inline(always)]
    pub fn add(&mut self, counter: Counter, n: u64) {
        self.slots[counter as usize] += n;
    }

    /// Increments a counter by one.
    #[inline(always)]
    pub fn incr(&mut self, counter: Counter) {
        self.slots[counter as usize] += 1;
    }

    /// Current value of a counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.slots[counter as usize]
    }

    /// Whether every slot is zero.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|&v| v == 0)
    }

    /// Zeroes every slot (measurement-window reset).
    pub fn reset(&mut self) {
        self.slots = [0; Counter::COUNT];
    }

    /// Adds every slot of `other` into `self` (exact addition).
    pub fn merge(&mut self, other: &CounterRegistry) {
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            *mine += theirs;
        }
    }
}

/// Compact sparse encoding: `{"v":1,"c":[[slot,count],...]}` with occupied
/// slots in ascending order. Ascending order makes the bytes a function of
/// the counts alone, so serialize∘deserialize∘serialize is the identity on
/// bytes and merged stores re-serialize deterministically — the same
/// discipline as the latency-histogram field.
impl Serialize for CounterRegistry {
    fn serialize(&self) -> Value {
        let slots: Vec<Value> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(slot, &count)| {
                Value::Array(vec![
                    Value::Number(Number::UInt(slot as u64)),
                    Value::Number(Number::UInt(count)),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "v".to_string(),
                Value::Number(Number::UInt(COUNTERS_FORMAT_VERSION)),
            ),
            ("c".to_string(), Value::Array(slots)),
        ])
    }
}

impl Deserialize for CounterRegistry {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let version = value
            .get("v")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("v"))?;
        if version != COUNTERS_FORMAT_VERSION {
            return Err(Error::custom(format!(
                "unsupported counter registry version {version} (this build reads \
                 version {COUNTERS_FORMAT_VERSION})"
            )));
        }
        let Some(Value::Array(slots)) = value.get("c") else {
            return Err(Error::missing_field("c"));
        };
        let mut registry = CounterRegistry::new();
        for entry in slots {
            let Value::Array(pair) = entry else {
                return Err(Error::type_mismatch("[slot, count] pair", entry));
            };
            let (slot, count) = match pair.as_slice() {
                [slot, count] => (
                    slot.as_u64()
                        .ok_or_else(|| Error::type_mismatch("counter slot", slot))?,
                    count
                        .as_u64()
                        .ok_or_else(|| Error::type_mismatch("counter count", count))?,
                ),
                _ => return Err(Error::custom("counter entry is not a pair")),
            };
            if slot as usize >= Counter::COUNT {
                return Err(Error::custom(format!("counter slot {slot} out of range")));
            }
            registry.slots[slot as usize] += count;
        }
        Ok(registry)
    }
}

/// The lifecycle stages a traced packet passes through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Accepted into its source server's queue.
    Inject,
    /// Granted an output (crossbar traversal committed), VC chosen.
    Grant,
    /// Landed in an input VC of a switch after crossing a link.
    Hop,
    /// Consumed by its destination server.
    Deliver,
    /// Lost an allocation round after requesting (conflict or credit loss).
    Block,
}

impl TraceEventKind {
    /// Stable snake_case name used in the trace sidecar.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Inject => "inject",
            TraceEventKind::Grant => "grant",
            TraceEventKind::Hop => "hop",
            TraceEventKind::Deliver => "deliver",
            TraceEventKind::Block => "block",
        }
    }
}

/// One packet-lifecycle event.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Simulation cycle of the event.
    pub cycle: u64,
    /// Packet id.
    pub packet: u64,
    /// Lifecycle stage.
    pub kind: TraceEventKind,
    /// The switch involved (source switch for injects, destination switch
    /// for deliveries).
    pub switch: u64,
    /// Switch-to-switch hops taken so far.
    pub hops: u64,
    /// Escape-tree hops taken so far.
    pub escape_hops: u64,
}

/// A preallocated bounded buffer of [`TraceEvent`]s.
///
/// The buffer never grows on the hot path: capacity is reserved up front and
/// events past capacity are dropped (and counted), keeping the earliest —
/// complete — packet lifecycles. Recording is an index bump and a copy.
#[derive(Debug)]
pub struct PacketTracer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl PacketTracer {
    /// Default event capacity used by campaign tracing.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A tracer holding up to `capacity` events (allocated immediately).
    pub fn with_capacity(capacity: usize) -> Self {
        PacketTracer {
            events: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Records one event; drops (and counts) it if the buffer is full.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes the recorded events out, leaving the tracer empty.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl Default for PacketTracer {
    fn default() -> Self {
        PacketTracer::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_of(pairs: &[(Counter, u64)]) -> CounterRegistry {
        let mut r = CounterRegistry::new();
        for &(c, n) in pairs {
            r.add(c, n);
        }
        r
    }

    #[test]
    fn slot_names_and_order_are_stable() {
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        for (slot, counter) in Counter::ALL.iter().enumerate() {
            assert_eq!(*counter as usize, slot, "{counter:?} moved slots");
        }
        assert_eq!(Counter::AllocRequests.name(), "alloc_requests");
        assert_eq!(Counter::BlockedCycles.name(), "blocked_cycles");
    }

    #[test]
    fn add_get_reset_round_trip() {
        let mut r = CounterRegistry::new();
        assert!(r.is_empty());
        r.add(Counter::AllocGrants, 7);
        r.incr(Counter::AllocGrants);
        assert_eq!(r.get(Counter::AllocGrants), 8);
        assert!(!r.is_empty());
        r.reset();
        assert!(r.is_empty());
    }

    #[test]
    fn merge_is_exact_slot_addition() {
        let mut a = registry_of(&[(Counter::AllocRequests, 3), (Counter::EscapeGrants, 1)]);
        let b = registry_of(&[(Counter::AllocRequests, 2), (Counter::BlockedCycles, 5)]);
        a.merge(&b);
        assert_eq!(a.get(Counter::AllocRequests), 5);
        assert_eq!(a.get(Counter::EscapeGrants), 1);
        assert_eq!(a.get(Counter::BlockedCycles), 5);
    }

    #[test]
    fn serializes_sparse_and_round_trips_byte_identically() {
        let r = registry_of(&[
            (Counter::AllocRequests, 10),
            (Counter::CandCacheHits, 4),
            (Counter::BlockedCycles, 2),
        ]);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(json, r#"{"v":1,"c":[[0,10],[3,4],[9,2]]}"#);
        let back: CounterRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn rejects_unknown_versions_and_bad_slots() {
        assert!(serde_json::from_str::<CounterRegistry>(r#"{"v":2,"c":[]}"#).is_err());
        assert!(serde_json::from_str::<CounterRegistry>(r#"{"v":1,"c":[[10,1]]}"#).is_err());
        assert!(serde_json::from_str::<CounterRegistry>(r#"{"v":1,"c":[[1]]}"#).is_err());
        assert!(serde_json::from_str::<CounterRegistry>(r#"{"v":1}"#).is_err());
    }

    #[test]
    fn tracer_caps_at_capacity_and_counts_drops() {
        let mut tracer = PacketTracer::with_capacity(2);
        for i in 0..5 {
            tracer.record(TraceEvent {
                cycle: i,
                packet: i,
                kind: TraceEventKind::Hop,
                switch: 0,
                hops: 0,
                escape_hops: 0,
            });
        }
        assert_eq!(tracer.events().len(), 2);
        assert_eq!(tracer.dropped(), 3);
        assert_eq!(tracer.events()[0].cycle, 0);
        let taken = tracer.take_events();
        assert_eq!(taken.len(), 2);
        assert!(tracer.events().is_empty());
    }
}
