//! Per-server simulation state: packet generation and the injection link.

use crate::packet::Packet;
use std::collections::VecDeque;

/// How a server decides when to generate packets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GenerationMode {
    /// Open loop: a Bernoulli trial per cycle with probability
    /// `offered_load / packet_length` (the offered load is expressed in
    /// phits/cycle/server, so one packet every `1/load · packet_length` cycles on average).
    Rate {
        /// Offered load in phits/cycle/server, in `[0, 1]`.
        offered_load: f64,
    },
    /// Closed loop (Figure 10): the server has a fixed quota of packets and
    /// generates as fast as its source queue allows until the quota is exhausted.
    Batch {
        /// Packets each server must send in total.
        packets_per_server: u64,
    },
}

/// The state of one server (traffic source + sink).
#[derive(Debug)]
pub struct ServerState {
    /// Packets generated but not yet injected into the switch.
    pub source_queue: VecDeque<Packet>,
    /// The injection link is serializing a packet until this cycle.
    pub injection_busy_until: u64,
    /// Packets left to generate in batch mode (`u64::MAX` in rate mode).
    pub remaining_quota: u64,
}

impl ServerState {
    /// Creates an idle server with the given batch quota (use `u64::MAX` for rate mode).
    pub fn new(remaining_quota: u64) -> Self {
        ServerState {
            source_queue: VecDeque::new(),
            injection_busy_until: 0,
            remaining_quota,
        }
    }

    /// Whether the server still has traffic to generate or deliver upstream.
    pub fn is_drained(&self) -> bool {
        self.source_queue.is_empty() && self.remaining_quota == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use hyperx_routing::PacketState;

    #[test]
    fn server_drained_only_when_queue_and_quota_empty() {
        let mut s = ServerState::new(2);
        assert!(!s.is_drained());
        s.remaining_quota = 0;
        assert!(s.is_drained());
        s.source_queue
            .push_back(Packet::new(1, 0, 1, 0, 0, PacketState::new(0, 0)));
        assert!(!s.is_drained());
    }

    #[test]
    fn rate_mode_uses_max_quota() {
        let s = ServerState::new(u64::MAX);
        assert!(!s.is_drained());
        assert_eq!(s.injection_busy_until, 0);
    }
}
