use super::*;
use crate::traffic::{RandomServerPermutation, UniformTraffic};
use hyperx_routing::MechanismSpec;
use hyperx_topology::HyperX;

fn build_sim(spec: MechanismSpec, load_cfg: SimConfig) -> Simulator {
    let hx = HyperX::regular(2, 4);
    let view = Arc::new(NetworkView::healthy(hx, 0));
    let mech = spec.build(view.clone(), load_cfg.num_vcs);
    let layout = ServerLayout::new(view.hyperx(), load_cfg.servers_per_switch);
    let pattern = Box::new(UniformTraffic::new(&layout));
    Simulator::new(view, mech, pattern, load_cfg)
}

#[test]
fn single_packet_end_to_end_latency() {
    // One packet, empty network: latency = injection serialization + per-hop
    // (crossbar + link) serialization, so it must be close to the analytic
    // minimum and the packet must arrive.
    let mut cfg = SimConfig::quick(2, 4);
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 400;
    cfg.seed = 7;
    let hx = HyperX::regular(2, 4);
    let view = Arc::new(NetworkView::healthy(hx, 0));
    let mech = MechanismSpec::Minimal.build(view.clone(), 4);
    let layout = ServerLayout::new(view.hyperx(), 2);
    // A fixed permutation sending server 0 to the farthest corner and making
    // everything else local (self loops are fine for this test).
    let mut mapping: Vec<usize> = (0..layout.num_servers()).collect();
    let far = layout.num_servers() - 1;
    mapping.swap(0, far);
    let pattern = Box::new(RandomServerPermutation::from_mapping(mapping));
    let mut sim = Simulator::new(view, mech, pattern, cfg);
    sim.generation = GenerationMode::Batch {
        packets_per_server: 0,
    };
    for quota in &mut sim.srv_quota {
        *quota = 0;
    }
    sim.srv_quota[0] = 1;
    sim.server_live_dirty = true;
    sim.begin_measurement();
    for _ in 0..400 {
        sim.step();
        if sim.total_delivered() == 1 {
            break;
        }
    }
    assert_eq!(sim.total_delivered(), 1, "the lone packet must arrive");
    // Distance is 2 hops; minimum latency = 3 links × (16+1) + 2 crossbars ≈ 70.
    let lat = sim.counters.latency_sum;
    assert!(lat >= 3 * 17, "latency {lat} below the serialization floor");
    assert!(
        lat <= 150,
        "latency {lat} absurdly high for an empty network"
    );
}

#[test]
fn low_load_uniform_delivers_offered_traffic() {
    let mut cfg = SimConfig::quick(2, 4);
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 3000;
    let mut sim = build_sim(MechanismSpec::Minimal, cfg);
    let m = sim.run_rate(0.2);
    assert!(!m.stalled);
    assert!(
        (m.accepted_load - 0.2).abs() < 0.05,
        "accepted {} should track the offered 0.2",
        m.accepted_load
    );
    assert!(m.average_latency > 30.0 && m.average_latency < 300.0);
    assert!(m.jain_generated > 0.9);
}

#[test]
fn packet_conservation_under_drain() {
    let mut cfg = SimConfig::quick(2, 4);
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 500;
    let mut sim = build_sim(MechanismSpec::OmniSP, cfg);
    sim.run_rate(0.4);
    let generated = sim.total_generated();
    assert!(generated > 0);
    let drained = sim.drain(200_000);
    assert!(drained, "all packets must eventually be delivered");
    assert_eq!(sim.total_delivered(), generated);
    assert_eq!(sim.packets_in_switches(), 0);
}

#[test]
fn packet_arena_recycles_slots() {
    // The arena's high-water mark is the peak in-flight count, not the
    // total generated count — delivered slots must be reused.
    let mut cfg = SimConfig::quick(2, 4);
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 2_000;
    let mut sim = build_sim(MechanismSpec::Minimal, cfg);
    let _ = sim.run_rate(0.3);
    let generated = sim.total_generated();
    let arena_slots = sim.pkt.id.len() as u64;
    assert!(generated > 200, "the run must actually generate traffic");
    assert!(
        arena_slots < generated / 2,
        "arena grew to {arena_slots} slots for {generated} packets — the free list is dead"
    );
}

#[test]
fn saturation_does_not_exceed_physical_limit() {
    let mut cfg = SimConfig::quick(2, 4);
    cfg.warmup_cycles = 300;
    cfg.measure_cycles = 1500;
    let mut sim = build_sim(MechanismSpec::OmniSP, cfg);
    let m = sim.run_rate(1.0);
    assert!(m.accepted_load <= 1.0 + 1e-9);
    assert!(
        m.accepted_load > 0.3,
        "a healthy HyperX should accept substantial uniform load"
    );
    assert!(!m.stalled);
}

#[test]
fn batch_mode_completes_and_reports_samples() {
    let mut cfg = SimConfig::quick(2, 4);
    cfg.seed = 3;
    let hx = HyperX::regular(2, 4);
    let view = Arc::new(NetworkView::healthy(hx, 0));
    let mech = MechanismSpec::PolSP.build(view.clone(), 4);
    let layout = ServerLayout::new(view.hyperx(), 2);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let pattern = Box::new(RandomServerPermutation::new(&layout, &mut rng));
    let mut sim = Simulator::new(view, mech, pattern, cfg);
    let result = sim.run_batch(5, 200);
    assert!(!result.stalled);
    assert_eq!(result.delivered_packets, 5 * 32);
    assert!(result.completion_time > 0);
    assert!(!result.samples.is_empty());
    let delivered_via_samples: f64 = result.samples.iter().map(|s| s.accepted_load).sum::<f64>();
    assert!(delivered_via_samples > 0.0);
}

#[test]
fn deterministic_given_a_seed() {
    let mut cfg = SimConfig::quick(2, 4);
    cfg.warmup_cycles = 200;
    cfg.measure_cycles = 800;
    cfg.seed = 99;
    let m1 = build_sim(MechanismSpec::Polarized, cfg.clone()).run_rate(0.5);
    let m2 = build_sim(MechanismSpec::Polarized, cfg).run_rate(0.5);
    assert_eq!(m1.delivered_packets, m2.delivered_packets);
    assert_eq!(m1.accepted_load, m2.accepted_load);
    assert_eq!(m1.average_latency, m2.average_latency);
}

#[test]
#[should_panic]
fn mechanism_vc_mismatch_rejected() {
    let cfg = SimConfig::quick(2, 6);
    let hx = HyperX::regular(2, 4);
    let view = Arc::new(NetworkView::healthy(hx, 0));
    let mech = MechanismSpec::Minimal.build(view.clone(), 4);
    let layout = ServerLayout::new(view.hyperx(), 2);
    let pattern = Box::new(UniformTraffic::new(&layout));
    let _ = Simulator::new(view, mech, pattern, cfg);
}

#[test]
#[should_panic]
fn out_of_range_load_rejected() {
    let cfg = SimConfig::quick(2, 4);
    let mut sim = build_sim(MechanismSpec::Minimal, cfg);
    let _ = sim.run_rate(1.5);
}

/// The determinism contract of the v5 layout refactor: the struct-of-arrays
/// engine must be **observably identical** to the frozen v4 per-switch-struct
/// engine — same RNG draw order, same metrics bytes, same counters, same
/// trace events — across mechanisms, loads, fault scenarios and seeds. These
/// tests run both engines on the same configuration and compare serialized
/// observables byte for byte.
mod layout_equivalence {
    use super::*;
    use crate::engine_v4::SimulatorV4;

    fn make_view(faults: usize) -> Arc<NetworkView> {
        let hx = HyperX::regular(2, 4);
        if faults == 0 {
            Arc::new(NetworkView::healthy(hx, 0))
        } else {
            let mut fault_rng = ChaCha8Rng::seed_from_u64(11);
            let fault_set = hyperx_topology::FaultSet::random_connected_sequence(
                hx.network(),
                faults,
                &mut fault_rng,
            );
            Arc::new(NetworkView::with_faults(hx, &fault_set, 0))
        }
    }

    fn build_v5(spec: MechanismSpec, cfg: SimConfig, faults: usize) -> Simulator {
        let view = make_view(faults);
        let mech = spec.build(view.clone(), cfg.num_vcs);
        let layout = ServerLayout::new(view.hyperx(), cfg.servers_per_switch);
        let pattern = Box::new(UniformTraffic::new(&layout));
        Simulator::new(view, mech, pattern, cfg)
    }

    fn build_v4(spec: MechanismSpec, cfg: SimConfig, faults: usize) -> SimulatorV4 {
        let view = make_view(faults);
        let mech = spec.build(view.clone(), cfg.num_vcs);
        let layout = ServerLayout::new(view.hyperx(), cfg.servers_per_switch);
        let pattern = Box::new(UniformTraffic::new(&layout));
        SimulatorV4::new(view, mech, pattern, cfg)
    }

    fn rate_bytes_both(
        spec: MechanismSpec,
        cfg: SimConfig,
        faults: usize,
        load: f64,
    ) -> (String, String) {
        let mut v5 = build_v5(spec, cfg.clone(), faults);
        let m5 = v5.run_rate(load);
        let a = format!(
            "{m5:?}|gen={}|del={}",
            v5.total_generated(),
            v5.total_delivered()
        );
        let mut v4 = build_v4(spec, cfg, faults);
        let m4 = v4.run_rate(load);
        let b = format!(
            "{m4:?}|gen={}|del={}",
            v4.total_generated(),
            v4.total_delivered()
        );
        (a, b)
    }

    #[test]
    fn rate_mode_identical_across_mechanisms_loads_and_contracts() {
        for contract in [RngContract::V1PerServer, RngContract::V2Counting] {
            for spec in [
                MechanismSpec::Minimal,
                MechanismSpec::Valiant,
                MechanismSpec::Polarized,
                MechanismSpec::OmniSP,
                MechanismSpec::PolSP,
            ] {
                for load in [0.1, 0.5, 0.9] {
                    let mut cfg = SimConfig::quick(2, 4);
                    cfg.warmup_cycles = 200;
                    cfg.measure_cycles = 600;
                    cfg.seed = 42;
                    cfg.rng_contract = contract;
                    let (a, b) = rate_bytes_both(spec, cfg, 0, load);
                    assert_eq!(a, b, "{spec:?} at load {load} ({contract}) diverged");
                }
            }
        }
    }

    #[test]
    fn rate_mode_identical_under_faults_across_seeds_and_contracts() {
        for contract in [RngContract::V1PerServer, RngContract::V2Counting] {
            for spec in [MechanismSpec::OmniSP, MechanismSpec::PolSP] {
                for seed in [1u64, 7, 99] {
                    let mut cfg = SimConfig::quick(2, 4);
                    cfg.warmup_cycles = 200;
                    cfg.measure_cycles = 600;
                    cfg.seed = seed;
                    cfg.rng_contract = contract;
                    let (a, b) = rate_bytes_both(spec, cfg, 4, 0.6);
                    assert_eq!(
                        a, b,
                        "{spec:?} seed {seed} ({contract}) diverged under faults"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_mode_and_drain_identical() {
        let mut cfg = SimConfig::quick(2, 4);
        cfg.seed = 5;
        let mut v5 = build_v5(MechanismSpec::PolSP, cfg.clone(), 2);
        let m5 = v5.run_batch(4, 100);
        let d5 = v5.drain(100_000);
        let a = format!(
            "{m5:?}|drained={d5}|in_switches={}",
            v5.packets_in_switches()
        );
        let mut v4 = build_v4(MechanismSpec::PolSP, cfg, 2);
        let m4 = v4.run_batch(4, 100);
        let d4 = v4.drain(100_000);
        let b = format!(
            "{m4:?}|drained={d4}|in_switches={}",
            v4.packets_in_switches()
        );
        assert_eq!(a, b);
    }

    #[test]
    fn cycle_by_cycle_state_identical_at_low_load() {
        // Beyond end-of-run metrics: the per-cycle observable state
        // (alive, generated, delivered, buffered) must match at every
        // cycle, under both RNG contracts.
        for contract in [RngContract::V1PerServer, RngContract::V2Counting] {
            let mut cfg = SimConfig::quick(2, 4);
            cfg.seed = 13;
            cfg.rng_contract = contract;
            let mut v5 = build_v5(MechanismSpec::OmniSP, cfg.clone(), 3);
            let mut v4 = build_v4(MechanismSpec::OmniSP, cfg, 3);
            v5.generation = GenerationMode::Rate { offered_load: 0.2 };
            v4.generation = GenerationMode::Rate { offered_load: 0.2 };
            for cycle in 0..2_000 {
                v5.step();
                v4.step();
                assert_eq!(
                    (
                        v5.packets_alive(),
                        v5.total_generated(),
                        v5.total_delivered(),
                        v5.packets_in_switches()
                    ),
                    (
                        v4.packets_alive(),
                        v4.total_generated(),
                        v4.total_delivered(),
                        v4.packets_in_switches()
                    ),
                    "state diverged at cycle {cycle} ({contract})"
                );
            }
        }
    }

    #[test]
    fn observability_counters_identical() {
        let mut cfg = SimConfig::quick(2, 4);
        cfg.warmup_cycles = 100;
        cfg.measure_cycles = 600;
        cfg.seed = 4;
        cfg.rng_contract = RngContract::V2Counting;
        // Valiant at saturation keeps network heads blocked across cycles,
        // so the cache hit path (not just the miss path) is exercised on
        // both engines.
        let mut v5 = build_v5(MechanismSpec::Valiant, cfg.clone(), 0);
        let _ = v5.run_rate(1.0);
        let mut v4 = build_v4(MechanismSpec::Valiant, cfg, 0);
        let _ = v4.run_rate(1.0);
        assert_eq!(
            v5.obs(),
            v4.obs(),
            "the layouts must agree on every counter, including cache hit/miss"
        );
        assert!(v5.obs().get(Counter::CandCacheHits) > 0);
    }

    #[test]
    fn trace_events_identical() {
        let mut cfg = SimConfig::quick(2, 4);
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 500;
        cfg.seed = 2;
        let mut v5 = build_v5(MechanismSpec::OmniSP, cfg.clone(), 0);
        v5.set_tracer(Some(PacketTracer::with_capacity(1 << 16)));
        let _ = v5.run_rate(0.3);
        let t5 = v5.take_tracer().unwrap();
        let mut v4 = build_v4(MechanismSpec::OmniSP, cfg, 0);
        v4.set_tracer(Some(PacketTracer::with_capacity(1 << 16)));
        let _ = v4.run_rate(0.3);
        let t4 = v4.take_tracer().unwrap();
        assert_eq!(t5.dropped(), t4.dropped());
        assert!(!t5.events().is_empty());
        assert_eq!(
            format!("{:?}", t5.events()),
            format!("{:?}", t4.events()),
            "trace streams diverged between layouts"
        );
    }
}

/// The partition-invariance contract: every observable — metrics bytes,
/// totals, counters, trace events — is byte-identical for every partition
/// count `P`, because RNG-drawing phases stay sequential and the parallel
/// phases merge in fixed global order. `P = 1` is the reference (itself
/// proven identical to v4 by `layout_equivalence`).
mod partition_invariance {
    use super::*;

    const PARTITIONS: [usize; 5] = [1, 2, 3, 4, 7];

    fn build_p(
        spec: MechanismSpec,
        mut cfg: SimConfig,
        faults: usize,
        partitions: usize,
    ) -> Simulator {
        cfg.partitions = partitions;
        let hx = HyperX::regular(2, 4);
        let view = if faults == 0 {
            Arc::new(NetworkView::healthy(hx, 0))
        } else {
            let mut fault_rng = ChaCha8Rng::seed_from_u64(11);
            let fault_set = hyperx_topology::FaultSet::random_connected_sequence(
                hx.network(),
                faults,
                &mut fault_rng,
            );
            Arc::new(NetworkView::with_faults(hx, &fault_set, 0))
        };
        let mech = spec.build(view.clone(), cfg.num_vcs);
        let layout = ServerLayout::new(view.hyperx(), cfg.servers_per_switch);
        let pattern = Box::new(UniformTraffic::new(&layout));
        Simulator::new(view, mech, pattern, cfg)
    }

    #[test]
    fn rate_metrics_and_counters_invariant_across_partition_counts() {
        for contract in [RngContract::V1PerServer, RngContract::V2Counting] {
            for (spec, faults, load) in [
                (MechanismSpec::OmniSP, 3, 0.6),
                (MechanismSpec::PolSP, 0, 0.9),
            ] {
                let mut cfg = SimConfig::quick(2, 4);
                cfg.warmup_cycles = 200;
                cfg.measure_cycles = 600;
                cfg.seed = 42;
                cfg.rng_contract = contract;
                let mut reference: Option<(String, CounterRegistry)> = None;
                for p in PARTITIONS {
                    let mut sim = build_p(spec, cfg.clone(), faults, p);
                    assert_eq!(sim.partitions(), p);
                    let m = sim.run_rate(load);
                    let bytes = format!(
                        "{m:?}|gen={}|del={}",
                        sim.total_generated(),
                        sim.total_delivered()
                    );
                    let obs = sim.obs().clone();
                    match &reference {
                        None => reference = Some((bytes, obs)),
                        Some((ref_bytes, ref_obs)) => {
                            assert_eq!(
                                &bytes, ref_bytes,
                                "{spec:?} ({contract}) diverged at P={p}"
                            );
                            assert_eq!(
                                &obs, ref_obs,
                                "{spec:?} ({contract}) counters diverged at P={p}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_mode_and_drain_invariant() {
        let mut reference: Option<String> = None;
        for p in PARTITIONS {
            let mut cfg = SimConfig::quick(2, 4);
            cfg.seed = 5;
            let mut sim = build_p(MechanismSpec::PolSP, cfg, 2, p);
            let m = sim.run_batch(4, 100);
            let drained = sim.drain(100_000);
            let bytes = format!(
                "{m:?}|drained={drained}|in_switches={}",
                sim.packets_in_switches()
            );
            match &reference {
                None => reference = Some(bytes),
                Some(r) => assert_eq!(&bytes, r, "batch mode diverged at P={p}"),
            }
        }
    }

    #[test]
    fn trace_events_invariant() {
        let mut reference: Option<String> = None;
        for p in [1usize, 4] {
            let mut cfg = SimConfig::quick(2, 4);
            cfg.warmup_cycles = 0;
            cfg.measure_cycles = 500;
            cfg.seed = 2;
            let mut sim = build_p(MechanismSpec::OmniSP, cfg, 3, p);
            sim.set_tracer(Some(PacketTracer::with_capacity(1 << 16)));
            let _ = sim.run_rate(0.4);
            let tracer = sim.take_tracer().unwrap();
            assert!(!tracer.events().is_empty());
            let bytes = format!("dropped={}|{:?}", tracer.dropped(), tracer.events());
            match &reference {
                None => reference = Some(bytes),
                Some(r) => assert_eq!(&bytes, r, "trace stream diverged at P={p}"),
            }
        }
    }

    #[test]
    fn partitions_clamp_to_switch_count() {
        // 16 switches: asking for more partitions than switches must clamp,
        // not panic or leave empty partitions behind.
        let cfg = SimConfig::quick(2, 4);
        let sim = build_p(MechanismSpec::Minimal, cfg, 0, 64);
        assert_eq!(sim.partitions(), 16);
    }
}

/// The zero-perturbation contract of the observability layer: counters
/// and the tracer observe the engine without changing it, so metrics
/// bytes, generated/delivered totals and RNG draw order are identical
/// with the tracer installed or absent — across mechanisms, loads and
/// contracts.
mod obs_equivalence {
    use super::*;

    fn rate_bytes(traced: bool, contract: RngContract, load: f64) -> String {
        let mut cfg = SimConfig::quick(2, 4);
        cfg.warmup_cycles = 200;
        cfg.measure_cycles = 600;
        cfg.seed = 21;
        cfg.rng_contract = contract;
        let mut sim = build_sim(MechanismSpec::PolSP, cfg);
        if traced {
            sim.set_tracer(Some(PacketTracer::with_capacity(1 << 16)));
        }
        let metrics = sim.run_rate(load);
        format!(
            "{metrics:?}|gen={}|del={}",
            sim.total_generated(),
            sim.total_delivered()
        )
    }

    #[test]
    fn tracing_does_not_perturb_rate_metrics_or_rng() {
        for contract in [RngContract::V1PerServer, RngContract::V2Counting] {
            for load in [0.1, 0.6] {
                let off = rate_bytes(false, contract, load);
                let on = rate_bytes(true, contract, load);
                assert_eq!(off, on, "tracer perturbed load {load} ({contract})");
            }
        }
    }

    #[test]
    fn tracing_does_not_perturb_batch_mode() {
        let mut results = Vec::new();
        for traced in [false, true] {
            let mut cfg = SimConfig::quick(2, 4);
            cfg.seed = 9;
            let mut sim = build_sim(MechanismSpec::OmniSP, cfg);
            if traced {
                sim.set_tracer(Some(PacketTracer::with_capacity(1 << 16)));
            }
            let metrics = sim.run_batch(4, 100);
            results.push(format!("{metrics:?}"));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn traced_run_yields_complete_lifecycles() {
        let mut cfg = SimConfig::quick(2, 4);
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 500;
        cfg.seed = 2;
        let mut sim = build_sim(MechanismSpec::OmniSP, cfg);
        sim.set_tracer(Some(PacketTracer::with_capacity(1 << 16)));
        let _ = sim.run_rate(0.3);
        let tracer = sim.take_tracer().expect("tracer was installed");
        assert_eq!(tracer.dropped(), 0);
        let events = tracer.events();
        assert!(!events.is_empty());
        // A delivered packet's lifecycle reads inject → … → deliver in
        // nondecreasing cycle order, with at least one grant and hop.
        let delivered = events
            .iter()
            .find(|e| e.kind == TraceEventKind::Deliver)
            .expect("something was delivered");
        let life: Vec<_> = events
            .iter()
            .filter(|e| e.packet == delivered.packet)
            .collect();
        assert_eq!(life.first().unwrap().kind, TraceEventKind::Inject);
        assert_eq!(life.last().unwrap().kind, TraceEventKind::Deliver);
        assert!(life.iter().any(|e| e.kind == TraceEventKind::Grant));
        assert!(life.iter().any(|e| e.kind == TraceEventKind::Hop));
        assert!(life.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    fn counters_populate_and_are_deterministic() {
        let run = || {
            let mut cfg = SimConfig::quick(2, 4);
            cfg.warmup_cycles = 100;
            cfg.measure_cycles = 600;
            cfg.seed = 4;
            cfg.rng_contract = RngContract::V2Counting;
            let mut sim = build_sim(MechanismSpec::PolSP, cfg);
            let _ = sim.run_rate(0.5);
            sim.obs().clone()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "counters must be a pure function of the run");
        assert!(a.get(Counter::AllocRequests) > 0);
        assert!(a.get(Counter::AllocGrants) > 0);
        assert!(a.get(Counter::CandCacheMisses) > 0);
        assert!(a.get(Counter::AllocSwitchVisits) > 0);
        assert!(a.get(Counter::BinomialDraws) > 0);
        assert!(
            a.get(Counter::AllocRequests)
                >= a.get(Counter::AllocGrants) + a.get(Counter::AllocConflicts),
            "every request is granted, denied, or superseded"
        );
    }
}

/// The v1↔v2 contract relationship: the two contracts produce different
/// byte streams by design, but the *distributions* must agree — same
/// per-cycle injector marginals, so the same accepted load, latency and
/// fairness up to sampling noise.
mod contract_equivalence {
    use super::*;

    fn run(contract: RngContract, seed: u64, load: f64) -> RateMetrics {
        let mut cfg = SimConfig::quick(2, 4);
        cfg.warmup_cycles = 500;
        cfg.measure_cycles = 3_000;
        cfg.seed = seed;
        cfg.rng_contract = contract;
        build_sim(MechanismSpec::OmniSP, cfg).run_rate(load)
    }

    fn seed_mean(contract: RngContract, load: f64, f: impl Fn(&RateMetrics) -> f64) -> f64 {
        let seeds = [3u64, 17, 2024];
        seeds
            .iter()
            .map(|&s| f(&run(contract, s, load)))
            .sum::<f64>()
            / seeds.len() as f64
    }

    #[test]
    fn accepted_load_agrees_across_contracts() {
        for load in [0.1, 0.3, 0.6] {
            let v1 = seed_mean(RngContract::V1PerServer, load, |m| m.accepted_load);
            let v2 = seed_mean(RngContract::V2Counting, load, |m| m.accepted_load);
            assert!(
                (v1 - v2).abs() < 0.02,
                "accepted load at {load}: v1 {v1} vs v2 {v2}"
            );
        }
    }

    #[test]
    fn latency_agrees_across_contracts() {
        for load in [0.1, 0.4] {
            let v1 = seed_mean(RngContract::V1PerServer, load, |m| m.average_latency);
            let v2 = seed_mean(RngContract::V2Counting, load, |m| m.average_latency);
            assert!(
                (v1 - v2).abs() < 0.1 * v1.max(v2),
                "average latency at {load}: v1 {v1} vs v2 {v2}"
            );
        }
    }

    /// The Jain-at-saturation regression pin: `generation_blocked`
    /// accounting must behave identically under the counting sampler —
    /// a sampled server with a full source queue loses the opportunity,
    /// so the fairness index of *generated* load dips below 1 the same
    /// way v1's blocked Bernoulli successes make it dip.
    #[test]
    fn jain_at_saturation_and_blocked_accounting_agree() {
        let v1 = seed_mean(RngContract::V1PerServer, 1.0, |m| m.jain_generated);
        let v2 = seed_mean(RngContract::V2Counting, 1.0, |m| m.jain_generated);
        assert!(
            (v1 - v2).abs() < 0.05,
            "Jain(generated) at saturation: v1 {v1} vs v2 {v2}"
        );
        // Both contracts must actually be losing opportunities at
        // saturation — otherwise the parity above is vacuous.
        for contract in [RngContract::V1PerServer, RngContract::V2Counting] {
            let mut cfg = SimConfig::quick(2, 4);
            cfg.warmup_cycles = 500;
            cfg.measure_cycles = 3_000;
            cfg.seed = 3;
            cfg.rng_contract = contract;
            let mut sim = build_sim(MechanismSpec::OmniSP, cfg);
            let _ = sim.run_rate(1.0);
            assert!(
                sim.counters.generation_blocked > 0,
                "{contract}: no blocked generation at saturation"
            );
        }
    }

    /// v2 must not simply be v1 in disguise: at the same (config, seed)
    /// the byte streams differ.
    #[test]
    fn contracts_are_distinct_streams() {
        let v1 = run(RngContract::V1PerServer, 7, 0.5);
        let v2 = run(RngContract::V2Counting, 7, 0.5);
        assert_ne!(
            format!("{v1:?}"),
            format!("{v2:?}"),
            "v1 and v2 produced identical metrics bytes — the contract switch is dead"
        );
    }
}
