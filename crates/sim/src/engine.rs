//! The cycle-level simulation engine (v5: data-oriented storage with
//! deterministic intra-simulation parallelism).
//!
//! The simulator is packet-granular with phit-accurate timing:
//!
//! * buffers hold whole packets (virtual cut-through), with the sizes of
//!   Table 2 (8-packet input VC FIFOs, 4-packet output staging buffers);
//! * moving a packet through the crossbar takes `crossbar_latency +
//!   packet_length / crossbar_speedup` cycles; serializing it on a link takes
//!   `packet_length` cycles plus `link_latency`;
//! * a head packet makes a single request per cycle to the output with the
//!   lowest `Q + P` among the candidates that satisfy flow control (the exact
//!   allocation rule of paper §3), and each output port grants up to
//!   `crossbar_speedup` requests per cycle;
//! * credits are modelled by reserving a downstream buffer slot at grant time
//!   and releasing it when the packet arrives, which is what a credit-based
//!   VCT implementation guarantees.
//!
//! # Layout (v5)
//!
//! Engine state is struct-of-arrays instead of the v4 per-switch structs:
//! packets live in a [`PacketArena`] (parallel field arrays plus a free list,
//! `u32` indices instead of owned values move through queues), input VC FIFOs
//! and output staging buffers are flat ring buffers indexed by precomputed
//! strides (`slot = (switch·num_ports + port)·num_vcs + vc`), per-port
//! occupancy is a maintained counter instead of a per-request sum over VCs,
//! and all per-step scratch lives in one reusable [`StepArena`]. The frozen
//! v4 engine is kept in [`crate::engine_v4`] and the `layout_equivalence`
//! tests prove the two byte-identical (RNG draw order, metrics bytes,
//! counters, traces).
//!
//! # Parallelism
//!
//! With `SimConfig::partitions = P > 1` the engine splits switches into `P`
//! contiguous ranges and steps the two data-parallel phase parts on a
//! persistent [`WorkerPool`] with a cycle barrier:
//!
//! * **allocation** prefills the per-VC candidate caches in parallel
//!   (candidate lists are pure functions of `(packet state, switch)`, and
//!   heads cannot change during allocation), then runs the score + grant
//!   sweep sequentially — RNG tie-break draws stay in the exact v4 order;
//! * **transmission** runs fully parallel with per-partition event buffers;
//!   every transmitted packet arrives at the same future cycle, so appending
//!   the buffers in ascending partition order reproduces the sequential
//!   event-wheel order exactly.
//!
//! Everything else (event processing, generation/injection, grants) is
//! sequential, so RNG draw order, metrics bytes, counters and store bytes
//! are byte-identical for every `P` — enforced by the `partition_invariance`
//! tests here, the integration suite, and `surepath bench`.

use crate::config::SimConfig;
use crate::metrics::{BatchMetrics, MeasuredCounters, RateMetrics, ThroughputSample};
use crate::obs::{Counter, CounterRegistry, PacketTracer, TraceEvent, TraceEventKind};
use crate::pool::WorkerPool;
use crate::rng_contract::{sample_without_replacement, RngContract};
use crate::server::GenerationMode;
use crate::switch::OutputKind;
use crate::traffic::{ServerLayout, TrafficPattern};
use hyperx_routing::{Candidate, NetworkView, PacketState, RouteScratch, RoutingMechanism};
use rand::distributions::Binomial;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, Mutex};

/// A timed event travelling between switches or towards a server. Compact:
/// packets are arena indices, the input VC is a precomputed flat slot.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A packet finishes crossing a link and lands in input VC `slot`.
    Arrival { slot: u32, packet: u32 },
    /// A packet finishes its ejection link and is consumed by its server.
    Delivery { packet: u32 },
}

/// One output request produced by a head packet.
#[derive(Debug, Clone, Copy)]
struct Request {
    in_port: usize,
    in_vc: usize,
    out_port: usize,
    out_vc: usize,
    /// `Q + P` in phits.
    score: u64,
    /// The routing candidate behind the request (`None` for ejection).
    candidate: Option<Candidate>,
}

/// A deterministic dirty set of indices (switches, or servers for the
/// generation stage).
///
/// The active-set scheduler must visit members in exactly the order the
/// exhaustive scan would (ascending index — RNG draws happen per member in
/// that order), so this is a sorted list plus a membership bitmap:
/// insertion is O(1) amortised (pending insertions merge in one in-place
/// backward merge per cycle), iteration is the sorted list, and removal
/// happens during the caller's sweep. No allocations at steady state.
#[derive(Debug)]
struct ActiveSet {
    /// Membership bitmap; prevents duplicate insertions.
    member: Vec<bool>,
    /// Sorted active indices (the iteration order).
    list: Vec<usize>,
    /// Insertions since the last merge, unsorted.
    added: Vec<usize>,
}

impl ActiveSet {
    fn new(n: usize) -> Self {
        ActiveSet {
            member: vec![false; n],
            list: Vec::new(),
            added: Vec::new(),
        }
    }

    /// Marks `idx` active; no-op if it already is.
    fn insert(&mut self, idx: usize) {
        if !self.member[idx] {
            self.member[idx] = true;
            self.added.push(idx);
        }
    }

    /// Folds pending insertions into the sorted list (in place, backwards).
    fn merge_added(&mut self) {
        if self.added.is_empty() {
            return;
        }
        self.added.sort_unstable();
        let old_len = self.list.len();
        self.list.extend_from_slice(&self.added);
        let mut i = old_len;
        let mut j = self.added.len();
        let mut k = self.list.len();
        while i > 0 && j > 0 {
            k -= 1;
            if self.list[i - 1] > self.added[j - 1] {
                self.list[k] = self.list[i - 1];
                i -= 1;
            } else {
                self.list[k] = self.added[j - 1];
                j -= 1;
            }
        }
        while j > 0 {
            k -= 1;
            j -= 1;
            self.list[k] = self.added[j];
        }
        self.added.clear();
    }
}

/// Packet storage as parallel field arrays plus a free list. Queues and
/// events move `u32` indices; delivered packets return their slot to the
/// free list, so the arena's high-water mark is the peak in-flight count.
#[derive(Debug, Default)]
struct PacketArena {
    id: Vec<u64>,
    src_server: Vec<u32>,
    dst_server: Vec<u32>,
    dst_switch: Vec<u32>,
    created_at: Vec<u64>,
    injected_at: Vec<u64>,
    state: Vec<PacketState>,
    escape_hops: Vec<u16>,
    free: Vec<u32>,
}

impl PacketArena {
    #[allow(clippy::too_many_arguments)]
    fn alloc(
        &mut self,
        id: u64,
        src_server: usize,
        dst_server: usize,
        dst_switch: usize,
        created_at: u64,
        state: PacketState,
    ) -> u32 {
        if let Some(idx) = self.free.pop() {
            let i = idx as usize;
            self.id[i] = id;
            self.src_server[i] = src_server as u32;
            self.dst_server[i] = dst_server as u32;
            self.dst_switch[i] = dst_switch as u32;
            self.created_at[i] = created_at;
            self.injected_at[i] = 0;
            self.state[i] = state;
            self.escape_hops[i] = 0;
            idx
        } else {
            self.id.push(id);
            self.src_server.push(src_server as u32);
            self.dst_server.push(dst_server as u32);
            self.dst_switch.push(dst_switch as u32);
            self.created_at.push(created_at);
            self.injected_at.push(0);
            self.state.push(state);
            self.escape_hops.push(0);
            (self.id.len() - 1) as u32
        }
    }

    fn release(&mut self, idx: u32) {
        self.free.push(idx);
    }
}

/// All per-step scratch of the sequential phases, folded into one reusable
/// arena: request lists, sort keys, grant counters, routing scratch and the
/// v2 sampler's output. No allocations at steady state.
#[derive(Debug, Default)]
struct StepArena {
    /// Requests of the switch being allocated.
    requests: Vec<Request>,
    /// `(score, tie-break, request index)` sort keys.
    keyed: Vec<(u64, u32, usize)>,
    /// Per-output grants of the switch being allocated.
    out_grants: Vec<usize>,
    /// Per-input grants of the switch being allocated.
    in_grants: Vec<usize>,
    /// Intermediate route lists of candidate computation.
    route: RouteScratch,
    /// Rate contract v2 scratch: this cycle's sampled injectors.
    sampled: Vec<usize>,
    /// Partition cut points into an active list (parallel phases).
    seg: Vec<usize>,
}

/// Read-only state shared by all partitions of a parallel transmit.
struct XmitShared<'a> {
    stg_pkt: &'a [u32],
    stg_vc: &'a [u16],
    stg_ready: &'a [u64],
    out_kind: &'a [OutputKind],
    cycle: u64,
    packet_length: u64,
    cap_out: usize,
    num_ports: usize,
    num_vcs: usize,
}

/// One partition's mutable view of a parallel transmit: disjoint slices of
/// the per-port/per-switch arrays plus a private event buffer.
struct XmitTask<'a> {
    sw_base: usize,
    port_base: usize,
    /// This partition's segment of the transmit active list.
    seg: &'a mut [usize],
    /// Switches retained in `seg[..kept]` after the sweep.
    kept: usize,
    member: &'a mut [bool],
    stg_head: &'a mut [u16],
    stg_len: &'a mut [u16],
    link_busy: &'a mut [u64],
    staged_count: &'a mut [u32],
    events: Vec<Ev>,
    progress: bool,
}

/// Read-only state shared by all partitions of a parallel candidate prefill.
struct PrefillShared<'a> {
    in_q: &'a [u32],
    in_head: &'a [u16],
    in_len: &'a [u16],
    pkt_id: &'a [u64],
    pkt_dst_switch: &'a [u32],
    pkt_state: &'a [PacketState],
    mechanism: &'a dyn RoutingMechanism,
    cycle: u64,
    cap_in: usize,
    num_ports: usize,
    num_vcs: usize,
}

/// One partition's mutable view of a parallel candidate prefill: disjoint
/// slot-range slices of the cache arrays plus a private routing scratch.
struct PrefillTask<'a> {
    slot_base: usize,
    /// This partition's segment of the allocation active list.
    seg: &'a [usize],
    cached_for: &'a mut [u64],
    cache_fresh: &'a mut [u64],
    cand_cache: &'a mut [Vec<Candidate>],
    route: RouteScratch,
}

/// Sentinel for "no packet cached" in `cached_for` (packet ids start at 0).
const NO_PACKET: u64 = u64::MAX;

/// The cycle-level simulator (see the module docs for the v5 layout).
pub struct Simulator {
    cfg: SimConfig,
    view: Arc<NetworkView>,
    mechanism: Box<dyn RoutingMechanism>,
    pattern: Box<dyn TrafficPattern>,
    layout: ServerLayout,
    // --- geometry (cached off cfg/topology; fixed after `new`) ---
    radix: usize,
    num_ports: usize,
    num_vcs: usize,
    cap_in: usize,
    cap_out: usize,
    cap_src: usize,
    // --- packet storage ---
    pkt: PacketArena,
    // --- input VC state, indexed by `slot = (switch·num_ports + port)·num_vcs + vc` ---
    /// Ring storage: `in_q[slot·cap_in ..][..cap_in]`.
    in_q: Vec<u32>,
    in_head: Vec<u16>,
    in_len: Vec<u16>,
    /// Granted-but-not-arrived reservations (consumed credits).
    in_flight: Vec<u16>,
    /// Candidate-cache key: the head packet id the cache was computed for.
    cached_for: Vec<u64>,
    cand_cache: Vec<Vec<Candidate>>,
    /// Cycle stamp (`cycle + 1`) marking a cache entry computed by this
    /// cycle's parallel prefill — the sequential sweep counts it as the miss
    /// the v4 engine would have taken inline.
    cache_fresh: Vec<u64>,
    // --- output port state, indexed by `flat = switch·num_ports + port` ---
    out_kind: Vec<OutputKind>,
    /// Staging ring storage: `stg_*[flat·cap_out ..][..cap_out]`.
    stg_pkt: Vec<u32>,
    stg_vc: Vec<u16>,
    stg_ready: Vec<u64>,
    stg_head: Vec<u16>,
    stg_len: Vec<u16>,
    link_busy: Vec<u64>,
    /// Occupancy (buffered + in-flight over all VCs) of the *input* port at
    /// this flat location — maintained incrementally so the allocation `Q`
    /// term is O(1) instead of a sum over VCs.
    port_occ: Vec<u32>,
    // --- server state ---
    /// Source-queue ring storage: `srv_q[server·cap_src ..][..cap_src]`.
    srv_q: Vec<u32>,
    srv_head: Vec<u16>,
    srv_len: Vec<u16>,
    srv_busy: Vec<u64>,
    srv_quota: Vec<u64>,
    // --- time, randomness, bookkeeping ---
    /// Event wheel indexed by `cycle % wheel.len()`.
    wheel: Vec<Vec<Ev>>,
    rng: ChaCha8Rng,
    cycle: u64,
    next_packet_id: u64,
    /// Packets created and not yet delivered (source queues + network).
    packets_alive: u64,
    total_generated: u64,
    total_delivered: u64,
    counters: MeasuredCounters,
    measuring: bool,
    generation: GenerationMode,
    last_progress: u64,
    progress_this_cycle: bool,
    stalled: bool,
    /// Delivered phits since the last batch sample (Figure 10 curve).
    window_delivered_phits: u64,
    /// Switches with at least one buffered input packet: the only switches
    /// the allocator needs to visit.
    alloc_active: ActiveSet,
    /// Switches with at least one staged packet: the only switches the
    /// transmit stage needs to visit.
    xmit_active: ActiveSet,
    /// Buffered input packets per switch (all ports and VCs).
    input_occupancy: Vec<u32>,
    /// Staged output packets per switch (all ports).
    staged_count: Vec<u32>,
    /// Servers with generation work or source-queue backlog: the only
    /// servers batch mode and rate contract v2 visit. (Rate contract v1
    /// scans every server — its per-server draw order is the frozen
    /// contract.)
    server_live: ActiveSet,
    /// Rebuild `server_live` from scratch before the next batch-mode cycle
    /// (set whenever quotas are handed out or zeroed).
    server_live_dirty: bool,
    /// Rate contract v2: per-server cycle stamp marking membership in this
    /// cycle's sampled injector set (`cycle + 1`; never needs clearing).
    sampled_at: Vec<u64>,
    /// Rate contract v2: the counting sampler, rebuilt when the per-trial
    /// probability changes (i.e. when the offered load changes).
    binomial_cache: Option<(f64, Binomial)>,
    /// All sequential-phase scratch, folded into one arena.
    step: StepArena,
    /// Fixed-slot observability counters: plain `u64` adds on the hot path,
    /// never fed back into any scheduling decision (zero-perturbation).
    obs: CounterRegistry,
    /// Optional packet-lifecycle tracer. `None` reduces every hook to one
    /// branch; enabling it must not change RNG draws or metrics bytes.
    tracer: Option<PacketTracer>,
    // --- partitioning ---
    /// Contiguous switch partitions stepped in parallel (1 = sequential).
    partitions: usize,
    /// Partition boundaries: partition `p` owns switches
    /// `part_bounds[p] .. part_bounds[p + 1]`.
    part_bounds: Vec<usize>,
    /// Persistent workers (`partitions - 1`; the caller participates).
    pool: Option<WorkerPool>,
    /// Reusable per-partition transmit event buffers.
    part_events: Vec<Vec<Ev>>,
    /// Reusable per-partition routing scratch for the candidate prefill.
    part_routes: Vec<RouteScratch>,
}

impl Simulator {
    /// Builds a simulator over `view` with the given routing mechanism and
    /// traffic pattern.
    ///
    /// # Panics
    /// Panics if the mechanism's VC count disagrees with the configuration.
    pub fn new(
        view: Arc<NetworkView>,
        mechanism: Box<dyn RoutingMechanism>,
        pattern: Box<dyn TrafficPattern>,
        cfg: SimConfig,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            mechanism.num_vcs(),
            cfg.num_vcs,
            "the routing mechanism uses {} VCs but the configuration says {}",
            mechanism.num_vcs(),
            cfg.num_vcs
        );
        let hx = view.hyperx();
        let layout = ServerLayout::new(hx, cfg.servers_per_switch);
        let radix = hx.switch_radix();
        let num_ports = radix + cfg.servers_per_switch;
        let num_switches = hx.num_switches();
        let num_servers = layout.num_servers();
        let num_vcs = cfg.num_vcs;
        let (cap_in, cap_out, cap_src) = (
            cfg.input_buffer_packets,
            cfg.output_buffer_packets,
            cfg.source_queue_packets,
        );
        assert!(
            cap_in <= u16::MAX as usize
                && cap_out <= u16::MAX as usize
                && cap_src <= u16::MAX as usize,
            "buffer capacities must fit the ring-index width"
        );
        let mut out_kind = Vec::with_capacity(num_switches * num_ports);
        for s in 0..num_switches {
            for p in 0..radix {
                out_kind.push(match view.network().neighbor(s, p) {
                    Some(nb) => OutputKind::Network {
                        next_switch: nb.switch,
                        next_input_port: nb.reverse_port,
                    },
                    None => OutputKind::Dead,
                });
            }
            for o in 0..cfg.servers_per_switch {
                out_kind.push(OutputKind::Ejection {
                    server: layout.server_at(s, o),
                });
            }
        }
        let nslots = num_switches * num_ports * num_vcs;
        let nports = num_switches * num_ports;
        let wheel_len = (cfg.packet_length + cfg.link_latency + cfg.crossbar_latency + 4) as usize;
        let counters = MeasuredCounters::new(num_servers);
        let partitions = cfg.partitions.clamp(1, num_switches);
        let chunk = num_switches.div_ceil(partitions);
        let part_bounds: Vec<usize> = (0..=partitions)
            .map(|p| (p * chunk).min(num_switches))
            .collect();
        Simulator {
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            cfg,
            view,
            mechanism,
            pattern,
            layout,
            radix,
            num_ports,
            num_vcs,
            cap_in,
            cap_out,
            cap_src,
            pkt: PacketArena::default(),
            in_q: vec![0; nslots * cap_in],
            in_head: vec![0; nslots],
            in_len: vec![0; nslots],
            in_flight: vec![0; nslots],
            cached_for: vec![NO_PACKET; nslots],
            cand_cache: (0..nslots).map(|_| Vec::new()).collect(),
            cache_fresh: vec![0; nslots],
            out_kind,
            stg_pkt: vec![0; nports * cap_out],
            stg_vc: vec![0; nports * cap_out],
            stg_ready: vec![0; nports * cap_out],
            stg_head: vec![0; nports],
            stg_len: vec![0; nports],
            link_busy: vec![0; nports],
            port_occ: vec![0; nports],
            srv_q: vec![0; num_servers * cap_src],
            srv_head: vec![0; num_servers],
            srv_len: vec![0; num_servers],
            srv_busy: vec![0; num_servers],
            srv_quota: vec![u64::MAX; num_servers],
            wheel: (0..wheel_len).map(|_| Vec::new()).collect(),
            cycle: 0,
            next_packet_id: 0,
            packets_alive: 0,
            total_generated: 0,
            total_delivered: 0,
            counters,
            measuring: false,
            generation: GenerationMode::Rate { offered_load: 0.0 },
            last_progress: 0,
            progress_this_cycle: false,
            stalled: false,
            window_delivered_phits: 0,
            alloc_active: ActiveSet::new(num_switches),
            xmit_active: ActiveSet::new(num_switches),
            input_occupancy: vec![0; num_switches],
            staged_count: vec![0; num_switches],
            server_live: ActiveSet::new(num_servers),
            server_live_dirty: true,
            sampled_at: vec![0; num_servers],
            binomial_cache: None,
            step: StepArena::default(),
            obs: CounterRegistry::new(),
            tracer: None,
            pool: (partitions > 1).then(|| WorkerPool::new(partitions - 1)),
            partitions,
            part_bounds,
            part_events: (0..partitions).map(|_| Vec::new()).collect(),
            part_routes: (0..partitions).map(|_| RouteScratch::default()).collect(),
        }
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The network view this simulator runs on.
    pub fn view(&self) -> &NetworkView {
        &self.view
    }

    /// Packets created and not yet delivered.
    pub fn packets_alive(&self) -> u64 {
        self.packets_alive
    }

    /// Packets delivered since the simulation started.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Packets generated since the simulation started.
    pub fn total_generated(&self) -> u64 {
        self.total_generated
    }

    /// Whether the stall watchdog has fired.
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    /// The number of switch partitions stepped in parallel (1 = sequential;
    /// clamped to the switch count).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Sum of packets buffered inside switches (inputs + staging), used by
    /// conservation tests.
    pub fn packets_in_switches(&self) -> usize {
        let inputs: u64 = self.in_len.iter().map(|&l| l as u64).sum();
        let staged: u64 = self.stg_len.iter().map(|&l| l as u64).sum();
        (inputs + staged) as usize
    }

    /// The engine's observability counters (reset when measurement begins).
    pub fn obs(&self) -> &CounterRegistry {
        &self.obs
    }

    /// Installs (or removes) the packet-lifecycle tracer. Tracing is
    /// observation-only: enabling it never changes RNG draw order, metrics
    /// bytes, or store bytes — see the `obs_equivalence` tests.
    pub fn set_tracer(&mut self, tracer: Option<PacketTracer>) {
        self.tracer = tracer;
    }

    /// Takes the tracer (and its recorded events) out of the simulator.
    pub fn take_tracer(&mut self) -> Option<PacketTracer> {
        self.tracer.take()
    }

    /// Runs an open-loop (rate mode) experiment at `offered_load`
    /// phits/cycle/server: warmup, then a measurement window.
    pub fn run_rate(&mut self, offered_load: f64) -> RateMetrics {
        assert!(
            (0.0..=1.0).contains(&offered_load),
            "offered load is normalised to [0, 1] phits/cycle/server"
        );
        self.generation = GenerationMode::Rate { offered_load };
        for _ in 0..self.cfg.warmup_cycles {
            self.step();
        }
        self.begin_measurement();
        for _ in 0..self.cfg.measure_cycles {
            self.step();
            if self.stalled {
                break;
            }
        }
        self.counters.cycles = self.cfg.measure_cycles.min(self.counters.cycles.max(1));
        RateMetrics::from_counters(
            offered_load,
            self.cfg.packet_length,
            self.layout.num_servers(),
            &mut self.counters,
            self.packets_alive,
            self.stalled,
        )
    }

    /// Runs a closed-loop (batch mode) experiment: every server sends
    /// `packets_per_server` packets as fast as it can; the simulation runs to
    /// completion (or a stall). `sample_window` controls the granularity of
    /// the accepted-load curve (Figure 10).
    pub fn run_batch(&mut self, packets_per_server: u64, sample_window: u64) -> BatchMetrics {
        assert!(packets_per_server > 0 && sample_window > 0);
        self.generation = GenerationMode::Batch { packets_per_server };
        for quota in &mut self.srv_quota {
            *quota = packets_per_server;
        }
        self.server_live_dirty = true;
        self.begin_measurement();
        let expected = packets_per_server * self.layout.num_servers() as u64;
        let mut samples = Vec::new();
        let mut completion = 0u64;
        while self.total_delivered < expected && !self.stalled {
            self.step();
            if self.cycle.is_multiple_of(sample_window) {
                samples.push(ThroughputSample {
                    cycle: self.cycle,
                    accepted_load: self.window_delivered_phits as f64
                        / (sample_window as f64 * self.layout.num_servers() as f64),
                });
                self.window_delivered_phits = 0;
            }
            if self.total_delivered >= expected {
                completion = self.cycle;
            }
        }
        if completion == 0 {
            completion = self.cycle;
        }
        // Final partial window, if any.
        if !self.cycle.is_multiple_of(sample_window) {
            let partial = self.cycle % sample_window;
            samples.push(ThroughputSample {
                cycle: self.cycle,
                accepted_load: self.window_delivered_phits as f64
                    / (partial as f64 * self.layout.num_servers() as f64),
            });
        }
        let average_latency = if self.counters.delivered_packets > 0 {
            self.counters.latency_sum as f64 / self.counters.delivered_packets as f64
        } else {
            0.0
        };
        BatchMetrics {
            completion_time: completion,
            delivered_packets: self.counters.delivered_packets,
            samples,
            average_latency,
            stalled: self.stalled,
            // Move, don't clone: the histogram is 976 buckets and the run is
            // over — `begin_measurement` rebuilds the counters anyway.
            latency_hist: Some(std::mem::take(&mut self.counters.latency_hist)),
        }
    }

    /// Stops generating new packets and runs until everything in flight is
    /// delivered (or `max_cycles` elapse). Returns whether the network drained
    /// completely. Used by integration tests to verify packet conservation.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        self.generation = GenerationMode::Batch {
            packets_per_server: 0,
        };
        for quota in &mut self.srv_quota {
            *quota = 0;
        }
        self.server_live_dirty = true;
        let deadline = self.cycle + max_cycles;
        while self.packets_alive > 0 && self.cycle < deadline && !self.stalled {
            self.step();
        }
        self.packets_alive == 0
    }

    fn begin_measurement(&mut self) {
        self.counters = MeasuredCounters::new(self.layout.num_servers());
        self.obs.reset();
        self.measuring = true;
        self.window_delivered_phits = 0;
    }

    /// Advances the simulation by one cycle.
    ///
    /// The scheduler is **active-set based** (allocation only visits switches
    /// with buffered input packets, transmission only visits switches with
    /// staged packets, generation only visits live servers) and, with
    /// `partitions > 1`, steps the candidate prefill and the transmit stage
    /// in parallel across switch partitions. The observable behaviour (RNG
    /// draw order, metrics, counters, traces, event timing) is identical to
    /// the sequential v4 engine for every partition count; see the
    /// `layout_equivalence` and `partition_invariance` tests.
    pub fn step(&mut self) {
        self.progress_this_cycle = false;
        self.process_events();
        self.generate_and_inject();
        self.allocate();
        self.transmit();
        self.finish_step();
    }

    /// Measurement, watchdog and cycle bookkeeping.
    fn finish_step(&mut self) {
        if self.measuring {
            self.counters.cycles += 1;
        }
        if self.progress_this_cycle {
            self.last_progress = self.cycle;
        } else if self.packets_alive > 0 {
            self.obs.incr(Counter::BlockedCycles);
            if self.cycle - self.last_progress >= self.cfg.watchdog_cycles {
                self.stalled = true;
            }
        }
        self.cycle += 1;
    }

    // --- flat-index helpers -------------------------------------------------

    /// Flat input-VC slot of `(switch, port, vc)`.
    #[inline]
    fn slot(&self, switch: usize, port: usize, vc: usize) -> usize {
        (switch * self.num_ports + port) * self.num_vcs + vc
    }

    /// Head packet (arena index) of input ring `slot`; caller checks `in_len`.
    #[inline]
    fn in_front(&self, slot: usize) -> usize {
        debug_assert!(self.in_len[slot] > 0);
        self.in_q[slot * self.cap_in + self.in_head[slot] as usize] as usize
    }

    #[inline]
    fn in_push(&mut self, slot: usize, packet: u32) {
        debug_assert!((self.in_len[slot] as usize) < self.cap_in);
        let mut pos = self.in_head[slot] as usize + self.in_len[slot] as usize;
        if pos >= self.cap_in {
            pos -= self.cap_in;
        }
        self.in_q[slot * self.cap_in + pos] = packet;
        self.in_len[slot] += 1;
    }

    #[inline]
    fn in_pop(&mut self, slot: usize) -> usize {
        let packet = self.in_front(slot);
        let next = self.in_head[slot] as usize + 1;
        self.in_head[slot] = if next == self.cap_in { 0 } else { next as u16 };
        self.in_len[slot] -= 1;
        packet
    }

    /// Free slots of input ring `slot` under the credit protocol.
    #[inline]
    fn in_free(&self, slot: usize) -> usize {
        self.cap_in
            .saturating_sub(self.in_len[slot] as usize + self.in_flight[slot] as usize)
    }

    fn wheel_slot(&self, cycle: u64) -> usize {
        (cycle % self.wheel.len() as u64) as usize
    }

    fn schedule(&mut self, cycle: u64, event: Ev) {
        debug_assert!(cycle > self.cycle, "events must be scheduled in the future");
        debug_assert!(
            cycle - self.cycle < self.wheel.len() as u64,
            "event beyond the wheel horizon"
        );
        let slot = self.wheel_slot(cycle);
        self.wheel[slot].push(event);
    }

    // --- phases -------------------------------------------------------------

    fn process_events(&mut self) {
        let wheel_slot = self.wheel_slot(self.cycle);
        let events = std::mem::take(&mut self.wheel[wheel_slot]);
        for event in events {
            match event {
                Ev::Arrival { slot, packet } => {
                    let slot = slot as usize;
                    let p = packet as usize;
                    let switch = slot / (self.num_ports * self.num_vcs);
                    if let Some(tracer) = &mut self.tracer {
                        tracer.record(TraceEvent {
                            cycle: self.cycle,
                            packet: self.pkt.id[p],
                            kind: TraceEventKind::Hop,
                            switch: switch as u64,
                            hops: self.pkt.state[p].hops as u64,
                            escape_hops: self.pkt.escape_hops[p] as u64,
                        });
                    }
                    debug_assert!(self.in_flight[slot] > 0, "arrival without a reservation");
                    self.in_flight[slot] -= 1;
                    // `port_occ` counts buffered + in-flight, so an arrival
                    // (in-flight → buffered) leaves it unchanged.
                    self.in_push(slot, packet);
                    self.input_occupancy[switch] += 1;
                    self.alloc_active.insert(switch);
                    self.progress_this_cycle = true;
                }
                Ev::Delivery { packet } => {
                    let p = packet as usize;
                    self.packets_alive -= 1;
                    self.total_delivered += 1;
                    self.progress_this_cycle = true;
                    if let Some(tracer) = &mut self.tracer {
                        tracer.record(TraceEvent {
                            cycle: self.cycle,
                            packet: self.pkt.id[p],
                            kind: TraceEventKind::Deliver,
                            switch: self.pkt.dst_switch[p] as u64,
                            hops: self.pkt.state[p].hops as u64,
                            escape_hops: self.pkt.escape_hops[p] as u64,
                        });
                    }
                    if self.measuring {
                        self.counters.delivered_packets += 1;
                        self.counters.delivered_phits += self.cfg.packet_length;
                        let lat = self.cycle.saturating_sub(self.pkt.created_at[p]);
                        self.counters.latency_sum += lat;
                        self.counters.latency_max = self.counters.latency_max.max(lat);
                        self.counters.latency_hist.record(lat);
                        self.counters.hop_sum += self.pkt.state[p].hops as u64;
                        self.counters.escape_hop_sum += self.pkt.escape_hops[p] as u64;
                        if self.pkt.escape_hops[p] > 0 {
                            self.counters.delivered_via_escape += 1;
                        }
                        self.window_delivered_phits += self.cfg.packet_length;
                    }
                    self.pkt.release(packet);
                }
            }
        }
    }

    fn generate_and_inject(&mut self) {
        let packet_length = self.cfg.packet_length;
        match self.generation {
            GenerationMode::Rate { offered_load } => match self.cfg.rng_contract {
                // Contract v1 (frozen): one Bernoulli trial per server per
                // cycle, in ascending server order. The draw order is the
                // contract, so this path scans every server.
                RngContract::V1PerServer => {
                    for server in 0..self.layout.num_servers() {
                        self.generate_and_inject_server(server, packet_length);
                    }
                }
                // Contract v2: one binomial draw counts the cycle's
                // arrivals, a without-replacement sample places them, and
                // only live servers (sampled or backlogged) are visited —
                // O(traffic) instead of O(network).
                RngContract::V2Counting => {
                    self.sample_injectors_v2(offered_load);
                    self.sweep_live_servers(packet_length, Self::rate_v2_server_body, |sim, s| {
                        sim.srv_len[s] > 0
                    });
                }
            },
            // Batch mode: a server without quota or queued packets draws no
            // randomness and injects nothing, so only live servers are
            // visited. Activity is monotone decreasing mid-run (nothing
            // refills a quota), so the retain sweep suffices.
            GenerationMode::Batch { .. } => {
                if self.server_live_dirty {
                    self.rebuild_server_live();
                }
                self.sweep_live_servers(
                    packet_length,
                    Self::generate_and_inject_server,
                    |sim, s| !sim.server_drained(s),
                );
            }
        }
    }

    /// Whether `server` has neither queued packets nor remaining batch quota.
    fn server_drained(&self, server: usize) -> bool {
        self.srv_len[server] == 0 && self.srv_quota[server] == 0
    }

    /// Rebuilds the live-server set from scratch (after batch quotas are
    /// handed out or zeroed).
    fn rebuild_server_live(&mut self) {
        self.server_live.member.iter_mut().for_each(|m| *m = false);
        self.server_live.list.clear();
        self.server_live.added.clear();
        for s in 0..self.layout.num_servers() {
            if !self.server_drained(s) {
                self.server_live.member[s] = true;
                self.server_live.list.push(s);
            }
        }
        self.server_live_dirty = false;
    }

    /// The shared visitation helper of batch mode and rate contract v2:
    /// folds pending insertions into the live set, visits the live servers
    /// in ascending order running `body` on each, and drops the ones
    /// `retain` rejects afterwards.
    fn sweep_live_servers(
        &mut self,
        packet_length: u64,
        body: fn(&mut Self, usize, u64),
        retain: fn(&Self, usize) -> bool,
    ) {
        self.server_live.merge_added();
        let mut live = std::mem::take(&mut self.server_live.list);
        let mut keep = 0;
        for k in 0..live.len() {
            let server = live[k];
            body(self, server, packet_length);
            if retain(self, server) {
                live[keep] = server;
                keep += 1;
            } else {
                self.server_live.member[server] = false;
            }
        }
        live.truncate(keep);
        self.server_live.list = live;
    }

    /// Rate contract v2, step 1: draws `k ~ Binomial(n_servers, p)`, samples
    /// the `k` injecting servers without replacement (stamping `sampled_at`
    /// with `cycle + 1`), and marks them live so the sweep visits them.
    fn sample_injectors_v2(&mut self, offered_load: f64) {
        if offered_load <= 0.0 {
            return;
        }
        let n = self.layout.num_servers();
        let p = offered_load / self.cfg.packet_length as f64;
        match &self.binomial_cache {
            Some((cached_p, _)) if *cached_p == p => {}
            _ => self.binomial_cache = Some((p, Binomial::new(n as u64, p))),
        }
        let binomial = self.binomial_cache.as_ref().unwrap().1;
        let k = binomial.sample(&mut self.rng) as usize;
        self.obs.incr(Counter::BinomialDraws);
        sample_without_replacement(
            &mut self.rng,
            n,
            k,
            &mut self.sampled_at,
            self.cycle + 1,
            &mut self.step.sampled,
        );
        for i in 0..self.step.sampled.len() {
            let server = self.step.sampled[i];
            self.server_live.insert(server);
        }
    }

    /// Rate contract v2, step 2 (per live server): generation happens only
    /// on the servers the counting sampler picked this cycle; injection runs
    /// for every live server.
    fn rate_v2_server_body(&mut self, server: usize, packet_length: u64) {
        if self.sampled_at[server] == self.cycle + 1 {
            self.admit_packet(server);
        }
        self.inject_server(server, packet_length);
    }

    /// Generation + injection of one server: the per-server body shared by
    /// batch mode and rate contract v1.
    fn generate_and_inject_server(&mut self, server: usize, packet_length: u64) {
        let wants_packet = match self.generation {
            GenerationMode::Rate { offered_load } => {
                offered_load > 0.0 && self.rng.gen::<f64>() < offered_load / packet_length as f64
            }
            GenerationMode::Batch { .. } => self.srv_quota[server] > 0,
        };
        if wants_packet {
            self.admit_packet(server);
        }
        self.inject_server(server, packet_length);
    }

    /// Admits one new packet into `server`'s source queue, drawing its
    /// destination and routing state — or, if the queue is full, counts the
    /// lost generation opportunity in `generation_blocked`. A v2 sampled
    /// server against a full queue loses its opportunity exactly like a v1
    /// Bernoulli success against a full queue: in both contracts this is
    /// what depresses the Jain index at saturation.
    fn admit_packet(&mut self, server: usize) {
        if (self.srv_len[server] as usize) < self.cap_src {
            let dst = self.pattern.destination(server, &mut self.rng);
            debug_assert!(dst < self.layout.num_servers());
            let src_switch = self.layout.server_switch(server);
            let dst_switch = self.layout.server_switch(dst);
            let state = self
                .mechanism
                .init_packet(src_switch, dst_switch, &mut self.rng);
            let id = self.next_packet_id;
            let packet = self
                .pkt
                .alloc(id, server, dst, dst_switch, self.cycle, state);
            self.next_packet_id += 1;
            self.packets_alive += 1;
            self.total_generated += 1;
            if self.measuring {
                self.counters.generated_per_server[server] += 1;
            }
            if let GenerationMode::Batch { .. } = self.generation {
                self.srv_quota[server] -= 1;
            }
            if let Some(tracer) = &mut self.tracer {
                tracer.record(TraceEvent {
                    cycle: self.cycle,
                    packet: id,
                    kind: TraceEventKind::Inject,
                    switch: src_switch as u64,
                    hops: 0,
                    escape_hops: 0,
                });
            }
            let mut pos = self.srv_head[server] as usize + self.srv_len[server] as usize;
            if pos >= self.cap_src {
                pos -= self.cap_src;
            }
            self.srv_q[server * self.cap_src + pos] = packet;
            self.srv_len[server] += 1;
        } else if self.measuring {
            self.counters.generation_blocked += 1;
        }
    }

    /// Injection of `server`'s head packet over its server-to-switch link
    /// (no randomness: every server has a dedicated switch input port).
    fn inject_server(&mut self, server: usize, packet_length: u64) {
        if self.srv_busy[server] > self.cycle || self.srv_len[server] == 0 {
            return;
        }
        let sw = self.layout.server_switch(server);
        let in_port = self.radix + self.layout.server_offset(server);
        let slot = self.slot(sw, in_port, 0);
        if self.in_free(slot) == 0 {
            return;
        }
        let packet = self.srv_q[server * self.cap_src + self.srv_head[server] as usize];
        let next = self.srv_head[server] as usize + 1;
        self.srv_head[server] = if next == self.cap_src { 0 } else { next as u16 };
        self.srv_len[server] -= 1;
        self.pkt.injected_at[packet as usize] = self.cycle;
        self.in_flight[slot] += 1;
        self.port_occ[sw * self.num_ports + in_port] += 1;
        self.srv_busy[server] = self.cycle + packet_length;
        let arrive = self.cycle + packet_length + self.cfg.link_latency;
        self.schedule(
            arrive,
            Ev::Arrival {
                slot: slot as u32,
                packet,
            },
        );
        self.progress_this_cycle = true;
    }

    /// The `Q` term of the paper's allocation rule, in packets: output staging
    /// occupancy plus the consumed credits of every VC of the requested port,
    /// counting the requested VC twice. The all-VC sum is the maintained
    /// `port_occ` counter — O(1) instead of a per-request VC loop.
    fn request_q(&self, switch: usize, out_port: usize, out_vc: usize) -> u64 {
        let flat = switch * self.num_ports + out_port;
        let staging = self.stg_len[flat] as u64;
        match self.out_kind[flat] {
            OutputKind::Network {
                next_switch,
                next_input_port,
            } => {
                let dflat = next_switch * self.num_ports + next_input_port;
                let dslot = dflat * self.num_vcs + out_vc;
                staging
                    + self.port_occ[dflat] as u64
                    + (self.in_len[dslot] + self.in_flight[dslot]) as u64
            }
            OutputKind::Ejection { .. } => staging * 2,
            OutputKind::Dead => u64::MAX / 2,
        }
    }

    /// Fills `out` with the requests of `switch`'s head packets, reusing the
    /// per-VC candidate cache (candidate lists are pure functions of the
    /// head packet's routing state, so a blocked head's list is computed
    /// once, not once per cycle). With `partitions > 1` the cache was
    /// prefilled in parallel; entries stamped `cache_fresh == cycle + 1`
    /// count as the misses the sequential engine would have taken inline,
    /// keeping the hit/miss counters byte-identical for every partition
    /// count.
    fn collect_requests_into(&mut self, switch: usize, out: &mut Vec<Request>) {
        for in_port in 0..self.num_ports {
            for in_vc in 0..self.num_vcs {
                let slot = self.slot(switch, in_port, in_vc);
                if self.in_len[slot] == 0 {
                    continue;
                }
                let head = self.in_front(slot);
                // Ejection: the packet has reached its destination switch.
                if self.pkt.dst_switch[head] as usize == switch {
                    let out_port = self.radix
                        + self
                            .layout
                            .server_offset(self.pkt.dst_server[head] as usize);
                    if (self.stg_len[switch * self.num_ports + out_port] as usize) < self.cap_out {
                        out.push(Request {
                            in_port,
                            in_vc,
                            out_port,
                            out_vc: 0,
                            score: self.request_q(switch, out_port, 0) * self.cfg.packet_length,
                            candidate: None,
                        });
                    }
                    continue;
                }
                let head_id = self.pkt.id[head];
                // Routing: compute (or reuse) the head's candidate list. The
                // cache is keyed by packet id and invalidated whenever the
                // head is popped, and candidate lists are pure functions of
                // (state, switch), so reuse is observably identical to
                // recomputation.
                if self.cache_fresh[slot] == self.cycle + 1 {
                    // Prefilled this cycle: the sequential engine would have
                    // computed it here, so it counts as a miss.
                    debug_assert_eq!(self.cached_for[slot], head_id);
                    self.obs.incr(Counter::CandCacheMisses);
                } else if self.cached_for[slot] == head_id {
                    self.obs.incr(Counter::CandCacheHits);
                } else {
                    self.obs.incr(Counter::CandCacheMisses);
                    self.cached_for[slot] = head_id;
                    let state = self.pkt.state[head];
                    let cache = &mut self.cand_cache[slot];
                    cache.clear();
                    self.mechanism
                        .candidates_into(&state, switch, &mut self.step.route, cache);
                }
                // Single request to the best candidate that satisfies flow
                // control. Candidates are `Copy` and scoring only reads
                // other arrays, so the cache is consumed in place — no
                // copy-out scratch.
                let mut best: Option<Request> = None;
                for ci in 0..self.cand_cache[slot].len() {
                    let cand = self.cand_cache[slot][ci];
                    let flat = switch * self.num_ports + cand.port;
                    let OutputKind::Network {
                        next_switch,
                        next_input_port,
                    } = self.out_kind[flat]
                    else {
                        continue;
                    };
                    if (self.stg_len[flat] as usize) >= self.cap_out {
                        continue;
                    }
                    // Pick the VC of the allowed range with the most free space.
                    let dbase = (next_switch * self.num_ports + next_input_port) * self.num_vcs;
                    let mut chosen: Option<(usize, usize)> = None; // (free, vc)
                    for vc in cand.vcs.iter() {
                        if vc >= self.num_vcs {
                            continue;
                        }
                        let free = self.in_free(dbase + vc);
                        if free > 0 && chosen.is_none_or(|(best_free, _)| free > best_free) {
                            chosen = Some((free, vc));
                        }
                    }
                    let Some((_, vc)) = chosen else {
                        continue;
                    };
                    let score = self.request_q(switch, cand.port, vc) * self.cfg.packet_length
                        + cand.penalty as u64;
                    if best.as_ref().is_none_or(|b| score < b.score) {
                        best = Some(Request {
                            in_port,
                            in_vc,
                            out_port: cand.port,
                            out_vc: vc,
                            score,
                            candidate: Some(cand),
                        });
                    }
                }
                if let Some(req) = best {
                    out.push(req);
                }
            }
        }
    }

    /// Applies the allocation rule to `requests`: random tie-break, then
    /// lowest score first, up to `crossbar_speedup` grants per output and
    /// input port. Always sequential — the RNG draws here are the draw-order
    /// contract — and allocation-free at steady state.
    fn apply_grants(&mut self, switch: usize, requests: &[Request]) {
        if requests.is_empty() {
            return;
        }
        self.obs.add(Counter::AllocRequests, requests.len() as u64);
        // Random tie-break, then lowest score first per output port.
        let mut keyed = std::mem::take(&mut self.step.keyed);
        keyed.clear();
        {
            let rng = &mut self.rng;
            keyed.extend(
                requests
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (r.score, rng.gen::<u32>(), i)),
            );
        }
        keyed.sort_unstable();
        let speedup = self.cfg.crossbar_speedup;
        let mut out_grants = std::mem::take(&mut self.step.out_grants);
        let mut in_grants = std::mem::take(&mut self.step.in_grants);
        out_grants.clear();
        out_grants.resize(self.num_ports, 0);
        in_grants.clear();
        in_grants.resize(self.num_ports, 0);
        let crossbar_time = self.cfg.crossbar_latency
            + self
                .cfg
                .packet_length
                .div_ceil(self.cfg.crossbar_speedup as u64);
        for &(_, _, idx) in &keyed {
            let req = requests[idx];
            let flat_out = switch * self.num_ports + req.out_port;
            if out_grants[req.out_port] >= speedup || in_grants[req.in_port] >= speedup {
                self.obs.incr(Counter::AllocConflicts);
                self.trace_block(switch, &req);
                continue;
            }
            if (self.stg_len[flat_out] as usize) >= self.cap_out {
                self.obs.incr(Counter::AllocConflicts);
                self.trace_block(switch, &req);
                continue;
            }
            // Re-check (and reserve) the downstream slot for network hops.
            if let OutputKind::Network {
                next_switch,
                next_input_port,
            } = self.out_kind[flat_out]
            {
                let dflat = next_switch * self.num_ports + next_input_port;
                let dslot = dflat * self.num_vcs + req.out_vc;
                if self.in_free(dslot) == 0 {
                    self.obs.incr(Counter::AllocConflicts);
                    self.trace_block(switch, &req);
                    continue;
                }
                self.in_flight[dslot] += 1;
                self.port_occ[dflat] += 1;
            }
            // Commit: move the packet from the input VC to the output staging buffer.
            let slot = self.slot(switch, req.in_port, req.in_vc);
            let packet = self.in_pop(slot);
            self.cached_for[slot] = NO_PACKET;
            self.input_occupancy[switch] -= 1;
            self.port_occ[switch * self.num_ports + req.in_port] -= 1;
            if let Some(cand) = &req.candidate {
                if let OutputKind::Network { next_switch, .. } = self.out_kind[flat_out] {
                    let mut state = self.pkt.state[packet];
                    self.mechanism
                        .note_hop(&mut state, switch, next_switch, cand);
                    self.pkt.state[packet] = state;
                    if cand.enters_escape() {
                        self.pkt.escape_hops[packet] += 1;
                        self.obs.incr(Counter::EscapeGrants);
                    }
                }
            }
            self.obs.incr(Counter::AllocGrants);
            if let Some(tracer) = &mut self.tracer {
                tracer.record(TraceEvent {
                    cycle: self.cycle,
                    packet: self.pkt.id[packet],
                    kind: TraceEventKind::Grant,
                    switch: switch as u64,
                    hops: self.pkt.state[packet].hops as u64,
                    escape_hops: self.pkt.escape_hops[packet] as u64,
                });
            }
            let mut pos = self.stg_head[flat_out] as usize + self.stg_len[flat_out] as usize;
            if pos >= self.cap_out {
                pos -= self.cap_out;
            }
            let g = flat_out * self.cap_out + pos;
            self.stg_pkt[g] = packet as u32;
            self.stg_vc[g] = req.out_vc as u16;
            self.stg_ready[g] = self.cycle + crossbar_time;
            self.stg_len[flat_out] += 1;
            self.staged_count[switch] += 1;
            self.xmit_active.insert(switch);
            out_grants[req.out_port] += 1;
            in_grants[req.in_port] += 1;
            self.progress_this_cycle = true;
        }
        self.step.keyed = keyed;
        self.step.out_grants = out_grants;
        self.step.in_grants = in_grants;
    }

    /// Records a `Block` trace event for the head packet behind a denied
    /// request. Pure observation: runs only when a tracer is installed and
    /// reads nothing that feeds back into scheduling.
    fn trace_block(&mut self, switch: usize, req: &Request) {
        if self.tracer.is_none() {
            return;
        }
        let slot = self.slot(switch, req.in_port, req.in_vc);
        if self.in_len[slot] == 0 {
            return;
        }
        let head = self.in_front(slot);
        let event = TraceEvent {
            cycle: self.cycle,
            packet: self.pkt.id[head],
            kind: TraceEventKind::Block,
            switch: switch as u64,
            hops: self.pkt.state[head].hops as u64,
            escape_hops: self.pkt.escape_hops[head] as u64,
        };
        if let Some(tracer) = &mut self.tracer {
            tracer.record(event);
        }
    }

    /// Allocation stage: visits only the switches with buffered input
    /// packets, in ascending switch order (the same order the exhaustive
    /// scan grants in, so the RNG tie-break sequence is identical). With
    /// `partitions > 1` the pure candidate computation runs in parallel
    /// first; the score + grant sweep is always sequential. Switches whose
    /// inputs drained are dropped from the active set.
    fn allocate(&mut self) {
        self.alloc_active.merge_added();
        self.obs.add(
            Counter::AllocSwitchVisits,
            self.alloc_active.list.len() as u64,
        );
        if self.partitions > 1 && !self.alloc_active.list.is_empty() {
            self.prefill_candidates();
        }
        let mut active = std::mem::take(&mut self.alloc_active.list);
        let mut keep = 0;
        for k in 0..active.len() {
            let switch = active[k];
            let mut requests = std::mem::take(&mut self.step.requests);
            requests.clear();
            self.collect_requests_into(switch, &mut requests);
            self.apply_grants(switch, &requests);
            self.step.requests = requests;
            if self.input_occupancy[switch] > 0 {
                active[keep] = switch;
                keep += 1;
            } else {
                self.alloc_active.member[switch] = false;
            }
        }
        active.truncate(keep);
        self.alloc_active.list = active;
    }

    /// Computes the candidate lists of every non-ejection head packet, in
    /// parallel across switch partitions. Sound because heads cannot change
    /// during allocation (a grant pops only the granting switch's own
    /// inputs; arrivals happened earlier in `process_events`) and candidate
    /// lists are pure functions of `(packet state, switch)` — no RNG, no
    /// counters, no scheduling state is touched.
    fn prefill_candidates(&mut self) {
        let slots_per_switch = self.num_ports * self.num_vcs;
        let mut cuts = std::mem::take(&mut self.step.seg);
        cuts.clear();
        for b in 1..=self.partitions {
            cuts.push(
                self.alloc_active
                    .list
                    .partition_point(|&s| s < self.part_bounds[b]),
            );
        }
        let mut tasks: Vec<Mutex<PrefillTask>> = Vec::with_capacity(self.partitions);
        {
            let active = &self.alloc_active.list;
            let mut cached_rest: &mut [u64] = &mut self.cached_for;
            let mut fresh_rest: &mut [u64] = &mut self.cache_fresh;
            let mut cache_rest: &mut [Vec<Candidate>] = &mut self.cand_cache;
            let mut seg_from = 0;
            let mut sw_base = 0;
            for (pi, route) in self.part_routes.iter_mut().enumerate() {
                let sw_end = self.part_bounds[pi + 1];
                let n_slots = (sw_end - sw_base) * slots_per_switch;
                let (cached_for, rest) = cached_rest.split_at_mut(n_slots);
                cached_rest = rest;
                let (cache_fresh, rest) = fresh_rest.split_at_mut(n_slots);
                fresh_rest = rest;
                let (cand_cache, rest) = cache_rest.split_at_mut(n_slots);
                cache_rest = rest;
                tasks.push(Mutex::new(PrefillTask {
                    slot_base: sw_base * slots_per_switch,
                    seg: &active[seg_from..cuts[pi]],
                    cached_for,
                    cache_fresh,
                    cand_cache,
                    route: std::mem::take(route),
                }));
                seg_from = cuts[pi];
                sw_base = sw_end;
            }
            let shared = PrefillShared {
                in_q: &self.in_q,
                in_head: &self.in_head,
                in_len: &self.in_len,
                pkt_id: &self.pkt.id,
                pkt_dst_switch: &self.pkt.dst_switch,
                pkt_state: &self.pkt.state,
                mechanism: self.mechanism.as_ref(),
                cycle: self.cycle,
                cap_in: self.cap_in,
                num_ports: self.num_ports,
                num_vcs: self.num_vcs,
            };
            let body = |t: usize| {
                let mut task = tasks[t].lock().unwrap();
                run_prefill_task(&mut task, &shared);
            };
            self.pool
                .as_ref()
                .expect("partitions > 1 without a pool")
                .run(self.partitions, &body);
        }
        for (pi, cell) in tasks.into_iter().enumerate() {
            self.part_routes[pi] = cell.into_inner().unwrap().route;
        }
        self.step.seg = cuts;
    }

    /// Transmit stage: visits only the switches with staged packets, in
    /// ascending switch order so the event wheel receives arrivals in the
    /// same order a sequential sweep would schedule them. With
    /// `partitions > 1` the sweep runs in parallel with per-partition event
    /// buffers merged in ascending partition order — byte-identical because
    /// every packet transmitted this cycle arrives at the same future cycle.
    fn transmit(&mut self) {
        self.xmit_active.merge_added();
        self.obs.add(
            Counter::XmitSwitchVisits,
            self.xmit_active.list.len() as u64,
        );
        if self.partitions > 1 {
            if !self.xmit_active.list.is_empty() {
                self.transmit_parallel();
            }
            return;
        }
        let mut active = std::mem::take(&mut self.xmit_active.list);
        let mut keep = 0;
        for k in 0..active.len() {
            let switch = active[k];
            self.transmit_switch(switch);
            if self.staged_count[switch] > 0 {
                active[keep] = switch;
                keep += 1;
            } else {
                self.xmit_active.member[switch] = false;
            }
        }
        active.truncate(keep);
        self.xmit_active.list = active;
    }

    /// Puts the ready staged packets of one switch onto their links; the
    /// sequential (`partitions == 1`) transmit body.
    fn transmit_switch(&mut self, switch: usize) {
        let packet_length = self.cfg.packet_length;
        let link_latency = self.cfg.link_latency;
        for port in 0..self.num_ports {
            let flat = switch * self.num_ports + port;
            if self.link_busy[flat] > self.cycle {
                continue;
            }
            if self.stg_len[flat] == 0 {
                continue;
            }
            let head = self.stg_head[flat] as usize;
            let g = flat * self.cap_out + head;
            if self.stg_ready[g] > self.cycle {
                continue;
            }
            let next = head + 1;
            self.stg_head[flat] = if next == self.cap_out { 0 } else { next as u16 };
            self.stg_len[flat] -= 1;
            self.staged_count[switch] -= 1;
            self.link_busy[flat] = self.cycle + packet_length;
            let packet = self.stg_pkt[g];
            let arrive = self.cycle + packet_length + link_latency;
            match self.out_kind[flat] {
                OutputKind::Network {
                    next_switch,
                    next_input_port,
                } => {
                    let dslot = (next_switch * self.num_ports + next_input_port) * self.num_vcs
                        + self.stg_vc[g] as usize;
                    self.schedule(
                        arrive,
                        Ev::Arrival {
                            slot: dslot as u32,
                            packet,
                        },
                    );
                }
                OutputKind::Ejection { .. } => {
                    self.schedule(arrive, Ev::Delivery { packet });
                }
                OutputKind::Dead => unreachable!("dead ports never receive grants"),
            }
            self.progress_this_cycle = true;
        }
    }

    /// The parallel transmit sweep: each partition walks its segment of the
    /// active list against its own slices of the staging/link arrays,
    /// buffering events privately; buffers are then appended to the event
    /// wheel in ascending partition order, which — because every packet
    /// transmitted this cycle arrives at `cycle + packet_length +
    /// link_latency` — reproduces the sequential push order exactly.
    fn transmit_parallel(&mut self) {
        let mut active = std::mem::take(&mut self.xmit_active.list);
        let num_ports = self.num_ports;
        let mut cuts = std::mem::take(&mut self.step.seg);
        cuts.clear();
        for b in 1..=self.partitions {
            cuts.push(active.partition_point(|&s| s < self.part_bounds[b]));
        }
        let mut tasks: Vec<Mutex<XmitTask>> = Vec::with_capacity(self.partitions);
        {
            let mut active_rest: &mut [usize] = &mut active;
            let mut member_rest: &mut [bool] = &mut self.xmit_active.member;
            let mut head_rest: &mut [u16] = &mut self.stg_head;
            let mut len_rest: &mut [u16] = &mut self.stg_len;
            let mut busy_rest: &mut [u64] = &mut self.link_busy;
            let mut count_rest: &mut [u32] = &mut self.staged_count;
            let mut seg_from = 0;
            let mut sw_base = 0;
            for (pi, events) in self.part_events.iter_mut().enumerate() {
                let sw_end = self.part_bounds[pi + 1];
                let n_sw = sw_end - sw_base;
                let (seg, rest) = active_rest.split_at_mut(cuts[pi] - seg_from);
                active_rest = rest;
                seg_from = cuts[pi];
                let (member, rest) = member_rest.split_at_mut(n_sw);
                member_rest = rest;
                let (stg_head, rest) = head_rest.split_at_mut(n_sw * num_ports);
                head_rest = rest;
                let (stg_len, rest) = len_rest.split_at_mut(n_sw * num_ports);
                len_rest = rest;
                let (link_busy, rest) = busy_rest.split_at_mut(n_sw * num_ports);
                busy_rest = rest;
                let (staged_count, rest) = count_rest.split_at_mut(n_sw);
                count_rest = rest;
                tasks.push(Mutex::new(XmitTask {
                    sw_base,
                    port_base: sw_base * num_ports,
                    seg,
                    kept: 0,
                    member,
                    stg_head,
                    stg_len,
                    link_busy,
                    staged_count,
                    events: std::mem::take(events),
                    progress: false,
                }));
                sw_base = sw_end;
            }
            let shared = XmitShared {
                stg_pkt: &self.stg_pkt,
                stg_vc: &self.stg_vc,
                stg_ready: &self.stg_ready,
                out_kind: &self.out_kind,
                cycle: self.cycle,
                packet_length: self.cfg.packet_length,
                cap_out: self.cap_out,
                num_ports,
                num_vcs: self.num_vcs,
            };
            let body = |t: usize| {
                let mut task = tasks[t].lock().unwrap();
                run_xmit_task(&mut task, &shared);
            };
            self.pool
                .as_ref()
                .expect("partitions > 1 without a pool")
                .run(self.partitions, &body);
        }
        // Merge in fixed partition order: events first (all share one wheel
        // slot), then the retained-switch segments back into one sorted list.
        let mut kept = std::mem::take(&mut self.step.sampled); // reuse as usize scratch
        kept.clear();
        for (pi, cell) in tasks.into_iter().enumerate() {
            let task = cell.into_inner().unwrap();
            self.progress_this_cycle |= task.progress;
            kept.push(task.kept);
            self.part_events[pi] = task.events;
        }
        let arrive = self.cycle + self.cfg.packet_length + self.cfg.link_latency;
        debug_assert!(arrive - self.cycle < self.wheel.len() as u64);
        let wheel_slot = self.wheel_slot(arrive);
        for pi in 0..self.partitions {
            let events = &mut self.part_events[pi];
            self.wheel[wheel_slot].extend(events.drain(..));
        }
        let mut w = 0;
        for pi in 0..self.partitions {
            let seg_from = if pi == 0 { 0 } else { cuts[pi - 1] };
            for i in 0..kept[pi] {
                active[w] = active[seg_from + i];
                w += 1;
            }
        }
        active.truncate(w);
        self.xmit_active.list = active;
        kept.clear();
        self.step.sampled = kept;
        self.step.seg = cuts;
    }
}

/// The per-partition transmit body (see [`Simulator::transmit_parallel`]).
/// All indices into `task` slices are offset by the partition's base; reads
/// of the staging payload arrays use global flat indices.
fn run_xmit_task(task: &mut XmitTask, shared: &XmitShared) {
    let mut kept = 0;
    for k in 0..task.seg.len() {
        let switch = task.seg[k];
        for port in 0..shared.num_ports {
            let flat = switch * shared.num_ports + port;
            let lf = flat - task.port_base;
            if task.link_busy[lf] > shared.cycle {
                continue;
            }
            if task.stg_len[lf] == 0 {
                continue;
            }
            let head = task.stg_head[lf] as usize;
            let g = flat * shared.cap_out + head;
            if shared.stg_ready[g] > shared.cycle {
                continue;
            }
            let next = head + 1;
            task.stg_head[lf] = if next == shared.cap_out {
                0
            } else {
                next as u16
            };
            task.stg_len[lf] -= 1;
            task.staged_count[switch - task.sw_base] -= 1;
            task.link_busy[lf] = shared.cycle + shared.packet_length;
            let packet = shared.stg_pkt[g];
            match shared.out_kind[flat] {
                OutputKind::Network {
                    next_switch,
                    next_input_port,
                } => {
                    let dslot = (next_switch * shared.num_ports + next_input_port) * shared.num_vcs
                        + shared.stg_vc[g] as usize;
                    task.events.push(Ev::Arrival {
                        slot: dslot as u32,
                        packet,
                    });
                }
                OutputKind::Ejection { .. } => task.events.push(Ev::Delivery { packet }),
                OutputKind::Dead => unreachable!("dead ports never receive grants"),
            }
            task.progress = true;
        }
        if task.staged_count[switch - task.sw_base] > 0 {
            task.seg[kept] = switch;
            kept += 1;
        } else {
            task.member[switch - task.sw_base] = false;
        }
    }
    task.kept = kept;
}

/// The per-partition candidate-prefill body (see
/// [`Simulator::prefill_candidates`]). Computes only — the hit/miss
/// accounting happens in the sequential sweep via the `cache_fresh` stamp.
fn run_prefill_task(task: &mut PrefillTask, shared: &PrefillShared) {
    for &switch in task.seg {
        for port in 0..shared.num_ports {
            for vc in 0..shared.num_vcs {
                let slot = (switch * shared.num_ports + port) * shared.num_vcs + vc;
                if shared.in_len[slot] == 0 {
                    continue;
                }
                let head =
                    shared.in_q[slot * shared.cap_in + shared.in_head[slot] as usize] as usize;
                // Ejection heads never consult the candidate cache.
                if shared.pkt_dst_switch[head] as usize == switch {
                    continue;
                }
                let id = shared.pkt_id[head];
                let ls = slot - task.slot_base;
                if task.cached_for[ls] != id {
                    task.cached_for[ls] = id;
                    let cache = &mut task.cand_cache[ls];
                    cache.clear();
                    shared.mechanism.candidates_into(
                        &shared.pkt_state[head],
                        switch,
                        &mut task.route,
                        cache,
                    );
                    // Stamp: the sequential sweep counts this as the miss a
                    // sequential engine would have taken at this head.
                    task.cache_fresh[ls] = shared.cycle + 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests;
