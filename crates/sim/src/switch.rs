//! Per-switch simulation state: input virtual channels, output staging
//! buffers and the bookkeeping needed by credit-based virtual cut-through.

use crate::packet::{Packet, PacketId};
use hyperx_routing::Candidate;
use std::collections::VecDeque;

/// One input virtual-channel FIFO.
#[derive(Debug, Default)]
pub struct InputVc {
    /// Packets buffered in this VC, head first.
    pub queue: VecDeque<Packet>,
    /// Packets committed towards this VC (granted upstream or in flight on the
    /// link) that have not arrived yet. Together with `queue.len()` this is the
    /// "consumed credits" the upstream switch sees.
    pub inflight: usize,
    /// Packet id the cached candidate list belongs to.
    pub cached_for: Option<PacketId>,
    /// Candidate list of the current head packet (computed once per head).
    pub cached_candidates: Vec<Candidate>,
}

impl InputVc {
    /// Free packet slots, as seen by the upstream switch through its credits.
    pub fn free_slots(&self, capacity: usize) -> usize {
        capacity.saturating_sub(self.queue.len() + self.inflight)
    }

    /// Occupancy (buffered + committed), the "consumed credits" of the paper's Q computation.
    pub fn occupancy(&self) -> usize {
        self.queue.len() + self.inflight
    }

    /// Drops the cached candidates (the head changed).
    pub fn invalidate_cache(&mut self) {
        self.cached_for = None;
        self.cached_candidates.clear();
    }
}

/// Where an output port leads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputKind {
    /// A switch-to-switch link; arrivals land at `(next_switch, next_input_port)`.
    Network {
        /// Downstream switch.
        next_switch: usize,
        /// Input port at the downstream switch.
        next_input_port: usize,
    },
    /// An ejection link towards a locally attached server.
    Ejection {
        /// Destination server id.
        server: usize,
    },
    /// A dead port (the healthy link failed). Never carries traffic.
    Dead,
}

/// A packet sitting in an output staging buffer, waiting for the link.
#[derive(Debug)]
pub struct StagedPacket {
    /// The packet itself.
    pub packet: Packet,
    /// VC it will occupy at the downstream input (ignored for ejection).
    pub dst_vc: usize,
    /// Cycle at which the crossbar transfer completes and the packet may start
    /// on the link.
    pub ready_at: u64,
}

/// One output port: staging buffer plus link state.
#[derive(Debug)]
pub struct OutputPort {
    /// Where the port leads.
    pub kind: OutputKind,
    /// Packets transferred through the crossbar, waiting for the link.
    pub staging: VecDeque<StagedPacket>,
    /// The link is serializing a packet until this cycle.
    pub link_busy_until: u64,
}

impl OutputPort {
    /// Creates an idle output port.
    pub fn new(kind: OutputKind) -> Self {
        OutputPort {
            kind,
            staging: VecDeque::new(),
            link_busy_until: 0,
        }
    }

    /// Whether another packet fits in the staging buffer given `extra` already
    /// granted this cycle.
    pub fn staging_has_room(&self, capacity: usize, extra: usize) -> bool {
        self.staging.len() + extra < capacity
    }
}

/// The full state of one switch.
#[derive(Debug)]
pub struct SwitchState {
    /// Input ports × VCs. Ports `0..radix` come from neighbour switches (the
    /// topology's port numbering); ports `radix..radix+concentration` are the
    /// injection ports of the attached servers. Every port has `num_vcs` VCs,
    /// but injection ports only ever use VC 0.
    pub inputs: Vec<Vec<InputVc>>,
    /// Output ports, same indexing as inputs (network then ejection).
    pub outputs: Vec<OutputPort>,
}

impl SwitchState {
    /// Builds an empty switch with the given port structure.
    pub fn new(num_ports: usize, num_vcs: usize, output_kinds: Vec<OutputKind>) -> Self {
        assert_eq!(output_kinds.len(), num_ports);
        SwitchState {
            inputs: (0..num_ports)
                .map(|_| (0..num_vcs).map(|_| InputVc::default()).collect())
                .collect(),
            outputs: output_kinds.into_iter().map(OutputPort::new).collect(),
        }
    }

    /// Total packets buffered in the switch (inputs + staging).
    pub fn buffered_packets(&self) -> usize {
        let inputs: usize = self
            .inputs
            .iter()
            .flat_map(|p| p.iter())
            .map(|vc| vc.queue.len())
            .sum();
        let staged: usize = self.outputs.iter().map(|o| o.staging.len()).sum();
        inputs + staged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_routing::PacketState;

    fn dummy_packet(id: u64) -> Packet {
        Packet::new(id, 0, 1, 0, 0, PacketState::new(0, 0))
    }

    #[test]
    fn input_vc_accounting() {
        let mut vc = InputVc::default();
        assert_eq!(vc.free_slots(8), 8);
        vc.queue.push_back(dummy_packet(1));
        vc.inflight = 2;
        assert_eq!(vc.free_slots(8), 5);
        assert_eq!(vc.occupancy(), 3);
        vc.inflight = 10;
        assert_eq!(vc.free_slots(8), 0, "free slots saturate at zero");
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn cache_invalidation_clears_state() {
        let mut vc = InputVc::default();
        vc.cached_for = Some(3);
        vc.invalidate_cache();
        assert_eq!(vc.cached_for, None);
        assert!(vc.cached_candidates.is_empty());
    }

    #[test]
    fn output_staging_room() {
        let mut port = OutputPort::new(OutputKind::Ejection { server: 0 });
        assert!(port.staging_has_room(4, 0));
        for i in 0..4 {
            port.staging.push_back(StagedPacket {
                packet: dummy_packet(i),
                dst_vc: 0,
                ready_at: 0,
            });
        }
        assert!(!port.staging_has_room(4, 0));
        assert!(!port.staging_has_room(5, 1));
        assert!(port.staging_has_room(6, 1));
    }

    #[test]
    fn switch_counts_buffered_packets() {
        let kinds = vec![
            OutputKind::Network {
                next_switch: 1,
                next_input_port: 0,
            },
            OutputKind::Ejection { server: 0 },
        ];
        let mut sw = SwitchState::new(2, 2, kinds);
        assert_eq!(sw.buffered_packets(), 0);
        sw.inputs[0][1].queue.push_back(dummy_packet(1));
        sw.outputs[1].staging.push_back(StagedPacket {
            packet: dummy_packet(2),
            dst_vc: 0,
            ready_at: 5,
        });
        assert_eq!(sw.buffered_packets(), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_output_kinds_rejected() {
        let _ = SwitchState::new(3, 2, vec![OutputKind::Dead]);
    }
}
