//! Performance metrics: accepted throughput, message latency, Jain fairness.

use serde::{Deserialize, Serialize};

/// Jain's fairness index over a set of per-server loads:
/// `(Σ xᵢ)² / (n · Σ xᵢ²)`. A value of 1.0 means perfect equity; the paper
/// treats values below 0.98 as signalling unfairness.
pub fn jain_index(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let sum: f64 = loads.iter().sum();
    let sq_sum: f64 = loads.iter().map(|x| x * x).sum();
    if sq_sum == 0.0 {
        // Every server generated nothing: trivially fair.
        return 1.0;
    }
    (sum * sum) / (loads.len() as f64 * sq_sum)
}

/// Counters accumulated during the measurement window of a simulation.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MeasuredCounters {
    /// Cycles measured.
    pub cycles: u64,
    /// Packets generated (accepted into a source queue) during measurement, per server.
    pub generated_per_server: Vec<u64>,
    /// Packets whose generation attempt was dropped because the source queue was full.
    pub generation_blocked: u64,
    /// Packets delivered to their destination server during measurement.
    pub delivered_packets: u64,
    /// Phits delivered during measurement.
    pub delivered_phits: u64,
    /// Sum of end-to-end latencies (creation → delivery) of delivered packets.
    pub latency_sum: u64,
    /// Largest observed latency.
    pub latency_max: u64,
    /// Delivered packets that used at least one escape hop.
    pub delivered_via_escape: u64,
    /// Total switch-to-switch hops of delivered packets.
    pub hop_sum: u64,
    /// Total escape hops of delivered packets.
    pub escape_hop_sum: u64,
}

impl MeasuredCounters {
    /// Creates zeroed counters for `servers` servers.
    pub fn new(servers: usize) -> Self {
        MeasuredCounters {
            generated_per_server: vec![0; servers],
            ..Default::default()
        }
    }
}

/// The headline metrics of a rate-mode (open-loop) simulation, one point of a
/// throughput/latency curve in Figures 4–6, 8 and 9.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RateMetrics {
    /// Offered load in phits/cycle/server (the x axis of Figures 4 and 5).
    pub offered_load: f64,
    /// Accepted load in phits/cycle/server (delivered phits normalised by servers × cycles).
    pub accepted_load: f64,
    /// Generated load in phits/cycle/server (what the sources actually injected).
    pub generated_load: f64,
    /// Average end-to-end message latency in cycles.
    pub average_latency: f64,
    /// Maximum observed latency in cycles.
    pub max_latency: u64,
    /// Jain fairness index of the per-server generated load.
    pub jain_generated: f64,
    /// Fraction of delivered packets that used the escape subnetwork.
    pub escape_fraction: f64,
    /// Average switch-to-switch hops per delivered packet.
    pub average_hops: f64,
    /// Packets delivered during the measurement window.
    pub delivered_packets: u64,
    /// Packets still in flight (source queues + network) at the end of measurement.
    pub in_flight_at_end: u64,
    /// Whether the stall watchdog fired (deadlock or undeliverable packets).
    pub stalled: bool,
}

impl RateMetrics {
    /// Derives the metrics from raw counters.
    pub fn from_counters(
        offered_load: f64,
        packet_length: u64,
        servers: usize,
        counters: &MeasuredCounters,
        in_flight_at_end: u64,
        stalled: bool,
    ) -> Self {
        let cycles = counters.cycles.max(1) as f64;
        let servers_f = servers.max(1) as f64;
        let accepted_load = counters.delivered_phits as f64 / (cycles * servers_f);
        let generated_phits: u64 = counters
            .generated_per_server
            .iter()
            .map(|&p| p * packet_length)
            .sum();
        let generated_load = generated_phits as f64 / (cycles * servers_f);
        let per_server_loads: Vec<f64> = counters
            .generated_per_server
            .iter()
            .map(|&p| p as f64 * packet_length as f64 / cycles)
            .collect();
        let average_latency = if counters.delivered_packets > 0 {
            counters.latency_sum as f64 / counters.delivered_packets as f64
        } else {
            0.0
        };
        let escape_fraction = if counters.delivered_packets > 0 {
            counters.delivered_via_escape as f64 / counters.delivered_packets as f64
        } else {
            0.0
        };
        let average_hops = if counters.delivered_packets > 0 {
            counters.hop_sum as f64 / counters.delivered_packets as f64
        } else {
            0.0
        };
        RateMetrics {
            offered_load,
            accepted_load,
            generated_load,
            average_latency,
            max_latency: counters.latency_max,
            jain_generated: jain_index(&per_server_loads),
            escape_fraction,
            average_hops,
            delivered_packets: counters.delivered_packets,
            in_flight_at_end,
            stalled,
        }
    }
}

/// One sample of the completion-time experiment (Figure 10): the accepted load
/// measured over a window ending at `cycle`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ThroughputSample {
    /// End cycle of the sampling window.
    pub cycle: u64,
    /// Accepted load in phits/cycle/server over the window.
    pub accepted_load: f64,
}

/// Results of a batch-mode (closed-loop) simulation: every server sends a
/// fixed amount of traffic and the simulation runs until everything is delivered.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchMetrics {
    /// Cycle at which the last packet was delivered.
    pub completion_time: u64,
    /// Total packets delivered.
    pub delivered_packets: u64,
    /// Accepted-load curve over time (Figure 10's series).
    pub samples: Vec<ThroughputSample>,
    /// Average end-to-end latency over all packets.
    pub average_latency: f64,
    /// Whether the stall watchdog fired before completion.
    pub stalled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_of_equal_loads_is_one() {
        assert!((jain_index(&[0.5; 16]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_index_detects_unfairness() {
        // One busy server among four idle ones: index = 1/5.
        let loads = [1.0, 0.0, 0.0, 0.0, 0.0];
        assert!((jain_index(&loads) - 0.2).abs() < 1e-12);
        // Mild unfairness stays close to 1.
        let mild = [1.0, 0.9, 1.0, 1.1];
        assert!(jain_index(&mild) > 0.99);
    }

    #[test]
    fn jain_index_is_scale_invariant() {
        let a = [0.2, 0.4, 0.6];
        let b = [2.0, 4.0, 6.0];
        assert!((jain_index(&a) - jain_index(&b)).abs() < 1e-12);
    }

    #[test]
    fn rate_metrics_normalisation() {
        let mut c = MeasuredCounters::new(4);
        c.cycles = 100;
        c.delivered_packets = 10;
        c.delivered_phits = 160;
        c.latency_sum = 500;
        c.latency_max = 90;
        c.generated_per_server = vec![3, 3, 3, 3];
        c.hop_sum = 20;
        let m = RateMetrics::from_counters(0.5, 16, 4, &c, 2, false);
        // 160 phits over 100 cycles and 4 servers = 0.4 phits/cycle/server.
        assert!((m.accepted_load - 0.4).abs() < 1e-12);
        assert!((m.generated_load - 0.48).abs() < 1e-12);
        assert!((m.average_latency - 50.0).abs() < 1e-12);
        assert_eq!(m.max_latency, 90);
        assert!((m.jain_generated - 1.0).abs() < 1e-12);
        assert!((m.average_hops - 2.0).abs() < 1e-12);
        assert_eq!(m.in_flight_at_end, 2);
        assert!(!m.stalled);
    }

    #[test]
    fn rate_metrics_with_no_deliveries() {
        let c = MeasuredCounters::new(2);
        let m = RateMetrics::from_counters(0.1, 16, 2, &c, 0, true);
        assert_eq!(m.accepted_load, 0.0);
        assert_eq!(m.average_latency, 0.0);
        assert_eq!(m.escape_fraction, 0.0);
        assert!(m.stalled);
    }
}
