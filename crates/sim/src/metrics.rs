//! Performance metrics: accepted throughput, message latency (mean and
//! log-bucketed percentiles), Jain fairness.

use serde::{Deserialize, Error, Number, Serialize, Value};

/// Jain's fairness index over a set of per-server loads:
/// `(Σ xᵢ)² / (n · Σ xᵢ²)`. A value of 1.0 means perfect equity; the paper
/// treats values below 0.98 as signalling unfairness.
pub fn jain_index(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let sum: f64 = loads.iter().sum();
    let sq_sum: f64 = loads.iter().map(|x| x * x).sum();
    if sq_sum == 0.0 {
        // Every server generated nothing: trivially fair.
        return 1.0;
    }
    (sum * sum) / (loads.len() as f64 * sq_sum)
}

/// Version tag embedded in every serialized histogram (`"v"` field). Readers
/// reject tags they do not understand instead of silently misdecoding.
pub const HISTOGRAM_FORMAT_VERSION: u64 = 1;

/// Log₂ of the number of linear sub-buckets per power-of-two range.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two range (16 → ≤ 6.25% relative error).
const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// A fixed-size, log-bucketed latency histogram (HdrHistogram-style).
///
/// Values 0..16 get exact unit buckets; beyond that, each power-of-two range
/// `[2ᵏ, 2ᵏ⁺¹)` is split into 16 linear sub-buckets, bounding relative
/// quantile error at 1/16. The full `u64` domain fits in 976 buckets, so the
/// structure is a flat array: recording is two integer increments with zero
/// allocation, safe for the engine hot path.
///
/// Merging is exact per-bucket count addition, which makes it associative and
/// commutative: folding per-replica or per-worker histograms in any order
/// yields the same counts, so quantiles of a merged histogram equal quantiles
/// of a single run over the union of samples. This is what lets `--report`
/// merge replica groups *before* quantiling (never averaging percentiles) and
/// lets the distributed fold stay byte-identical to a local run.
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; Self::NUM_BUCKETS],
    total: u64,
}

impl LatencyHistogram {
    /// Number of buckets covering the full `u64` value domain.
    pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB_BUCKETS + SUB_BUCKETS;

    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; Self::NUM_BUCKETS],
            total: 0,
        }
    }

    /// The bucket index of `value`. Monotone: `a <= b` implies
    /// `bucket_index(a) <= bucket_index(b)`.
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        (msb - SUB_BITS + 1) as usize * SUB_BUCKETS + sub
    }

    /// The largest value that maps to bucket `index` (quantiles report this
    /// upper bound, a conservative estimate within 1/16 of the true value).
    fn bucket_high(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let major = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        let shift = (major - 1) as u32;
        ((SUB_BUCKETS as u64 + sub) << shift) | ((1u64 << shift) - 1)
    }

    /// Records one observation. O(1), no allocation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Adds every count of `other` into `self` (exact count addition).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// The upper bound of the bucket holding the observation at quantile `q`
    /// (nearest-rank), or `None` if the histogram is empty. Monotone in `q`;
    /// `q` is clamped to `[0, 1]`.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(Self::bucket_high(index));
            }
        }
        None
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The flat array is mostly zeros; print only occupied buckets.
        let mut map = f.debug_map();
        for (index, &count) in self.counts.iter().enumerate() {
            if count > 0 {
                map.entry(&Self::bucket_high(index), &count);
            }
        }
        map.finish()
    }
}

/// Compact sparse encoding: `{"v":1,"b":[[index,count],...]}` with occupied
/// buckets in ascending index order. Ascending order makes the bytes a
/// function of the counts alone, so serialize∘deserialize∘serialize is the
/// identity on bytes and merged stores re-serialize deterministically.
impl Serialize for LatencyHistogram {
    fn serialize(&self) -> Value {
        let buckets: Vec<Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| {
                Value::Array(vec![
                    Value::Number(Number::UInt(index as u64)),
                    Value::Number(Number::UInt(count)),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "v".to_string(),
                Value::Number(Number::UInt(HISTOGRAM_FORMAT_VERSION)),
            ),
            ("b".to_string(), Value::Array(buckets)),
        ])
    }
}

impl Deserialize for LatencyHistogram {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let version = value
            .get("v")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::missing_field("v"))?;
        if version != HISTOGRAM_FORMAT_VERSION {
            return Err(Error::custom(format!(
                "unsupported latency histogram version {version} (this build reads \
                 version {HISTOGRAM_FORMAT_VERSION})"
            )));
        }
        let Some(Value::Array(buckets)) = value.get("b") else {
            return Err(Error::missing_field("b"));
        };
        let mut hist = LatencyHistogram::new();
        for entry in buckets {
            let Value::Array(pair) = entry else {
                return Err(Error::type_mismatch("[index, count] pair", entry));
            };
            let (index, count) = match pair.as_slice() {
                [index, count] => (
                    index
                        .as_u64()
                        .ok_or_else(|| Error::type_mismatch("bucket index", index))?,
                    count
                        .as_u64()
                        .ok_or_else(|| Error::type_mismatch("bucket count", count))?,
                ),
                _ => return Err(Error::custom("histogram bucket entry is not a pair")),
            };
            if index as usize >= Self::NUM_BUCKETS {
                return Err(Error::custom(format!(
                    "histogram bucket index {index} out of range"
                )));
            }
            hist.counts[index as usize] += count;
            hist.total += count;
        }
        Ok(hist)
    }
}

/// Counters accumulated during the measurement window of a simulation.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MeasuredCounters {
    /// Cycles measured.
    pub cycles: u64,
    /// Packets generated (accepted into a source queue) during measurement, per server.
    pub generated_per_server: Vec<u64>,
    /// Packets whose generation attempt was dropped because the source queue was full.
    pub generation_blocked: u64,
    /// Packets delivered to their destination server during measurement.
    pub delivered_packets: u64,
    /// Phits delivered during measurement.
    pub delivered_phits: u64,
    /// Sum of end-to-end latencies (creation → delivery) of delivered packets.
    pub latency_sum: u64,
    /// Largest observed latency.
    pub latency_max: u64,
    /// Delivered packets that used at least one escape hop.
    pub delivered_via_escape: u64,
    /// Total switch-to-switch hops of delivered packets.
    pub hop_sum: u64,
    /// Total escape hops of delivered packets.
    pub escape_hop_sum: u64,
    /// Log-bucketed end-to-end latency histogram of delivered packets.
    pub latency_hist: LatencyHistogram,
}

impl MeasuredCounters {
    /// Creates zeroed counters for `servers` servers.
    pub fn new(servers: usize) -> Self {
        MeasuredCounters {
            generated_per_server: vec![0; servers],
            ..Default::default()
        }
    }
}

/// The headline metrics of a rate-mode (open-loop) simulation, one point of a
/// throughput/latency curve in Figures 4–6, 8 and 9.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RateMetrics {
    /// Offered load in phits/cycle/server (the x axis of Figures 4 and 5).
    pub offered_load: f64,
    /// Accepted load in phits/cycle/server (delivered phits normalised by servers × cycles).
    pub accepted_load: f64,
    /// Generated load in phits/cycle/server (what the sources actually injected).
    pub generated_load: f64,
    /// Average end-to-end message latency in cycles.
    pub average_latency: f64,
    /// Maximum observed latency in cycles; `None` when nothing was delivered
    /// (a bare 0 would read as a perfect latency).
    pub max_latency: Option<u64>,
    /// Jain fairness index of the per-server generated load.
    pub jain_generated: f64,
    /// Fraction of delivered packets that used the escape subnetwork.
    pub escape_fraction: f64,
    /// Average switch-to-switch hops per delivered packet.
    pub average_hops: f64,
    /// Packets delivered during the measurement window.
    pub delivered_packets: u64,
    /// Packets still in flight (source queues + network) at the end of measurement.
    pub in_flight_at_end: u64,
    /// Whether the stall watchdog fired (deadlock or undeliverable packets).
    pub stalled: bool,
    /// Latency histogram of delivered packets. `None` only for results loaded
    /// from stores written before histograms existed; new runs always record.
    pub latency_hist: Option<LatencyHistogram>,
}

impl RateMetrics {
    /// Derives the metrics from raw counters.
    ///
    /// Takes the counters by `&mut` so the latency histogram (976 buckets)
    /// moves into the result instead of being cloned — the counters are
    /// rebuilt by the next measurement window anyway. The Jain index streams
    /// over `generated_per_server` with the same per-element expression and
    /// accumulation order as [`jain_index`] over a materialised load vector,
    /// so the f64 results (and therefore metrics bytes) are unchanged.
    pub fn from_counters(
        offered_load: f64,
        packet_length: u64,
        servers: usize,
        counters: &mut MeasuredCounters,
        in_flight_at_end: u64,
        stalled: bool,
    ) -> Self {
        let cycles = counters.cycles.max(1) as f64;
        let servers_f = servers.max(1) as f64;
        let accepted_load = counters.delivered_phits as f64 / (cycles * servers_f);
        let mut generated_phits = 0u64;
        let mut load_sum = 0.0f64;
        let mut load_sq_sum = 0.0f64;
        for &p in &counters.generated_per_server {
            generated_phits += p * packet_length;
            let x = p as f64 * packet_length as f64 / cycles;
            load_sum += x;
            load_sq_sum += x * x;
        }
        let generated_load = generated_phits as f64 / (cycles * servers_f);
        let jain_generated = if counters.generated_per_server.is_empty() || load_sq_sum == 0.0 {
            1.0
        } else {
            (load_sum * load_sum) / (counters.generated_per_server.len() as f64 * load_sq_sum)
        };
        let average_latency = if counters.delivered_packets > 0 {
            counters.latency_sum as f64 / counters.delivered_packets as f64
        } else {
            0.0
        };
        let escape_fraction = if counters.delivered_packets > 0 {
            counters.delivered_via_escape as f64 / counters.delivered_packets as f64
        } else {
            0.0
        };
        let average_hops = if counters.delivered_packets > 0 {
            counters.hop_sum as f64 / counters.delivered_packets as f64
        } else {
            0.0
        };
        RateMetrics {
            offered_load,
            accepted_load,
            generated_load,
            average_latency,
            max_latency: (counters.delivered_packets > 0).then_some(counters.latency_max),
            jain_generated,
            escape_fraction,
            average_hops,
            delivered_packets: counters.delivered_packets,
            in_flight_at_end,
            stalled,
            latency_hist: Some(std::mem::take(&mut counters.latency_hist)),
        }
    }
}

/// One sample of the completion-time experiment (Figure 10): the accepted load
/// measured over a window ending at `cycle`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ThroughputSample {
    /// End cycle of the sampling window.
    pub cycle: u64,
    /// Accepted load in phits/cycle/server over the window.
    pub accepted_load: f64,
}

/// Results of a batch-mode (closed-loop) simulation: every server sends a
/// fixed amount of traffic and the simulation runs until everything is delivered.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchMetrics {
    /// Cycle at which the last packet was delivered.
    pub completion_time: u64,
    /// Total packets delivered.
    pub delivered_packets: u64,
    /// Accepted-load curve over time (Figure 10's series).
    pub samples: Vec<ThroughputSample>,
    /// Average end-to-end latency over all packets.
    pub average_latency: f64,
    /// Whether the stall watchdog fired before completion.
    pub stalled: bool,
    /// Latency histogram over all delivered packets. `None` only for results
    /// loaded from stores written before histograms existed.
    pub latency_hist: Option<LatencyHistogram>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_of_equal_loads_is_one() {
        assert!((jain_index(&[0.5; 16]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_index_detects_unfairness() {
        // One busy server among four idle ones: index = 1/5.
        let loads = [1.0, 0.0, 0.0, 0.0, 0.0];
        assert!((jain_index(&loads) - 0.2).abs() < 1e-12);
        // Mild unfairness stays close to 1.
        let mild = [1.0, 0.9, 1.0, 1.1];
        assert!(jain_index(&mild) > 0.99);
    }

    #[test]
    fn jain_index_is_scale_invariant() {
        let a = [0.2, 0.4, 0.6];
        let b = [2.0, 4.0, 6.0];
        assert!((jain_index(&a) - jain_index(&b)).abs() < 1e-12);
    }

    #[test]
    fn rate_metrics_normalisation() {
        let mut c = MeasuredCounters::new(4);
        c.cycles = 100;
        c.delivered_packets = 10;
        c.delivered_phits = 160;
        c.latency_sum = 500;
        c.latency_max = 90;
        c.generated_per_server = vec![3, 3, 3, 3];
        c.hop_sum = 20;
        let m = RateMetrics::from_counters(0.5, 16, 4, &mut c, 2, false);
        // 160 phits over 100 cycles and 4 servers = 0.4 phits/cycle/server.
        assert!((m.accepted_load - 0.4).abs() < 1e-12);
        assert!((m.generated_load - 0.48).abs() < 1e-12);
        assert!((m.average_latency - 50.0).abs() < 1e-12);
        assert_eq!(m.max_latency, Some(90));
        assert!((m.jain_generated - 1.0).abs() < 1e-12);
        assert!((m.average_hops - 2.0).abs() < 1e-12);
        assert_eq!(m.in_flight_at_end, 2);
        assert!(!m.stalled);
    }

    #[test]
    fn streamed_jain_matches_jain_index_bytes() {
        // `from_counters` streams the Jain computation instead of
        // materialising the per-server load vector; the f64 result must be
        // bit-identical to `jain_index` over that vector.
        let mut c = MeasuredCounters::new(5);
        c.cycles = 97;
        c.generated_per_server = vec![13, 0, 7, 29, 13];
        let loads: Vec<f64> = c
            .generated_per_server
            .iter()
            .map(|&p| p as f64 * 16.0 / 97.0)
            .collect();
        let expected = jain_index(&loads);
        let m = RateMetrics::from_counters(0.5, 16, 5, &mut c, 0, false);
        assert_eq!(m.jain_generated.to_bits(), expected.to_bits());
    }

    #[test]
    fn rate_metrics_with_no_deliveries() {
        let mut c = MeasuredCounters::new(2);
        let m = RateMetrics::from_counters(0.1, 16, 2, &mut c, 0, true);
        assert_eq!(m.accepted_load, 0.0);
        assert_eq!(m.average_latency, 0.0);
        assert_eq!(m.escape_fraction, 0.0);
        // No deliveries: the maximum is absent, not a misleading zero.
        assert_eq!(m.max_latency, None);
        assert!(m.latency_hist.unwrap().is_empty());
        assert!(m.stalled);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_exhaustive() {
        let mut samples: Vec<u64> = (0..64)
            .map(|s| 1u64 << s)
            .flat_map(|p| [p - 1, p, p.saturating_add(1), p.saturating_add(p / 3)])
            .collect();
        samples.sort_unstable();
        let mut prev = 0;
        for value in samples {
            let index = LatencyHistogram::bucket_index(value);
            assert!(index < LatencyHistogram::NUM_BUCKETS);
            assert!(index >= prev, "bucket index not monotone at {value}");
            assert!(LatencyHistogram::bucket_high(index) >= value);
            prev = index;
        }
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), 975);
        assert_eq!(LatencyHistogram::bucket_high(975), u64::MAX);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16 {
            h.record(v);
        }
        for (q, expect) in [(0.0, 0), (0.5, 7), (1.0, 15)] {
            assert_eq!(h.value_at_quantile(q), Some(expect));
        }
    }

    #[test]
    fn histogram_quantile_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 1_000, 10_000, 1_000_000] {
            h.record(v);
        }
        // Each reported quantile is the bucket's upper bound: ≥ the true
        // value and within 1/16 relative error.
        for (q, truth) in [(0.25, 100.0), (0.5, 1_000.0), (0.75, 10_000.0)] {
            let got = h.value_at_quantile(q).unwrap() as f64;
            assert!(
                got >= truth && got <= truth * (1.0 + 1.0 / 16.0),
                "{q} {got}"
            );
        }
        assert_eq!(h.value_at_quantile(0.0), h.value_at_quantile(0.25));
        assert!(LatencyHistogram::new().value_at_quantile(0.5).is_none());
    }

    #[test]
    fn histogram_merge_is_count_addition() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for v in [3u64, 17, 900, 40_000] {
            a.record(v);
            combined.record(v);
        }
        for v in [5u64, 17, 1_000_000] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.count(), 7);
    }

    #[test]
    fn histogram_serializes_sparse_and_round_trips() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 0, 300, 300, 300, u64::MAX] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        // Sparse: three occupied buckets, version-tagged. 300 lands in
        // bucket 82 = (msb 8 − 3)·16 + sub 2, whose range is [288, 303].
        assert_eq!(json, r#"{"v":1,"b":[[0,2],[82,3],[975,1]]}"#);
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn histogram_rejects_unknown_versions_and_bad_buckets() {
        assert!(serde_json::from_str::<LatencyHistogram>(r#"{"v":2,"b":[]}"#).is_err());
        assert!(serde_json::from_str::<LatencyHistogram>(r#"{"v":1,"b":[[976,1]]}"#).is_err());
        assert!(serde_json::from_str::<LatencyHistogram>(r#"{"v":1,"b":[[1]]}"#).is_err());
    }
}
