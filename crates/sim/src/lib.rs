//! # hyperx-sim
//!
//! A cycle-level interconnection-network simulator purpose-built to reproduce
//! the evaluation of the SurePath paper: input-buffered switches with virtual
//! channels, credit-based virtual cut-through flow control, an internal
//! crossbar speedup, injection/ejection links, the paper's synthetic traffic
//! patterns and its three metrics (accepted throughput, average message
//! latency and the Jain fairness index of generated load).
//!
//! The public surface is small:
//!
//! * [`SimConfig`] — Table 2's simulation parameters.
//! * [`traffic`] — the four synthetic traffic patterns of §4.
//! * [`Simulator`] — the engine. [`Simulator::run_rate`] produces one point of
//!   an offered-load sweep (Figures 4–6, 8, 9); [`Simulator::run_batch`] runs
//!   the closed-loop completion-time experiment of Figure 10.
//! * [`RateMetrics`] / [`BatchMetrics`] — results.
//!
//! Substitution note (see DESIGN.md): the paper uses the authors' simulator
//! CAMINOS; this crate is an independent implementation of the same modelled
//! behaviour, packet-granular with phit-accurate serialization timing.

pub mod config;
pub mod engine;
/// The frozen v4 engine (pointer-rich layout), compiled only for tests and
/// the `full-scan` bench feature: the A/B baseline of the v5 SoA engine.
#[cfg(any(test, feature = "full-scan"))]
pub mod engine_v4;
pub mod metrics;
pub mod obs;
pub mod packet;
pub mod pool;
pub mod rng_contract;
pub mod server;
pub mod switch;
pub mod traffic;

pub use config::SimConfig;
pub use engine::Simulator;
#[cfg(any(test, feature = "full-scan"))]
pub use engine_v4::SimulatorV4;
pub use metrics::{
    jain_index, BatchMetrics, LatencyHistogram, MeasuredCounters, RateMetrics, ThroughputSample,
};
pub use obs::{Counter, CounterRegistry, PacketTracer, TraceEvent, TraceEventKind};
pub use packet::{Packet, PacketId};
pub use rng_contract::RngContract;
pub use server::GenerationMode;
pub use traffic::{
    DimensionComplementReverse, HotspotIncast, NeighbourShift, RandomServerPermutation,
    RegularPermutationToNeighbour, ServerLayout, TrafficPattern, Transpose, UniformTraffic,
};
