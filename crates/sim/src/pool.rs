//! A tiny persistent worker pool for deterministic intra-simulation
//! parallelism.
//!
//! The engine steps partitions of switches in parallel inside a cycle, which
//! means a dispatch every few microseconds — far too often to spawn scoped
//! threads. This pool keeps `workers` threads parked on a condvar and hands
//! them one task-indexed job at a time: [`WorkerPool::run`] publishes the
//! closure, every thread (the caller included) claims task indices from a
//! shared counter, and `run` returns only once all tasks have finished. No
//! work queues, no channels, no allocation per dispatch.
//!
//! The pool is deliberately *not* a scheduler: determinism comes from the
//! engine giving each task index a disjoint slice of state and merging
//! results in fixed task order afterwards, so it does not matter which
//! thread runs which task, only that `run` is a barrier.

use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

/// A raw pointer to the job closure, valid only while the dispatching
/// [`WorkerPool::run`] call is blocked.
///
/// Soundness: `run` publishes the pointer under the pool mutex, participates
/// in the claim loop itself, and does not return until `pending == 0` — i.e.
/// until every claimed task has finished executing. Workers only dereference
/// the pointer for task indices claimed while `next < tasks`, and the epoch
/// counter keeps a late-waking worker from touching a previous job's
/// pointer. The closure therefore never outlives the borrow it was created
/// from.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the pointer's lifetime is protected by the `run` barrier above.
unsafe impl Send for JobPtr {}

struct PoolState {
    /// The published job; `None` between dispatches.
    job: Option<JobPtr>,
    /// Bumped on every dispatch so stale wakeups never re-run an old job.
    epoch: u64,
    /// Total task count of the current job.
    tasks: usize,
    /// Next unclaimed task index.
    next: usize,
    /// Claimed-but-unfinished plus unclaimed tasks; `run` returns at zero.
    pending: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signalled when a job is published or the pool shuts down.
    work: Condvar,
    /// Signalled when the last task of a job finishes.
    done: Condvar,
}

/// A fixed set of persistent worker threads; see the module docs.
pub struct WorkerPool {
    shared: std::sync::Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` persistent threads (the caller participates in every
    /// job, so a pool for `P` partitions needs `P - 1` workers).
    pub fn new(workers: usize) -> Self {
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                tasks: 0,
                next: 0,
                pending: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads (excluding the caller).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    fn worker_loop(shared: &Shared) {
        let mut seen_epoch = 0u64;
        let mut state = shared.state.lock().unwrap();
        loop {
            while !state.shutdown && (state.job.is_none() || state.epoch == seen_epoch) {
                state = shared.work.wait(state).unwrap();
            }
            if state.shutdown {
                return;
            }
            seen_epoch = state.epoch;
            let job = state.job.expect("woken with an epoch but no job");
            state = Self::claim_loop(shared, state, job);
        }
    }

    /// Claims and runs task indices until none remain; returns holding the
    /// lock. Shared by workers and the dispatching caller.
    fn claim_loop<'a>(
        shared: &'a Shared,
        mut state: std::sync::MutexGuard<'a, PoolState>,
        job: JobPtr,
    ) -> std::sync::MutexGuard<'a, PoolState> {
        while state.next < state.tasks {
            let task = state.next;
            state.next += 1;
            drop(state);
            // SAFETY: see `JobPtr` — the dispatcher blocks until `pending`
            // hits zero, so the closure is alive for every claimed index.
            unsafe { (*job.0)(task) };
            state = shared.state.lock().unwrap();
            state.pending -= 1;
            if state.pending == 0 {
                shared.done.notify_all();
            }
        }
        state
    }

    /// Runs `f(0), f(1), …, f(tasks - 1)` across the pool (caller included)
    /// and returns once all calls have finished. Tasks may run in any order
    /// and concurrently; `f` must partition its own state by task index.
    pub fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        // SAFETY (lifetime erasure): `*const dyn …` spells an implicit
        // `'static` bound the closure does not have; the barrier below keeps
        // the pointee alive for every dereference — see `JobPtr`.
        let job = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        let mut state = self.shared.state.lock().unwrap();
        debug_assert!(state.job.is_none(), "nested dispatch on one pool");
        state.job = Some(job);
        state.epoch += 1;
        state.tasks = tasks;
        state.next = 0;
        state.pending = tasks;
        self.shared.work.notify_all();
        state = Self::claim_loop(&self.shared, state, job);
        while state.pending > 0 {
            state = self.shared.done.wait(state).unwrap();
        }
        state.job = None;
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(3);
        for round in 0..50 {
            let tasks = 1 + round % 7;
            let counts: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(tasks, &|t| {
                counts[t].fetch_add(1, Ordering::SeqCst);
            });
            for (t, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "task {t} in round {round}");
            }
        }
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = WorkerPool::new(1);
        pool.run(0, &|_| panic!("no task should run"));
    }

    #[test]
    fn tasks_write_disjoint_slices_through_mutexes() {
        // The engine's usage pattern: each task locks its own per-partition
        // view; the pool only guarantees the barrier.
        let pool = WorkerPool::new(2);
        let parts: Vec<Mutex<Vec<u64>>> = (0..4).map(|_| Mutex::new(vec![0; 100])).collect();
        pool.run(4, &|t| {
            let mut part = parts[t].lock().unwrap();
            for (i, v) in part.iter_mut().enumerate() {
                *v = (t * 1000 + i) as u64;
            }
        });
        for (t, part) in parts.iter().enumerate() {
            let part = part.lock().unwrap();
            assert!(part
                .iter()
                .enumerate()
                .all(|(i, &v)| v == (t * 1000 + i) as u64));
        }
    }

    #[test]
    fn pool_shuts_down_cleanly_on_drop() {
        let pool = WorkerPool::new(4);
        pool.run(8, &|_| {});
        drop(pool); // must not hang
    }
}
