//! Simulation configuration (Table 2 of the paper).

use crate::rng_contract::RngContract;
use serde::{Deserialize, Error, Serialize, Value};

/// Parameters of the cycle-level simulation.
///
/// [`SimConfig::paper_defaults`] reproduces Table 2: 8-packet input buffers,
/// 4-packet output buffers, virtual cut-through flow control, 16-phit packets,
/// 1-cycle links and crossbar, and an internal crossbar speedup of 2.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Packet length in phits.
    pub packet_length: u64,
    /// Capacity of each input virtual-channel FIFO, in packets.
    pub input_buffer_packets: usize,
    /// Capacity of each output staging buffer, in packets.
    pub output_buffer_packets: usize,
    /// Capacity of each server's source (injection) queue, in packets.
    pub source_queue_packets: usize,
    /// Link traversal latency in cycles (on top of serialization).
    pub link_latency: u64,
    /// Crossbar traversal latency in cycles (on top of serialization).
    pub crossbar_latency: u64,
    /// Internal crossbar speedup: the crossbar moves packets this many times
    /// faster than the links and can grant this many packets per output per cycle.
    pub crossbar_speedup: usize,
    /// Servers attached to every switch (the concentration).
    pub servers_per_switch: usize,
    /// Virtual channels per port.
    pub num_vcs: usize,
    /// Cycles simulated before measurement starts.
    pub warmup_cycles: u64,
    /// Cycles of the measurement window.
    pub measure_cycles: u64,
    /// Seed for every random decision of the simulation (traffic, tie-breaks).
    pub seed: u64,
    /// If no packet moves for this many cycles while packets are in flight the
    /// simulator reports a stall (deadlock or undeliverable packets).
    pub watchdog_cycles: u64,
    /// Which versioned sequence of rate-mode generation draws the engine
    /// makes (see [`crate::rng_contract`]). New work defaults to v2 (the
    /// counting sampler); pin [`RngContract::V1PerServer`] to reproduce
    /// fixtures and stores produced before the contract was versioned.
    pub rng_contract: RngContract,
    /// Switch partitions the engine steps in parallel inside each cycle
    /// (1 = fully sequential; clamped to the switch count). **Run tuning
    /// only**: results are byte-identical for every value, so it never
    /// enters job fingerprints or stores.
    pub partitions: usize,
}

// Manual serde impls: `partitions` must round-trip while keeping legacy
// payloads byte-stable in both directions — a config with `partitions == 1`
// serializes without the field (so v4-era fixtures don't change), and a
// payload without the field (or without `rng_contract`) deserializes to the
// behaviour it actually ran under (sequential, contract v1). The vendored
// derive can't express either default, hence the hand-rolled impls; keep the
// field order identical to the declaration above.
impl Serialize for SimConfig {
    fn serialize(&self) -> Value {
        let mut entries = vec![
            ("packet_length".to_string(), self.packet_length.serialize()),
            (
                "input_buffer_packets".to_string(),
                self.input_buffer_packets.serialize(),
            ),
            (
                "output_buffer_packets".to_string(),
                self.output_buffer_packets.serialize(),
            ),
            (
                "source_queue_packets".to_string(),
                self.source_queue_packets.serialize(),
            ),
            ("link_latency".to_string(), self.link_latency.serialize()),
            (
                "crossbar_latency".to_string(),
                self.crossbar_latency.serialize(),
            ),
            (
                "crossbar_speedup".to_string(),
                self.crossbar_speedup.serialize(),
            ),
            (
                "servers_per_switch".to_string(),
                self.servers_per_switch.serialize(),
            ),
            ("num_vcs".to_string(), self.num_vcs.serialize()),
            ("warmup_cycles".to_string(), self.warmup_cycles.serialize()),
            (
                "measure_cycles".to_string(),
                self.measure_cycles.serialize(),
            ),
            ("seed".to_string(), self.seed.serialize()),
            (
                "watchdog_cycles".to_string(),
                self.watchdog_cycles.serialize(),
            ),
            ("rng_contract".to_string(), self.rng_contract.serialize()),
        ];
        if self.partitions != 1 {
            entries.push(("partitions".to_string(), self.partitions.serialize()));
        }
        Value::Object(entries)
    }
}

impl Deserialize for SimConfig {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let Value::Object(entries) = value else {
            return Err(Error::type_mismatch("object", value));
        };
        let optional = |name: &'static str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        Ok(SimConfig {
            packet_length: serde::de_field(value, "packet_length")?,
            input_buffer_packets: serde::de_field(value, "input_buffer_packets")?,
            output_buffer_packets: serde::de_field(value, "output_buffer_packets")?,
            source_queue_packets: serde::de_field(value, "source_queue_packets")?,
            link_latency: serde::de_field(value, "link_latency")?,
            crossbar_latency: serde::de_field(value, "crossbar_latency")?,
            crossbar_speedup: serde::de_field(value, "crossbar_speedup")?,
            servers_per_switch: serde::de_field(value, "servers_per_switch")?,
            num_vcs: serde::de_field(value, "num_vcs")?,
            warmup_cycles: serde::de_field(value, "warmup_cycles")?,
            measure_cycles: serde::de_field(value, "measure_cycles")?,
            seed: serde::de_field(value, "seed")?,
            watchdog_cycles: serde::de_field(value, "watchdog_cycles")?,
            rng_contract: match optional("rng_contract") {
                Some(v) => RngContract::deserialize(v)?,
                None => RngContract::V1PerServer,
            },
            partitions: match optional("partitions") {
                Some(v) => usize::deserialize(v)?,
                None => 1,
            },
        })
    }
}

impl SimConfig {
    /// The parameters of Table 2, with the concentration and VC count supplied
    /// by the experiment (16 servers/switch and 4 VCs in 2D, 8 and 6 in 3D).
    pub fn paper_defaults(servers_per_switch: usize, num_vcs: usize) -> Self {
        SimConfig {
            packet_length: 16,
            input_buffer_packets: 8,
            output_buffer_packets: 4,
            source_queue_packets: 8,
            link_latency: 1,
            crossbar_latency: 1,
            crossbar_speedup: 2,
            servers_per_switch,
            num_vcs,
            warmup_cycles: 5_000,
            measure_cycles: 10_000,
            seed: 1,
            watchdog_cycles: 50_000,
            rng_contract: RngContract::V2Counting,
            partitions: 1,
        }
    }

    /// A scaled-down configuration for fast tests: short warmup/measurement
    /// windows, otherwise identical to the paper's parameters.
    pub fn quick(servers_per_switch: usize, num_vcs: usize) -> Self {
        SimConfig {
            warmup_cycles: 1_000,
            measure_cycles: 2_000,
            ..Self::paper_defaults(servers_per_switch, num_vcs)
        }
    }

    /// Total number of servers for a network with `switches` switches.
    pub fn total_servers(&self, switches: usize) -> usize {
        switches * self.servers_per_switch
    }

    /// Validates internal consistency; called by the simulator constructor.
    pub fn validate(&self) {
        assert!(
            self.packet_length > 0,
            "packets must have at least one phit"
        );
        assert!(
            self.input_buffer_packets > 0,
            "input buffers cannot be empty"
        );
        assert!(
            self.output_buffer_packets > 0,
            "output buffers cannot be empty"
        );
        assert!(
            self.source_queue_packets > 0,
            "source queues cannot be empty"
        );
        assert!(self.crossbar_speedup > 0, "the crossbar must move packets");
        assert!(self.servers_per_switch > 0, "switches need servers");
        assert!(self.num_vcs > 0, "at least one VC is required");
        assert!(self.watchdog_cycles > 0, "the watchdog must be armed");
        assert!(self.partitions > 0, "at least one switch partition");
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_defaults(8, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table2() {
        let c = SimConfig::paper_defaults(16, 4);
        assert_eq!(c.packet_length, 16);
        assert_eq!(c.input_buffer_packets, 8);
        assert_eq!(c.output_buffer_packets, 4);
        assert_eq!(c.link_latency, 1);
        assert_eq!(c.crossbar_latency, 1);
        assert_eq!(c.crossbar_speedup, 2);
        assert_eq!(c.servers_per_switch, 16);
        assert_eq!(c.num_vcs, 4);
        c.validate();
    }

    #[test]
    fn quick_config_shrinks_only_windows() {
        let q = SimConfig::quick(8, 6);
        let p = SimConfig::paper_defaults(8, 6);
        assert!(q.warmup_cycles < p.warmup_cycles);
        assert!(q.measure_cycles < p.measure_cycles);
        assert_eq!(q.packet_length, p.packet_length);
        assert_eq!(q.input_buffer_packets, p.input_buffer_packets);
    }

    #[test]
    fn rng_contract_defaults_v2_new_v1_for_legacy_payloads() {
        assert_eq!(SimConfig::default().rng_contract, RngContract::V2Counting);
        // A config serialized before the contract was versioned carries no
        // `rng_contract` field and must deserialize as v1 — the contract it
        // actually ran under.
        let serde::Value::Object(entries) = SimConfig::default().serialize() else {
            panic!("SimConfig must serialize as an object");
        };
        let legacy: Vec<_> = entries
            .into_iter()
            .filter(|(k, _)| k != "rng_contract")
            .collect();
        let parsed = SimConfig::deserialize(&serde::Value::Object(legacy)).unwrap();
        assert_eq!(parsed.rng_contract, RngContract::V1PerServer);
    }

    #[test]
    fn partitions_default_1_omitted_when_1_and_round_trips_otherwise() {
        // Legacy payloads (no `partitions` field) parse as sequential.
        let serde::Value::Object(entries) = SimConfig::default().serialize() else {
            panic!("SimConfig must serialize as an object");
        };
        assert!(
            entries.iter().all(|(k, _)| k != "partitions"),
            "partitions == 1 must not be serialized (legacy byte stability)"
        );
        let parsed = SimConfig::deserialize(&serde::Value::Object(entries)).unwrap();
        assert_eq!(parsed.partitions, 1);
        // Non-default values round-trip.
        let mut cfg = SimConfig::default();
        cfg.partitions = 4;
        let parsed = SimConfig::deserialize(&cfg.serialize()).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn serialization_field_order_is_stable() {
        // Stores hash serialized configs; the field order is part of the
        // byte contract.
        let serde::Value::Object(entries) = SimConfig::default().serialize() else {
            panic!("SimConfig must serialize as an object");
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "packet_length",
                "input_buffer_packets",
                "output_buffer_packets",
                "source_queue_packets",
                "link_latency",
                "crossbar_latency",
                "crossbar_speedup",
                "servers_per_switch",
                "num_vcs",
                "warmup_cycles",
                "measure_cycles",
                "seed",
                "watchdog_cycles",
                "rng_contract",
            ]
        );
    }

    #[test]
    #[should_panic]
    #[allow(clippy::field_reassign_with_default)]
    fn zero_partitions_rejected() {
        let mut c = SimConfig::default();
        c.partitions = 0;
        c.validate();
    }

    #[test]
    fn total_servers_scales_with_switches() {
        let c = SimConfig::paper_defaults(8, 6);
        assert_eq!(c.total_servers(512), 4096);
    }

    #[test]
    #[should_panic]
    #[allow(clippy::field_reassign_with_default)]
    fn zero_vcs_rejected() {
        let mut c = SimConfig::default();
        c.num_vcs = 0;
        c.validate();
    }

    #[test]
    #[should_panic]
    #[allow(clippy::field_reassign_with_default)]
    fn zero_packet_length_rejected() {
        let mut c = SimConfig::default();
        c.packet_length = 0;
        c.validate();
    }
}
