//! The versioned RNG determinism contract of rate-mode generation.
//!
//! A *contract version* pins the exact sequence of RNG draws the simulator
//! makes per cycle, so that a `(config, seed)` pair reproduces byte-identical
//! metrics forever — across refactors, schedulers and machines. Two versions
//! exist:
//!
//! * **v1 (`V1PerServer`)** — the original contract: one Bernoulli trial per
//!   server per cycle, in ascending server order. The draw *order* is the
//!   contract, which forces generation to scan every server every cycle —
//!   O(n_servers) even when almost nobody injects.
//! * **v2 (`V2Counting`)** — the counting-sampler contract: per cycle, one
//!   `k ~ Binomial(n_servers, p)` draw (see [`rand::distributions::Binomial`])
//!   followed by a without-replacement sample of the `k` injecting servers
//!   ([`sample_without_replacement`]), their destination/routing draws then
//!   happening in ascending server order. Generation cost is O(k) — it scales
//!   with *traffic*, not network size — and the per-cycle injector marginals
//!   are exactly those of v1 (each server injects with probability `p`,
//!   pairwise without replacement within the cycle like v1's independent
//!   trials in expectation), so v1 and v2 agree *statistically* while their
//!   byte streams differ.
//!
//! Old fixtures and stores were produced under v1; anything that replays them
//! must pin `V1PerServer`. New work defaults to `V2Counting`.

use serde::{Deserialize, Serialize, Value};

/// Which versioned sequence of rate-mode generation draws the engine makes.
///
/// Serialized as the strings `"v1"` / `"v2"`; a serialized config from before
/// the field existed deserializes as [`RngContract::V1PerServer`], because
/// that is the contract it ran under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RngContract {
    /// One Bernoulli trial per server per cycle, ascending server order
    /// (the frozen pre-v2 contract; requires a full per-cycle server scan).
    V1PerServer,
    /// One binomial arrival-count draw per cycle, then a without-replacement
    /// sample of the injecting servers (O(traffic) generation).
    V2Counting,
}

impl RngContract {
    /// The stable wire/CLI key of this version (`"v1"` / `"v2"`).
    pub fn key(self) -> &'static str {
        match self {
            RngContract::V1PerServer => "v1",
            RngContract::V2Counting => "v2",
        }
    }

    /// Parses a wire/CLI key.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "v1" => Ok(RngContract::V1PerServer),
            "v2" => Ok(RngContract::V2Counting),
            other => Err(format!(
                "unknown RNG contract `{other}` (expected `v1` or `v2`)"
            )),
        }
    }
}

impl std::fmt::Display for RngContract {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

impl Serialize for RngContract {
    fn serialize(&self) -> Value {
        Value::String(self.key().to_string())
    }
}

impl Deserialize for RngContract {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        let Value::String(s) = value else {
            return Err(serde::Error::type_mismatch("string", value));
        };
        RngContract::parse(s).map_err(serde::Error::custom)
    }

    fn deserialize_missing() -> Option<Self> {
        // Configs serialized before the contract was versioned ran v1.
        Some(RngContract::V1PerServer)
    }
}

/// Samples `k` distinct indices uniformly from `[0, n)` into `out` (sorted
/// ascending), using Floyd's algorithm: exactly `k` `gen_range` draws, no
/// allocation, membership tracked in the caller's `stamp` array by writing
/// `stamp_value` (the caller guarantees no entry already holds it — the
/// engine stamps with `cycle + 1`, which is unique per cycle and never needs
/// clearing).
///
/// This is part of the v2 contract: the draw count and order are fixed
/// (Floyd's `j = n-k .. n-1` loop), so the byte stream is pinned.
///
/// # Panics
/// Panics if `k > n` or `stamp` is shorter than `n`.
pub fn sample_without_replacement<R: rand::RngCore + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    stamp: &mut [u64],
    stamp_value: u64,
    out: &mut Vec<usize>,
) {
    use rand::Rng;
    assert!(k <= n, "cannot sample {k} distinct values from {n}");
    assert!(stamp.len() >= n, "stamp array shorter than the domain");
    out.clear();
    for j in (n - k)..n {
        let t = rng.gen_range(0..j + 1);
        // Floyd: if t was already picked, j itself cannot have been (it
        // enters the candidate range only now), so picking j keeps every
        // k-subset equally likely.
        let pick = if stamp[t] == stamp_value { j } else { t };
        debug_assert_ne!(stamp[pick], stamp_value);
        stamp[pick] = stamp_value;
        out.push(pick);
    }
    out.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn keys_roundtrip() {
        for c in [RngContract::V1PerServer, RngContract::V2Counting] {
            assert_eq!(RngContract::parse(c.key()).unwrap(), c);
            assert_eq!(format!("{c}"), c.key());
        }
        assert!(RngContract::parse("v3").is_err());
    }

    #[test]
    fn serde_roundtrip_and_missing_field_defaults_to_v1() {
        let v = RngContract::V2Counting.serialize();
        assert_eq!(
            RngContract::deserialize(&v).unwrap(),
            RngContract::V2Counting
        );
        assert_eq!(
            RngContract::deserialize_missing(),
            Some(RngContract::V1PerServer)
        );
        assert!(RngContract::deserialize(&Value::String("v9".into())).is_err());
    }

    #[test]
    fn sample_is_sorted_distinct_and_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 100;
        let mut stamp = vec![0u64; n];
        let mut out = Vec::new();
        for round in 1..=200u64 {
            let k = (round as usize * 7) % (n + 1);
            sample_without_replacement(&mut rng, n, k, &mut stamp, round, &mut out);
            assert_eq!(out.len(), k);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
            assert!(out.iter().all(|&s| s < n));
        }
    }

    #[test]
    fn full_sample_is_the_whole_domain() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 37;
        let mut stamp = vec![0u64; n];
        let mut out = Vec::new();
        sample_without_replacement(&mut rng, n, n, &mut stamp, 1, &mut out);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_sample_draws_nothing() {
        // k = 0 must consume no randomness: the stream continues as if the
        // call never happened.
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut stamp = vec![0u64; 8];
        let mut out = vec![99];
        sample_without_replacement(&mut a, 8, 0, &mut stamp, 1, &mut out);
        assert!(out.is_empty());
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
