//! The frozen v4 engine: pointer-rich per-switch state (`SwitchState` with
//! nested `Vec<Vec<InputVc>>`), kept byte-for-byte as the A/B baseline the
//! data-oriented v5 engine in [`crate::engine`] is proven against and the
//! layout `surepath bench` measures. Do not optimise this module.
//!
//! It also carries the even older exhaustive-scan scheduler (`set_full_scan`)
//! and its scan-equivalence tests, so the whole lineage v3 -> v4 -> v5 stays
//! A/B testable from one binary.
use crate::config::SimConfig;
use crate::metrics::{BatchMetrics, MeasuredCounters, RateMetrics, ThroughputSample};
use crate::obs::{Counter, CounterRegistry, PacketTracer, TraceEvent, TraceEventKind};
use crate::packet::Packet;
use crate::rng_contract::{sample_without_replacement, RngContract};
use crate::server::{GenerationMode, ServerState};
use crate::switch::{OutputKind, StagedPacket, SwitchState};
use crate::traffic::{ServerLayout, TrafficPattern};
use hyperx_routing::{Candidate, NetworkView, RouteScratch, RoutingMechanism};
use rand::distributions::Binomial;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A timed event travelling between switches or towards a server.
#[derive(Debug)]
enum Event {
    /// A packet finishes crossing a link and lands in an input VC.
    Arrival {
        switch: usize,
        port: usize,
        vc: usize,
        packet: Packet,
    },
    /// A packet finishes its ejection link and is consumed by its server.
    Delivery { packet: Packet },
}

/// One output request produced by a head packet.
#[derive(Debug, Clone, Copy)]
struct Request {
    in_port: usize,
    in_vc: usize,
    out_port: usize,
    out_vc: usize,
    /// `Q + P` in phits.
    score: u64,
    /// The routing candidate behind the request (`None` for ejection).
    candidate: Option<Candidate>,
}

/// A deterministic dirty set of indices (switches, or servers for the
/// generation stage).
///
/// The active-set scheduler must visit members in exactly the order the
/// exhaustive scan would (ascending index — RNG draws happen per member in
/// that order), so this is a sorted list plus a membership bitmap:
/// insertion is O(1) amortised (pending insertions merge in one in-place
/// backward merge per cycle), iteration is the sorted list, and removal
/// happens during the caller's sweep. No allocations at steady state.
#[derive(Debug)]
struct ActiveSet {
    /// Membership bitmap; prevents duplicate insertions.
    member: Vec<bool>,
    /// Sorted active indices (the iteration order).
    list: Vec<usize>,
    /// Insertions since the last merge, unsorted.
    added: Vec<usize>,
}

impl ActiveSet {
    fn new(n: usize) -> Self {
        ActiveSet {
            member: vec![false; n],
            list: Vec::new(),
            added: Vec::new(),
        }
    }

    /// Marks `idx` active; no-op if it already is.
    fn insert(&mut self, idx: usize) {
        if !self.member[idx] {
            self.member[idx] = true;
            self.added.push(idx);
        }
    }

    /// Folds pending insertions into the sorted list (in place, backwards).
    fn merge_added(&mut self) {
        if self.added.is_empty() {
            return;
        }
        self.added.sort_unstable();
        let old_len = self.list.len();
        self.list.extend_from_slice(&self.added);
        let mut i = old_len;
        let mut j = self.added.len();
        let mut k = self.list.len();
        while i > 0 && j > 0 {
            k -= 1;
            if self.list[i - 1] > self.added[j - 1] {
                self.list[k] = self.list[i - 1];
                i -= 1;
            } else {
                self.list[k] = self.added[j - 1];
                j -= 1;
            }
        }
        while j > 0 {
            k -= 1;
            j -= 1;
            self.list[k] = self.added[j];
        }
        self.added.clear();
    }
}

/// The cycle-level simulator.
pub struct SimulatorV4 {
    cfg: SimConfig,
    view: Arc<NetworkView>,
    mechanism: Box<dyn RoutingMechanism>,
    pattern: Box<dyn TrafficPattern>,
    layout: ServerLayout,
    switches: Vec<SwitchState>,
    servers: Vec<ServerState>,
    /// Event wheel indexed by `cycle % wheel.len()`.
    wheel: Vec<Vec<Event>>,
    rng: ChaCha8Rng,
    cycle: u64,
    next_packet_id: u64,
    /// Packets created and not yet delivered (source queues + network).
    packets_alive: u64,
    total_generated: u64,
    total_delivered: u64,
    counters: MeasuredCounters,
    measuring: bool,
    /// Crate-visible so the v5 `layout_equivalence` tests can drive both
    /// engines cycle by cycle under the same generation mode.
    pub(crate) generation: GenerationMode,
    last_progress: u64,
    progress_this_cycle: bool,
    stalled: bool,
    radix: usize,
    /// Delivered phits since the last batch sample (Figure 10 curve).
    window_delivered_phits: u64,
    /// Switches with at least one buffered input packet: the only switches
    /// the allocator needs to visit.
    alloc_active: ActiveSet,
    /// Switches with at least one staged packet: the only switches the
    /// transmit stage needs to visit.
    xmit_active: ActiveSet,
    /// Buffered input packets per switch (all ports and VCs).
    input_occupancy: Vec<u32>,
    /// Staged output packets per switch (all ports).
    staged_count: Vec<u32>,
    /// Servers with generation work or source-queue backlog: the only
    /// servers batch mode and rate contract v2 visit. (Rate contract v1
    /// scans every server — its per-server draw order is the frozen
    /// contract.)
    server_live: ActiveSet,
    /// Rebuild `server_live` from scratch before the next batch-mode cycle
    /// (set whenever quotas are handed out or zeroed).
    server_live_dirty: bool,
    /// Rate contract v2: per-server cycle stamp marking membership in this
    /// cycle's sampled injector set (`cycle + 1`; never needs clearing).
    sampled_at: Vec<u64>,
    /// Rate contract v2 scratch: this cycle's sampled injectors.
    sampled_scratch: Vec<usize>,
    /// Rate contract v2: the counting sampler, rebuilt when the per-trial
    /// probability changes (i.e. when the offered load changes).
    binomial_cache: Option<(f64, Binomial)>,
    /// Scratch: requests of the switch being allocated.
    req_scratch: Vec<Request>,
    /// Scratch: `(score, tie-break, request index)` sort keys.
    keyed_scratch: Vec<(u64, u32, usize)>,
    /// Scratch: per-output grants of the switch being allocated.
    out_grants: Vec<usize>,
    /// Scratch: per-input grants of the switch being allocated.
    in_grants: Vec<usize>,
    /// Scratch: intermediate route lists of candidate computation.
    route_scratch: RouteScratch,
    /// Scratch: the head packet's candidate list, copied out of the per-VC
    /// cache so the borrow on the switch ends before scoring.
    cand_scratch: Vec<Candidate>,
    /// Fixed-slot observability counters: plain `u64` adds on the hot path,
    /// never fed back into any scheduling decision (zero-perturbation).
    obs: CounterRegistry,
    /// Optional packet-lifecycle tracer. `None` reduces every hook to one
    /// branch; enabling it must not change RNG draws or metrics bytes.
    tracer: Option<PacketTracer>,
    /// A/B baseline: when true, `step` runs the legacy exhaustive-scan
    /// scheduler (only settable under cfg(test) or the `full-scan` feature).
    #[cfg_attr(not(any(test, feature = "full-scan")), allow(dead_code))]
    full_scan: bool,
}

impl SimulatorV4 {
    /// Builds a simulator over `view` with the given routing mechanism and
    /// traffic pattern.
    ///
    /// # Panics
    /// Panics if the mechanism's VC count disagrees with the configuration.
    pub fn new(
        view: Arc<NetworkView>,
        mechanism: Box<dyn RoutingMechanism>,
        pattern: Box<dyn TrafficPattern>,
        cfg: SimConfig,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            mechanism.num_vcs(),
            cfg.num_vcs,
            "the routing mechanism uses {} VCs but the configuration says {}",
            mechanism.num_vcs(),
            cfg.num_vcs
        );
        let hx = view.hyperx();
        let layout = ServerLayout::new(hx, cfg.servers_per_switch);
        let radix = hx.switch_radix();
        let num_ports = radix + cfg.servers_per_switch;
        let switches = (0..hx.num_switches())
            .map(|s| {
                let mut kinds = Vec::with_capacity(num_ports);
                for p in 0..radix {
                    kinds.push(match view.network().neighbor(s, p) {
                        Some(nb) => OutputKind::Network {
                            next_switch: nb.switch,
                            next_input_port: nb.reverse_port,
                        },
                        None => OutputKind::Dead,
                    });
                }
                for o in 0..cfg.servers_per_switch {
                    kinds.push(OutputKind::Ejection {
                        server: layout.server_at(s, o),
                    });
                }
                SwitchState::new(num_ports, cfg.num_vcs, kinds)
            })
            .collect();
        let servers = (0..layout.num_servers())
            .map(|_| ServerState::new(u64::MAX))
            .collect();
        let wheel_len = (cfg.packet_length + cfg.link_latency + cfg.crossbar_latency + 4) as usize;
        let counters = MeasuredCounters::new(layout.num_servers());
        let num_switches = hx.num_switches();
        let num_servers = layout.num_servers();
        SimulatorV4 {
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            cfg,
            view,
            mechanism,
            pattern,
            switches,
            servers,
            wheel: (0..wheel_len).map(|_| Vec::new()).collect(),
            cycle: 0,
            next_packet_id: 0,
            packets_alive: 0,
            total_generated: 0,
            total_delivered: 0,
            counters,
            measuring: false,
            generation: GenerationMode::Rate { offered_load: 0.0 },
            last_progress: 0,
            progress_this_cycle: false,
            stalled: false,
            radix,
            layout,
            window_delivered_phits: 0,
            alloc_active: ActiveSet::new(num_switches),
            xmit_active: ActiveSet::new(num_switches),
            input_occupancy: vec![0; num_switches],
            staged_count: vec![0; num_switches],
            server_live: ActiveSet::new(num_servers),
            server_live_dirty: true,
            sampled_at: vec![0; num_servers],
            sampled_scratch: Vec::new(),
            binomial_cache: None,
            req_scratch: Vec::new(),
            keyed_scratch: Vec::new(),
            out_grants: vec![0; num_ports],
            in_grants: vec![0; num_ports],
            route_scratch: RouteScratch::default(),
            cand_scratch: Vec::new(),
            obs: CounterRegistry::new(),
            tracer: None,
            full_scan: false,
        }
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The network view this simulator runs on.
    pub fn view(&self) -> &NetworkView {
        &self.view
    }

    /// Packets created and not yet delivered.
    pub fn packets_alive(&self) -> u64 {
        self.packets_alive
    }

    /// Packets delivered since the simulation started.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Packets generated since the simulation started.
    pub fn total_generated(&self) -> u64 {
        self.total_generated
    }

    /// Whether the stall watchdog has fired.
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    /// Sum of packets buffered inside switches (inputs + staging), used by
    /// conservation tests.
    pub fn packets_in_switches(&self) -> usize {
        self.switches.iter().map(|s| s.buffered_packets()).sum()
    }

    /// The engine's observability counters (reset when measurement begins).
    pub fn obs(&self) -> &CounterRegistry {
        &self.obs
    }

    /// Installs (or removes) the packet-lifecycle tracer. Tracing is
    /// observation-only: enabling it never changes RNG draw order, metrics
    /// bytes, or store bytes — see the `obs_equivalence` tests.
    pub fn set_tracer(&mut self, tracer: Option<PacketTracer>) {
        self.tracer = tracer;
    }

    /// Takes the tracer (and its recorded events) out of the simulator.
    pub fn take_tracer(&mut self) -> Option<PacketTracer> {
        self.tracer.take()
    }

    /// Runs an open-loop (rate mode) experiment at `offered_load`
    /// phits/cycle/server: warmup, then a measurement window.
    pub fn run_rate(&mut self, offered_load: f64) -> RateMetrics {
        assert!(
            (0.0..=1.0).contains(&offered_load),
            "offered load is normalised to [0, 1] phits/cycle/server"
        );
        self.generation = GenerationMode::Rate { offered_load };
        for _ in 0..self.cfg.warmup_cycles {
            self.step();
        }
        self.begin_measurement();
        for _ in 0..self.cfg.measure_cycles {
            self.step();
            if self.stalled {
                break;
            }
        }
        self.counters.cycles = self.cfg.measure_cycles.min(self.counters.cycles.max(1));
        RateMetrics::from_counters(
            offered_load,
            self.cfg.packet_length,
            self.layout.num_servers(),
            &mut self.counters,
            self.packets_alive,
            self.stalled,
        )
    }

    /// Runs a closed-loop (batch mode) experiment: every server sends
    /// `packets_per_server` packets as fast as it can; the simulation runs to
    /// completion (or a stall). `sample_window` controls the granularity of
    /// the accepted-load curve (Figure 10).
    pub fn run_batch(&mut self, packets_per_server: u64, sample_window: u64) -> BatchMetrics {
        assert!(packets_per_server > 0 && sample_window > 0);
        self.generation = GenerationMode::Batch { packets_per_server };
        for server in &mut self.servers {
            server.remaining_quota = packets_per_server;
        }
        self.server_live_dirty = true;
        self.begin_measurement();
        let expected = packets_per_server * self.layout.num_servers() as u64;
        let mut samples = Vec::new();
        let mut completion = 0u64;
        while self.total_delivered < expected && !self.stalled {
            self.step();
            if self.cycle.is_multiple_of(sample_window) {
                samples.push(ThroughputSample {
                    cycle: self.cycle,
                    accepted_load: self.window_delivered_phits as f64
                        / (sample_window as f64 * self.layout.num_servers() as f64),
                });
                self.window_delivered_phits = 0;
            }
            if self.total_delivered >= expected {
                completion = self.cycle;
            }
        }
        if completion == 0 {
            completion = self.cycle;
        }
        // Final partial window, if any.
        if !self.cycle.is_multiple_of(sample_window) {
            let partial = self.cycle % sample_window;
            samples.push(ThroughputSample {
                cycle: self.cycle,
                accepted_load: self.window_delivered_phits as f64
                    / (partial as f64 * self.layout.num_servers() as f64),
            });
        }
        let average_latency = if self.counters.delivered_packets > 0 {
            self.counters.latency_sum as f64 / self.counters.delivered_packets as f64
        } else {
            0.0
        };
        BatchMetrics {
            completion_time: completion,
            delivered_packets: self.counters.delivered_packets,
            samples,
            average_latency,
            stalled: self.stalled,
            latency_hist: Some(std::mem::take(&mut self.counters.latency_hist)),
        }
    }

    /// Stops generating new packets and runs until everything in flight is
    /// delivered (or `max_cycles` elapse). Returns whether the network drained
    /// completely. Used by integration tests to verify packet conservation.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        self.generation = GenerationMode::Batch {
            packets_per_server: 0,
        };
        for server in &mut self.servers {
            server.remaining_quota = 0;
        }
        self.server_live_dirty = true;
        let deadline = self.cycle + max_cycles;
        while self.packets_alive > 0 && self.cycle < deadline && !self.stalled {
            self.step();
        }
        self.packets_alive == 0
    }

    fn begin_measurement(&mut self) {
        self.counters = MeasuredCounters::new(self.layout.num_servers());
        self.obs.reset();
        self.measuring = true;
        self.window_delivered_phits = 0;
    }

    /// Advances the simulation by one cycle.
    ///
    /// The scheduler is **active-set based**: allocation only visits switches
    /// with buffered input packets, transmission only visits switches with
    /// staged packets, and generation (batch mode, and rate mode under
    /// [`RngContract::V2Counting`]) only visits servers with remaining work —
    /// so a cycle's cost scales with live traffic, not network size. (Rate
    /// mode under the frozen [`RngContract::V1PerServer`] still scans every
    /// server: its per-server draw order is the contract.) The observable
    /// behaviour (RNG draw order, metrics, event timing) is identical to the
    /// exhaustive scan; see [`SimulatorV4::set_full_scan`] and the A/B
    /// equivalence tests.
    pub fn step(&mut self) {
        #[cfg(any(test, feature = "full-scan"))]
        if self.full_scan {
            self.step_full_scan();
            return;
        }
        self.progress_this_cycle = false;
        self.process_events();
        self.generate_and_inject();
        self.allocate();
        self.transmit();
        self.finish_step();
    }

    /// Measurement, watchdog and cycle bookkeeping shared by both schedulers.
    fn finish_step(&mut self) {
        if self.measuring {
            self.counters.cycles += 1;
        }
        if self.progress_this_cycle {
            self.last_progress = self.cycle;
        } else if self.packets_alive > 0 {
            self.obs.incr(Counter::BlockedCycles);
            if self.cycle - self.last_progress >= self.cfg.watchdog_cycles {
                self.stalled = true;
            }
        }
        self.cycle += 1;
    }

    /// Switches `step` to the legacy exhaustive-scan scheduler (the
    /// pre-active-set engine, kept as a frozen baseline). Only for A/B
    /// equivalence tests and `surepath bench`; call it before the first
    /// `step`.
    #[cfg(any(test, feature = "full-scan"))]
    pub fn set_full_scan(&mut self, enabled: bool) {
        self.full_scan = enabled;
    }

    /// One cycle of the frozen pre-refactor scheduler: exhaustive scans over
    /// every switch and port, per-cycle `Vec` allocations included — this is
    /// the baseline `surepath bench` measures the active-set engine against,
    /// so it must stay faithful to the original, not get optimised.
    #[cfg(any(test, feature = "full-scan"))]
    fn step_full_scan(&mut self) {
        self.progress_this_cycle = false;
        self.process_events();
        let packet_length = self.cfg.packet_length;
        if let (GenerationMode::Rate { offered_load }, RngContract::V2Counting) =
            (self.generation, self.cfg.rng_contract)
        {
            // Contract v2 under the frozen scheduler: the same counting
            // draws, but the per-server visit is an exhaustive scan — an
            // independent implementation the active-set sweep is proven
            // byte-identical against.
            self.sample_injectors_v2(offered_load);
            for server in 0..self.layout.num_servers() {
                self.rate_v2_server_body(server, packet_length);
            }
        } else {
            for server in 0..self.layout.num_servers() {
                self.generate_and_inject_server(server, packet_length);
            }
        }
        // The frozen scheduler visits every switch in both stages; counting
        // those visits keeps the active-set occupancy counters comparable
        // across schedulers.
        self.obs
            .add(Counter::AllocSwitchVisits, self.switches.len() as u64);
        self.obs
            .add(Counter::XmitSwitchVisits, self.switches.len() as u64);
        for switch in 0..self.switches.len() {
            let requests = self.collect_requests_full(switch);
            self.apply_grants_full(switch, requests);
        }
        for switch in 0..self.switches.len() {
            self.transmit_switch(switch);
        }
        self.finish_step();
    }

    fn wheel_slot(&self, cycle: u64) -> usize {
        (cycle % self.wheel.len() as u64) as usize
    }

    fn schedule(&mut self, cycle: u64, event: Event) {
        debug_assert!(cycle > self.cycle, "events must be scheduled in the future");
        debug_assert!(
            cycle - self.cycle < self.wheel.len() as u64,
            "event beyond the wheel horizon"
        );
        let slot = self.wheel_slot(cycle);
        self.wheel[slot].push(event);
    }

    fn process_events(&mut self) {
        let slot = self.wheel_slot(self.cycle);
        let events = std::mem::take(&mut self.wheel[slot]);
        for event in events {
            match event {
                Event::Arrival {
                    switch,
                    port,
                    vc,
                    packet,
                } => {
                    if let Some(tracer) = &mut self.tracer {
                        tracer.record(TraceEvent {
                            cycle: self.cycle,
                            packet: packet.id,
                            kind: TraceEventKind::Hop,
                            switch: switch as u64,
                            hops: packet.state.hops as u64,
                            escape_hops: packet.escape_hops as u64,
                        });
                    }
                    let input = &mut self.switches[switch].inputs[port][vc];
                    debug_assert!(input.inflight > 0, "arrival without a reservation");
                    input.inflight -= 1;
                    debug_assert!(
                        input.queue.len() < self.cfg.input_buffer_packets,
                        "input VC overflow: the reservation protocol is broken"
                    );
                    input.queue.push_back(packet);
                    self.input_occupancy[switch] += 1;
                    self.alloc_active.insert(switch);
                    self.progress_this_cycle = true;
                }
                Event::Delivery { packet } => {
                    self.packets_alive -= 1;
                    self.total_delivered += 1;
                    self.progress_this_cycle = true;
                    if let Some(tracer) = &mut self.tracer {
                        tracer.record(TraceEvent {
                            cycle: self.cycle,
                            packet: packet.id,
                            kind: TraceEventKind::Deliver,
                            switch: packet.dst_switch as u64,
                            hops: packet.state.hops as u64,
                            escape_hops: packet.escape_hops as u64,
                        });
                    }
                    if self.measuring {
                        self.counters.delivered_packets += 1;
                        self.counters.delivered_phits += self.cfg.packet_length;
                        let lat = packet.latency_at(self.cycle);
                        self.counters.latency_sum += lat;
                        self.counters.latency_max = self.counters.latency_max.max(lat);
                        self.counters.latency_hist.record(lat);
                        self.counters.hop_sum += packet.state.hops as u64;
                        self.counters.escape_hop_sum += packet.escape_hops as u64;
                        if packet.escape_hops > 0 {
                            self.counters.delivered_via_escape += 1;
                        }
                        self.window_delivered_phits += self.cfg.packet_length;
                    }
                }
            }
        }
    }

    fn generate_and_inject(&mut self) {
        let packet_length = self.cfg.packet_length;
        match self.generation {
            GenerationMode::Rate { offered_load } => match self.cfg.rng_contract {
                // Contract v1 (frozen): one Bernoulli trial per server per
                // cycle, in ascending server order. The draw order is the
                // contract, so this path scans every server.
                RngContract::V1PerServer => {
                    for server in 0..self.layout.num_servers() {
                        self.generate_and_inject_server(server, packet_length);
                    }
                }
                // Contract v2: one binomial draw counts the cycle's
                // arrivals, a without-replacement sample places them, and
                // only live servers (sampled or backlogged) are visited —
                // O(traffic) instead of O(network).
                RngContract::V2Counting => {
                    self.sample_injectors_v2(offered_load);
                    self.sweep_live_servers(packet_length, Self::rate_v2_server_body, |sim, s| {
                        !sim.servers[s].source_queue.is_empty()
                    });
                }
            },
            // Batch mode: a server without quota or queued packets draws no
            // randomness and injects nothing, so only live servers are
            // visited. Activity is monotone decreasing mid-run (nothing
            // refills a quota), so the retain sweep suffices.
            GenerationMode::Batch { .. } => {
                if self.server_live_dirty {
                    self.rebuild_server_live();
                }
                self.sweep_live_servers(
                    packet_length,
                    Self::generate_and_inject_server,
                    |sim, s| !sim.servers[s].is_drained(),
                );
            }
        }
    }

    /// Rebuilds the live-server set from scratch (after batch quotas are
    /// handed out or zeroed).
    fn rebuild_server_live(&mut self) {
        self.server_live.member.iter_mut().for_each(|m| *m = false);
        self.server_live.list.clear();
        self.server_live.added.clear();
        for s in 0..self.layout.num_servers() {
            if !self.servers[s].is_drained() {
                self.server_live.member[s] = true;
                self.server_live.list.push(s);
            }
        }
        self.server_live_dirty = false;
    }

    /// The shared visitation helper of batch mode and rate contract v2:
    /// folds pending insertions into the live set, visits the live servers
    /// in ascending order running `body` on each, and drops the ones
    /// `retain` rejects afterwards.
    fn sweep_live_servers(
        &mut self,
        packet_length: u64,
        body: fn(&mut Self, usize, u64),
        retain: fn(&Self, usize) -> bool,
    ) {
        self.server_live.merge_added();
        let mut live = std::mem::take(&mut self.server_live.list);
        let mut keep = 0;
        for k in 0..live.len() {
            let server = live[k];
            body(self, server, packet_length);
            if retain(self, server) {
                live[keep] = server;
                keep += 1;
            } else {
                self.server_live.member[server] = false;
            }
        }
        live.truncate(keep);
        self.server_live.list = live;
    }

    /// Rate contract v2, step 1: draws `k ~ Binomial(n_servers, p)`, samples
    /// the `k` injecting servers without replacement (stamping `sampled_at`
    /// with `cycle + 1`), and marks them live so the sweep visits them.
    fn sample_injectors_v2(&mut self, offered_load: f64) {
        if offered_load <= 0.0 {
            return;
        }
        let n = self.layout.num_servers();
        let p = offered_load / self.cfg.packet_length as f64;
        match &self.binomial_cache {
            Some((cached_p, _)) if *cached_p == p => {}
            _ => self.binomial_cache = Some((p, Binomial::new(n as u64, p))),
        }
        let binomial = self.binomial_cache.as_ref().unwrap().1;
        let k = binomial.sample(&mut self.rng) as usize;
        self.obs.incr(Counter::BinomialDraws);
        sample_without_replacement(
            &mut self.rng,
            n,
            k,
            &mut self.sampled_at,
            self.cycle + 1,
            &mut self.sampled_scratch,
        );
        for i in 0..self.sampled_scratch.len() {
            let server = self.sampled_scratch[i];
            self.server_live.insert(server);
        }
    }

    /// Rate contract v2, step 2 (per live server): generation happens only
    /// on the servers the counting sampler picked this cycle; injection runs
    /// for every live server.
    fn rate_v2_server_body(&mut self, server: usize, packet_length: u64) {
        if self.sampled_at[server] == self.cycle + 1 {
            self.admit_packet(server);
        }
        self.inject_server(server, packet_length);
    }

    /// Generation + injection of one server: the per-server body shared by
    /// both schedulers, batch mode and rate contract v1.
    fn generate_and_inject_server(&mut self, server: usize, packet_length: u64) {
        let wants_packet = match self.generation {
            GenerationMode::Rate { offered_load } => {
                offered_load > 0.0 && self.rng.gen::<f64>() < offered_load / packet_length as f64
            }
            GenerationMode::Batch { .. } => self.servers[server].remaining_quota > 0,
        };
        if wants_packet {
            self.admit_packet(server);
        }
        self.inject_server(server, packet_length);
    }

    /// Admits one new packet into `server`'s source queue, drawing its
    /// destination and routing state — or, if the queue is full, counts the
    /// lost generation opportunity in `generation_blocked`. A v2 sampled
    /// server against a full queue loses its opportunity exactly like a v1
    /// Bernoulli success against a full queue: in both contracts this is
    /// what depresses the Jain index at saturation.
    fn admit_packet(&mut self, server: usize) {
        if self.servers[server].source_queue.len() < self.cfg.source_queue_packets {
            let dst = self.pattern.destination(server, &mut self.rng);
            debug_assert!(dst < self.layout.num_servers());
            let src_switch = self.layout.server_switch(server);
            let dst_switch = self.layout.server_switch(dst);
            let state = self
                .mechanism
                .init_packet(src_switch, dst_switch, &mut self.rng);
            let packet = Packet::new(
                self.next_packet_id,
                server,
                dst,
                dst_switch,
                self.cycle,
                state,
            );
            self.next_packet_id += 1;
            self.packets_alive += 1;
            self.total_generated += 1;
            if self.measuring {
                self.counters.generated_per_server[server] += 1;
            }
            if let GenerationMode::Batch { .. } = self.generation {
                self.servers[server].remaining_quota -= 1;
            }
            if let Some(tracer) = &mut self.tracer {
                tracer.record(TraceEvent {
                    cycle: self.cycle,
                    packet: packet.id,
                    kind: TraceEventKind::Inject,
                    switch: src_switch as u64,
                    hops: 0,
                    escape_hops: 0,
                });
            }
            self.servers[server].source_queue.push_back(packet);
        } else if self.measuring {
            self.counters.generation_blocked += 1;
        }
    }

    /// Injection of `server`'s head packet over its server-to-switch link
    /// (no randomness: every server has a dedicated switch input port).
    fn inject_server(&mut self, server: usize, packet_length: u64) {
        if self.servers[server].injection_busy_until > self.cycle
            || self.servers[server].source_queue.is_empty()
        {
            return;
        }
        let sw = self.layout.server_switch(server);
        let in_port = self.radix + self.layout.server_offset(server);
        let vc = 0usize;
        if self.switches[sw].inputs[in_port][vc].free_slots(self.cfg.input_buffer_packets) == 0 {
            return;
        }
        let mut packet = self.servers[server].source_queue.pop_front().unwrap();
        packet.injected_at = self.cycle;
        self.switches[sw].inputs[in_port][vc].inflight += 1;
        self.servers[server].injection_busy_until = self.cycle + packet_length;
        let arrive = self.cycle + packet_length + self.cfg.link_latency;
        self.schedule(
            arrive,
            Event::Arrival {
                switch: sw,
                port: in_port,
                vc,
                packet,
            },
        );
        self.progress_this_cycle = true;
    }

    /// The `Q` term of the paper's allocation rule, in packets: output staging
    /// occupancy plus the consumed credits of every VC of the requested port,
    /// counting the requested VC twice.
    fn request_q(&self, switch: usize, out_port: usize, out_vc: usize) -> u64 {
        let out = &self.switches[switch].outputs[out_port];
        let staging = out.staging.len() as u64;
        match out.kind {
            OutputKind::Network {
                next_switch,
                next_input_port,
            } => {
                let port = &self.switches[next_switch].inputs[next_input_port];
                let all: u64 = port.iter().map(|vc| vc.occupancy() as u64).sum();
                staging + all + port[out_vc].occupancy() as u64
            }
            OutputKind::Ejection { .. } => staging * 2,
            OutputKind::Dead => u64::MAX / 2,
        }
    }

    /// Fills `out` with the requests of `switch`'s head packets, reusing the
    /// per-VC candidate cache (candidate lists are pure functions of the
    /// head packet's routing state, so a blocked head's list is computed
    /// once, not once per cycle) and the simulator's scratch buffers — no
    /// allocations at steady state.
    fn collect_requests_into(&mut self, switch: usize, out: &mut Vec<Request>) {
        let num_ports = self.switches[switch].inputs.len();
        for in_port in 0..num_ports {
            for in_vc in 0..self.cfg.num_vcs {
                let Some(head) = self.switches[switch].inputs[in_port][in_vc].queue.front() else {
                    continue;
                };
                // Ejection: the packet has reached its destination switch.
                if head.dst_switch == switch {
                    let out_port = self.radix + self.layout.server_offset(head.dst_server);
                    let output = &self.switches[switch].outputs[out_port];
                    if output.staging_has_room(self.cfg.output_buffer_packets, 0) {
                        out.push(Request {
                            in_port,
                            in_vc,
                            out_port,
                            out_vc: 0,
                            score: self.request_q(switch, out_port, 0) * self.cfg.packet_length,
                            candidate: None,
                        });
                    }
                    continue;
                }
                let (head_id, head_state) = (head.id, head.state);
                // Routing: compute (or reuse) the head's candidate list. The
                // cache is keyed by packet id and invalidated whenever the
                // head is popped, and candidate lists are pure functions of
                // (state, switch), so reuse is observably identical to
                // recomputation.
                {
                    let vc_state = &mut self.switches[switch].inputs[in_port][in_vc];
                    if vc_state.cached_for != Some(head_id) {
                        self.obs.incr(Counter::CandCacheMisses);
                        vc_state.cached_for = Some(head_id);
                        let cache = &mut vc_state.cached_candidates;
                        cache.clear();
                        self.mechanism.candidates_into(
                            &head_state,
                            switch,
                            &mut self.route_scratch,
                            cache,
                        );
                    } else {
                        self.obs.incr(Counter::CandCacheHits);
                    }
                }
                self.cand_scratch.clear();
                self.cand_scratch.extend_from_slice(
                    &self.switches[switch].inputs[in_port][in_vc].cached_candidates,
                );
                // Single request to the best candidate that satisfies flow control.
                let mut best: Option<Request> = None;
                for cand in &self.cand_scratch {
                    let output = &self.switches[switch].outputs[cand.port];
                    let OutputKind::Network {
                        next_switch,
                        next_input_port,
                    } = output.kind
                    else {
                        continue;
                    };
                    if !output.staging_has_room(self.cfg.output_buffer_packets, 0) {
                        continue;
                    }
                    // Pick the VC of the allowed range with the most free space.
                    let mut chosen: Option<(usize, usize)> = None; // (free, vc)
                    for vc in cand.vcs.iter() {
                        if vc >= self.cfg.num_vcs {
                            continue;
                        }
                        let free = self.switches[next_switch].inputs[next_input_port][vc]
                            .free_slots(self.cfg.input_buffer_packets);
                        if free > 0 && chosen.is_none_or(|(best_free, _)| free > best_free) {
                            chosen = Some((free, vc));
                        }
                    }
                    let Some((_, vc)) = chosen else {
                        continue;
                    };
                    let score = self.request_q(switch, cand.port, vc) * self.cfg.packet_length
                        + cand.penalty as u64;
                    if best.as_ref().is_none_or(|b| score < b.score) {
                        best = Some(Request {
                            in_port,
                            in_vc,
                            out_port: cand.port,
                            out_vc: vc,
                            score,
                            candidate: Some(*cand),
                        });
                    }
                }
                if let Some(req) = best {
                    out.push(req);
                }
            }
        }
    }

    /// Applies the allocation rule to `requests`: random tie-break, then
    /// lowest score first, up to `crossbar_speedup` grants per output and
    /// input port. Reuses the simulator's scratch sort keys and grant
    /// counters — no allocations at steady state.
    fn apply_grants(&mut self, switch: usize, requests: &[Request]) {
        if requests.is_empty() {
            return;
        }
        self.obs.add(Counter::AllocRequests, requests.len() as u64);
        // Random tie-break, then lowest score first per output port.
        let mut keyed = std::mem::take(&mut self.keyed_scratch);
        keyed.clear();
        {
            let rng = &mut self.rng;
            keyed.extend(
                requests
                    .iter()
                    .enumerate()
                    .map(|(i, r)| (r.score, rng.gen::<u32>(), i)),
            );
        }
        keyed.sort_unstable();
        let num_ports = self.switches[switch].outputs.len();
        let speedup = self.cfg.crossbar_speedup;
        let mut out_grants = std::mem::take(&mut self.out_grants);
        let mut in_grants = std::mem::take(&mut self.in_grants);
        out_grants.clear();
        out_grants.resize(num_ports, 0);
        in_grants.clear();
        in_grants.resize(num_ports, 0);
        let crossbar_time = self.cfg.crossbar_latency
            + self
                .cfg
                .packet_length
                .div_ceil(self.cfg.crossbar_speedup as u64);
        for &(_, _, idx) in &keyed {
            let req = requests[idx];
            if out_grants[req.out_port] >= speedup || in_grants[req.in_port] >= speedup {
                self.obs.incr(Counter::AllocConflicts);
                self.trace_block(switch, &req);
                continue;
            }
            if !self.switches[switch].outputs[req.out_port]
                .staging_has_room(self.cfg.output_buffer_packets, 0)
            {
                self.obs.incr(Counter::AllocConflicts);
                self.trace_block(switch, &req);
                continue;
            }
            // Re-check (and reserve) the downstream slot for network hops.
            if let OutputKind::Network {
                next_switch,
                next_input_port,
            } = self.switches[switch].outputs[req.out_port].kind
            {
                let free = self.switches[next_switch].inputs[next_input_port][req.out_vc]
                    .free_slots(self.cfg.input_buffer_packets);
                if free == 0 {
                    self.obs.incr(Counter::AllocConflicts);
                    self.trace_block(switch, &req);
                    continue;
                }
                self.switches[next_switch].inputs[next_input_port][req.out_vc].inflight += 1;
            }
            // Commit: move the packet from the input VC to the output staging buffer.
            let input = &mut self.switches[switch].inputs[req.in_port][req.in_vc];
            let mut packet = input
                .queue
                .pop_front()
                .expect("granted request without a head packet");
            input.invalidate_cache();
            self.input_occupancy[switch] -= 1;
            if let Some(cand) = &req.candidate {
                if let OutputKind::Network { next_switch, .. } =
                    self.switches[switch].outputs[req.out_port].kind
                {
                    self.mechanism
                        .note_hop(&mut packet.state, switch, next_switch, cand);
                    if cand.enters_escape() {
                        packet.escape_hops += 1;
                        self.obs.incr(Counter::EscapeGrants);
                    }
                }
            }
            self.obs.incr(Counter::AllocGrants);
            if let Some(tracer) = &mut self.tracer {
                tracer.record(TraceEvent {
                    cycle: self.cycle,
                    packet: packet.id,
                    kind: TraceEventKind::Grant,
                    switch: switch as u64,
                    hops: packet.state.hops as u64,
                    escape_hops: packet.escape_hops as u64,
                });
            }
            self.switches[switch].outputs[req.out_port]
                .staging
                .push_back(StagedPacket {
                    packet,
                    dst_vc: req.out_vc,
                    ready_at: self.cycle + crossbar_time,
                });
            self.staged_count[switch] += 1;
            self.xmit_active.insert(switch);
            out_grants[req.out_port] += 1;
            in_grants[req.in_port] += 1;
            self.progress_this_cycle = true;
        }
        self.keyed_scratch = keyed;
        self.out_grants = out_grants;
        self.in_grants = in_grants;
    }

    /// Records a `Block` trace event for the head packet behind a denied
    /// request. Pure observation: runs only when a tracer is installed and
    /// reads nothing that feeds back into scheduling.
    fn trace_block(&mut self, switch: usize, req: &Request) {
        if self.tracer.is_none() {
            return;
        }
        let Some(head) = self.switches[switch].inputs[req.in_port][req.in_vc]
            .queue
            .front()
        else {
            return;
        };
        let event = TraceEvent {
            cycle: self.cycle,
            packet: head.id,
            kind: TraceEventKind::Block,
            switch: switch as u64,
            hops: head.state.hops as u64,
            escape_hops: head.escape_hops as u64,
        };
        if let Some(tracer) = &mut self.tracer {
            tracer.record(event);
        }
    }

    /// Allocation stage: visits only the switches with buffered input
    /// packets, in ascending switch order (the same order the exhaustive
    /// scan grants in, so the RNG tie-break sequence is identical). Switches
    /// whose inputs drained are dropped from the active set.
    fn allocate(&mut self) {
        self.alloc_active.merge_added();
        let mut active = std::mem::take(&mut self.alloc_active.list);
        self.obs
            .add(Counter::AllocSwitchVisits, active.len() as u64);
        let mut keep = 0;
        for k in 0..active.len() {
            let switch = active[k];
            let mut requests = std::mem::take(&mut self.req_scratch);
            requests.clear();
            self.collect_requests_into(switch, &mut requests);
            self.apply_grants(switch, &requests);
            self.req_scratch = requests;
            if self.input_occupancy[switch] > 0 {
                active[keep] = switch;
                keep += 1;
            } else {
                self.alloc_active.member[switch] = false;
            }
        }
        active.truncate(keep);
        self.alloc_active.list = active;
    }

    /// Transmit stage: visits only the switches with staged packets, in
    /// ascending switch order so the event wheel receives arrivals in the
    /// same order the exhaustive scan would schedule them.
    fn transmit(&mut self) {
        self.xmit_active.merge_added();
        let mut active = std::mem::take(&mut self.xmit_active.list);
        self.obs.add(Counter::XmitSwitchVisits, active.len() as u64);
        let mut keep = 0;
        for k in 0..active.len() {
            let switch = active[k];
            self.transmit_switch(switch);
            if self.staged_count[switch] > 0 {
                active[keep] = switch;
                keep += 1;
            } else {
                self.xmit_active.member[switch] = false;
            }
        }
        active.truncate(keep);
        self.xmit_active.list = active;
    }

    /// Puts the ready staged packets of one switch onto their links; the
    /// per-switch transmit body shared by both schedulers.
    fn transmit_switch(&mut self, switch: usize) {
        let packet_length = self.cfg.packet_length;
        let link_latency = self.cfg.link_latency;
        for port in 0..self.switches[switch].outputs.len() {
            let out = &self.switches[switch].outputs[port];
            if out.link_busy_until > self.cycle {
                continue;
            }
            let Some(head) = out.staging.front() else {
                continue;
            };
            if head.ready_at > self.cycle {
                continue;
            }
            let kind = out.kind;
            let staged = self.switches[switch].outputs[port]
                .staging
                .pop_front()
                .unwrap();
            self.staged_count[switch] -= 1;
            self.switches[switch].outputs[port].link_busy_until = self.cycle + packet_length;
            let arrive = self.cycle + packet_length + link_latency;
            match kind {
                OutputKind::Network {
                    next_switch,
                    next_input_port,
                } => {
                    self.schedule(
                        arrive,
                        Event::Arrival {
                            switch: next_switch,
                            port: next_input_port,
                            vc: staged.dst_vc,
                            packet: staged.packet,
                        },
                    );
                }
                OutputKind::Ejection { .. } => {
                    self.schedule(
                        arrive,
                        Event::Delivery {
                            packet: staged.packet,
                        },
                    );
                }
                OutputKind::Dead => unreachable!("dead ports never receive grants"),
            }
            self.progress_this_cycle = true;
        }
    }

    /// The frozen pre-refactor request collection: exhaustive port/VC scan
    /// with per-cycle allocations and no candidate cache. This is the
    /// baseline `surepath bench` measures against — keep it faithful to the
    /// original, do not optimise it.
    #[cfg(any(test, feature = "full-scan"))]
    fn collect_requests_full(&self, switch: usize) -> Vec<Request> {
        let mut requests = Vec::new();
        let num_ports = self.switches[switch].inputs.len();
        let mut scratch: Vec<Candidate> = Vec::new();
        for in_port in 0..num_ports {
            for in_vc in 0..self.cfg.num_vcs {
                let Some(head) = self.switches[switch].inputs[in_port][in_vc].queue.front() else {
                    continue;
                };
                if head.dst_switch == switch {
                    let out_port = self.radix + self.layout.server_offset(head.dst_server);
                    let out = &self.switches[switch].outputs[out_port];
                    if out.staging_has_room(self.cfg.output_buffer_packets, 0) {
                        requests.push(Request {
                            in_port,
                            in_vc,
                            out_port,
                            out_vc: 0,
                            score: self.request_q(switch, out_port, 0) * self.cfg.packet_length,
                            candidate: None,
                        });
                    }
                    continue;
                }
                scratch.clear();
                self.mechanism.candidates(&head.state, switch, &mut scratch);
                let mut best: Option<Request> = None;
                for cand in &scratch {
                    let out = &self.switches[switch].outputs[cand.port];
                    let OutputKind::Network {
                        next_switch,
                        next_input_port,
                    } = out.kind
                    else {
                        continue;
                    };
                    if !out.staging_has_room(self.cfg.output_buffer_packets, 0) {
                        continue;
                    }
                    let mut chosen: Option<(usize, usize)> = None; // (free, vc)
                    for vc in cand.vcs.iter() {
                        if vc >= self.cfg.num_vcs {
                            continue;
                        }
                        let free = self.switches[next_switch].inputs[next_input_port][vc]
                            .free_slots(self.cfg.input_buffer_packets);
                        if free > 0 && chosen.is_none_or(|(best_free, _)| free > best_free) {
                            chosen = Some((free, vc));
                        }
                    }
                    let Some((_, vc)) = chosen else {
                        continue;
                    };
                    let score = self.request_q(switch, cand.port, vc) * self.cfg.packet_length
                        + cand.penalty as u64;
                    if best.as_ref().is_none_or(|b| score < b.score) {
                        best = Some(Request {
                            in_port,
                            in_vc,
                            out_port: cand.port,
                            out_vc: vc,
                            score,
                            candidate: Some(*cand),
                        });
                    }
                }
                if let Some(req) = best {
                    requests.push(req);
                }
            }
        }
        requests
    }

    /// The frozen pre-refactor grant application (allocates its sort keys
    /// and grant counters per call). The shared occupancy bookkeeping is
    /// kept up to date so the schedulers can be flipped safely.
    #[cfg(any(test, feature = "full-scan"))]
    fn apply_grants_full(&mut self, switch: usize, requests: Vec<Request>) {
        if requests.is_empty() {
            return;
        }
        self.obs.add(Counter::AllocRequests, requests.len() as u64);
        let mut keyed: Vec<(u64, u32, usize)> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| (r.score, self.rng.gen::<u32>(), i))
            .collect();
        keyed.sort_unstable();
        let num_ports = self.switches[switch].outputs.len();
        let speedup = self.cfg.crossbar_speedup;
        let mut out_grants = vec![0usize; num_ports];
        let mut in_grants = vec![0usize; num_ports];
        let crossbar_time = self.cfg.crossbar_latency
            + self
                .cfg
                .packet_length
                .div_ceil(self.cfg.crossbar_speedup as u64);
        for (_, _, idx) in keyed {
            let req = requests[idx];
            if out_grants[req.out_port] >= speedup || in_grants[req.in_port] >= speedup {
                self.obs.incr(Counter::AllocConflicts);
                self.trace_block(switch, &req);
                continue;
            }
            if !self.switches[switch].outputs[req.out_port]
                .staging_has_room(self.cfg.output_buffer_packets, 0)
            {
                self.obs.incr(Counter::AllocConflicts);
                self.trace_block(switch, &req);
                continue;
            }
            if let OutputKind::Network {
                next_switch,
                next_input_port,
            } = self.switches[switch].outputs[req.out_port].kind
            {
                let free = self.switches[next_switch].inputs[next_input_port][req.out_vc]
                    .free_slots(self.cfg.input_buffer_packets);
                if free == 0 {
                    self.obs.incr(Counter::AllocConflicts);
                    self.trace_block(switch, &req);
                    continue;
                }
                self.switches[next_switch].inputs[next_input_port][req.out_vc].inflight += 1;
            }
            let input = &mut self.switches[switch].inputs[req.in_port][req.in_vc];
            let mut packet = input
                .queue
                .pop_front()
                .expect("granted request without a head packet");
            input.invalidate_cache();
            self.input_occupancy[switch] -= 1;
            if let Some(cand) = &req.candidate {
                if let OutputKind::Network { next_switch, .. } =
                    self.switches[switch].outputs[req.out_port].kind
                {
                    self.mechanism
                        .note_hop(&mut packet.state, switch, next_switch, cand);
                    if cand.enters_escape() {
                        packet.escape_hops += 1;
                        self.obs.incr(Counter::EscapeGrants);
                    }
                }
            }
            self.obs.incr(Counter::AllocGrants);
            if let Some(tracer) = &mut self.tracer {
                tracer.record(TraceEvent {
                    cycle: self.cycle,
                    packet: packet.id,
                    kind: TraceEventKind::Grant,
                    switch: switch as u64,
                    hops: packet.state.hops as u64,
                    escape_hops: packet.escape_hops as u64,
                });
            }
            self.switches[switch].outputs[req.out_port]
                .staging
                .push_back(StagedPacket {
                    packet,
                    dst_vc: req.out_vc,
                    ready_at: self.cycle + crossbar_time,
                });
            self.staged_count[switch] += 1;
            self.xmit_active.insert(switch);
            out_grants[req.out_port] += 1;
            in_grants[req.in_port] += 1;
            self.progress_this_cycle = true;
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::UniformTraffic;
    use hyperx_routing::MechanismSpec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    mod scan_equivalence {
        use super::*;
        use crate::traffic::ServerLayout;
        use hyperx_topology::HyperX;

        fn build(
            spec: MechanismSpec,
            cfg: SimConfig,
            faults: usize,
            full_scan: bool,
        ) -> SimulatorV4 {
            let hx = HyperX::regular(2, 4);
            let view = if faults == 0 {
                Arc::new(NetworkView::healthy(hx, 0))
            } else {
                let mut fault_rng = ChaCha8Rng::seed_from_u64(11);
                let fault_set = hyperx_topology::FaultSet::random_connected_sequence(
                    hx.network(),
                    faults,
                    &mut fault_rng,
                );
                Arc::new(NetworkView::with_faults(hx, &fault_set, 0))
            };
            let mech = spec.build(view.clone(), cfg.num_vcs);
            let layout = ServerLayout::new(view.hyperx(), cfg.servers_per_switch);
            let pattern = Box::new(UniformTraffic::new(&layout));
            let mut sim = SimulatorV4::new(view, mech, pattern, cfg);
            sim.set_full_scan(full_scan);
            sim
        }

        fn rate_metrics_bytes(
            spec: MechanismSpec,
            cfg: SimConfig,
            faults: usize,
            load: f64,
            full_scan: bool,
        ) -> String {
            let mut sim = build(spec, cfg, faults, full_scan);
            let metrics = sim.run_rate(load);
            format!(
                "{metrics:?}|gen={}|del={}",
                sim.total_generated(),
                sim.total_delivered()
            )
        }

        #[test]
        fn rate_mode_identical_across_mechanisms_loads_and_contracts() {
            for contract in [RngContract::V1PerServer, RngContract::V2Counting] {
                for spec in [
                    MechanismSpec::Minimal,
                    MechanismSpec::Valiant,
                    MechanismSpec::Polarized,
                    MechanismSpec::OmniSP,
                    MechanismSpec::PolSP,
                ] {
                    for load in [0.1, 0.5, 0.9] {
                        let mut cfg = SimConfig::quick(2, 4);
                        cfg.warmup_cycles = 200;
                        cfg.measure_cycles = 600;
                        cfg.seed = 42;
                        cfg.rng_contract = contract;
                        let a = rate_metrics_bytes(spec, cfg.clone(), 0, load, false);
                        let b = rate_metrics_bytes(spec, cfg, 0, load, true);
                        assert_eq!(a, b, "{spec:?} at load {load} ({contract}) diverged");
                    }
                }
            }
        }

        #[test]
        fn rate_mode_identical_under_faults_across_seeds_and_contracts() {
            for contract in [RngContract::V1PerServer, RngContract::V2Counting] {
                for spec in [MechanismSpec::OmniSP, MechanismSpec::PolSP] {
                    for seed in [1u64, 7, 99] {
                        let mut cfg = SimConfig::quick(2, 4);
                        cfg.warmup_cycles = 200;
                        cfg.measure_cycles = 600;
                        cfg.seed = seed;
                        cfg.rng_contract = contract;
                        let a = rate_metrics_bytes(spec, cfg.clone(), 4, 0.6, false);
                        let b = rate_metrics_bytes(spec, cfg, 4, 0.6, true);
                        assert_eq!(
                            a, b,
                            "{spec:?} seed {seed} ({contract}) diverged under faults"
                        );
                    }
                }
            }
        }

        #[test]
        fn batch_mode_and_drain_identical() {
            let mut results = Vec::new();
            for full_scan in [false, true] {
                let mut cfg = SimConfig::quick(2, 4);
                cfg.seed = 5;
                let mut sim = build(MechanismSpec::PolSP, cfg, 2, full_scan);
                let metrics = sim.run_batch(4, 100);
                let drained = sim.drain(100_000);
                results.push(format!(
                    "{metrics:?}|drained={drained}|in_switches={}",
                    sim.packets_in_switches()
                ));
            }
            assert_eq!(results[0], results[1]);
        }

        #[test]
        fn cycle_by_cycle_state_identical_at_low_load() {
            // Beyond end-of-run metrics: the per-cycle observable state
            // (alive, generated, delivered) must match at every cycle,
            // under both RNG contracts.
            for contract in [RngContract::V1PerServer, RngContract::V2Counting] {
                let mut cfg = SimConfig::quick(2, 4);
                cfg.seed = 13;
                cfg.rng_contract = contract;
                let mut active = build(MechanismSpec::OmniSP, cfg.clone(), 3, false);
                let mut full = build(MechanismSpec::OmniSP, cfg, 3, true);
                active.generation = GenerationMode::Rate { offered_load: 0.2 };
                full.generation = GenerationMode::Rate { offered_load: 0.2 };
                for cycle in 0..2_000 {
                    active.step();
                    full.step();
                    assert_eq!(
                        (
                            active.packets_alive(),
                            active.total_generated(),
                            active.total_delivered(),
                            active.packets_in_switches()
                        ),
                        (
                            full.packets_alive(),
                            full.total_generated(),
                            full.total_delivered(),
                            full.packets_in_switches()
                        ),
                        "state diverged at cycle {cycle} ({contract})"
                    );
                }
            }
        }
    }
}
