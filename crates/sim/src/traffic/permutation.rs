//! Random Server Permutation traffic and fixed permutation patterns in general.

use super::{ServerLayout, TrafficPattern};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::RngCore;

/// A fixed permutation of the servers: every server sends all its traffic to
/// the image of its own index. The paper motivates it as "every server pulls
/// a large file from another server, with those servers selected in a random
/// but balanced way".
#[derive(Clone, Debug)]
pub struct RandomServerPermutation {
    mapping: Vec<usize>,
}

impl RandomServerPermutation {
    /// Draws a uniformly random permutation of the servers using `rng`.
    pub fn new<R: Rng>(layout: &ServerLayout, rng: &mut R) -> Self {
        let mut mapping: Vec<usize> = (0..layout.num_servers()).collect();
        mapping.shuffle(rng);
        RandomServerPermutation { mapping }
    }

    /// Builds the pattern from an explicit permutation (used by tests and by
    /// experiments that need a reproducible mapping).
    ///
    /// # Panics
    /// Panics if `mapping` is not a permutation of `0..len`.
    pub fn from_mapping(mapping: Vec<usize>) -> Self {
        let mut seen = vec![false; mapping.len()];
        for &d in &mapping {
            assert!(d < mapping.len(), "destination {d} out of range");
            assert!(!seen[d], "destination {d} repeated: not a permutation");
            seen[d] = true;
        }
        RandomServerPermutation { mapping }
    }

    /// The underlying mapping.
    pub fn mapping(&self) -> &[usize] {
        &self.mapping
    }
}

impl TrafficPattern for RandomServerPermutation {
    fn name(&self) -> &'static str {
        "Random Server Permutation"
    }

    fn destination(&self, src_server: usize, _rng: &mut dyn RngCore) -> usize {
        self.mapping[src_server]
    }

    fn is_permutation(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::check_permutation_admissible;
    use hyperx_topology::HyperX;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn layout() -> ServerLayout {
        ServerLayout::new(&HyperX::regular(2, 4), 4)
    }

    #[test]
    fn random_permutation_is_admissible() {
        let l = layout();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let p = RandomServerPermutation::new(&l, &mut rng);
        let fixed = check_permutation_admissible(&p, &l).expect("admissible");
        assert!(fixed <= l.num_servers());
        assert!(p.is_permutation());
    }

    #[test]
    fn destination_is_deterministic() {
        let l = layout();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = RandomServerPermutation::new(&l, &mut rng);
        let mut dummy = ChaCha8Rng::seed_from_u64(0);
        for s in 0..l.num_servers() {
            let a = p.destination(s, &mut dummy);
            let b = p.destination(s, &mut dummy);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn from_mapping_accepts_identity() {
        let p = RandomServerPermutation::from_mapping((0..10).collect());
        assert_eq!(p.destination(3, &mut ChaCha8Rng::seed_from_u64(0)), 3);
        assert_eq!(p.mapping().len(), 10);
    }

    #[test]
    #[should_panic]
    fn from_mapping_rejects_duplicates() {
        let _ = RandomServerPermutation::from_mapping(vec![0, 0, 2]);
    }

    #[test]
    #[should_panic]
    fn from_mapping_rejects_out_of_range() {
        let _ = RandomServerPermutation::from_mapping(vec![0, 5, 2]);
    }

    #[test]
    fn different_seeds_give_different_permutations() {
        let l = layout();
        let p1 = RandomServerPermutation::new(&l, &mut ChaCha8Rng::seed_from_u64(1));
        let p2 = RandomServerPermutation::new(&l, &mut ChaCha8Rng::seed_from_u64(2));
        assert_ne!(p1.mapping(), p2.mapping());
    }
}
