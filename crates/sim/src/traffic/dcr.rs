//! Dimension Complement Reverse (DCR) traffic.
//!
//! Introduced for 3D HyperX by the OmniWAR paper: servers at switch
//! `(x, y, z)` send to servers at switch `(z̄, ȳ, x̄)` where `x̄ = k − 1 − x`.
//! This is the adversarial pattern for which Valiant's bound of 0.5 is the
//! best achievable throughput.
//!
//! The SurePath paper adapts it to 2D HyperX by treating the server offset as
//! an extra coordinate: server `(w, x, y)` sends to server `(ȳ, x̄, w̄)`,
//! i.e. the destination switch is `(x̄, w̄)` and the destination offset is `ȳ`.
//! This needs the concentration to equal the side of the network, which is
//! exactly the paper's 2D configuration (16 servers per switch, side 16).

use super::{ServerLayout, TrafficPattern};
use rand::RngCore;

/// Dimension Complement Reverse traffic for 2D and 3D HyperX networks.
#[derive(Clone, Debug)]
pub struct DimensionComplementReverse {
    layout: ServerLayout,
}

impl DimensionComplementReverse {
    /// Builds the pattern.
    ///
    /// # Panics
    /// * 2D networks require `concentration == side` (the server coordinate
    ///   acts as the third reversed dimension).
    /// * Regular sides are required (all dimensions the same side), as in the paper.
    pub fn new(layout: ServerLayout) -> Self {
        let dims = layout.coords().dims();
        let side = layout.coords().side(0);
        assert!(
            layout.coords().sides().iter().all(|&k| k == side),
            "DCR requires a regular HyperX (all sides equal)"
        );
        assert!(
            dims == 2 || dims == 3,
            "DCR is defined for 2D and 3D HyperX networks"
        );
        if dims == 2 {
            assert_eq!(
                layout.concentration(),
                side,
                "the 2D DCR variant uses the server offset as a third coordinate, \
                 so the concentration must equal the side"
            );
        }
        DimensionComplementReverse { layout }
    }
}

impl TrafficPattern for DimensionComplementReverse {
    fn name(&self) -> &'static str {
        "Dimension Complement Reverse"
    }

    fn destination(&self, src_server: usize, _rng: &mut dyn RngCore) -> usize {
        let l = &self.layout;
        let cs = l.coords();
        let k = cs.side(0);
        let comp = |v: usize| k - 1 - v;
        let switch = l.server_switch(src_server);
        let offset = l.server_offset(src_server);
        let c = cs.to_coords(switch);
        match cs.dims() {
            3 => {
                // (x, y, z) → (z̄, ȳ, x̄); the server offset is preserved.
                let dst_switch = cs.to_id(&[comp(c[2]), comp(c[1]), comp(c[0])]);
                l.server_at(dst_switch, offset)
            }
            2 => {
                // (w, x, y) → (ȳ, x̄, w̄): destination switch (x̄, w̄), offset ȳ.
                let dst_switch = cs.to_id(&[comp(c[0]), comp(offset)]);
                l.server_at(dst_switch, comp(c[1]))
            }
            _ => unreachable!("constructor restricts dims to 2 or 3"),
        }
    }

    fn is_permutation(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::check_permutation_admissible;
    use hyperx_topology::HyperX;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dcr_3d_matches_definition() {
        let hx = HyperX::regular(3, 4);
        let l = ServerLayout::new(&hx, 4);
        let t = DimensionComplementReverse::new(l.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let src_switch = hx.switch_id(&[1, 2, 0]);
        let src = l.server_at(src_switch, 3);
        let dst = t.destination(src, &mut rng);
        let expect_switch = hx.switch_id(&[3, 1, 2]);
        assert_eq!(l.server_switch(dst), expect_switch);
        assert_eq!(l.server_offset(dst), 3);
    }

    #[test]
    fn dcr_3d_is_admissible() {
        let hx = HyperX::regular(3, 4);
        let l = ServerLayout::new(&hx, 4);
        let t = DimensionComplementReverse::new(l.clone());
        check_permutation_admissible(&t, &l).expect("admissible");
    }

    #[test]
    fn dcr_2d_matches_paper_text() {
        // Server (w, x, y) sends to (ȳ, x̄, w̄).
        let hx = HyperX::regular(2, 4);
        let l = ServerLayout::new(&hx, 4);
        let t = DimensionComplementReverse::new(l.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let src_switch = hx.switch_id(&[1, 2]); // (x, y) = (1, 2)
        let src = l.server_at(src_switch, 0); // w = 0
        let dst = t.destination(src, &mut rng);
        // Destination: offset ȳ = 1, switch (x̄, w̄) = (2, 3).
        assert_eq!(l.server_offset(dst), 1);
        assert_eq!(l.server_switch(dst), hx.switch_id(&[2, 3]));
    }

    #[test]
    fn dcr_2d_is_admissible() {
        let hx = HyperX::regular(2, 4);
        let l = ServerLayout::new(&hx, 4);
        let t = DimensionComplementReverse::new(l.clone());
        check_permutation_admissible(&t, &l).expect("admissible");
    }

    #[test]
    fn dcr_requires_misrouting_in_3d() {
        // The defining feature: source and destination switches differ in every
        // dimension for most switches, and the pattern is "reversed" so aligned
        // rows get congested. Check the Hamming distance is maximal for a
        // generic switch (no coordinate is its own complement-reverse).
        let hx = HyperX::regular(3, 8);
        let l = ServerLayout::new(&hx, 8);
        let t = DimensionComplementReverse::new(l.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let src_switch = hx.switch_id(&[0, 1, 2]);
        let src = l.server_at(src_switch, 0);
        let dst_switch = l.server_switch(t.destination(src, &mut rng));
        assert_eq!(hx.coords().hamming_distance(src_switch, dst_switch), 3);
    }

    #[test]
    #[should_panic]
    fn dcr_2d_rejects_mismatched_concentration() {
        let hx = HyperX::regular(2, 4);
        let l = ServerLayout::new(&hx, 2);
        let _ = DimensionComplementReverse::new(l);
    }

    #[test]
    #[should_panic]
    fn dcr_rejects_1d() {
        let hx = HyperX::regular(1, 4);
        let l = ServerLayout::new(&hx, 4);
        let _ = DimensionComplementReverse::new(l);
    }
}
