//! Uniform random traffic: the benign reference pattern.

use super::{ServerLayout, TrafficPattern};
use rand::RngCore;

/// Each packet picks a destination uniformly at random among the *other*
/// servers (the paper: "a destination randomly chosen among the other servers").
#[derive(Clone, Debug)]
pub struct UniformTraffic {
    num_servers: usize,
}

impl UniformTraffic {
    /// Builds uniform traffic over the servers of `layout`.
    pub fn new(layout: &ServerLayout) -> Self {
        assert!(
            layout.num_servers() >= 2,
            "uniform traffic needs at least two servers"
        );
        UniformTraffic {
            num_servers: layout.num_servers(),
        }
    }
}

impl TrafficPattern for UniformTraffic {
    fn name(&self) -> &'static str {
        "Uniform"
    }

    fn destination(&self, src_server: usize, rng: &mut dyn RngCore) -> usize {
        // Uniform over the other `n − 1` servers, skipping the source.
        let pick = (rng.next_u64() % (self.num_servers as u64 - 1)) as usize;
        if pick >= src_server {
            pick + 1
        } else {
            pick
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_topology::HyperX;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn layout() -> ServerLayout {
        ServerLayout::new(&HyperX::regular(2, 4), 2)
    }

    #[test]
    fn never_sends_to_itself() {
        let t = UniformTraffic::new(&layout());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for src in 0..32 {
            for _ in 0..200 {
                assert_ne!(t.destination(src, &mut rng), src);
            }
        }
    }

    #[test]
    fn destinations_stay_in_range_and_cover_the_network() {
        let t = UniformTraffic::new(&layout());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut seen = [false; 32];
        for _ in 0..5_000 {
            let d = t.destination(0, &mut rng);
            assert!(d < 32);
            seen[d] = true;
        }
        assert!(
            seen.iter().skip(1).all(|&s| s),
            "every other server should eventually be hit"
        );
        assert!(!seen[0]);
    }

    #[test]
    fn is_not_a_permutation() {
        let t = UniformTraffic::new(&layout());
        assert!(!t.is_permutation());
        assert_eq!(t.name(), "Uniform");
    }
}
