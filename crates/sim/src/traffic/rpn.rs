//! Regular Permutation to Neighbour (RPN) traffic — the new adversarial
//! pattern introduced by the SurePath paper (§4, Figure 3).
//!
//! The 3D HyperX with even side `k` is decomposed into `(k/2)³` embedded
//! `K₂³` hypercubes by pairing consecutive coordinate values. Inside every
//! embedded hypercube a fixed directed Hamiltonian cycle of length 8 is laid
//! out, and every switch sends all its servers' traffic to the same offsets
//! at the next switch of its cycle.
//!
//! Every source/destination switch pair differs in exactly one coordinate, so
//! routes confined to the shared row (as Omnidimensional's are) saturate the
//! `k²/4` row links with `k²/2` server flows, capping throughput at 0.5. Routes
//! that leave the row (Polarized's) can exceed that bound — the core claim of
//! the paper's Regular Permutation to Neighbour analysis.

use super::{ServerLayout, TrafficPattern};
use rand::RngCore;

/// Gray-code Hamiltonian cycle over the 3-bit hypercube, used for every
/// embedded `K₂³`. Successive entries (cyclically) differ in exactly one bit.
const HAMILTONIAN_CYCLE: [usize; 8] = [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100];

/// Regular Permutation to Neighbour traffic for 3D HyperX with even sides.
#[derive(Clone, Debug)]
pub struct RegularPermutationToNeighbour {
    layout: ServerLayout,
    /// Destination switch of every source switch.
    switch_map: Vec<usize>,
}

impl RegularPermutationToNeighbour {
    /// Builds the pattern.
    ///
    /// # Panics
    /// Panics unless the network is a 3D regular HyperX with an even side of
    /// at least 2 (the construction needs `K₂³` blocks).
    pub fn new(layout: ServerLayout) -> Self {
        let cs = layout.coords();
        assert_eq!(cs.dims(), 3, "RPN is defined on 3D HyperX networks");
        let k = cs.side(0);
        assert!(
            cs.sides().iter().all(|&s| s == k),
            "RPN requires a regular HyperX"
        );
        assert!(k >= 2 && k.is_multiple_of(2), "RPN requires an even side");

        // Position of each vertex in the Hamiltonian cycle.
        let mut position = [0usize; 8];
        for (i, &v) in HAMILTONIAN_CYCLE.iter().enumerate() {
            position[v] = i;
        }

        let mut switch_map = vec![0usize; cs.num_switches()];
        #[allow(clippy::needless_range_loop)] // s indexes both coords and map
        for s in 0..cs.num_switches() {
            let c = cs.to_coords(s);
            // Local bits within the embedded hypercube and the block the switch belongs to.
            let bits = (c[0] % 2) | ((c[1] % 2) << 1) | ((c[2] % 2) << 2);
            let next_bits = HAMILTONIAN_CYCLE[(position[bits] + 1) % 8];
            let dst = [
                (c[0] - c[0] % 2) + (next_bits & 1),
                (c[1] - c[1] % 2) + ((next_bits >> 1) & 1),
                (c[2] - c[2] % 2) + ((next_bits >> 2) & 1),
            ];
            switch_map[s] = cs.to_id(&dst);
        }
        RegularPermutationToNeighbour { layout, switch_map }
    }

    /// Destination switch of a source switch.
    pub fn destination_switch(&self, switch: usize) -> usize {
        self.switch_map[switch]
    }
}

impl TrafficPattern for RegularPermutationToNeighbour {
    fn name(&self) -> &'static str {
        "Regular Permutation to Neighbour"
    }

    fn destination(&self, src_server: usize, _rng: &mut dyn RngCore) -> usize {
        let l = &self.layout;
        let dst_switch = self.switch_map[l.server_switch(src_server)];
        l.server_at(dst_switch, l.server_offset(src_server))
    }

    fn is_permutation(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::check_permutation_admissible;
    use hyperx_topology::HyperX;

    fn pattern(side: usize, conc: usize) -> (RegularPermutationToNeighbour, ServerLayout, HyperX) {
        let hx = HyperX::regular(3, side);
        let layout = ServerLayout::new(&hx, conc);
        (
            RegularPermutationToNeighbour::new(layout.clone()),
            layout,
            hx,
        )
    }

    #[test]
    fn hamiltonian_cycle_is_valid() {
        for i in 0..8 {
            let a = HAMILTONIAN_CYCLE[i];
            let b = HAMILTONIAN_CYCLE[(i + 1) % 8];
            assert_eq!(
                (a ^ b).count_ones(),
                1,
                "consecutive vertices must differ in one bit"
            );
        }
        let mut sorted = HAMILTONIAN_CYCLE;
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn destination_switch_is_a_hyperx_neighbour() {
        let (p, _, hx) = pattern(8, 8);
        for s in 0..hx.num_switches() {
            let d = p.destination_switch(s);
            assert_ne!(s, d);
            assert_eq!(
                hx.coords().hamming_distance(s, d),
                1,
                "destination must be a neighbour"
            );
        }
    }

    #[test]
    fn pattern_is_an_admissible_permutation() {
        let (p, layout, _) = pattern(4, 4);
        let fixed = check_permutation_admissible(&p, &layout).expect("admissible");
        assert_eq!(fixed, 0, "no server sends to itself");
    }

    #[test]
    fn stays_within_the_embedded_hypercube() {
        let (p, _, hx) = pattern(8, 8);
        for s in 0..hx.num_switches() {
            let c = hx.switch_coords(s);
            let d = hx.switch_coords(p.destination_switch(s));
            for dim in 0..3 {
                assert_eq!(c[dim] / 2, d[dim] / 2, "blocks must be preserved");
            }
        }
    }

    #[test]
    fn rows_carry_zero_or_half_side_confined_pairs() {
        // Paper §4: "in every Kk subgraph (full rows in any dimension) there
        // are exactly either 0 source/destination pairs or k/2 disjoint pairs".
        let (p, _, hx) = pattern(8, 8);
        let k = 8usize;
        let cs = hx.coords();
        for dim in 0..3 {
            // Enumerate rows along `dim` by fixing the other two coordinates.
            for fixed_a in 0..k {
                for fixed_b in 0..k {
                    let mut confined = 0usize;
                    let mut endpoints = std::collections::HashSet::new();
                    for v in 0..k {
                        let mut coords = [0usize; 3];
                        let others: Vec<usize> = (0..3).filter(|&d| d != dim).collect();
                        coords[dim] = v;
                        coords[others[0]] = fixed_a;
                        coords[others[1]] = fixed_b;
                        let s = cs.to_id(&coords);
                        let d = p.destination_switch(s);
                        let dc = cs.to_coords(d);
                        let in_row = (0..3).all(|dd| dd == dim || dc[dd] == coords[dd]);
                        if in_row {
                            confined += 1;
                            assert!(endpoints.insert(s), "pairs must be disjoint");
                            assert!(endpoints.insert(d), "pairs must be disjoint");
                        }
                    }
                    assert!(
                        confined == 0 || confined == k / 2,
                        "row dim {dim} ({fixed_a},{fixed_b}) has {confined} confined pairs"
                    );
                }
            }
        }
    }

    #[test]
    fn server_offsets_are_preserved() {
        let (p, layout, _) = pattern(4, 4);
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        for src in 0..layout.num_servers() {
            let dst = p.destination(src, &mut rng);
            assert_eq!(layout.server_offset(src), layout.server_offset(dst));
        }
    }

    #[test]
    #[should_panic]
    fn odd_side_rejected() {
        let hx = HyperX::regular(3, 3);
        let layout = ServerLayout::new(&hx, 3);
        let _ = RegularPermutationToNeighbour::new(layout);
    }

    #[test]
    #[should_panic]
    fn two_dimensional_rejected() {
        let hx = HyperX::regular(2, 4);
        let layout = ServerLayout::new(&hx, 4);
        let _ = RegularPermutationToNeighbour::new(layout);
    }
}
