//! Extension traffic patterns beyond the paper's four (§4).
//!
//! These patterns are not part of the paper's evaluation; they back the
//! ablation and stress benches of this reproduction (DESIGN.md documents the
//! motivation of each):
//!
//! * [`Transpose`] — the classic adversarial permutation for multi-dimensional
//!   direct networks: the destination switch has the source's coordinates
//!   reversed (no complement). Admissible.
//! * [`NeighbourShift`] — every switch sends to the next switch along
//!   dimension 0, one minimal hop away. Admissible; useful to measure how much
//!   load the escape subnetwork alone can carry (all of its routes are minimal
//!   for this pattern, §3.2's "the escape subnetwork contains shortest paths").
//! * [`HotspotIncast`] — a configurable fraction of servers aim at the servers
//!   of one hotspot switch. **Not admissible** (deliberate endpoint
//!   contention): it reproduces in isolation the in-cast congestion the paper
//!   analyses at the Star-faulted escape root in §6 / Figure 10.

use super::{ServerLayout, TrafficPattern};
use rand::{Rng, RngCore};

/// Coordinate-reversal (transpose) permutation: switch `(x₁, …, xₙ)` sends to
/// switch `(xₙ, …, x₁)`, preserving the server offset.
#[derive(Clone, Debug)]
pub struct Transpose {
    layout: ServerLayout,
}

impl Transpose {
    /// Builds the pattern.
    ///
    /// # Panics
    /// Panics unless the HyperX is regular (all sides equal), otherwise the
    /// reversed coordinate vector may be out of range.
    pub fn new(layout: ServerLayout) -> Self {
        let side = layout.coords().side(0);
        assert!(
            layout.coords().sides().iter().all(|&k| k == side),
            "Transpose requires a regular HyperX (all sides equal)"
        );
        Transpose { layout }
    }
}

impl TrafficPattern for Transpose {
    fn name(&self) -> &'static str {
        "Transpose"
    }

    fn destination(&self, src_server: usize, _rng: &mut dyn RngCore) -> usize {
        let l = &self.layout;
        let cs = l.coords();
        let mut c = cs.to_coords(l.server_switch(src_server));
        c.reverse();
        l.server_at(cs.to_id(&c), l.server_offset(src_server))
    }

    fn is_permutation(&self) -> bool {
        true
    }
}

/// Nearest-neighbour shift: switch `(x₁, x₂, …)` sends to
/// `((x₁ + 1) mod k₁, x₂, …)`, preserving the server offset. Every route is a
/// single minimal hop.
#[derive(Clone, Debug)]
pub struct NeighbourShift {
    layout: ServerLayout,
}

impl NeighbourShift {
    /// Builds the pattern.
    pub fn new(layout: ServerLayout) -> Self {
        assert!(
            layout.coords().side(0) >= 2,
            "NeighbourShift needs at least two switches along dimension 0"
        );
        NeighbourShift { layout }
    }
}

impl TrafficPattern for NeighbourShift {
    fn name(&self) -> &'static str {
        "Neighbour Shift"
    }

    fn destination(&self, src_server: usize, _rng: &mut dyn RngCore) -> usize {
        let l = &self.layout;
        let cs = l.coords();
        let switch = l.server_switch(src_server);
        let mut c = cs.to_coords(switch);
        c[0] = (c[0] + 1) % cs.side(0);
        l.server_at(cs.to_id(&c), l.server_offset(src_server))
    }

    fn is_permutation(&self) -> bool {
        true
    }
}

/// In-cast hotspot traffic: with probability `hot_fraction` a packet goes to a
/// uniformly chosen server of the hotspot switch, otherwise to a uniformly
/// chosen server anywhere else.
///
/// This pattern is intentionally **not** admissible — the hotspot switch's
/// ejection ports become the bottleneck — mirroring the in-cast contention the
/// paper identifies at the Star-faulted root (§6, Figure 10 discussion).
#[derive(Clone, Debug)]
pub struct HotspotIncast {
    layout: ServerLayout,
    hotspot_switch: usize,
    hot_fraction: f64,
}

impl HotspotIncast {
    /// Builds the pattern aiming at `hotspot_switch` with the given fraction
    /// of hot traffic.
    ///
    /// # Panics
    /// Panics if the switch is out of range or the fraction is outside `[0, 1]`.
    pub fn new(layout: ServerLayout, hotspot_switch: usize, hot_fraction: f64) -> Self {
        assert!(
            hotspot_switch < layout.num_switches(),
            "hotspot switch {hotspot_switch} out of range"
        );
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot fraction must be within [0, 1]"
        );
        HotspotIncast {
            layout,
            hotspot_switch,
            hot_fraction,
        }
    }

    /// The switch the hot traffic converges on.
    pub fn hotspot_switch(&self) -> usize {
        self.hotspot_switch
    }
}

impl TrafficPattern for HotspotIncast {
    fn name(&self) -> &'static str {
        "Hotspot In-cast"
    }

    fn destination(&self, src_server: usize, rng: &mut dyn RngCore) -> usize {
        let l = &self.layout;
        let hot = rng.gen_bool(self.hot_fraction);
        if hot {
            let offset = rng.gen_range(0..l.concentration());
            let dst = l.server_at(self.hotspot_switch, offset);
            if dst != src_server {
                return dst;
            }
        }
        // Cold traffic (or a hot pick that landed on ourselves): uniform over
        // all other servers.
        loop {
            let dst = rng.gen_range(0..l.num_servers());
            if dst != src_server {
                return dst;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::check_permutation_admissible;
    use hyperx_topology::HyperX;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn layout(dims: usize, side: usize, conc: usize) -> ServerLayout {
        ServerLayout::new(&HyperX::regular(dims, side), conc)
    }

    #[test]
    fn transpose_reverses_coordinates() {
        let hx = HyperX::regular(3, 4);
        let l = ServerLayout::new(&hx, 2);
        let t = Transpose::new(l.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let src_switch = hx.switch_id(&[1, 2, 3]);
        let src = l.server_at(src_switch, 1);
        let dst = t.destination(src, &mut rng);
        assert_eq!(l.server_switch(dst), hx.switch_id(&[3, 2, 1]));
        assert_eq!(l.server_offset(dst), 1);
        assert!(t.is_permutation());
    }

    #[test]
    fn transpose_is_admissible() {
        let l = layout(2, 4, 4);
        let t = Transpose::new(l.clone());
        check_permutation_admissible(&t, &l).expect("admissible");
    }

    #[test]
    fn transpose_has_fixed_points_on_the_diagonal() {
        let hx = HyperX::regular(2, 4);
        let l = ServerLayout::new(&hx, 1);
        let t = Transpose::new(l.clone());
        let fixed = check_permutation_admissible(&t, &l).unwrap();
        // Diagonal switches (x, x) map to themselves: 4 of them.
        assert_eq!(fixed, 4);
    }

    #[test]
    #[should_panic]
    fn transpose_rejects_irregular_sides() {
        let hx = HyperX::new(&[4, 3]);
        let _ = Transpose::new(ServerLayout::new(&hx, 2));
    }

    #[test]
    fn neighbour_shift_is_one_minimal_hop() {
        let hx = HyperX::regular(2, 4);
        let l = ServerLayout::new(&hx, 2);
        let t = NeighbourShift::new(l.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for src in 0..l.num_servers() {
            let dst = t.destination(src, &mut rng);
            let a = l.server_switch(src);
            let b = l.server_switch(dst);
            assert_eq!(hx.coords().hamming_distance(a, b), 1);
            assert_eq!(l.server_offset(src), l.server_offset(dst));
        }
    }

    #[test]
    fn neighbour_shift_is_admissible() {
        let l = layout(3, 3, 2);
        let t = NeighbourShift::new(l.clone());
        assert_eq!(check_permutation_admissible(&t, &l).unwrap(), 0);
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let l = layout(2, 4, 4);
        let hot_switch = 5usize;
        let t = HotspotIncast::new(l.clone(), hot_switch, 0.8);
        assert_eq!(t.hotspot_switch(), hot_switch);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut hot_hits = 0usize;
        let trials = 4000usize;
        for i in 0..trials {
            let src = i % l.num_servers();
            let dst = t.destination(src, &mut rng);
            assert!(dst < l.num_servers());
            assert_ne!(dst, src);
            if l.server_switch(dst) == hot_switch {
                hot_hits += 1;
            }
        }
        let ratio = hot_hits as f64 / trials as f64;
        assert!(ratio > 0.6, "hot ratio {ratio} too low");
        assert!(ratio < 0.95, "hot ratio {ratio} suspiciously high");
    }

    #[test]
    fn hotspot_with_zero_fraction_is_uniform_like() {
        let l = layout(2, 4, 2);
        let t = HotspotIncast::new(l.clone(), 0, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(t.destination(7, &mut rng));
        }
        // With 32 servers and 500 draws, a uniform pattern touches most of them.
        assert!(seen.len() > 20);
        assert!(!seen.contains(&7));
    }

    #[test]
    #[should_panic]
    fn hotspot_rejects_bad_fraction() {
        let l = layout(2, 4, 2);
        let _ = HotspotIncast::new(l, 0, 1.5);
    }

    #[test]
    #[should_panic]
    fn hotspot_rejects_out_of_range_switch() {
        let l = layout(2, 4, 2);
        let _ = HotspotIncast::new(l, 99, 0.5);
    }
}
