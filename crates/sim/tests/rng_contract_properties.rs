//! Property tests of the RNG contract v2 building blocks: the binomial
//! counting sampler ([`rand::distributions::Binomial`]) and the
//! without-replacement server sampler
//! ([`hyperx_sim::rng_contract::sample_without_replacement`]).
//!
//! Three families of properties:
//!
//! * **moments** — across random `(n, p, seed)` the sample mean and variance
//!   of the binomial must sit within generous z-score bounds of `np` and
//!   `npq`: the counting sampler is claimed *exact*, not approximate;
//! * **uniformity** — the sampled injector sets must be distinct, sorted,
//!   in-range, and per-index inclusion frequencies must match `k/n` (every
//!   server is equally likely to inject in a cycle — the property that makes
//!   v2 statistically equal to v1's per-server trials);
//! * **byte stability** — for a fixed seed the `k` draw sequence is pinned
//!   to hardcoded values: any change to the sampler's arithmetic is a
//!   contract break and must fail loudly here.

use hyperx_sim::rng_contract::sample_without_replacement;
use proptest::prelude::*;
use rand::distributions::Binomial;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binomial_mean_within_bounds(n in 1u64..4000, p_mille in 1u32..500, seed in 0u64..1 << 48) {
        // p in (0, 0.5]; the flipped side is covered by the complement test.
        let p = f64::from(p_mille) / 1000.0;
        let b = Binomial::new(n, p);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let draws = 600;
        let sum: u64 = (0..draws).map(|_| b.sample(&mut rng)).sum();
        let mean = sum as f64 / f64::from(draws);
        let expect = n as f64 * p;
        // ±6σ of the sampling distribution of the mean: false-failure
        // probability ~1e-9 per case, effectively never across 48 cases.
        let sigma = (n as f64 * p * (1.0 - p) / f64::from(draws)).sqrt();
        prop_assert!(
            (mean - expect).abs() < 6.0 * sigma + 1e-9,
            "n={} p={}: mean {} vs np {} (σ̂ {})", n, p, mean, expect, sigma
        );
    }

    #[test]
    fn binomial_variance_within_bounds(n in 16u64..2048, p_mille in 5u32..500, seed in 0u64..1 << 48) {
        let p = f64::from(p_mille) / 1000.0;
        let b = Binomial::new(n, p);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let draws = 800usize;
        let samples: Vec<f64> = (0..draws).map(|_| b.sample(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / draws as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / draws as f64;
        let expect = n as f64 * p * (1.0 - p);
        // The sample variance of a binomial concentrates like sqrt(2/m)·npq
        // (normal-ish kurtosis); 8 relative sigmas keeps false failures out.
        let rel_tol = 8.0 * (2.0 / draws as f64).sqrt();
        prop_assert!(
            (var - expect).abs() < rel_tol * expect + 0.5,
            "n={} p={}: var {} vs npq {}", n, p, var, expect
        );
    }

    #[test]
    fn binomial_complement_symmetry(n in 1u64..500, p_mille in 500u32..1000, seed in 0u64..1 << 48) {
        // For p > 0.5 the sampler flips internally: mean must still track np.
        let p = f64::from(p_mille) / 1000.0;
        let b = Binomial::new(n, p);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let draws = 600;
        let sum: u64 = (0..draws).map(|_| b.sample(&mut rng)).sum();
        let mean = sum as f64 / f64::from(draws);
        let expect = n as f64 * p;
        let sigma = (n as f64 * p * (1.0 - p) / f64::from(draws)).sqrt();
        prop_assert!((mean - expect).abs() < 6.0 * sigma + 1e-9);
    }

    #[test]
    fn sampled_sets_are_distinct_sorted_in_range(n in 1usize..300, k_scale in 0u32..=100, seed in 0u64..1 << 48) {
        let k = (n * k_scale as usize) / 100;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut stamp = vec![0u64; n];
        let mut out = Vec::new();
        sample_without_replacement(&mut rng, n, k, &mut stamp, 1, &mut out);
        prop_assert_eq!(out.len(), k);
        prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(out.iter().all(|&s| s < n));
        // The stamp array agrees with the returned set.
        let stamped = stamp.iter().filter(|&&s| s == 1).count();
        prop_assert_eq!(stamped, k);
    }

    #[test]
    fn sampled_sets_are_uniform_per_index(seed in 0u64..1 << 48) {
        // Every index must be included with frequency k/n: the per-cycle
        // injection marginal of contract v2 equals v1's Bernoulli p.
        let (n, k, rounds) = (24usize, 6usize, 3000u64);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut stamp = vec![0u64; n];
        let mut out = Vec::new();
        let mut hits = vec![0u64; n];
        for round in 1..=rounds {
            sample_without_replacement(&mut rng, n, k, &mut stamp, round, &mut out);
            for &s in &out {
                hits[s] += 1;
            }
        }
        let expect = rounds as f64 * k as f64 / n as f64; // 750
        let sigma = (rounds as f64 * (k as f64 / n as f64) * (1.0 - k as f64 / n as f64)).sqrt();
        for (idx, &h) in hits.iter().enumerate() {
            prop_assert!(
                (h as f64 - expect).abs() < 5.0 * sigma,
                "index {} hit {} times, expected ~{}", idx, h, expect
            );
        }
    }
}

/// The byte-stability pin of the v2 contract: the exact `k` sequence drawn
/// from a fixed seed at the simulator's operating point. If this test fails,
/// the sampler's arithmetic changed and every v2 store and fixture is
/// invalidated — that requires a contract *v3*, not a silent edit.
#[test]
fn k_draws_byte_stable_for_fixed_seed() {
    let b = Binomial::new(4096, 0.05 / 16.0);
    let mut rng = ChaCha8Rng::seed_from_u64(0xDEAD_BEEF);
    let draws: Vec<u64> = (0..16).map(|_| b.sample(&mut rng)).collect();
    assert_eq!(
        draws,
        vec![14, 15, 8, 12, 10, 10, 15, 9, 13, 13, 14, 15, 14, 15, 19, 15],
        "the v2 binomial draw sequence changed: this is an RNG contract break"
    );

    let b = Binomial::new(512, 0.7 / 16.0);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let draws: Vec<u64> = (0..8).map(|_| b.sample(&mut rng)).collect();
    assert_eq!(
        draws,
        vec![23, 17, 24, 18, 27, 17, 18, 16],
        "the v2 binomial draw sequence changed: this is an RNG contract break"
    );
}

/// Same pin for the placement half: Floyd's walk over a fixed seed.
#[test]
fn sampled_servers_byte_stable_for_fixed_seed() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut stamp = vec![0u64; 64];
    let mut out = Vec::new();
    sample_without_replacement(&mut rng, 64, 6, &mut stamp, 1, &mut out);
    assert_eq!(
        out,
        vec![7, 16, 17, 19, 41, 57],
        "the v2 server-sampling sequence changed: this is an RNG contract break"
    );
}

/// End-to-end byte stability of a v2 run: two simulators with the same
/// (config, seed) must produce identical metrics — and so must a third with
/// a different seed produce different ones (the seed is actually used).
#[test]
fn v2_run_byte_stable_and_seed_sensitive() {
    use hyperx_routing::{MechanismSpec, NetworkView};
    use hyperx_sim::traffic::{ServerLayout, UniformTraffic};
    use hyperx_sim::{RngContract, SimConfig, Simulator};
    use hyperx_topology::HyperX;
    use std::sync::Arc;

    let run = |seed: u64| {
        let mut cfg = SimConfig::quick(2, 4);
        cfg.warmup_cycles = 200;
        cfg.measure_cycles = 800;
        cfg.seed = seed;
        cfg.rng_contract = RngContract::V2Counting;
        let hx = HyperX::regular(2, 4);
        let view = Arc::new(NetworkView::healthy(hx, 0));
        let mech = MechanismSpec::OmniSP.build(view.clone(), cfg.num_vcs);
        let layout = ServerLayout::new(view.hyperx(), cfg.servers_per_switch);
        let pattern = Box::new(UniformTraffic::new(&layout));
        let mut sim = Simulator::new(view, mech, pattern, cfg);
        format!("{:?}", sim.run_rate(0.4))
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}

// Sanity cross-check that the proptest strategies above actually exercise
// the chunked path: at the simulator's operating point the chunk size
// exceeds 1 and multiple chunks are drawn.
#[test]
fn operating_point_uses_multiple_chunks() {
    // n·p = 4096 · (0.7/16) = 179.2 ≫ 10, so the decomposition must engage;
    // this just asserts the sampler still lands near the mean there.
    let b = Binomial::new(4096, 0.7 / 16.0);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let draws = 2000;
    let mean = (0..draws).map(|_| b.sample(&mut rng)).sum::<u64>() as f64 / f64::from(draws);
    assert!((mean - 179.2).abs() < 2.0, "mean {mean} far from 179.2");
    // And gen_range interleaving stays healthy (the sampler must not poison
    // the shared stream).
    let v = rng.gen_range(0..4096usize);
    assert!(v < 4096);
}
