//! Property-based tests of the simulator layer: metric invariants, traffic
//! pattern admissibility and packet conservation under random configurations.

use hyperx_routing::{MechanismSpec, NetworkView};
use hyperx_sim::traffic::{
    check_permutation_admissible, DimensionComplementReverse, HotspotIncast, NeighbourShift,
    RandomServerPermutation, RegularPermutationToNeighbour, ServerLayout, TrafficPattern,
    Transpose, UniformTraffic,
};
use hyperx_sim::{jain_index, SimConfig, Simulator};
use hyperx_topology::HyperX;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn jain_index_is_bounded_and_scale_invariant(loads in prop::collection::vec(0.0f64..10.0, 1..40), scale in 0.1f64..100.0) {
        let j = jain_index(&loads);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&j));
        let scaled: Vec<f64> = loads.iter().map(|x| x * scale).collect();
        prop_assert!((jain_index(&scaled) - j).abs() < 1e-9);
    }

    #[test]
    fn jain_index_is_one_for_equal_loads(value in 0.01f64..5.0, n in 1usize..64) {
        let loads = vec![value; n];
        prop_assert!((jain_index(&loads) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_traffic_is_never_self_and_in_range(
        side in 2usize..=5,
        conc in 1usize..=4,
        seed in 0u64..1000,
    ) {
        let hx = HyperX::regular(2, side);
        let layout = ServerLayout::new(&hx, conc);
        let t = UniformTraffic::new(&layout);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for src in 0..layout.num_servers() {
            let d = t.destination(src, &mut rng);
            prop_assert!(d < layout.num_servers());
            prop_assert_ne!(d, src);
        }
    }

    #[test]
    fn random_server_permutation_is_admissible(
        side in 2usize..=5,
        conc in 1usize..=4,
        seed in 0u64..1000,
    ) {
        let hx = HyperX::regular(2, side);
        let layout = ServerLayout::new(&hx, conc);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let t = RandomServerPermutation::new(&layout, &mut rng);
        prop_assert!(check_permutation_admissible(&t, &layout).is_ok());
    }

    #[test]
    fn dcr_3d_is_admissible_and_involutive(side in 2usize..=6, conc in 1usize..=4) {
        let hx = HyperX::regular(3, side);
        let layout = ServerLayout::new(&hx, conc);
        let t = DimensionComplementReverse::new(layout.clone());
        prop_assert!(check_permutation_admissible(&t, &layout).is_ok());
        // Applying the mapping twice returns to the source (it is an involution
        // on switch coordinates), a structural sanity check of the definition.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for src in (0..layout.num_servers()).step_by(conc) {
            let once = t.destination(src, &mut rng);
            let twice = t.destination(once, &mut rng);
            prop_assert_eq!(twice, src);
        }
    }

    #[test]
    fn rpn_is_admissible_and_neighbour_preserving(side in 1usize..=3, conc in 1usize..=3) {
        let side = side * 2; // even sides only
        let hx = HyperX::regular(3, side);
        let layout = ServerLayout::new(&hx, conc);
        let t = RegularPermutationToNeighbour::new(layout.clone());
        prop_assert!(check_permutation_admissible(&t, &layout).is_ok());
        for s in 0..hx.num_switches() {
            let d = t.destination_switch(s);
            prop_assert_eq!(hx.coords().hamming_distance(s, d), 1);
        }
    }

    #[test]
    fn config_total_servers_is_consistent(conc in 1usize..=16, switches in 1usize..=512) {
        let cfg = SimConfig::paper_defaults(conc, 4);
        prop_assert_eq!(cfg.total_servers(switches), conc * switches);
    }

    #[test]
    fn transpose_and_shift_extension_patterns_are_admissible(
        dims in 2usize..=3,
        side in 2usize..=4,
        conc in 1usize..=3,
    ) {
        let hx = HyperX::regular(dims, side);
        let layout = ServerLayout::new(&hx, conc);
        let transpose = Transpose::new(layout.clone());
        prop_assert!(check_permutation_admissible(&transpose, &layout).is_ok());
        let shift = NeighbourShift::new(layout.clone());
        // The shift permutation has no fixed points (it always moves one hop).
        prop_assert_eq!(check_permutation_admissible(&shift, &layout).unwrap(), 0);
    }

    #[test]
    fn hotspot_incast_destinations_are_valid_and_skewed(
        side in 2usize..=4,
        conc in 1usize..=3,
        hot_permille in 300u32..=900,
        seed in 0u64..1000,
    ) {
        let hx = HyperX::regular(2, side);
        let layout = ServerLayout::new(&hx, conc);
        let fraction = hot_permille as f64 / 1000.0;
        let hot_switch = (seed as usize) % layout.num_switches();
        let t = HotspotIncast::new(layout.clone(), hot_switch, fraction);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let draws = 600usize;
        let mut hot_hits = 0usize;
        for i in 0..draws {
            let src = i % layout.num_servers();
            let dst = t.destination(src, &mut rng);
            prop_assert!(dst < layout.num_servers());
            prop_assert_ne!(dst, src);
            if layout.server_switch(dst) == hot_switch {
                hot_hits += 1;
            }
        }
        // The hotspot switch must receive at least roughly its configured share
        // (loose bound: half of the nominal fraction).
        prop_assert!(hot_hits as f64 / draws as f64 > fraction / 2.0);
    }
}

proptest! {
    // End-to-end simulations are comparatively expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_simulations_conserve_packets(
        side in 3usize..=4,
        conc in 1usize..=2,
        load in 0.2f64..0.7,
        mech_idx in 0usize..6,
        seed in 0u64..100,
    ) {
        let spec = MechanismSpec::fault_free_lineup()[mech_idx];
        let hx = HyperX::regular(2, side);
        let view = Arc::new(NetworkView::healthy(hx, 0));
        let num_vcs = spec.default_num_vcs(2);
        let mut cfg = SimConfig::quick(conc, num_vcs);
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 300;
        cfg.seed = seed;
        let mech = spec.build(view.clone(), num_vcs);
        let layout = ServerLayout::new(view.hyperx(), conc);
        let pattern: Box<dyn TrafficPattern> = Box::new(UniformTraffic::new(&layout));
        let mut sim = Simulator::new(view, mech, pattern, cfg);
        sim.run_rate(load);
        let generated = sim.total_generated();
        prop_assert!(sim.drain(200_000), "{} failed to drain", spec);
        prop_assert_eq!(sim.total_delivered(), generated);
        prop_assert_eq!(sim.packets_in_switches(), 0);
        prop_assert_eq!(sim.packets_alive(), 0);
    }
}
