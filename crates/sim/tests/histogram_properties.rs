//! Property tests of [`LatencyHistogram`]: the algebraic laws the report and
//! distributed layers rely on. Merging is exact count addition, so it must be
//! associative and commutative; quantiles must be monotone in `q`; the sparse
//! JSON encoding must round-trip byte-identically (the store is
//! byte-deterministic); and merging per-replica histograms must yield the
//! same percentiles as recording every sample into one histogram — the
//! property that makes "merge replicas, then quantile" equal to a single
//! local run.
//!
//! The vendored proptest has no dependent strategies (`prop_flat_map`), so
//! latency samples are drawn as raw `u64`s; a mix of small exact values and
//! wide-range values keeps both the linear and logarithmic bucket regions
//! exercised.

use hyperx_sim::LatencyHistogram;
use proptest::prelude::*;

/// Latency samples spanning the exact (< 16) and bucketed ranges.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..1 << 40, 0..=64)
}

fn hist_of(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(a in samples(), b in samples()) {
        let mut ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        // (a ∪ b) ∪ c
        let mut left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));
        // a ∪ (b ∪ c)
        let mut bc = hist_of(&b);
        bc.merge(&hist_of(&c));
        let mut right = hist_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn quantiles_are_monotone_in_q(values in samples(), raw_qs in prop::collection::vec(0u32..=1000, 2..=8)) {
        let h = hist_of(&values);
        let mut qs: Vec<f64> = raw_qs.iter().map(|&r| f64::from(r) / 1000.0).collect();
        qs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let quantiles: Vec<Option<u64>> = qs.iter().map(|&q| h.value_at_quantile(q)).collect();
        if values.is_empty() {
            prop_assert!(quantiles.iter().all(Option::is_none));
        } else {
            for pair in quantiles.windows(2) {
                prop_assert!(pair[0].unwrap() <= pair[1].unwrap(), "{:?}", quantiles);
            }
        }
    }

    #[test]
    fn serialization_round_trips_byte_identically(values in samples()) {
        let h = hist_of(&values);
        let json = serde_json::to_string(&h).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &h);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn merged_replicas_quantile_like_a_single_run(a in samples(), b in samples(), c in samples()) {
        // Per-replica histograms merged together...
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        merged.merge(&hist_of(&c));
        // ...must equal one histogram fed every sample (so percentiles match).
        let combined: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let single = hist_of(&combined);
        prop_assert_eq!(&merged, &single);
        for q in [0.5, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.value_at_quantile(q), single.value_at_quantile(q));
        }
    }
}
