//! Property tests of [`CounterRegistry`]: the algebraic laws `--report
//! --counters` and the distributed fold rely on. Merging is exact per-slot
//! addition, so it must be associative and commutative with the zero
//! registry as identity; and the sparse `{"v":1,"c":[[slot,count],...]}`
//! encoding must round-trip byte-identically, because counter fields ride
//! inside byte-deterministic stores.

use hyperx_sim::{Counter, CounterRegistry};
use proptest::prelude::*;

/// Per-slot counts (one value per counter slot; zero slots stay sparse).
fn slot_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..1 << 32, Counter::COUNT)
}

fn registry_of(values: &[u64]) -> CounterRegistry {
    let mut r = CounterRegistry::new();
    for (counter, &n) in Counter::ALL.iter().zip(values) {
        r.add(*counter, n);
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(a in slot_values(), b in slot_values()) {
        let mut ab = registry_of(&a);
        ab.merge(&registry_of(&b));
        let mut ba = registry_of(&b);
        ba.merge(&registry_of(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in slot_values(), b in slot_values(), c in slot_values()) {
        // (a ∪ b) ∪ c
        let mut left = registry_of(&a);
        left.merge(&registry_of(&b));
        left.merge(&registry_of(&c));
        // a ∪ (b ∪ c)
        let mut bc = registry_of(&b);
        bc.merge(&registry_of(&c));
        let mut right = registry_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn zero_registry_is_the_merge_identity(a in slot_values()) {
        let mut merged = registry_of(&a);
        merged.merge(&CounterRegistry::new());
        prop_assert_eq!(&merged, &registry_of(&a));
        let mut from_zero = CounterRegistry::new();
        from_zero.merge(&registry_of(&a));
        prop_assert_eq!(&from_zero, &registry_of(&a));
    }

    #[test]
    fn serialization_round_trips_byte_identically(a in slot_values()) {
        let r = registry_of(&a);
        let json = serde_json::to_string(&r).unwrap();
        let back: CounterRegistry = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &r);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn merged_bytes_equal_sum_bytes(a in slot_values(), b in slot_values()) {
        // Serializing a merge must equal serializing the slot-wise sum: the
        // property that keeps replica-group aggregation byte-deterministic.
        let mut merged = registry_of(&a);
        merged.merge(&registry_of(&b));
        let summed: Vec<u64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        prop_assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&registry_of(&summed)).unwrap()
        );
    }
}
