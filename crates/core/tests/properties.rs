//! Property tests of the campaign-spec string grammars: every
//! programmatically constructible [`FaultScenario`] and [`RootPlacement`]
//! must round-trip through its canonical `key()` string and `parse()`, over
//! *generated* topologies and coordinates — these replace the earlier
//! hand-picked round-trip cases, which only covered the paper's six shapes.
//!
//! The vendored proptest has no dependent strategies (`prop_flat_map`), so
//! coordinates are drawn as raw integers and reduced into range inside the
//! test body — the distribution still covers every anchor of every generated
//! topology.

use proptest::prelude::*;
use surepath_core::{FaultScenario, FaultShape, RootPlacement, RootPolicy};

/// HyperX sides: 2 or 3 dimensions, each side in the simulable 2..=16 range.
fn sides_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..=16, 2..=3)
}

/// Raw coordinate material, reduced modulo each side in the test body.
/// Length 3 covers the widest generated topology; `zip` trims the rest.
fn raw_coords() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..1024, 3..=3)
}

fn coords_within(sides: &[usize], raw: &[usize]) -> Vec<usize> {
    sides.iter().zip(raw).map(|(&k, &r)| r % k).collect()
}

fn assert_round_trip(
    scenario: FaultScenario,
    sides: &[usize],
) -> Result<(), proptest::TestCaseError> {
    let key = scenario.key();
    let reparsed = FaultScenario::parse(&key, sides);
    prop_assert_eq!(
        reparsed.as_ref(),
        Ok(&scenario),
        "key `{}` does not round-trip on {:?}: {:?}",
        key,
        sides,
        reparsed
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_scenarios_round_trip(count in 0usize..5000, seed in 0u64..u64::MAX) {
        let sides = vec![8usize, 8];
        assert_round_trip(FaultScenario::Random { count, seed }, &sides)?;
    }

    #[test]
    fn row_shapes_round_trip(sides in sides_strategy(), dim_raw in 0usize..64, raw in raw_coords()) {
        let along_dim = dim_raw % sides.len();
        let at = coords_within(&sides, &raw);
        assert_round_trip(
            FaultScenario::Shape(FaultShape::Row { along_dim, at }),
            &sides,
        )?;
    }

    #[test]
    fn subgrid_shapes_round_trip(sides in sides_strategy(), size_raw in 0usize..64, raw in raw_coords()) {
        // A subgrid must fit: pick a size within the smallest side, then an
        // anchor leaving room for it in every dimension.
        let min_side = *sides.iter().min().unwrap();
        let size = 1 + size_raw % min_side;
        let low: Vec<usize> = sides
            .iter()
            .zip(&raw)
            .map(|(&k, &r)| r % (k - size + 1))
            .collect();
        assert_round_trip(
            FaultScenario::Shape(FaultShape::Subgrid { low, size }),
            &sides,
        )?;
    }

    #[test]
    fn cross_shapes_round_trip(sides in sides_strategy(), margin_raw in 0usize..64, raw in raw_coords()) {
        // The cross margin must leave at least one faulty link per side.
        let min_side = *sides.iter().min().unwrap();
        let margin = margin_raw % min_side;
        let center = coords_within(&sides, &raw);
        assert_round_trip(
            FaultScenario::Shape(FaultShape::Cross { center, margin }),
            &sides,
        )?;
    }

    #[test]
    fn scenario_keys_are_rejected_on_topologies_that_cannot_hold_them(
        sides in sides_strategy(),
        raw in raw_coords(),
    ) {
        // A row anchored at exactly the side length lies outside the
        // topology: the coordinate validator must reject the key rather than
        // wrap or clamp it.
        let mut at = coords_within(&sides, &raw);
        at[0] = sides[0]; // first coordinate out of range
        let scenario = FaultScenario::Shape(FaultShape::Row { along_dim: 0, at });
        prop_assert!(FaultScenario::parse(&scenario.key(), &sides).is_err());
    }

    #[test]
    fn switch_root_placements_round_trip(id in 0usize..1_000_000) {
        let placement = RootPlacement::Switch(id);
        prop_assert_eq!(RootPlacement::parse(&placement.key()), Ok(placement));
    }

    #[test]
    fn policy_and_suggested_root_placements_round_trip(which in 0usize..4) {
        let placement = match which {
            0 => RootPlacement::Suggested,
            1 => RootPlacement::Policy(RootPolicy::MaxAliveDegree),
            2 => RootPlacement::Policy(RootPolicy::MinEccentricity),
            _ => RootPlacement::Policy(RootPolicy::MinTotalDistance),
        };
        prop_assert_eq!(RootPlacement::parse(&placement.key()), Ok(placement));
    }

    #[test]
    fn scenario_keys_are_canonical(sides in sides_strategy(), raw in raw_coords(), margin_raw in 0usize..64) {
        // key() is a left inverse of parse() *and* parse(key()).key() is a
        // fixed point: parsing a canonical key and re-keying changes nothing.
        let min_side = *sides.iter().min().unwrap();
        let margin = margin_raw % min_side;
        let center = coords_within(&sides, &raw);
        let scenario = FaultScenario::Shape(FaultShape::Cross { center, margin });
        let key = scenario.key();
        let reparsed = FaultScenario::parse(&key, &sides).unwrap();
        prop_assert_eq!(reparsed.key(), key);
    }
}
