//! Report emitters: aligned text tables and CSV for the benchmark binaries.

use crate::sweep::SweepPoint;
use serde::{Deserialize, Serialize};

/// A generic row of a report table: a label and a set of named columns.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReportRow {
    /// Row label (e.g. a mechanism name).
    pub label: String,
    /// Column values, in the order of the table's header.
    pub values: Vec<String>,
}

/// Renders rows as an aligned plain-text table.
pub fn format_table(header: &[&str], rows: &[ReportRow]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        widths[0] = widths[0].max(row.label.len());
        for (i, v) in row.values.iter().enumerate() {
            if i + 1 < widths.len() {
                widths[i + 1] = widths[i + 1].max(v.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        line.push_str(&format!("{:<width$}  ", h, width = widths[i]));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        let mut line = format!("{:<width$}  ", row.label, width = widths[0]);
        for (i, v) in row.values.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", v, width = widths[i + 1]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats sweep points as the table the figure binaries print: one row per
/// (mechanism, traffic, scenario, load) with the three paper metrics.
pub fn format_rate_table(points: &[SweepPoint]) -> String {
    let header = [
        "mechanism",
        "traffic",
        "scenario",
        "offered",
        "accepted",
        "latency",
        "jain",
        "escape%",
    ];
    let rows: Vec<ReportRow> = points
        .iter()
        .map(|p| ReportRow {
            label: p.mechanism.clone(),
            values: vec![
                p.traffic.clone(),
                p.scenario.clone(),
                format!("{:.2}", p.offered_load),
                format!("{:.3}", p.metrics.accepted_load),
                format!("{:.1}", p.metrics.average_latency),
                format!("{:.3}", p.metrics.jain_generated),
                format!("{:.1}", 100.0 * p.metrics.escape_fraction),
            ],
        })
        .collect();
    format_table(&header, &rows)
}

/// Serializes sweep points as CSV (with a header line), ready for plotting.
pub fn rate_metrics_to_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "mechanism,traffic,scenario,offered_load,accepted_load,generated_load,average_latency,jain_generated,escape_fraction,average_hops,delivered_packets,stalled\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{:.4},{:.6},{:.6},{:.3},{:.5},{:.5},{:.3},{},{}\n",
            p.mechanism,
            p.traffic.replace(',', ";"),
            p.scenario.replace(',', ";"),
            p.offered_load,
            p.metrics.accepted_load,
            p.metrics.generated_load,
            p.metrics.average_latency,
            p.metrics.jain_generated,
            p.metrics.escape_fraction,
            p.metrics.average_hops,
            p.metrics.delivered_packets,
            p.metrics.stalled
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_sim::RateMetrics;

    fn dummy_point(mechanism: &str, load: f64, accepted: f64) -> SweepPoint {
        SweepPoint {
            mechanism: mechanism.to_string(),
            traffic: "Uniform".to_string(),
            scenario: "Healthy".to_string(),
            offered_load: load,
            metrics: RateMetrics {
                offered_load: load,
                accepted_load: accepted,
                generated_load: load,
                average_latency: 80.0,
                max_latency: 200,
                jain_generated: 0.999,
                escape_fraction: 0.02,
                average_hops: 2.0,
                delivered_packets: 1000,
                in_flight_at_end: 5,
                stalled: false,
            },
        }
    }

    #[test]
    fn table_is_aligned_and_contains_all_rows() {
        let rows = vec![
            ReportRow {
                label: "OmniSP".into(),
                values: vec!["0.5".into(), "0.48".into()],
            },
            ReportRow {
                label: "PolSP".into(),
                values: vec!["0.5".into(), "0.49".into()],
            },
        ];
        let s = format_table(&["mech", "offered", "accepted"], &rows);
        assert!(s.contains("OmniSP"));
        assert!(s.contains("PolSP"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn rate_table_formats_metrics() {
        let points = vec![
            dummy_point("OmniSP", 0.5, 0.47),
            dummy_point("PolSP", 0.5, 0.49),
        ];
        let s = format_rate_table(&points);
        assert!(s.contains("0.470"));
        assert!(s.contains("0.490"));
        assert!(s.contains("escape%"));
    }

    #[test]
    fn csv_has_header_plus_one_line_per_point() {
        let points = vec![
            dummy_point("Minimal", 0.2, 0.2),
            dummy_point("Valiant", 0.2, 0.2),
        ];
        let csv = rate_metrics_to_csv(&points);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().next().unwrap().starts_with("mechanism,traffic"));
        assert!(csv.contains("Minimal"));
        assert!(csv.contains("Valiant"));
    }
}
