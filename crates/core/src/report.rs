//! Report emitters: aligned text tables and CSV for the benchmark binaries,
//! and renderers that reconstruct figure output **straight from campaign
//! result stores** — no re-simulation. `surepath campaign --report` and the
//! ported figure binaries share these.

use crate::experiment::TrafficSpec;
use crate::scenario::FaultScenario;
use crate::sweep::SweepPoint;
use hyperx_routing::MechanismSpec;
use hyperx_sim::{BatchMetrics, RateMetrics};
use serde::{Deserialize, Serialize};
use surepath_runner::{JobSpec, ResultStore};

/// A generic row of a report table: a label and a set of named columns.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReportRow {
    /// Row label (e.g. a mechanism name).
    pub label: String,
    /// Column values, in the order of the table's header.
    pub values: Vec<String>,
}

/// Renders rows as an aligned plain-text table.
pub fn format_table(header: &[&str], rows: &[ReportRow]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        widths[0] = widths[0].max(row.label.len());
        for (i, v) in row.values.iter().enumerate() {
            if i + 1 < widths.len() {
                widths[i + 1] = widths[i + 1].max(v.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        line.push_str(&format!("{:<width$}  ", h, width = widths[i]));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        let mut line = format!("{:<width$}  ", row.label, width = widths[0]);
        for (i, v) in row.values.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", v, width = widths[i + 1]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats sweep points as the table the figure binaries print: one row per
/// (mechanism, traffic, scenario, load) with the three paper metrics.
pub fn format_rate_table(points: &[SweepPoint]) -> String {
    let header = [
        "mechanism",
        "traffic",
        "scenario",
        "offered",
        "accepted",
        "latency",
        "jain",
        "escape%",
    ];
    let rows: Vec<ReportRow> = points
        .iter()
        .map(|p| ReportRow {
            label: p.mechanism.clone(),
            values: vec![
                p.traffic.clone(),
                p.scenario.clone(),
                format!("{:.2}", p.offered_load),
                format!("{:.3}", p.metrics.accepted_load),
                format!("{:.1}", p.metrics.average_latency),
                format!("{:.3}", p.metrics.jain_generated),
                format!("{:.1}", 100.0 * p.metrics.escape_fraction),
            ],
        })
        .collect();
    format_table(&header, &rows)
}

/// Serializes sweep points as CSV (with a header line), ready for plotting.
pub fn rate_metrics_to_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "mechanism,traffic,scenario,offered_load,accepted_load,generated_load,average_latency,jain_generated,escape_fraction,average_hops,delivered_packets,stalled\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{:.4},{:.6},{:.6},{:.3},{:.5},{:.5},{:.3},{},{}\n",
            p.mechanism,
            p.traffic.replace(',', ";"),
            p.scenario.replace(',', ";"),
            p.offered_load,
            p.metrics.accepted_load,
            p.metrics.generated_load,
            p.metrics.average_latency,
            p.metrics.jain_generated,
            p.metrics.escape_fraction,
            p.metrics.average_hops,
            p.metrics.delivered_packets,
            p.metrics.stalled
        ));
    }
    out
}

/// The paper-facing display names of a stored job: mechanism, traffic and
/// scenario keys mapped back through the same parsers that executed the job.
/// Unparseable values (e.g. custom kinds) fall back to the raw string.
fn display_names(job: &JobSpec) -> (String, String, String) {
    let mechanism = job
        .mechanism
        .as_deref()
        .map(|m| match MechanismSpec::parse(m) {
            Some(spec) => spec.name().to_string(),
            None => m.to_string(),
        })
        .unwrap_or_default();
    let traffic = job
        .traffic
        .as_deref()
        .map(|t| match TrafficSpec::parse(t) {
            Some(spec) => spec.name().to_string(),
            None => t.to_string(),
        })
        .unwrap_or_else(|| TrafficSpec::Uniform.name().to_string());
    let scenario = match job.scenario.as_deref() {
        None => FaultScenario::None.name(),
        Some(s) => match FaultScenario::parse(s, &job.sides) {
            Ok(scenario) => scenario.name(),
            Err(_) => s.to_string(),
        },
    };
    (mechanism, traffic, scenario)
}

/// Reconstructs the sweep points of a campaign's `rate` jobs from a result
/// store, in the store's (canonical grid) order. `campaign = None` takes
/// every rate record. Failed records are skipped — re-run the campaign to
/// heal them.
pub fn rate_points_from_store(store: &ResultStore, campaign: Option<&str>) -> Vec<SweepPoint> {
    store
        .records_in_order()
        .filter(|r| {
            r.status == "ok"
                && r.job.kind == "rate"
                && campaign.is_none_or(|name| r.job.campaign == name)
        })
        .filter_map(|r| {
            let metrics: RateMetrics = serde::Deserialize::deserialize(r.result.as_ref()?).ok()?;
            let (mechanism, traffic, scenario) = display_names(&r.job);
            Some(SweepPoint {
                mechanism,
                traffic,
                scenario,
                offered_load: r.job.load.unwrap_or(metrics.offered_load),
                metrics,
            })
        })
        .collect()
}

/// One completion-time (batch) run recovered from a result store.
#[derive(Clone, Debug)]
pub struct BatchRun {
    /// Owning campaign.
    pub campaign: String,
    /// Mechanism display name (e.g. `OmniSP`).
    pub mechanism: String,
    /// Traffic display name.
    pub traffic: String,
    /// Scenario display name.
    pub scenario: String,
    /// Random seed of the run.
    pub seed: u64,
    /// The stored batch metrics, including the throughput-over-time samples.
    pub metrics: BatchMetrics,
}

/// Reconstructs the batch runs of a campaign from a result store, in the
/// store's (canonical grid) order.
pub fn batch_runs_from_store(store: &ResultStore, campaign: Option<&str>) -> Vec<BatchRun> {
    store
        .records_in_order()
        .filter(|r| {
            r.status == "ok"
                && r.job.kind == "batch"
                && campaign.is_none_or(|name| r.job.campaign == name)
        })
        .filter_map(|r| {
            let metrics: BatchMetrics = serde::Deserialize::deserialize(r.result.as_ref()?).ok()?;
            let (mechanism, traffic, scenario) = display_names(&r.job);
            Some(BatchRun {
                campaign: r.job.campaign.clone(),
                mechanism,
                traffic,
                scenario,
                seed: r.job.seed,
                metrics,
            })
        })
        .collect()
}

/// The display label of a batch run: the mechanism alone when that is
/// unambiguous within `runs` (Figure 10's two-line case), qualified with
/// traffic, scenario and seed when a campaign has several runs per
/// mechanism.
fn batch_run_label(run: &BatchRun, runs: &[BatchRun]) -> String {
    let ambiguous = runs.iter().filter(|r| r.mechanism == run.mechanism).count() > 1;
    if ambiguous {
        format!(
            "{} [{} / {} / seed {}]",
            run.mechanism, run.traffic, run.scenario, run.seed
        )
    } else {
        run.mechanism.clone()
    }
}

/// Formats batch runs as the completion-time lines Figure 10 prints.
pub fn format_batch_table(runs: &[BatchRun]) -> String {
    let mut out = String::new();
    for run in runs {
        out.push_str(&format!(
            "{}: completion time {} cycles, {} packets delivered, average latency {:.1} cycles{}\n",
            batch_run_label(run, runs),
            run.metrics.completion_time,
            run.metrics.delivered_packets,
            run.metrics.average_latency,
            if run.metrics.stalled {
                " (STALLED)"
            } else {
                ""
            }
        ));
    }
    out
}

/// Serializes the throughput-over-time series of batch runs as CSV
/// (Figure 10's curve). Every row carries the full run identity — campaign
/// included — so multi-campaign stores and multi-scenario or multi-seed
/// campaigns stay separable when plotting.
pub fn batch_samples_csv(runs: &[BatchRun]) -> String {
    let mut out = String::from("campaign,mechanism,traffic,scenario,seed,cycle,accepted_load\n");
    for run in runs {
        for sample in &run.metrics.samples {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.6}\n",
                run.campaign,
                run.mechanism,
                run.traffic.replace(',', ";"),
                run.scenario.replace(',', ";"),
                run.seed,
                sample.cycle,
                sample.accepted_load
            ));
        }
    }
    out
}

/// The completion-time ratio between two mechanisms of a batch campaign
/// (the paper's "OmniSP takes ~2.8x PolSP's time" headline). Returns `None`
/// when either mechanism has no completed run — e.g. a filtered or renamed
/// lineup — instead of panicking, so callers can degrade gracefully.
pub fn completion_ratio(runs: &[BatchRun], numerator: &str, denominator: &str) -> Option<f64> {
    let find = |name: &str| runs.iter().find(|r| r.mechanism == name);
    let num = find(numerator)?;
    let den = find(denominator)?;
    Some(num.metrics.completion_time as f64 / den.metrics.completion_time.max(1) as f64)
}

/// Renders everything a store contains as a human-readable report, grouped
/// by campaign and kind in the store's canonical order: rate campaigns as
/// the figure tables, batch campaigns as completion-time lines plus their
/// throughput series, custom kinds and failures as summaries. This is the
/// engine of `surepath campaign --report` — figures come straight from the
/// store, no simulation.
pub fn report_store(store: &ResultStore) -> String {
    let mut out = String::new();
    let mut groups: Vec<(String, String)> = Vec::new();
    for record in store.records_in_order() {
        let key = (record.job.campaign.clone(), record.job.kind.clone());
        if !groups.contains(&key) {
            groups.push(key);
        }
    }
    if groups.is_empty() {
        out.push_str("store is empty\n");
        return out;
    }
    for (campaign, kind) in &groups {
        let records: Vec<_> = store
            .records_in_order()
            .filter(|r| &r.job.campaign == campaign && &r.job.kind == kind)
            .collect();
        let ok = records.iter().filter(|r| r.status == "ok").count();
        let failed = records.len() - ok;
        out.push_str(&format!(
            "=== campaign `{campaign}` / kind `{kind}`: {ok} ok, {failed} failed ===\n"
        ));
        match kind.as_str() {
            "rate" => {
                let points = rate_points_from_store(store, Some(campaign));
                out.push_str(&format_rate_table(&points));
            }
            "batch" => {
                let runs = batch_runs_from_store(store, Some(campaign));
                out.push_str(&format_batch_table(&runs));
                out.push('\n');
                out.push_str(&batch_samples_csv(&runs));
            }
            _ => {
                out.push_str(&format!(
                    "(kind `{kind}` is rendered by its owning binary; {ok} result records in store)\n"
                ));
            }
        }
        for record in records.iter().filter(|r| r.status == "failed") {
            out.push_str(&format!(
                "failed: `{}`: {}\n",
                record.job.label(),
                record.error.as_deref().unwrap_or("unknown error")
            ));
        }
        out.push('\n');
    }
    out
}

/// The CSV companion of [`report_store`]: rate points and batch samples of
/// every campaign in the store, concatenated with section headers. Every
/// row leads with its campaign name, so same-named configurations from
/// different campaigns sharing a store stay separable.
pub fn report_csv(store: &ResultStore) -> String {
    let mut out = String::new();
    let mut rate_campaigns: Vec<String> = Vec::new();
    for record in store.records_in_order() {
        if record.job.kind == "rate" && !rate_campaigns.contains(&record.job.campaign) {
            rate_campaigns.push(record.job.campaign.clone());
        }
    }
    if !rate_campaigns.is_empty() {
        let mut sections = rate_campaigns.iter().map(|campaign| {
            (
                campaign,
                rate_metrics_to_csv(&rate_points_from_store(store, Some(campaign))),
            )
        });
        if let Some((first_campaign, first_block)) = sections.next() {
            let header = first_block.lines().next().unwrap_or_default();
            out.push_str(&format!("campaign,{header}\n"));
            for line in first_block.lines().skip(1) {
                out.push_str(&format!("{first_campaign},{line}\n"));
            }
            for (campaign, block) in sections {
                for line in block.lines().skip(1) {
                    out.push_str(&format!("{campaign},{line}\n"));
                }
            }
        }
    }
    let batch_runs = batch_runs_from_store(store, None);
    if !batch_runs.is_empty() {
        out.push_str(&batch_samples_csv(&batch_runs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_sim::RateMetrics;

    fn dummy_point(mechanism: &str, load: f64, accepted: f64) -> SweepPoint {
        SweepPoint {
            mechanism: mechanism.to_string(),
            traffic: "Uniform".to_string(),
            scenario: "Healthy".to_string(),
            offered_load: load,
            metrics: RateMetrics {
                offered_load: load,
                accepted_load: accepted,
                generated_load: load,
                average_latency: 80.0,
                max_latency: 200,
                jain_generated: 0.999,
                escape_fraction: 0.02,
                average_hops: 2.0,
                delivered_packets: 1000,
                in_flight_at_end: 5,
                stalled: false,
            },
        }
    }

    #[test]
    fn table_is_aligned_and_contains_all_rows() {
        let rows = vec![
            ReportRow {
                label: "OmniSP".into(),
                values: vec!["0.5".into(), "0.48".into()],
            },
            ReportRow {
                label: "PolSP".into(),
                values: vec!["0.5".into(), "0.49".into()],
            },
        ];
        let s = format_table(&["mech", "offered", "accepted"], &rows);
        assert!(s.contains("OmniSP"));
        assert!(s.contains("PolSP"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn rate_table_formats_metrics() {
        let points = vec![
            dummy_point("OmniSP", 0.5, 0.47),
            dummy_point("PolSP", 0.5, 0.49),
        ];
        let s = format_rate_table(&points);
        assert!(s.contains("0.470"));
        assert!(s.contains("0.490"));
        assert!(s.contains("escape%"));
    }

    #[test]
    fn csv_has_header_plus_one_line_per_point() {
        let points = vec![
            dummy_point("Minimal", 0.2, 0.2),
            dummy_point("Valiant", 0.2, 0.2),
        ];
        let csv = rate_metrics_to_csv(&points);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().next().unwrap().starts_with("mechanism,traffic"));
        assert!(csv.contains("Minimal"));
        assert!(csv.contains("Valiant"));
    }

    use hyperx_sim::{BatchMetrics, ThroughputSample};
    use surepath_runner::JobSpec;

    fn dummy_batch(mechanism: &str, completion: u64) -> BatchRun {
        BatchRun {
            campaign: "fig10-test".into(),
            mechanism: mechanism.to_string(),
            traffic: "Regular Permutation to Neighbour".into(),
            scenario: "Star".into(),
            seed: 1,
            metrics: BatchMetrics {
                completion_time: completion,
                delivered_packets: 1000,
                samples: vec![
                    ThroughputSample {
                        cycle: 500,
                        accepted_load: 0.4,
                    },
                    ThroughputSample {
                        cycle: completion,
                        accepted_load: 0.1,
                    },
                ],
                average_latency: 150.0,
                stalled: false,
            },
        }
    }

    #[test]
    fn batch_table_and_samples_render_every_run() {
        let runs = vec![dummy_batch("OmniSP", 2800), dummy_batch("PolSP", 1000)];
        let table = format_batch_table(&runs);
        assert!(table.contains("OmniSP: completion time 2800 cycles"));
        assert!(table.contains("PolSP: completion time 1000 cycles"));
        let csv = batch_samples_csv(&runs);
        assert_eq!(csv.lines().count(), 1 + 4, "header + 2 samples per run");
        assert!(
            csv.contains("fig10-test,OmniSP,Regular Permutation to Neighbour,Star,1,500,0.400000")
        );
    }

    #[test]
    fn ambiguous_batch_runs_are_qualified_by_scenario_and_seed() {
        // Two runs of the same mechanism (e.g. a multi-seed campaign) must
        // stay distinguishable in the table and the CSV.
        let mut healthy = dummy_batch("OmniSP", 900);
        healthy.scenario = "Healthy".into();
        healthy.seed = 2;
        let runs = vec![dummy_batch("OmniSP", 2800), healthy];
        let table = format_batch_table(&runs);
        assert!(
            table.contains("OmniSP [Regular Permutation to Neighbour / Star / seed 1]:"),
            "{table}"
        );
        assert!(
            table.contains("OmniSP [Regular Permutation to Neighbour / Healthy / seed 2]:"),
            "{table}"
        );
        let csv = batch_samples_csv(&runs);
        assert!(csv.contains(",Star,1,"), "{csv}");
        assert!(csv.contains(",Healthy,2,"), "{csv}");
    }

    #[test]
    fn completion_ratio_is_graceful_when_a_mechanism_is_missing() {
        let runs = vec![dummy_batch("OmniSP", 2800), dummy_batch("PolSP", 1000)];
        let ratio = completion_ratio(&runs, "OmniSP", "PolSP").unwrap();
        assert!((ratio - 2.8).abs() < 1e-9);

        // Regression: a filtered or renamed lineup must not panic — the old
        // fig10 binary `.unwrap()`ed this exact lookup.
        let only_polsp = vec![dummy_batch("PolSP", 1000)];
        assert_eq!(completion_ratio(&only_polsp, "OmniSP", "PolSP"), None);
        assert_eq!(completion_ratio(&[], "OmniSP", "PolSP"), None);
    }

    fn temp_store(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("surepath-report-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn report_reconstructs_figures_from_a_store_without_simulating() {
        let path = temp_store("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();

        let rate_job = JobSpec {
            campaign: "fig-rate".into(),
            sides: vec![4, 4],
            mechanism: Some("polsp".into()),
            traffic: Some("uniform".into()),
            scenario: Some("none".into()),
            load: Some(0.3),
            ..JobSpec::default()
        };
        let rate_metrics = RateMetrics {
            offered_load: 0.3,
            accepted_load: 0.29,
            generated_load: 0.3,
            average_latency: 88.0,
            max_latency: 301,
            jain_generated: 0.999,
            escape_fraction: 0.01,
            average_hops: 1.9,
            delivered_packets: 4242,
            in_flight_at_end: 3,
            stalled: false,
        };
        store
            .append_ok(&rate_job, serde_json::to_value(&rate_metrics).unwrap())
            .unwrap();

        let batch_job = JobSpec {
            campaign: "fig10".into(),
            kind: "batch".into(),
            sides: vec![4, 4, 4],
            mechanism: Some("omnisp".into()),
            traffic: Some("rpn".into()),
            scenario: Some("star:2,2,2".into()),
            packets_per_server: Some(60),
            sample_window: Some(500),
            ..JobSpec::default()
        };
        store
            .append_ok(
                &batch_job,
                serde_json::to_value(&dummy_batch("OmniSP", 1234).metrics).unwrap(),
            )
            .unwrap();

        let failed_job = JobSpec {
            campaign: "fig-rate".into(),
            seed: 9,
            ..rate_job.clone()
        };
        store
            .append_failed(&failed_job, "simulated crash".into())
            .unwrap();

        // Points come back with paper display names and the stored numbers.
        let points = rate_points_from_store(&store, Some("fig-rate"));
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].mechanism, "PolSP");
        assert_eq!(points[0].traffic, "Uniform");
        assert_eq!(points[0].scenario, "Healthy");
        assert_eq!(points[0].metrics.delivered_packets, 4242);

        let runs = batch_runs_from_store(&store, Some("fig10"));
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].mechanism, "OmniSP");
        assert_eq!(runs[0].scenario, "Star");
        assert_eq!(runs[0].metrics.completion_time, 1234);

        // The full report covers both campaigns and surfaces the failure.
        let report = report_store(&store);
        assert!(
            report.contains("campaign `fig-rate` / kind `rate`"),
            "{report}"
        );
        assert!(
            report.contains("campaign `fig10` / kind `batch`"),
            "{report}"
        );
        assert!(report.contains("OmniSP: completion time 1234 cycles"));
        assert!(report.contains("simulated crash"));

        let csv = report_csv(&store);
        assert!(csv.contains("campaign,mechanism,traffic,scenario"));
        assert!(csv.contains("campaign,mechanism,traffic,scenario,seed,cycle,accepted_load"));
        assert!(csv.contains("fig-rate,PolSP,Uniform,Healthy,"), "{csv}");
        assert!(csv.contains("fig10,OmniSP,"), "{csv}");
        let _ = std::fs::remove_file(&path);
    }
}
