//! Report emitters: aligned text tables and CSV for the benchmark binaries,
//! and renderers that reconstruct figure output **straight from campaign
//! result stores** — no re-simulation. `surepath campaign --report` and the
//! ported figure binaries share these.

use crate::experiment::TrafficSpec;
use crate::scenario::FaultScenario;
use crate::stats::Summary;
use crate::sweep::SweepPoint;
use hyperx_routing::MechanismSpec;
use hyperx_sim::{BatchMetrics, Counter, CounterRegistry, RateMetrics};
use serde::{Deserialize, Serialize};
use surepath_runner::{
    group_replicas, JobSpec, ResultStore, ShardManifest, StoreRecord, TimingRecord, TraceRecord,
};

/// A generic row of a report table: a label and a set of named columns.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReportRow {
    /// Row label (e.g. a mechanism name).
    pub label: String,
    /// Column values, in the order of the table's header.
    pub values: Vec<String>,
}

/// Renders rows as an aligned plain-text table.
pub fn format_table(header: &[&str], rows: &[ReportRow]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        widths[0] = widths[0].max(row.label.len());
        for (i, v) in row.values.iter().enumerate() {
            if i + 1 < widths.len() {
                widths[i + 1] = widths[i + 1].max(v.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        line.push_str(&format!("{:<width$}  ", h, width = widths[i]));
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        let mut line = format!("{:<width$}  ", row.label, width = widths[0]);
        for (i, v) in row.values.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", v, width = widths[i + 1]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats sweep points as the table the figure binaries print: one row per
/// (mechanism, traffic, scenario, load) with the three paper metrics.
pub fn format_rate_table(points: &[SweepPoint]) -> String {
    let mut header = vec![
        "mechanism",
        "traffic",
        "scenario",
        "offered",
        "accepted",
        "latency",
        "jain",
        "escape%",
    ];
    // Percentile columns appear only when at least one point carries a
    // histogram, so reports of pre-histogram stores render byte-identically.
    let with_tail = points.iter().any(|p| p.metrics.latency_hist.is_some());
    if with_tail {
        header.extend(crate::stats::LATENCY_PERCENTILES.iter().map(|l| l.label));
        header.push("max");
    }
    let rows: Vec<ReportRow> = points
        .iter()
        .map(|p| {
            let mut values = vec![
                p.traffic.clone(),
                p.scenario.clone(),
                format!("{:.2}", p.offered_load),
                format!("{:.3}", p.metrics.accepted_load),
                format!("{:.1}", p.metrics.average_latency),
                format!("{:.3}", p.metrics.jain_generated),
                format!("{:.1}", 100.0 * p.metrics.escape_fraction),
            ];
            if with_tail {
                values.extend(latency_percentile_cells(
                    p.metrics.latency_hist.as_ref(),
                    p.metrics.max_latency,
                ));
            }
            ReportRow {
                label: p.mechanism.clone(),
                values,
            }
        })
        .collect();
    format_table(&header, &rows)
}

/// The p50/p99/p99.9/max table cells of one result: a dash for anything
/// absent (pre-histogram results, or nothing delivered).
fn latency_percentile_cells(
    hist: Option<&hyperx_sim::LatencyHistogram>,
    max_latency: Option<u64>,
) -> Vec<String> {
    let mut cells: Vec<String> = crate::stats::LATENCY_PERCENTILES
        .iter()
        .map(|level| {
            hist.and_then(|h| h.value_at_quantile(level.q))
                // Quantiles report bucket upper bounds (≤ 1/16 above the true
                // value); never print one beyond the exact observed maximum.
                .map(|v| max_latency.map_or(v, |m| v.min(m)))
                .map_or_else(|| "-".to_string(), |v| v.to_string())
        })
        .collect();
    cells.push(max_latency.map_or_else(|| "-".to_string(), |v| v.to_string()));
    cells
}

/// Serializes sweep points as CSV (with a header line), ready for plotting.
pub fn rate_metrics_to_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "mechanism,traffic,scenario,offered_load,accepted_load,generated_load,average_latency,latency_p50,latency_p99,latency_p999,max_latency,jain_generated,escape_fraction,average_hops,delivered_packets,stalled\n",
    );
    for p in points {
        let percentile = |q: f64| -> String {
            p.metrics
                .latency_hist
                .as_ref()
                .and_then(|h| h.value_at_quantile(q))
                .map(|v| p.metrics.max_latency.map_or(v, |m| v.min(m)))
                .map_or_else(String::new, |v| v.to_string())
        };
        out.push_str(&format!(
            "{},{},{},{:.4},{:.6},{:.6},{:.3},{},{},{},{},{:.5},{:.5},{:.3},{},{}\n",
            p.mechanism,
            p.traffic.replace(',', ";"),
            p.scenario.replace(',', ";"),
            p.offered_load,
            p.metrics.accepted_load,
            p.metrics.generated_load,
            p.metrics.average_latency,
            percentile(0.50),
            percentile(0.99),
            percentile(0.999),
            p.metrics
                .max_latency
                .map_or_else(String::new, |v| v.to_string()),
            p.metrics.jain_generated,
            p.metrics.escape_fraction,
            p.metrics.average_hops,
            p.metrics.delivered_packets,
            p.metrics.stalled
        ));
    }
    out
}

/// The paper-facing display names of a stored job: mechanism, traffic and
/// scenario keys mapped back through the same parsers that executed the job.
/// Unparseable values (e.g. custom kinds) fall back to the raw string.
fn display_names(job: &JobSpec) -> (String, String, String) {
    let mechanism = job
        .mechanism
        .as_deref()
        .map(|m| match MechanismSpec::parse(m) {
            Some(spec) => spec.name().to_string(),
            None => m.to_string(),
        })
        .unwrap_or_default();
    let traffic = job
        .traffic
        .as_deref()
        .map(|t| match TrafficSpec::parse(t) {
            Some(spec) => spec.name().to_string(),
            None => t.to_string(),
        })
        .unwrap_or_else(|| TrafficSpec::Uniform.name().to_string());
    let scenario = match job.scenario.as_deref() {
        None => FaultScenario::None.name(),
        Some(s) => match FaultScenario::parse(s, &job.sides) {
            Ok(scenario) => scenario.name(),
            Err(_) => s.to_string(),
        },
    };
    (mechanism, traffic, scenario)
}

/// Reconstructs the sweep points of a campaign's `rate` jobs from a result
/// store, in the store's (canonical grid) order. `campaign = None` takes
/// every rate record. Failed records are skipped — re-run the campaign to
/// heal them.
pub fn rate_points_from_store(store: &ResultStore, campaign: Option<&str>) -> Vec<SweepPoint> {
    store
        .records_in_order()
        .filter(|r| {
            r.status == "ok"
                && r.job.kind == "rate"
                && campaign.is_none_or(|name| r.job.campaign == name)
        })
        .filter_map(|r| {
            let metrics: RateMetrics = serde::Deserialize::deserialize(r.result.as_ref()?).ok()?;
            let (mechanism, traffic, scenario) = display_names(&r.job);
            Some(SweepPoint {
                mechanism,
                traffic,
                scenario,
                offered_load: r.job.load.unwrap_or(metrics.offered_load),
                metrics,
            })
        })
        .collect()
}

/// One completion-time (batch) run recovered from a result store.
#[derive(Clone, Debug)]
pub struct BatchRun {
    /// Owning campaign.
    pub campaign: String,
    /// Mechanism display name (e.g. `OmniSP`).
    pub mechanism: String,
    /// Traffic display name.
    pub traffic: String,
    /// Scenario display name.
    pub scenario: String,
    /// Random seed of the run.
    pub seed: u64,
    /// The stored batch metrics, including the throughput-over-time samples.
    pub metrics: BatchMetrics,
}

/// Reconstructs the batch runs of a campaign from a result store, in the
/// store's (canonical grid) order.
pub fn batch_runs_from_store(store: &ResultStore, campaign: Option<&str>) -> Vec<BatchRun> {
    store
        .records_in_order()
        .filter(|r| {
            r.status == "ok"
                && r.job.kind == "batch"
                && campaign.is_none_or(|name| r.job.campaign == name)
        })
        .filter_map(|r| {
            let metrics: BatchMetrics = serde::Deserialize::deserialize(r.result.as_ref()?).ok()?;
            let (mechanism, traffic, scenario) = display_names(&r.job);
            Some(BatchRun {
                campaign: r.job.campaign.clone(),
                mechanism,
                traffic,
                scenario,
                seed: r.job.seed,
                metrics,
            })
        })
        .collect()
}

/// The display label of a batch run: the mechanism alone when that is
/// unambiguous within `runs` (Figure 10's two-line case), qualified with
/// traffic, scenario and seed when a campaign has several runs per
/// mechanism.
fn batch_run_label(run: &BatchRun, runs: &[BatchRun]) -> String {
    let ambiguous = runs.iter().filter(|r| r.mechanism == run.mechanism).count() > 1;
    if ambiguous {
        format!(
            "{} [{} / {} / seed {}]",
            run.mechanism, run.traffic, run.scenario, run.seed
        )
    } else {
        run.mechanism.clone()
    }
}

/// Formats batch runs as the completion-time lines Figure 10 prints.
pub fn format_batch_table(runs: &[BatchRun]) -> String {
    let mut out = String::new();
    for run in runs {
        // The percentile suffix appears only for histogram-bearing results,
        // keeping pre-histogram store renders byte-identical.
        let tail = run
            .metrics
            .latency_hist
            .as_ref()
            .map(format_latency_tail_suffix)
            .unwrap_or_default();
        out.push_str(&format!(
            "{}: completion time {} cycles, {} packets delivered, average latency {:.1} cycles{}{}\n",
            batch_run_label(run, runs),
            run.metrics.completion_time,
            run.metrics.delivered_packets,
            run.metrics.average_latency,
            tail,
            if run.metrics.stalled {
                " (STALLED)"
            } else {
                ""
            }
        ));
    }
    out
}

/// The `, p50/p99/p99.9 a/b/c` suffix of a batch completion line; empty when
/// the histogram recorded nothing.
fn format_latency_tail_suffix(hist: &hyperx_sim::LatencyHistogram) -> String {
    let cells: Vec<String> = crate::stats::LATENCY_PERCENTILES
        .iter()
        .filter_map(|level| hist.value_at_quantile(level.q).map(|v| v.to_string()))
        .collect();
    if cells.is_empty() {
        return String::new();
    }
    let labels: Vec<&str> = crate::stats::LATENCY_PERCENTILES
        .iter()
        .map(|l| l.label)
        .collect();
    format!(", {} {}", labels.join("/"), cells.join("/"))
}

/// Serializes the throughput-over-time series of batch runs as CSV
/// (Figure 10's curve). Every row carries the full run identity — campaign
/// included — so multi-campaign stores and multi-scenario or multi-seed
/// campaigns stay separable when plotting.
pub fn batch_samples_csv(runs: &[BatchRun]) -> String {
    let mut out = String::from("campaign,mechanism,traffic,scenario,seed,cycle,accepted_load\n");
    for run in runs {
        for sample in &run.metrics.samples {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.6}\n",
                run.campaign,
                run.mechanism,
                run.traffic.replace(',', ";"),
                run.scenario.replace(',', ";"),
                run.seed,
                sample.cycle,
                sample.accepted_load
            ));
        }
    }
    out
}

/// The completion-time ratio between two mechanisms of a batch campaign
/// (the paper's "OmniSP takes ~2.8x PolSP's time" headline). Returns `None`
/// when either mechanism has no completed run — e.g. a filtered or renamed
/// lineup — instead of panicking, so callers can degrade gracefully.
pub fn completion_ratio(runs: &[BatchRun], numerator: &str, denominator: &str) -> Option<f64> {
    let find = |name: &str| runs.iter().find(|r| r.mechanism == name);
    let num = find(numerator)?;
    let den = find(denominator)?;
    Some(num.metrics.completion_time as f64 / den.metrics.completion_time.max(1) as f64)
}

/// One campaign grid point recovered from a store with all of its replicas
/// aggregated: per-metric mean / std-dev / CI summaries across the replica
/// seeds (see [`surepath_runner::group_replicas`]).
#[derive(Clone, Debug)]
pub struct ReplicatedStorePoint {
    /// The point fingerprint shared by the replicas.
    pub point: String,
    /// A representative job of the point (the first replica's; only its
    /// `seed` differs between replicas).
    pub job: JobSpec,
    /// Mechanism display name.
    pub mechanism: String,
    /// Traffic display name.
    pub traffic: String,
    /// Scenario display name.
    pub scenario: String,
    /// Offered load of the point.
    pub offered_load: f64,
    /// Number of successfully parsed replica rows.
    pub n: usize,
    /// Accepted-load summary across replicas.
    pub accepted_load: Summary,
    /// Latency summary across replicas.
    pub average_latency: Summary,
    /// Jain-index summary across replicas.
    pub jain_generated: Summary,
    /// Escape-fraction summary across replicas.
    pub escape_fraction: Summary,
    /// The replicas' histograms merged by exact count addition (never
    /// averaged percentiles); `None` when no replica carried one.
    pub latency_hist: Option<hyperx_sim::LatencyHistogram>,
    /// Largest latency over all replicas; `None` when nothing was delivered
    /// or the store predates max-latency tracking.
    pub max_latency: Option<u64>,
}

/// Merges per-replica histograms (exact count addition) and takes the max of
/// per-replica maxima. Both stay `None` when no replica carries them, so
/// pre-histogram stores keep rendering exactly as before.
fn merge_replica_tails(
    hists: impl Iterator<Item = Option<hyperx_sim::LatencyHistogram>>,
    maxima: impl Iterator<Item = Option<u64>>,
) -> (Option<hyperx_sim::LatencyHistogram>, Option<u64>) {
    let mut merged: Option<hyperx_sim::LatencyHistogram> = None;
    for hist in hists.flatten() {
        match &mut merged {
            Some(m) => m.merge(&hist),
            None => merged = Some(hist),
        }
    }
    (merged, maxima.flatten().max())
}

/// Reconstructs the `rate` grid points of a campaign from a result store,
/// one entry per point with its replicas aggregated, in the store's
/// (canonical grid) order. Works for stores written with the `replicas`
/// dimension and for old stores whose seeds were an explicit grid axis —
/// grouping is by point fingerprint either way. Failed records are skipped.
pub fn replicated_rate_points(
    store: &ResultStore,
    campaign: Option<&str>,
) -> Vec<ReplicatedStorePoint> {
    let records = store.records_in_order().filter(|r| {
        r.status == "ok"
            && r.job.kind == "rate"
            && campaign.is_none_or(|name| r.job.campaign == name)
    });
    group_replicas(records)
        .into_iter()
        .filter_map(|(point, replicas)| {
            let runs: Vec<RateMetrics> = replicas
                .iter()
                .filter_map(|r| serde::Deserialize::deserialize(r.result.as_ref()?).ok())
                .collect();
            if runs.is_empty() {
                return None;
            }
            let job = replicas[0].job.clone();
            let (mechanism, traffic, scenario) = display_names(&job);
            let collect = |f: fn(&RateMetrics) -> f64| -> Summary {
                Summary::of_finite(&runs.iter().map(f).collect::<Vec<_>>())
            };
            let (latency_hist, max_latency) = merge_replica_tails(
                runs.iter().map(|m| m.latency_hist.clone()),
                runs.iter().map(|m| m.max_latency),
            );
            Some(ReplicatedStorePoint {
                point,
                offered_load: job.load.unwrap_or(runs[0].offered_load),
                mechanism,
                traffic,
                scenario,
                n: runs.len(),
                accepted_load: collect(|m| m.accepted_load),
                average_latency: collect(|m| m.average_latency),
                jain_generated: collect(|m| m.jain_generated),
                escape_fraction: collect(|m| m.escape_fraction),
                latency_hist,
                max_latency,
                job,
            })
        })
        .collect()
}

/// One batch (closed-loop) grid point with its replicas aggregated.
/// Non-finite per-replica values (a stalled run with no delivered packets
/// has no meaningful latency) are dropped from the summaries, which only
/// shrinks their `n`; `stalled_replicas` counts how many replicas stalled.
#[derive(Clone, Debug)]
pub struct ReplicatedBatchPoint {
    /// The point fingerprint shared by the replicas.
    pub point: String,
    /// A representative job of the point.
    pub job: JobSpec,
    /// Mechanism display name.
    pub mechanism: String,
    /// Traffic display name.
    pub traffic: String,
    /// Scenario display name.
    pub scenario: String,
    /// Number of successfully parsed replica rows.
    pub n: usize,
    /// Completion-time summary across replicas (cycles).
    pub completion_time: Summary,
    /// Delivered-packet summary across replicas.
    pub delivered_packets: Summary,
    /// Latency summary across replicas.
    pub average_latency: Summary,
    /// How many replicas hit the stall watchdog.
    pub stalled_replicas: usize,
    /// The replicas' histograms merged by exact count addition; `None` when
    /// no replica carried one.
    pub latency_hist: Option<hyperx_sim::LatencyHistogram>,
}

/// The batch analogue of [`replicated_rate_points`].
pub fn replicated_batch_points(
    store: &ResultStore,
    campaign: Option<&str>,
) -> Vec<ReplicatedBatchPoint> {
    let records = store.records_in_order().filter(|r| {
        r.status == "ok"
            && r.job.kind == "batch"
            && campaign.is_none_or(|name| r.job.campaign == name)
    });
    group_replicas(records)
        .into_iter()
        .filter_map(|(point, replicas)| {
            let runs: Vec<BatchMetrics> = replicas
                .iter()
                .filter_map(|r| serde::Deserialize::deserialize(r.result.as_ref()?).ok())
                .collect();
            if runs.is_empty() {
                return None;
            }
            let job = replicas[0].job.clone();
            let (mechanism, traffic, scenario) = display_names(&job);
            let collect = |f: fn(&BatchMetrics) -> f64| -> Summary {
                Summary::of_finite(&runs.iter().map(f).collect::<Vec<_>>())
            };
            Some(ReplicatedBatchPoint {
                point,
                mechanism,
                traffic,
                scenario,
                n: runs.len(),
                completion_time: collect(|m| m.completion_time as f64),
                delivered_packets: collect(|m| m.delivered_packets as f64),
                average_latency: collect(|m| m.average_latency),
                stalled_replicas: runs.iter().filter(|m| m.stalled).count(),
                latency_hist: merge_replica_tails(
                    runs.iter().map(|m| m.latency_hist.clone()),
                    std::iter::empty(),
                )
                .0,
                job,
            })
        })
        .collect()
}

/// Renders a replica summary as `mean ±half-width` (the ±2σ/√n CI). A
/// single replica has an infinite-width CI, so only its mean is printed; an
/// empty summary renders as `-`.
pub fn format_mean_hw(summary: &Summary, decimals: usize) -> String {
    if summary.n == 0 {
        "-".to_string()
    } else if summary.n == 1 {
        format!("{:.decimals$}", summary.mean)
    } else {
        format!(
            "{:.decimals$} ±{:.decimals$}",
            summary.mean,
            summary.half_width()
        )
    }
}

/// Renders a replica summary's half-width for a numeric CSV column: the
/// ±2σ/√n value with `decimals` places, or an **empty field** when the
/// half-width is unknown (n < 2 has an infinite CI) — numeric CSV consumers
/// must never see `inf`.
pub fn csv_half_width(summary: &Summary, decimals: usize) -> String {
    let hw = summary.half_width();
    if hw.is_finite() {
        format!("{hw:.decimals$}")
    } else {
        String::new()
    }
}

/// Formats replicated rate points as a mean ± CI table: the replication-aware
/// face of [`format_rate_table`], which `--report` uses whenever a campaign
/// has more than one replica per point.
pub fn format_replicated_rate_table(points: &[ReplicatedStorePoint]) -> String {
    let mut header = vec![
        "mechanism",
        "traffic",
        "scenario",
        "offered",
        "n",
        "accepted",
        "latency",
        "jain",
        "escape%",
    ];
    // Quantiles come from the replicas' *merged* histogram (exact count
    // addition), never from averaging per-replica percentiles. Columns are
    // gated on histogram presence so legacy stores render unchanged.
    let with_tail = points.iter().any(|p| p.latency_hist.is_some());
    if with_tail {
        header.extend(crate::stats::LATENCY_PERCENTILES.iter().map(|l| l.label));
        header.push("max");
    }
    let rows: Vec<ReportRow> = points
        .iter()
        .map(|p| {
            let mut values = vec![
                p.traffic.clone(),
                p.scenario.clone(),
                format!("{:.2}", p.offered_load),
                p.n.to_string(),
                format_mean_hw(&p.accepted_load, 3),
                format_mean_hw(&p.average_latency, 1),
                format_mean_hw(&p.jain_generated, 3),
                format_mean_hw(&p.escape_fraction.scaled(100.0), 1),
            ];
            if with_tail {
                values.extend(latency_percentile_cells(
                    p.latency_hist.as_ref(),
                    p.max_latency,
                ));
            }
            ReportRow {
                label: p.mechanism.clone(),
                values,
            }
        })
        .collect();
    format_table(&header, &rows)
}

/// Formats replicated batch points as completion-time lines with mean ± CI,
/// the replication-aware face of [`format_batch_table`].
pub fn format_replicated_batch_table(points: &[ReplicatedBatchPoint]) -> String {
    let mut out = String::new();
    for p in points {
        let ambiguous = points.iter().filter(|q| q.mechanism == p.mechanism).count() > 1;
        let label = if ambiguous {
            format!("{} [{} / {}]", p.mechanism, p.traffic, p.scenario)
        } else {
            p.mechanism.clone()
        };
        let tail = p
            .latency_hist
            .as_ref()
            .map(format_latency_tail_suffix)
            .unwrap_or_default();
        out.push_str(&format!(
            "{}: completion time {} cycles, {} packets delivered, average latency {} cycles{} (n={}{})\n",
            label,
            format_mean_hw(&p.completion_time, 0),
            format_mean_hw(&p.delivered_packets, 0),
            format_mean_hw(&p.average_latency, 1),
            tail,
            p.n,
            if p.stalled_replicas > 0 {
                format!(", {} STALLED", p.stalled_replicas)
            } else {
                String::new()
            }
        ));
    }
    out
}

/// One metric of a grid point compared between two stores.
#[derive(Clone, Debug)]
pub struct MetricDiff {
    /// Metric name (a stored-result field, e.g. `accepted_load`).
    pub metric: &'static str,
    /// Whether larger values of this metric are better.
    pub higher_is_better: bool,
    /// Display decimals.
    pub decimals: usize,
    /// The baseline store's replica summary.
    pub baseline: Summary,
    /// The candidate store's replica summary.
    pub candidate: Summary,
    /// Whether the means lie outside each other's ±2σ/√n intervals.
    pub significant: bool,
    /// Significant *and* worse in the candidate.
    pub regression: bool,
}

/// One grid point aligned between two stores (by point fingerprint — the
/// job identity minus the seed — so replicated and explicit-seed stores
/// align alike).
#[derive(Clone, Debug)]
pub struct PointDiff {
    /// Human label of the point (display names, no seed).
    pub label: String,
    /// Owning campaign.
    pub campaign: String,
    /// Job kind (`rate` or `batch`).
    pub kind: String,
    /// Per-metric comparisons.
    pub metrics: Vec<MetricDiff>,
}

/// The comparison of two result stores: `surepath campaign --diff`.
#[derive(Clone, Debug, Default)]
pub struct StoreDiff {
    /// Points present in both stores, compared metric by metric.
    pub points: Vec<PointDiff>,
    /// Points only the baseline store has.
    pub baseline_only: usize,
    /// Points only the candidate store has.
    pub candidate_only: usize,
    /// Common points whose kind the diff engine cannot compare
    /// (custom kinds owned by their binaries).
    pub uncompared: usize,
    /// Labels of baseline points whose candidate rows exist but **all
    /// failed**: the candidate could not even complete these jobs, which is
    /// worse than any metric delta and counts as a regression.
    pub candidate_failed: Vec<String>,
    /// Warnings for point pairs that are the same experiment under
    /// **different RNG contract versions** (e.g. baseline `rng=v1`,
    /// candidate `rng=v2`). Their metrics come from different draw-order
    /// distributions, so the diff refuses to compare them metric by metric —
    /// but it also refuses to pass them off as grid mismatches: each pair is
    /// surfaced as an explicit per-point warning. Never a regression.
    pub rng_mismatch: Vec<String>,
}

impl StoreDiff {
    /// Significant metric deltas across all compared points.
    pub fn significant(&self) -> usize {
        self.points
            .iter()
            .flat_map(|p| &p.metrics)
            .filter(|m| m.significant)
            .count()
    }

    /// Significant deltas that are worse in the candidate store.
    pub fn regressions(&self) -> usize {
        self.points
            .iter()
            .flat_map(|p| &p.metrics)
            .filter(|m| m.regression)
            .count()
    }

    /// Significant deltas that are better in the candidate store.
    pub fn improvements(&self) -> usize {
        self.significant() - self.regressions()
    }

    /// Whether the candidate store regressed anywhere — a significant
    /// worse-direction metric delta *or* a point whose candidate jobs all
    /// failed: the `--diff` exit criterion.
    pub fn has_regressions(&self) -> bool {
        self.regressions() > 0 || !self.candidate_failed.is_empty()
    }
}

/// The metrics `--diff` compares per job kind, with the direction that
/// counts as better. `stalled` enters as a 0/1 indicator per replica, so a
/// mechanism that starts stalling shows up as a regression of its mean.
/// The `latency_p*` entries are derived from the stored histogram (see
/// [`metric_value`]) and gate CI on tail regressions the mean can hide;
/// for pre-histogram stores they summarise to n = 0, which is never
/// significant, so old diffs are unaffected.
fn diff_metrics(kind: &str) -> &'static [(&'static str, bool, usize)] {
    match kind {
        "rate" => &[
            ("accepted_load", true, 3),
            ("average_latency", false, 1),
            ("latency_p50", false, 0),
            ("latency_p99", false, 0),
            ("latency_p999", false, 0),
            ("jain_generated", true, 3),
            ("stalled", false, 2),
        ],
        "batch" => &[
            ("completion_time", false, 0),
            ("average_latency", false, 1),
            ("latency_p50", false, 0),
            ("latency_p99", false, 0),
            ("latency_p999", false, 0),
            ("delivered_packets", true, 0),
            ("stalled", false, 2),
        ],
        _ => &[],
    }
}

/// A stored result's metric as f64 (booleans count 0/1), if present.
/// `latency_p*` keys are derived per replica from the result's serialized
/// histogram — each replica contributes its own quantile observation, and
/// the [`Summary`]-level CI-overlap test in `crate::stats` does the rest.
fn metric_value(record: &StoreRecord, metric: &str) -> Option<f64> {
    let result = record.result.as_ref()?;
    if let Some(level) = crate::stats::percentile_level(metric) {
        let hist: hyperx_sim::LatencyHistogram =
            serde::Deserialize::deserialize(result.get("latency_hist")?).ok()?;
        return hist.value_at_quantile(level.q).map(|v| v as f64);
    }
    let value = &result[metric];
    value
        .as_f64()
        .or_else(|| value.as_bool().map(|b| if b { 1.0 } else { 0.0 }))
}

/// The label of a grid point in diff output: the owning campaign, the job's
/// display names and every set dimension except the seed — campaigns with
/// identical grids sharing a store stay distinguishable row by row.
fn point_label(job: &JobSpec) -> String {
    let (mechanism, traffic, scenario) = display_names(job);
    let mut parts = vec![
        job.campaign.clone(),
        job.sides
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("x"),
    ];
    for part in [mechanism, traffic, scenario] {
        if !part.is_empty() {
            parts.push(part);
        }
    }
    if let Some(root) = &job.root {
        parts.push(format!("root={root}"));
    }
    if let Some(vcs) = job.vcs {
        parts.push(format!("vcs={vcs}"));
    }
    if let Some(load) = job.load {
        parts.push(format!("load={load}"));
    }
    if let Some(packets) = job.packets_per_server {
        parts.push(format!("packets={packets}"));
    }
    // Absent = contract v1: legacy labels stay byte-identical.
    if let Some(rng) = &job.rng {
        parts.push(format!("rng={rng}"));
    }
    parts.join(" / ")
}

/// Compares two stores point by point: rows are aligned by fingerprint
/// minus seed, each aligned point's replicas are summarised per metric on
/// both sides, and a delta is **significant** when the means lie outside
/// each other's ±2σ/√n intervals ([`Summary::differs_from`]) — so a
/// single-replica store can never produce a significant delta, and two runs
/// of the same campaign (deterministic per seed) always diff clean. A
/// significant delta in the worse direction is a **regression** — as is a
/// baseline point whose candidate jobs exist but *all failed* (the candidate
/// could not complete them at all), so crashing jobs cannot slip past the
/// exit-code gate.
pub fn diff_stores(baseline: &ResultStore, candidate: &ResultStore) -> StoreDiff {
    diff_stores_filtered(baseline, candidate, None)
}

/// [`diff_stores`] restricted to one campaign: records of other campaigns
/// (both stores) are ignored entirely — they neither compare nor count as
/// baseline-only/candidate-only. `None` compares everything.
pub fn diff_stores_filtered(
    baseline: &ResultStore,
    candidate: &ResultStore,
    campaign: Option<&str>,
) -> StoreDiff {
    let wanted = |r: &&StoreRecord| campaign.is_none_or(|name| r.job.campaign == name);
    fn group<'a>(
        store: &'a ResultStore,
        campaign: Option<&str>,
    ) -> Vec<(String, Vec<&'a StoreRecord>)> {
        group_replicas(
            store
                .records_in_order()
                .filter(|r| r.status == "ok")
                .filter(|r| campaign.is_none_or(|name| r.job.campaign == name)),
        )
    }
    let baseline_groups = group(baseline, campaign);
    let candidate_groups = group(candidate, campaign);
    let candidate_index: std::collections::HashMap<&str, &Vec<&StoreRecord>> = candidate_groups
        .iter()
        .map(|(point, replicas)| (point.as_str(), replicas))
        .collect();
    // Points for which the candidate store has *any* record, failed
    // included — distinguishes "the candidate never ran this point" (grid
    // mismatch, tolerated) from "the candidate ran it and every replica
    // failed" (a regression).
    let candidate_attempted: std::collections::HashSet<String> =
        group_replicas(candidate.records_in_order().filter(wanted))
            .into_iter()
            .map(|(point, _)| point)
            .collect();
    let baseline_points: std::collections::HashSet<&str> = baseline_groups
        .iter()
        .map(|(point, _)| point.as_str())
        .collect();

    // Candidate points absent from the baseline, indexed by the *rng-blind*
    // point fingerprint: an unmatched baseline point that shares this key
    // with one of them is the same experiment under a different RNG contract
    // — a warning, not a pair of grid mismatches. (Equal blind keys with
    // unequal plain keys can only mean the `rng` field differs.)
    let mut candidate_unmatched: Vec<(String, &StoreRecord, bool)> = candidate_groups
        .iter()
        .filter(|(point, _)| !baseline_points.contains(point.as_str()))
        .map(|(_, replicas)| {
            (
                surepath_runner::point_fingerprint_ignoring_rng(&replicas[0].job),
                replicas[0],
                false,
            )
        })
        .collect();
    let rng_name = |job: &JobSpec| job.rng.clone().unwrap_or_else(|| "v1".into());

    let mut diff = StoreDiff::default();
    for (point, baseline_replicas) in &baseline_groups {
        let Some(candidate_replicas) = candidate_index.get(point.as_str()) else {
            if candidate_attempted.contains(point.as_str()) {
                diff.candidate_failed
                    .push(point_label(&baseline_replicas[0].job));
            } else {
                let blind =
                    surepath_runner::point_fingerprint_ignoring_rng(&baseline_replicas[0].job);
                if let Some((_, peer, consumed)) = candidate_unmatched
                    .iter_mut()
                    .find(|(key, _, consumed)| !*consumed && *key == blind)
                {
                    *consumed = true;
                    diff.rng_mismatch.push(format!(
                        "{}: baseline rng={}, candidate rng={}",
                        point_label(&baseline_replicas[0].job),
                        rng_name(&baseline_replicas[0].job),
                        rng_name(&peer.job),
                    ));
                } else {
                    diff.baseline_only += 1;
                }
            }
            continue;
        };
        let job = &baseline_replicas[0].job;
        let specs = diff_metrics(&job.kind);
        if specs.is_empty() {
            diff.uncompared += 1;
            continue;
        }
        let summarise = |replicas: &[&StoreRecord], metric: &str| -> Summary {
            Summary::of_finite(
                &replicas
                    .iter()
                    .filter_map(|r| metric_value(r, metric))
                    .collect::<Vec<_>>(),
            )
        };
        let metrics = specs
            .iter()
            .map(|&(metric, higher_is_better, decimals)| {
                let a = summarise(baseline_replicas, metric);
                let b = summarise(candidate_replicas, metric);
                let significant = a.differs_from(&b);
                let worse = if higher_is_better {
                    b.mean < a.mean
                } else {
                    b.mean > a.mean
                };
                MetricDiff {
                    metric,
                    higher_is_better,
                    decimals,
                    baseline: a,
                    candidate: b,
                    significant,
                    regression: significant && worse,
                }
            })
            .collect();
        diff.points.push(PointDiff {
            label: point_label(job),
            campaign: job.campaign.clone(),
            kind: job.kind.clone(),
            metrics,
        });
    }
    diff.candidate_only = candidate_unmatched
        .iter()
        .filter(|(_, _, consumed)| !consumed)
        .count();
    diff
}

/// Renders a [`StoreDiff`] as the `--diff` regression table: one row per
/// significant metric delta (regressions and improvements), then the
/// counters and the verdict line. Deterministic — two byte-identical store
/// pairs render identically.
pub fn format_store_diff(diff: &StoreDiff) -> String {
    let mut out = String::new();
    let header = [
        "point",
        "metric",
        "baseline",
        "candidate",
        "delta",
        "verdict",
    ];
    let mut rows: Vec<ReportRow> = diff
        .points
        .iter()
        .flat_map(|p| {
            p.metrics
                .iter()
                .filter(|m| m.significant)
                .map(|m| ReportRow {
                    label: p.label.clone(),
                    values: vec![
                        m.metric.to_string(),
                        format_mean_hw(&m.baseline, m.decimals),
                        format_mean_hw(&m.candidate, m.decimals),
                        format!(
                            "{:+.decimals$}",
                            m.candidate.mean - m.baseline.mean,
                            decimals = m.decimals
                        ),
                        if m.regression {
                            "REGRESSION".to_string()
                        } else {
                            "improvement".to_string()
                        },
                    ],
                })
        })
        .collect();
    rows.extend(diff.candidate_failed.iter().map(|label| ReportRow {
        label: label.clone(),
        values: vec![
            "(completion)".to_string(),
            "ok".to_string(),
            "all FAILED".to_string(),
            "-".to_string(),
            "REGRESSION".to_string(),
        ],
    }));
    if rows.is_empty() {
        out.push_str("(no significant per-metric differences)\n");
    } else {
        out.push_str(&format_table(&header, &rows));
    }
    for warning in &diff.rng_mismatch {
        out.push_str(&format!(
            "warning: RNG contract mismatch — {warning}: metrics come from \
             different draw-order distributions; not compared\n"
        ));
    }
    out.push_str(&format!(
        "compared {} points ({} baseline-only, {} candidate-only, {} uncompared kinds, {} candidate-failed)\n",
        diff.points.len(),
        diff.baseline_only,
        diff.candidate_only,
        diff.uncompared,
        diff.candidate_failed.len(),
    ));
    out.push_str(&format!(
        "significant deltas: {} ({} regressions, {} improvements)\n",
        diff.significant(),
        diff.regressions(),
        diff.improvements()
    ));
    if diff.has_regressions() {
        out.push_str(&format!(
            "result: {} regression(s)\n",
            diff.regressions() + diff.candidate_failed.len()
        ));
    } else {
        out.push_str("result: no regressions\n");
    }
    out
}

/// Serializes a [`StoreDiff`] as CSV — **every** compared metric, not just
/// the significant ones, so spreadsheet/plotting consumers see the full
/// comparison surface. Half-width columns are empty when the CI is unknown
/// (n < 2), matching [`csv_half_width`]'s contract.
pub fn store_diff_csv(diff: &StoreDiff) -> String {
    let mut out = String::from(
        "point,campaign,kind,metric,baseline_n,baseline_mean,baseline_hw,candidate_n,candidate_mean,candidate_hw,delta,significant,regression\n",
    );
    for point in &diff.points {
        for m in &point.metrics {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6},{},{},{:.6},{},{:+.6},{},{}\n",
                point.label.replace(',', ";"),
                point.campaign.replace(',', ";"),
                point.kind,
                m.metric,
                m.baseline.n,
                m.baseline.mean,
                csv_half_width(&m.baseline, 6),
                m.candidate.n,
                m.candidate.mean,
                csv_half_width(&m.candidate, 6),
                m.candidate.mean - m.baseline.mean,
                m.significant,
                m.regression
            ));
        }
    }
    for label in &diff.candidate_failed {
        out.push_str(&format!(
            "{},,,completion,,,,,,,,true,true\n",
            label.replace(',', ";")
        ));
    }
    for label in &diff.rng_mismatch {
        out.push_str(&format!(
            "{},,,rng_mismatch,,,,,,,,false,false\n",
            label.replace(',', ";")
        ));
    }
    out
}

/// Renders the slowest jobs of a timings sidecar as an aligned table: the
/// `--report --timings` view. Jobs sort by wall-clock descending (ties by
/// fingerprint so the output is deterministic); `top` bounds the row count.
pub fn format_timings_table(records: &[TimingRecord], top: usize) -> String {
    if records.is_empty() {
        return "(no timing records)\n".to_string();
    }
    let mut sorted: Vec<&TimingRecord> = records.iter().collect();
    sorted.sort_by(|a, b| b.millis.cmp(&a.millis).then(a.fp.cmp(&b.fp)));
    let total_ms: u64 = records.iter().map(|r| r.millis).sum();
    let rows: Vec<ReportRow> = sorted
        .iter()
        .take(top)
        .map(|r| ReportRow {
            label: r.label.clone(),
            values: vec![
                r.worker.clone(),
                format!("{:.3}", r.millis as f64 / 1000.0),
                format!("{:.1}", 100.0 * r.millis as f64 / total_ms.max(1) as f64),
            ],
        })
        .collect();
    let mut out = format_table(&["job", "worker", "seconds", "% of total"], &rows);
    out.push_str(&format!(
        "{} timed jobs, {:.1}s of wall-clock recorded\n",
        records.len(),
        total_ms as f64 / 1000.0
    ));
    // Nearest-rank percentiles over *all* timed jobs (not just the top rows):
    // the distribution summary that replaces eyeballing the slowest-N list.
    let mut millis: Vec<u64> = records.iter().map(|r| r.millis).collect();
    millis.sort_unstable();
    let at = |q: f64| {
        let rank = ((q * millis.len() as f64).ceil() as usize).clamp(1, millis.len());
        millis[rank - 1] as f64 / 1000.0
    };
    out.push_str(&format!(
        "job wall-clock percentiles: p50 {:.3}s, p99 {:.3}s, max {:.3}s\n",
        at(0.50),
        at(0.99),
        millis[millis.len() - 1] as f64 / 1000.0
    ));
    out
}

/// Summarises a shard manifest against its store: how many fingerprints are
/// assigned to workers but not yet complete — "in flight / assigned
/// elsewhere", as opposed to *missing* (never assigned anywhere). This is
/// what lets a `--report` over a mid-campaign distributed store label
/// incomplete points honestly.
pub fn format_manifest_status(manifest: &ShardManifest, store: &ResultStore) -> String {
    let in_flight = manifest.in_flight(&|fp: &str| store.is_complete(fp));
    let done = manifest
        .records_in_order()
        .filter(|r| store.is_complete(&r.fp))
        .count();
    let mut out = format!(
        "manifest: {} assignment(s), {done} delivered, {} in flight\n",
        manifest.len(),
        in_flight.len()
    );
    const SHOWN: usize = 10;
    for record in in_flight.iter().take(SHOWN) {
        out.push_str(&format!(
            "  in flight: {} (shard {}, assigned to `{}`)\n",
            record.fp, record.shard, record.worker
        ));
    }
    if in_flight.len() > SHOWN {
        out.push_str(&format!("  ... and {} more\n", in_flight.len() - SHOWN));
    }
    out
}

/// Renders the engine counters of a store as per-campaign tables: one
/// column per mechanism (first-seen store order), one row per counter slot,
/// each cell the **exact-addition merge** of every successful record's
/// `counters` field — the same algebra the distributed fold uses, so a
/// folded store reports identical numbers to a local run. The
/// `--report --counters` view. Pre-observability records (no `counters`
/// field) contribute nothing; groups where no record carries counters are
/// skipped with a note.
pub fn format_counters_report(store: &ResultStore) -> String {
    let mut out = String::new();
    let groups = store_groups(store);
    if groups.is_empty() {
        out.push_str("store is empty\n");
        return out;
    }
    for (campaign, kind) in &groups {
        out.push_str(&format!(
            "=== counters: campaign `{campaign}` / kind `{kind}` ===\n"
        ));
        // Mechanism display names in first-seen order, each with its merge.
        let mut mechanisms: Vec<String> = Vec::new();
        let mut merged: Vec<CounterRegistry> = Vec::new();
        let mut jobs_with_counters = 0usize;
        for record in store
            .records_in_order()
            .filter(|r| r.status == "ok" && &r.job.campaign == campaign && &r.job.kind == kind)
        {
            let Some(counters) = record.result.as_ref().and_then(|v| v.get("counters")) else {
                continue;
            };
            let Ok(registry) = CounterRegistry::deserialize(counters) else {
                continue;
            };
            jobs_with_counters += 1;
            let (mechanism, _, _) = display_names(&record.job);
            match mechanisms.iter().position(|m| m == &mechanism) {
                Some(i) => merged[i].merge(&registry),
                None => {
                    mechanisms.push(mechanism);
                    merged.push(registry);
                }
            }
        }
        if mechanisms.is_empty() {
            out.push_str("(no counters recorded — store predates the observability schema)\n\n");
            continue;
        }
        let mut header: Vec<&str> = vec!["counter"];
        header.extend(mechanisms.iter().map(String::as_str));
        let rows: Vec<ReportRow> = Counter::ALL
            .iter()
            .map(|&counter| ReportRow {
                label: counter.name().to_string(),
                values: merged.iter().map(|r| r.get(counter).to_string()).collect(),
            })
            .collect();
        out.push_str(&format_table(&header, &rows));
        out.push_str(&format!(
            "counters merged from {jobs_with_counters} job(s)\n\n"
        ));
    }
    out
}

/// Renders a packet-trace sidecar as per-job lifecycle summaries: a per-hop
/// latency breakdown (delivered packets bucketed by hop count, with average
/// end-to-end latency and cycles/hop) and an escape-usage summary. The
/// `surepath trace <store>` view. When `store` is given, job fingerprints
/// resolve to human labels.
pub fn format_trace_report(records: &[TraceRecord], store: Option<&ResultStore>) -> String {
    if records.is_empty() {
        return "(no trace records)\n".to_string();
    }
    let mut out = String::new();
    // Jobs in first-seen sidecar order.
    let mut fps: Vec<&str> = Vec::new();
    for r in records {
        if !fps.contains(&r.fp.as_str()) {
            fps.push(&r.fp);
        }
    }
    for fp in fps {
        let job: Vec<&TraceRecord> = records.iter().filter(|r| r.fp == fp).collect();
        let label = store
            .and_then(|s| {
                s.records_in_order()
                    .find(|r| r.fp == fp)
                    .map(|r| format!("`{}`", r.job.label()))
            })
            .unwrap_or_else(|| format!("fp {fp}"));
        out.push_str(&format!("=== trace: job {label} ===\n"));

        // Lifecycle accounting: inject cycle per packet, then stats at the
        // packet's deliver event.
        let mut injected: Vec<(u64, u64)> = Vec::new(); // (packet, inject cycle)
                                                        // Per hop-count buckets over delivered packets:
                                                        // (hops, packets, total latency, escape users, total escape hops).
        let mut buckets: Vec<(u64, u64, u64, u64, u64)> = Vec::new();
        let mut delivered = 0u64;
        let mut blocks = 0u64;
        for r in &job {
            match r.event.as_str() {
                "inject" => injected.push((r.packet, r.cycle)),
                "block" => blocks += 1,
                "deliver" => {
                    let Some(&(_, inject_cycle)) = injected.iter().find(|(p, _)| *p == r.packet)
                    else {
                        // Inject fell outside the trace buffer: skip the
                        // packet rather than invent a latency.
                        continue;
                    };
                    delivered += 1;
                    let latency = r.cycle.saturating_sub(inject_cycle);
                    let bucket = match buckets.iter_mut().find(|b| b.0 == r.hops) {
                        Some(b) => b,
                        None => {
                            buckets.push((r.hops, 0, 0, 0, 0));
                            buckets.last_mut().expect("just pushed")
                        }
                    };
                    bucket.1 += 1;
                    bucket.2 += latency;
                    if r.escape_hops > 0 {
                        bucket.3 += 1;
                        bucket.4 += r.escape_hops;
                    }
                }
                _ => {}
            }
        }
        out.push_str(&format!(
            "{} event(s): {} packet(s) injected, {} delivered with a traced \
             lifecycle, {} allocation block(s)\n",
            job.len(),
            injected.len(),
            delivered,
            blocks
        ));
        if delivered > 0 {
            buckets.sort_by_key(|b| b.0);
            let rows: Vec<ReportRow> = buckets
                .iter()
                .map(|&(hops, packets, latency, _, _)| ReportRow {
                    label: hops.to_string(),
                    values: vec![
                        packets.to_string(),
                        format!("{:.1}", latency as f64 / packets as f64),
                        format!(
                            "{:.1}",
                            latency as f64 / packets as f64 / hops.max(1) as f64
                        ),
                    ],
                })
                .collect();
            out.push_str(&format_table(
                &["hops", "packets", "avg latency", "avg cycles/hop"],
                &rows,
            ));
            let escape_users: u64 = buckets.iter().map(|b| b.3).sum();
            let escape_hops: u64 = buckets.iter().map(|b| b.4).sum();
            if escape_users > 0 {
                out.push_str(&format!(
                    "escape usage: {escape_users}/{delivered} delivered packet(s) took the \
                     escape tree ({:.1} escape hop(s) each on average)\n",
                    escape_hops as f64 / escape_users as f64
                ));
            } else {
                out.push_str(&format!(
                    "escape usage: 0/{delivered} delivered packet(s) took the escape tree\n"
                ));
            }
        }
        out.push('\n');
    }
    out
}

/// Renders everything a store contains as a human-readable report, grouped
/// by campaign and kind in the store's canonical order: rate campaigns as
/// the figure tables, batch campaigns as completion-time lines plus their
/// throughput series, custom kinds and failures as summaries. This is the
/// engine of `surepath campaign --report` — figures come straight from the
/// store, no simulation.
pub fn report_store(store: &ResultStore) -> String {
    let mut out = String::new();
    let groups = store_groups(store);
    if groups.is_empty() {
        out.push_str("store is empty\n");
        return out;
    }
    for (campaign, kind) in &groups {
        let records: Vec<_> = store
            .records_in_order()
            .filter(|r| &r.job.campaign == campaign && &r.job.kind == kind)
            .collect();
        let ok = records.iter().filter(|r| r.status == "ok").count();
        let failed = records.len() - ok;
        out.push_str(&format!(
            "=== campaign `{campaign}` / kind `{kind}`: {ok} ok, {failed} failed ===\n"
        ));
        match kind.as_str() {
            "rate" => {
                // Replicated campaigns (any point with > 1 replica) render as
                // mean ± CI per point; single-run campaigns keep the classic
                // per-row table, so old stores report byte-identically.
                let replicated = replicated_rate_points(store, Some(campaign));
                if replicated.iter().any(|p| p.n > 1) {
                    out.push_str(&format_replicated_rate_table(&replicated));
                } else {
                    let points = rate_points_from_store(store, Some(campaign));
                    out.push_str(&format_rate_table(&points));
                }
            }
            "batch" => {
                let runs = batch_runs_from_store(store, Some(campaign));
                let replicated = replicated_batch_points(store, Some(campaign));
                if replicated.iter().any(|p| p.n > 1) {
                    out.push_str(&format_replicated_batch_table(&replicated));
                } else {
                    out.push_str(&format_batch_table(&runs));
                }
                out.push('\n');
                out.push_str(&batch_samples_csv(&runs));
            }
            _ => {
                out.push_str(&format!(
                    "(kind `{kind}` is rendered by its owning binary; {ok} result records in store)\n"
                ));
            }
        }
        for record in records.iter().filter(|r| r.status == "failed") {
            out.push_str(&format!(
                "failed: `{}`: {}\n",
                record.job.label(),
                record.error.as_deref().unwrap_or("unknown error")
            ));
        }
        out.push('\n');
    }
    out
}

/// A filesystem-safe artifact stem for a campaign/kind pair.
fn chart_stem(campaign: &str, kind: &str) -> String {
    let sanitize = |s: &str| -> String {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '-'
                }
            })
            .collect()
    };
    format!("{}_{}", sanitize(campaign), sanitize(kind))
}

/// The (campaign, kind) groups of a store, in first-seen store order.
fn store_groups(store: &ResultStore) -> Vec<(String, String)> {
    let mut groups: Vec<(String, String)> = Vec::new();
    for record in store.records_in_order() {
        let key = (record.job.campaign.clone(), record.job.kind.clone());
        if !groups.contains(&key) {
            groups.push(key);
        }
    }
    groups
}

/// The plottable line series of one (campaign, kind) group: the shared
/// data-extraction path behind `--plots` (SVG via [`report_charts`]) and
/// `--gnuplot` (scripts via [`report_gnuplot`]), so the two artifact
/// families can never drift apart.
/// One chart series: `(name, (x, y) points, stroke colour override)`. A
/// `Some` colour pins the series to the cold→hot percentile ramp; `None`
/// takes the palette by index.
type ChartSeries = (String, Vec<(f64, f64)>, Option<&'static str>);

struct ChartData {
    /// Artifact stem suffix distinguishing chart variants of one group
    /// (empty for the primary chart, `_latency` for the percentile variant).
    stem_suffix: &'static str,
    /// Chart title.
    title: String,
    /// X-axis label.
    x_label: &'static str,
    /// Y-axis label.
    y_label: &'static str,
    /// Clamp the y axis to `[0, 1]` (rate charts: loads are normalised).
    unit_y: bool,
    /// Series in deterministic first-seen order.
    series: Vec<ChartSeries>,
}

/// Stroke colours of the latency-percentile series, cold→hot, aligned with
/// [`crate::stats::LATENCY_PERCENTILES`]: the body is cool blue, the deep
/// tail is hot red (the lithos perf-suite convention).
const PERCENTILE_COLORS: [&str; 3] = ["#1f77b4", "#ff7f0e", "#d62728"];

/// Extracts the charts of one (campaign, kind) group, empty when the group
/// has nothing plottable (custom kinds, empty campaigns). Rate campaigns
/// yield the classic accepted-versus-offered chart plus — whenever the store
/// carries histograms — a latency-percentile variant with one cold→hot
/// series triple per configuration.
fn chart_datas(store: &ResultStore, campaign: &str, kind: &str) -> Vec<ChartData> {
    match kind {
        "rate" => {
            let points = replicated_rate_points(store, Some(campaign));
            if points.is_empty() {
                return Vec::new();
            }
            // One series per configuration; the qualifier collapses to
            // the mechanism alone when the campaign has a single
            // traffic/scenario combination (the figures 4/5 layout). A
            // campaign spanning several topologies additionally qualifies by
            // sides — otherwise one series would fold both topologies into a
            // self-overlapping line.
            let multi = points
                .iter()
                .any(|p| (&p.traffic, &p.scenario) != (&points[0].traffic, &points[0].scenario));
            let multi_topology = points.iter().any(|p| p.job.sides != points[0].job.sides);
            let sides_label = |p: &ReplicatedStorePoint| {
                p.job
                    .sides
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join("x")
            };
            let series_name = |p: &ReplicatedStorePoint| {
                let mut name = if multi {
                    format!("{} / {} / {}", p.mechanism, p.traffic, p.scenario)
                } else {
                    p.mechanism.clone()
                };
                if multi_topology {
                    name = format!("{} / {}", sides_label(p), name);
                }
                name
            };
            let mut order: Vec<String> = Vec::new();
            let mut by_name: std::collections::HashMap<String, Vec<(f64, f64)>> =
                std::collections::HashMap::new();
            for p in &points {
                let name = series_name(p);
                if !order.contains(&name) {
                    order.push(name.clone());
                }
                by_name
                    .entry(name)
                    .or_default()
                    .push((p.offered_load, p.accepted_load.mean));
            }
            let mut charts = vec![ChartData {
                stem_suffix: "",
                title: format!("campaign `{campaign}`"),
                x_label: "offered load",
                y_label: "accepted load",
                unit_y: true,
                series: order
                    .iter()
                    .map(|name| {
                        let points = by_name.remove(name).expect("grouped above");
                        (name.clone(), points, None)
                    })
                    .collect(),
            }];
            // The percentile variant: per configuration, one series per tail
            // level from the replicas' merged histogram. Only emitted when
            // the store carries histograms, so legacy stores keep producing
            // exactly the artifacts they always did.
            if points.iter().any(|p| p.latency_hist.is_some()) {
                let mut series = Vec::new();
                for name in &order {
                    for (level, color) in crate::stats::LATENCY_PERCENTILES
                        .iter()
                        .zip(PERCENTILE_COLORS)
                    {
                        let pts: Vec<(f64, f64)> = points
                            .iter()
                            .filter(|p| &series_name(p) == name)
                            .filter_map(|p| {
                                let q = p.latency_hist.as_ref()?.value_at_quantile(level.q)?;
                                Some((p.offered_load, q as f64))
                            })
                            .collect();
                        if !pts.is_empty() {
                            series.push((format!("{name} {}", level.label), pts, Some(color)));
                        }
                    }
                }
                if !series.is_empty() {
                    charts.push(ChartData {
                        stem_suffix: "_latency",
                        title: format!("campaign `{campaign}` (latency percentiles)"),
                        x_label: "offered load",
                        y_label: "latency (cycles)",
                        unit_y: false,
                        series,
                    });
                }
            }
            charts
        }
        "batch" => {
            let runs = batch_runs_from_store(store, Some(campaign));
            let series: Vec<ChartSeries> = runs
                .iter()
                .filter_map(|run| {
                    let samples: Vec<(f64, f64)> = run
                        .metrics
                        .samples
                        .iter()
                        .map(|s| (s.cycle as f64, s.accepted_load))
                        .collect();
                    if samples.is_empty() {
                        return None;
                    }
                    Some((batch_run_label(run, &runs), samples, None))
                })
                .collect();
            if series.is_empty() {
                return Vec::new();
            }
            vec![ChartData {
                stem_suffix: "",
                title: format!("campaign `{campaign}` (throughput over time)"),
                x_label: "cycle",
                y_label: "accepted load",
                unit_y: false,
                series,
            }]
        }
        // Custom kinds are rendered by their owning binaries.
        _ => Vec::new(),
    }
}

/// Builds the `core::plot` SVG artifacts a store supports, one per
/// (campaign, kind) group, straight from the stored records — the plotting
/// face of [`report_store`] (ROADMAP "Richer reports"):
///
/// * `rate` campaigns become accepted-versus-offered line charts, one
///   series per (mechanism, traffic, scenario) with replica means;
/// * `batch` campaigns become throughput-over-time line charts, one series
///   per run.
///
/// Returns `(file stem, svg document)` pairs in store order; kinds with
/// nothing plottable are skipped. `--report --plots <dir>` writes each pair
/// to `<dir>/<stem>.svg`.
pub fn report_charts(store: &ResultStore) -> Vec<(String, String)> {
    use crate::plot::{LineChart, Series};
    let mut charts = Vec::new();
    for (campaign, kind) in store_groups(store) {
        for data in chart_datas(store, &campaign, &kind) {
            let stem = format!("{}{}", chart_stem(&campaign, &kind), data.stem_suffix);
            let mut chart = LineChart::new(data.title, data.x_label, data.y_label);
            if data.unit_y {
                chart = chart.with_y_range(0.0, 1.0);
            }
            for (name, points, color) in data.series {
                let mut series = Series::new(name, points);
                if let Some(color) = color {
                    series = series.with_color(color);
                }
                chart = chart.with_series(series);
            }
            charts.push((stem, chart.to_svg()));
        }
    }
    charts
}

/// One Gnuplot artifact pair of a store group: `<stem>.gp` (the script) and
/// `<stem>.dat` (whitespace-separated series blocks the script indexes).
#[derive(Clone, Debug, PartialEq)]
pub struct GnuplotArtifact {
    /// Filesystem-safe artifact stem (shared with the SVG of the group).
    pub stem: String,
    /// The `.gp` script; running `gnuplot <stem>.gp` in the artifact
    /// directory renders `<stem>.svg`.
    pub script: String,
    /// The `.dat` data file: one `index` block per series, two blank lines
    /// between blocks.
    pub data: String,
}

/// Builds Gnuplot scripts + data files for everything a store can plot,
/// from exactly the same extracted series as [`report_charts`] — the
/// `--report --plots <dir> --gnuplot` artifacts (ROADMAP "Richer reports":
/// Gnuplot script emission). Deterministic: byte-identical stores produce
/// byte-identical artifacts.
pub fn report_gnuplot(store: &ResultStore) -> Vec<GnuplotArtifact> {
    let mut artifacts = Vec::new();
    for (campaign, kind) in store_groups(store) {
        for chart in chart_datas(store, &campaign, &kind) {
            let stem = format!("{}{}", chart_stem(&campaign, &kind), chart.stem_suffix);
            // Gnuplot titles live inside double quotes; keep names printable.
            let quote = |s: &str| s.replace('"', "'");
            let mut data = String::new();
            for (i, (name, points, _)) in chart.series.iter().enumerate() {
                if i > 0 {
                    data.push_str("\n\n");
                }
                data.push_str(&format!("# series {i}: {name}\n"));
                for (x, y) in points {
                    data.push_str(&format!("{x:.6} {y:.6}\n"));
                }
            }
            let mut script = format!(
                "# Generated by `surepath campaign --report --plots <dir> --gnuplot`.\n\
                 # Render with: gnuplot {stem}.gp  (writes {stem}.svg)\n\
                 set title \"{}\"\n\
                 set xlabel \"{}\"\n\
                 set ylabel \"{}\"\n",
                quote(&chart.title),
                chart.x_label,
                chart.y_label
            );
            if chart.unit_y {
                script.push_str("set yrange [0:1]\n");
            }
            script.push_str(
                "set key outside right\nset grid\nset terminal svg size 900,560 dynamic\n",
            );
            script.push_str(&format!("set output \"{stem}.svg\"\n"));
            script.push_str("plot \\\n");
            for (i, (name, _, color)) in chart.series.iter().enumerate() {
                let style = match color {
                    Some(c) => format!("lc rgb \"{c}\" "),
                    None => String::new(),
                };
                script.push_str(&format!(
                    "  \"{stem}.dat\" index {i} using 1:2 with linespoints {style}title \"{}\"{}\n",
                    quote(name),
                    if i + 1 < chart.series.len() {
                        ", \\"
                    } else {
                        ""
                    }
                ));
            }
            artifacts.push(GnuplotArtifact { stem, script, data });
        }
    }
    artifacts
}

/// The CSV companion of [`report_store`]: rate points and batch samples of
/// every campaign in the store, concatenated with section headers. Every
/// row leads with its campaign name, so same-named configurations from
/// different campaigns sharing a store stay separable.
pub fn report_csv(store: &ResultStore) -> String {
    let mut out = String::new();
    let mut rate_campaigns: Vec<String> = Vec::new();
    for record in store.records_in_order() {
        if record.job.kind == "rate" && !rate_campaigns.contains(&record.job.campaign) {
            rate_campaigns.push(record.job.campaign.clone());
        }
    }
    if !rate_campaigns.is_empty() {
        let mut sections = rate_campaigns.iter().map(|campaign| {
            (
                campaign,
                rate_metrics_to_csv(&rate_points_from_store(store, Some(campaign))),
            )
        });
        if let Some((first_campaign, first_block)) = sections.next() {
            let header = first_block.lines().next().unwrap_or_default();
            out.push_str(&format!("campaign,{header}\n"));
            for line in first_block.lines().skip(1) {
                out.push_str(&format!("{first_campaign},{line}\n"));
            }
            for (campaign, block) in sections {
                for line in block.lines().skip(1) {
                    out.push_str(&format!("{campaign},{line}\n"));
                }
            }
        }
    }
    let batch_runs = batch_runs_from_store(store, None);
    if !batch_runs.is_empty() {
        out.push_str(&batch_samples_csv(&batch_runs));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_sim::RateMetrics;

    fn dummy_point(mechanism: &str, load: f64, accepted: f64) -> SweepPoint {
        SweepPoint {
            mechanism: mechanism.to_string(),
            traffic: "Uniform".to_string(),
            scenario: "Healthy".to_string(),
            offered_load: load,
            metrics: RateMetrics {
                offered_load: load,
                accepted_load: accepted,
                generated_load: load,
                average_latency: 80.0,
                max_latency: Some(200),
                jain_generated: 0.999,
                escape_fraction: 0.02,
                average_hops: 2.0,
                delivered_packets: 1000,
                in_flight_at_end: 5,
                stalled: false,
                latency_hist: None,
            },
        }
    }

    #[test]
    fn table_is_aligned_and_contains_all_rows() {
        let rows = vec![
            ReportRow {
                label: "OmniSP".into(),
                values: vec!["0.5".into(), "0.48".into()],
            },
            ReportRow {
                label: "PolSP".into(),
                values: vec!["0.5".into(), "0.49".into()],
            },
        ];
        let s = format_table(&["mech", "offered", "accepted"], &rows);
        assert!(s.contains("OmniSP"));
        assert!(s.contains("PolSP"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn rate_table_formats_metrics() {
        let points = vec![
            dummy_point("OmniSP", 0.5, 0.47),
            dummy_point("PolSP", 0.5, 0.49),
        ];
        let s = format_rate_table(&points);
        assert!(s.contains("0.470"));
        assert!(s.contains("0.490"));
        assert!(s.contains("escape%"));
    }

    #[test]
    fn csv_has_header_plus_one_line_per_point() {
        let points = vec![
            dummy_point("Minimal", 0.2, 0.2),
            dummy_point("Valiant", 0.2, 0.2),
        ];
        let csv = rate_metrics_to_csv(&points);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().next().unwrap().starts_with("mechanism,traffic"));
        assert!(csv.contains("Minimal"));
        assert!(csv.contains("Valiant"));
    }

    use hyperx_sim::{BatchMetrics, ThroughputSample};
    use surepath_runner::JobSpec;

    fn dummy_batch(mechanism: &str, completion: u64) -> BatchRun {
        BatchRun {
            campaign: "fig10-test".into(),
            mechanism: mechanism.to_string(),
            traffic: "Regular Permutation to Neighbour".into(),
            scenario: "Star".into(),
            seed: 1,
            metrics: BatchMetrics {
                completion_time: completion,
                delivered_packets: 1000,
                samples: vec![
                    ThroughputSample {
                        cycle: 500,
                        accepted_load: 0.4,
                    },
                    ThroughputSample {
                        cycle: completion,
                        accepted_load: 0.1,
                    },
                ],
                average_latency: 150.0,
                stalled: false,
                latency_hist: None,
            },
        }
    }

    #[test]
    fn batch_table_and_samples_render_every_run() {
        let runs = vec![dummy_batch("OmniSP", 2800), dummy_batch("PolSP", 1000)];
        let table = format_batch_table(&runs);
        assert!(table.contains("OmniSP: completion time 2800 cycles"));
        assert!(table.contains("PolSP: completion time 1000 cycles"));
        let csv = batch_samples_csv(&runs);
        assert_eq!(csv.lines().count(), 1 + 4, "header + 2 samples per run");
        assert!(
            csv.contains("fig10-test,OmniSP,Regular Permutation to Neighbour,Star,1,500,0.400000")
        );
    }

    #[test]
    fn ambiguous_batch_runs_are_qualified_by_scenario_and_seed() {
        // Two runs of the same mechanism (e.g. a multi-seed campaign) must
        // stay distinguishable in the table and the CSV.
        let mut healthy = dummy_batch("OmniSP", 900);
        healthy.scenario = "Healthy".into();
        healthy.seed = 2;
        let runs = vec![dummy_batch("OmniSP", 2800), healthy];
        let table = format_batch_table(&runs);
        assert!(
            table.contains("OmniSP [Regular Permutation to Neighbour / Star / seed 1]:"),
            "{table}"
        );
        assert!(
            table.contains("OmniSP [Regular Permutation to Neighbour / Healthy / seed 2]:"),
            "{table}"
        );
        let csv = batch_samples_csv(&runs);
        assert!(csv.contains(",Star,1,"), "{csv}");
        assert!(csv.contains(",Healthy,2,"), "{csv}");
    }

    #[test]
    fn completion_ratio_is_graceful_when_a_mechanism_is_missing() {
        let runs = vec![dummy_batch("OmniSP", 2800), dummy_batch("PolSP", 1000)];
        let ratio = completion_ratio(&runs, "OmniSP", "PolSP").unwrap();
        assert!((ratio - 2.8).abs() < 1e-9);

        // Regression: a filtered or renamed lineup must not panic — the old
        // fig10 binary `.unwrap()`ed this exact lookup.
        let only_polsp = vec![dummy_batch("PolSP", 1000)];
        assert_eq!(completion_ratio(&only_polsp, "OmniSP", "PolSP"), None);
        assert_eq!(completion_ratio(&[], "OmniSP", "PolSP"), None);
    }

    fn temp_store(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("surepath-report-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn rate_job(mechanism: &str, load: f64, seed: u64) -> JobSpec {
        JobSpec {
            campaign: "replicated".into(),
            sides: vec![4, 4],
            mechanism: Some(mechanism.into()),
            traffic: Some("uniform".into()),
            scenario: Some("none".into()),
            load: Some(load),
            seed,
            ..JobSpec::default()
        }
    }

    fn rate_result(accepted: f64, latency: f64) -> serde::Value {
        serde_json::to_value(&RateMetrics {
            offered_load: 0.3,
            accepted_load: accepted,
            generated_load: 0.3,
            average_latency: latency,
            max_latency: Some(200),
            jain_generated: 0.99,
            escape_fraction: 0.02,
            average_hops: 2.0,
            delivered_packets: 1000,
            in_flight_at_end: 0,
            stalled: false,
            latency_hist: None,
        })
        .unwrap()
    }

    /// A rate result whose histogram holds 98 body samples near 100 cycles
    /// and 2 tail samples at `tail` — the mean fields stay fixed regardless,
    /// so shifting `tail` moves p99 while every mean metric stays flat.
    fn rate_result_with_tail(tail: u64) -> serde::Value {
        let mut hist = hyperx_sim::LatencyHistogram::new();
        for i in 0..98u64 {
            hist.record(100 + (i % 7));
        }
        hist.record(tail);
        hist.record(tail);
        serde_json::to_value(&RateMetrics {
            offered_load: 0.3,
            accepted_load: 0.7,
            generated_load: 0.3,
            average_latency: 80.0,
            max_latency: Some(tail),
            jain_generated: 0.99,
            escape_fraction: 0.02,
            average_hops: 2.0,
            delivered_packets: 100,
            in_flight_at_end: 0,
            stalled: false,
            latency_hist: Some(hist),
        })
        .unwrap()
    }

    #[test]
    fn diff_gates_on_injected_p99_regression_while_means_stay_flat() {
        let path_a = temp_store("diff-tail-a");
        let path_b = temp_store("diff-tail-b");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let mut a = ResultStore::open(&path_a).unwrap();
        let mut b = ResultStore::open(&path_b).unwrap();
        for seed in 1u64..=3 {
            a.append_ok(&rate_job("polsp", 0.3, seed), rate_result_with_tail(200))
                .unwrap();
            b.append_ok(&rate_job("polsp", 0.3, seed), rate_result_with_tail(1_600))
                .unwrap();
        }
        let diff = diff_stores(&a, &b);
        assert!(diff.has_regressions(), "tail shift must gate CI");
        let metrics = &diff.points[0].metrics;
        let by_name = |name: &str| metrics.iter().find(|m| m.metric == name).unwrap();
        // Every mean metric is identical between the stores...
        assert!(!by_name("accepted_load").significant);
        assert!(!by_name("average_latency").significant);
        assert!(!by_name("latency_p50").significant, "body unchanged");
        // ...only the tail percentiles flag the regression.
        assert!(by_name("latency_p99").regression);
        assert!(by_name("latency_p999").regression);
        // And the reversed diff reports it as an improvement, not a regression.
        let reversed = diff_stores(&b, &a);
        assert!(!reversed.has_regressions());
        assert!(reversed.improvements() > 0);
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn diff_warns_on_rng_contract_mismatch_without_comparing_or_failing() {
        let path_a = temp_store("diff-rng-a");
        let path_b = temp_store("diff-rng-b");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let mut a = ResultStore::open(&path_a).unwrap();
        let mut b = ResultStore::open(&path_b).unwrap();
        // Same experiment under different RNG contracts: baseline a legacy
        // (rng absent = v1) store, candidate an explicit v2 store — with
        // wildly different metrics that would scream "regression" if the
        // diff engine dared to compare them.
        for seed in 1u64..=3 {
            a.append_ok(&rate_job("polsp", 0.3, seed), rate_result(0.70, 80.0))
                .unwrap();
            let mut v2 = rate_job("polsp", 0.3, seed);
            v2.rng = Some("v2".into());
            b.append_ok(&v2, rate_result(0.30, 400.0)).unwrap();
        }
        // A genuinely unmatched baseline point must still count as
        // baseline-only, not get swallowed by the mismatch pairing.
        a.append_ok(&rate_job("polsp", 0.5, 1), rate_result(0.65, 90.0))
            .unwrap();
        let diff = diff_stores(&a, &b);
        assert!(diff.points.is_empty(), "mismatched contracts never compare");
        assert_eq!(diff.rng_mismatch.len(), 1, "{:?}", diff.rng_mismatch);
        assert!(
            diff.rng_mismatch[0].contains("baseline rng=v1, candidate rng=v2"),
            "{:?}",
            diff.rng_mismatch
        );
        assert_eq!(diff.baseline_only, 1);
        assert_eq!(diff.candidate_only, 0, "the paired point is accounted for");
        assert!(!diff.has_regressions(), "a warning is not a regression");
        let text = format_store_diff(&diff);
        assert!(text.contains("warning: RNG contract mismatch"), "{text}");
        assert!(text.contains("not compared"), "{text}");
        assert!(text.contains("result: no regressions"), "{text}");
        let csv = store_diff_csv(&diff);
        assert!(csv.contains("rng_mismatch"), "{csv}");
        assert!(!csv.contains("true,true"), "{csv}");
        // Same-contract stores stay byte-identical in behaviour: no warning.
        let clean = diff_stores(&a, &a);
        assert!(clean.rng_mismatch.is_empty());
        assert!(!format_store_diff(&clean).contains("RNG contract"));
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn rate_tables_gate_percentile_columns_on_histogram_presence() {
        // Histogram-free points (a legacy store) render the classic header.
        let legacy = vec![dummy_point("OmniSP", 0.5, 0.48)];
        let table = format_rate_table(&legacy);
        assert!(!table.contains("p99"), "{table}");
        // A histogram-bearing point gains p50/p99/p99.9/max columns.
        let mut rich = dummy_point("OmniSP", 0.5, 0.48);
        let mut hist = hyperx_sim::LatencyHistogram::new();
        for v in [10u64, 12, 14, 200] {
            hist.record(v);
        }
        rich.metrics.latency_hist = Some(hist);
        let table = format_rate_table(&[rich.clone()]);
        for column in ["p50", "p99", "p99.9", "max"] {
            assert!(table.contains(column), "missing {column}: {table}");
        }
        // A histogram-free row in a mixed table renders dashes.
        let table = format_rate_table(&[rich, dummy_point("PolSP", 0.5, 0.47)]);
        assert!(table.lines().last().unwrap().contains('-'), "{table}");
    }

    #[test]
    fn replica_groups_merge_histograms_before_quantiling() {
        let path = temp_store("replicated-hist");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();
        // Replica 1 holds the body, replica 2 the tail: the true merged p50
        // sits in the body, but an average of per-replica p50s would not.
        let result = |values: &[u64], max: u64| {
            let mut hist = hyperx_sim::LatencyHistogram::new();
            for &v in values {
                hist.record(v);
            }
            let mut v = rate_result(0.7, 80.0);
            let serde::Value::Object(entries) = &mut v else {
                unreachable!()
            };
            for (key, value) in entries.iter_mut() {
                if key == "latency_hist" {
                    *value = serde::Serialize::serialize(&hist);
                }
                if key == "max_latency" {
                    *value = serde_json::to_value(&max).unwrap();
                }
            }
            v
        };
        store
            .append_ok(&rate_job("polsp", 0.3, 1), result(&[10, 10, 10], 10))
            .unwrap();
        store
            .append_ok(&rate_job("polsp", 0.3, 2), result(&[1_000], 1_000))
            .unwrap();
        let points = replicated_rate_points(&store, None);
        assert_eq!(points.len(), 1);
        let merged = points[0].latency_hist.as_ref().unwrap();
        assert_eq!(merged.count(), 4);
        // Merged p50 = 2nd of [10,10,10,1000] = 10; averaging per-replica
        // p50s would have given ~500-ish. Max is the max over replicas.
        assert_eq!(merged.value_at_quantile(0.5), Some(10));
        assert_eq!(points[0].max_latency, Some(1_000));
        let table = format_replicated_rate_table(&points);
        assert!(table.contains("p99"), "{table}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replicated_points_group_seeds_and_summarise() {
        let path = temp_store("replicated-points");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();
        // One point, three replicas; a second point with a single replica.
        for (seed, accepted) in [(1u64, 0.70), (2, 0.72), (3, 0.71)] {
            store
                .append_ok(&rate_job("polsp", 0.3, seed), rate_result(accepted, 80.0))
                .unwrap();
        }
        store
            .append_ok(&rate_job("omnisp", 0.3, 1), rate_result(0.69, 82.0))
            .unwrap();

        let points = replicated_rate_points(&store, Some("replicated"));
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].n, 3);
        assert_eq!(points[0].mechanism, "PolSP");
        assert!((points[0].accepted_load.mean - 0.71).abs() < 1e-12);
        assert!(points[0].accepted_load.half_width() > 0.0);
        assert_eq!(points[1].n, 1);

        // The replicated table renders mean ± half-width per point; the full
        // report picks it automatically for replicated campaigns.
        let table = format_replicated_rate_table(&points);
        assert!(table.contains("±"), "{table}");
        assert!(table.contains("0.710"), "{table}");
        let report = report_store(&store);
        assert!(report.contains("±"), "{report}");
        assert!(report.contains("n"), "{report}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn gnuplot_artifacts_share_the_chart_extraction_and_are_deterministic() {
        let path = temp_store("gnuplot");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();
        for (mech, accepted) in [("polsp", 0.70), ("omnisp", 0.65)] {
            for load in [0.2, 0.4] {
                store
                    .append_ok(&rate_job(mech, load, 1), rate_result(accepted, 80.0))
                    .unwrap();
            }
        }
        let charts = report_charts(&store);
        let artifacts = report_gnuplot(&store);
        assert_eq!(artifacts.len(), 1);
        assert_eq!(
            charts
                .iter()
                .map(|(stem, _)| stem.clone())
                .collect::<Vec<_>>(),
            artifacts.iter().map(|a| a.stem.clone()).collect::<Vec<_>>(),
            "gnuplot artifacts mirror the SVG charts one to one"
        );
        let a = &artifacts[0];
        // Two series (PolSP, OmniSP) -> two indexed data blocks, and the
        // script plots both from the .dat file and targets the shared stem.
        assert_eq!(a.data.matches("# series").count(), 2, "{}", a.data);
        assert!(a.data.contains("0.200000 0.700000"), "{}", a.data);
        assert!(a.script.contains(&format!("\"{}.dat\" index 0", a.stem)));
        assert!(a.script.contains(&format!("\"{}.dat\" index 1", a.stem)));
        assert!(a.script.contains(&format!("set output \"{}.svg\"", a.stem)));
        assert!(a.script.contains("title \"PolSP\""), "{}", a.script);
        assert!(a.script.contains("set yrange [0:1]"), "rate charts clamp y");
        // Deterministic: a second extraction is byte-identical.
        assert_eq!(report_gnuplot(&store), artifacts);

        // A second topology splits the series (qualified by sides) instead
        // of folding into a self-overlapping line.
        let mut wide = rate_job("polsp", 0.2, 1);
        wide.sides = vec![8, 8];
        store.append_ok(&wide, rate_result(0.72, 85.0)).unwrap();
        let split = report_gnuplot(&store);
        assert_eq!(
            split[0].data.matches("# series").count(),
            3,
            "{}",
            split[0].data
        );
        assert!(split[0].data.contains("4x4 / PolSP"), "{}", split[0].data);
        assert!(split[0].data.contains("8x8 / PolSP"), "{}", split[0].data);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn diff_of_a_store_against_itself_reports_no_regressions() {
        let path = temp_store("self-diff");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();
        for (seed, accepted) in [(1u64, 0.70), (2, 0.72), (3, 0.71)] {
            store
                .append_ok(&rate_job("polsp", 0.3, seed), rate_result(accepted, 80.0))
                .unwrap();
        }
        let diff = diff_stores(&store, &store);
        assert_eq!(diff.points.len(), 1);
        assert_eq!(diff.significant(), 0);
        assert!(!diff.has_regressions());
        let text = format_store_diff(&diff);
        assert!(
            text.contains("no significant per-metric differences"),
            "{text}"
        );
        assert!(text.contains("result: no regressions"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn diff_flags_a_degraded_candidate_as_regression_and_a_gain_as_improvement() {
        let path_a = temp_store("diff-base");
        let path_b = temp_store("diff-cand");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let mut a = ResultStore::open(&path_a).unwrap();
        let mut b = ResultStore::open(&path_b).unwrap();
        for (seed, accepted) in [(1u64, 0.700), (2, 0.702), (3, 0.701)] {
            a.append_ok(&rate_job("polsp", 0.3, seed), rate_result(accepted, 80.0))
                .unwrap();
            // The candidate lost throughput but improved latency.
            b.append_ok(
                &rate_job("polsp", 0.3, seed),
                rate_result(accepted - 0.1, 60.0),
            )
            .unwrap();
        }
        let diff = diff_stores(&a, &b);
        assert_eq!(diff.regressions(), 1, "accepted_load regressed");
        assert_eq!(diff.improvements(), 1, "average_latency improved");
        assert!(diff.has_regressions());
        let text = format_store_diff(&diff);
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("improvement"), "{text}");
        assert!(text.contains("accepted_load"), "{text}");
        assert!(text.contains("result: 1 regression(s)"), "{text}");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn diff_with_single_replicas_never_reports_significance() {
        // n = 1 per side: the CI is infinite, so even a large delta must not
        // be called significant (the stats satellite's CLI-facing face).
        let path_a = temp_store("diff-single-a");
        let path_b = temp_store("diff-single-b");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let mut a = ResultStore::open(&path_a).unwrap();
        let mut b = ResultStore::open(&path_b).unwrap();
        a.append_ok(&rate_job("polsp", 0.3, 1), rate_result(0.9, 80.0))
            .unwrap();
        b.append_ok(&rate_job("polsp", 0.3, 1), rate_result(0.1, 300.0))
            .unwrap();
        let diff = diff_stores(&a, &b);
        assert_eq!(diff.points.len(), 1);
        assert_eq!(diff.significant(), 0);
        assert!(!diff.has_regressions());
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn diff_counts_unaligned_and_uncompared_points() {
        let path_a = temp_store("diff-align-a");
        let path_b = temp_store("diff-align-b");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let mut a = ResultStore::open(&path_a).unwrap();
        let mut b = ResultStore::open(&path_b).unwrap();
        // Shared point, a baseline-only point, a candidate-only point and a
        // custom-kind point the engine cannot compare.
        a.append_ok(&rate_job("polsp", 0.3, 1), rate_result(0.7, 80.0))
            .unwrap();
        b.append_ok(&rate_job("polsp", 0.3, 2), rate_result(0.7, 80.0))
            .unwrap();
        a.append_ok(&rate_job("polsp", 0.4, 1), rate_result(0.8, 90.0))
            .unwrap();
        b.append_ok(&rate_job("omnisp", 0.3, 1), rate_result(0.7, 85.0))
            .unwrap();
        let custom = JobSpec {
            kind: "diameter".into(),
            ..rate_job("polsp", 0.5, 1)
        };
        a.append_ok(&custom, serde_json::to_value(&3u64).unwrap())
            .unwrap();
        b.append_ok(&custom, serde_json::to_value(&3u64).unwrap())
            .unwrap();
        let diff = diff_stores(&a, &b);
        assert_eq!(diff.points.len(), 1, "only the shared rate point compares");
        assert_eq!(diff.baseline_only, 1);
        assert_eq!(diff.candidate_only, 1);
        assert_eq!(diff.uncompared, 1);
        let text = format_store_diff(&diff);
        assert!(
            text.contains("compared 1 points (1 baseline-only, 1 candidate-only, 1 uncompared"),
            "{text}"
        );
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn diff_treats_an_all_failed_candidate_point_as_a_regression() {
        // A candidate whose jobs crash must not slip past the exit-code
        // gate: failed-only points count as regressions, while points the
        // candidate never attempted stay baseline-only (grid mismatch).
        let path_a = temp_store("diff-failed-a");
        let path_b = temp_store("diff-failed-b");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let mut a = ResultStore::open(&path_a).unwrap();
        let mut b = ResultStore::open(&path_b).unwrap();
        for seed in 1u64..=3 {
            a.append_ok(&rate_job("polsp", 0.3, seed), rate_result(0.7, 80.0))
                .unwrap();
            b.append_failed(
                &rate_job("polsp", 0.3, seed),
                "routing change panicked".into(),
            )
            .unwrap();
        }
        // A point only the baseline has (candidate never attempted it).
        a.append_ok(&rate_job("polsp", 0.4, 1), rate_result(0.8, 90.0))
            .unwrap();
        let diff = diff_stores(&a, &b);
        assert_eq!(diff.candidate_failed.len(), 1);
        assert_eq!(diff.baseline_only, 1, "unattempted points are tolerated");
        assert!(diff.has_regressions(), "all-failed point fails the gate");
        let text = format_store_diff(&diff);
        assert!(text.contains("all FAILED"), "{text}");
        assert!(text.contains("result: 1 regression(s)"), "{text}");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn replicated_batch_points_stay_nan_free_with_stalled_rows() {
        let path = temp_store("replicated-batch");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();
        let batch_job = |seed: u64| JobSpec {
            campaign: "batch-rep".into(),
            kind: "batch".into(),
            packets_per_server: Some(10),
            load: None,
            ..rate_job("omnisp", 0.3, seed)
        };
        let mut ok = dummy_batch("OmniSP", 1000).metrics;
        ok.average_latency = 150.0;
        let mut stalled = dummy_batch("OmniSP", 5000).metrics;
        stalled.stalled = true;
        stalled.average_latency = f64::NAN; // no packet ever completed
        store
            .append_ok(&batch_job(1), serde_json::to_value(&ok).unwrap())
            .unwrap();
        store
            .append_ok(&batch_job(2), serde_json::to_value(&stalled).unwrap())
            .unwrap();

        let points = replicated_batch_points(&store, Some("batch-rep"));
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].n, 2);
        assert_eq!(points[0].stalled_replicas, 1);
        assert_eq!(points[0].average_latency.n, 1, "NaN latency dropped");
        assert!(points[0].average_latency.mean.is_finite());
        assert!(points[0].completion_time.mean.is_finite());
        let table = format_replicated_batch_table(&points);
        assert!(table.contains("1 STALLED"), "{table}");
        assert!(!table.contains("NaN"), "{table}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn diff_campaign_filter_ignores_other_campaigns_entirely() {
        let path_a = temp_store("diff-filter-a");
        let path_b = temp_store("diff-filter-b");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let mut a = ResultStore::open(&path_a).unwrap();
        let mut b = ResultStore::open(&path_b).unwrap();
        let other = |seed: u64| JobSpec {
            campaign: "other".into(),
            ..rate_job("polsp", 0.3, seed)
        };
        for seed in 1u64..=3 {
            a.append_ok(&rate_job("polsp", 0.3, seed), rate_result(0.7, 80.0))
                .unwrap();
            b.append_ok(&rate_job("polsp", 0.3, seed), rate_result(0.7, 80.0))
                .unwrap();
            // The `other` campaign regressed badly — it must not leak into a
            // `replicated`-filtered diff, in the table or the counters.
            a.append_ok(&other(seed), rate_result(0.9, 50.0)).unwrap();
            b.append_ok(&other(seed), rate_result(0.1, 500.0)).unwrap();
        }
        let unfiltered = diff_stores(&a, &b);
        assert!(unfiltered.has_regressions());
        let filtered = diff_stores_filtered(&a, &b, Some("replicated"));
        assert_eq!(filtered.points.len(), 1);
        assert_eq!(filtered.candidate_only, 0);
        assert!(!filtered.has_regressions());
        let missing = diff_stores_filtered(&a, &b, Some("no-such-campaign"));
        assert_eq!(missing.points.len(), 0);
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn diff_csv_lists_every_metric_with_flags() {
        let path_a = temp_store("diff-csv-a");
        let path_b = temp_store("diff-csv-b");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let mut a = ResultStore::open(&path_a).unwrap();
        let mut b = ResultStore::open(&path_b).unwrap();
        for (seed, accepted) in [(1u64, 0.700), (2, 0.702), (3, 0.701)] {
            a.append_ok(&rate_job("polsp", 0.3, seed), rate_result(accepted, 80.0))
                .unwrap();
            b.append_ok(
                &rate_job("polsp", 0.3, seed),
                rate_result(accepted - 0.1, 80.0),
            )
            .unwrap();
        }
        let csv = store_diff_csv(&diff_stores(&a, &b));
        // Header + 7 rate metrics (4 scalar + 3 derived percentiles) for the
        // single compared point.
        assert_eq!(csv.lines().count(), 8, "{csv}");
        assert!(csv.starts_with("point,campaign,kind,metric,"), "{csv}");
        assert!(csv.contains("accepted_load"), "{csv}");
        assert!(csv.contains("jain_generated"), "{csv}");
        assert!(csv.contains("latency_p99"), "{csv}");
        // The regressed metric is flagged; an identical one is not.
        let accepted_row = csv.lines().find(|l| l.contains("accepted_load")).unwrap();
        assert!(accepted_row.ends_with("true,true"), "{accepted_row}");
        let jain_row = csv.lines().find(|l| l.contains("jain_generated")).unwrap();
        assert!(jain_row.ends_with("false,false"), "{jain_row}");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn timings_table_ranks_slowest_jobs_deterministically() {
        let record = |fp: &str, millis: u64, worker: &str| TimingRecord {
            fp: fp.into(),
            label: format!("job-{fp}"),
            millis,
            worker: worker.into(),
        };
        let records = vec![
            record("aa", 100, "local"),
            record("bb", 900, "worker-1"),
            record("cc", 500, "worker-2"),
            record("dd", 500, "worker-1"),
        ];
        let table = format_timings_table(&records, 3);
        let lines: Vec<&str> = table.lines().collect();
        // Header, rule, 3 rows, summary, percentile line.
        assert_eq!(lines.len(), 7, "{table}");
        assert!(lines[2].starts_with("job-bb"), "{table}");
        // The 500ms tie breaks by fingerprint: cc before dd.
        assert!(lines[3].starts_with("job-cc"), "{table}");
        assert!(lines[4].starts_with("job-dd"), "{table}");
        assert!(lines[5].contains("4 timed jobs"), "{table}");
        // Nearest-rank over all 4 jobs (100/500/500/900): p50 is the 2nd
        // slowest-sorted value, p99 and max the slowest.
        assert_eq!(
            lines[6], "job wall-clock percentiles: p50 0.500s, p99 0.900s, max 0.900s",
            "{table}"
        );
        assert!(table.contains("45.0"), "900/2000 ms = 45%: {table}");
        assert_eq!(
            format_timings_table(&[], 5),
            "(no timing records)\n".to_string()
        );
    }

    #[test]
    fn manifest_status_reports_in_flight_against_the_store() {
        let dir = std::env::temp_dir().join("surepath-report-manifest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let store_path = dir.join(format!("status-{pid}.jsonl"));
        let manifest_path = dir.join(format!("status-{pid}.manifest.jsonl"));
        let _ = std::fs::remove_file(&store_path);
        let _ = std::fs::remove_file(&manifest_path);
        let mut store = ResultStore::open(&store_path).unwrap();
        let done_job = rate_job("polsp", 0.3, 1);
        store.append_ok(&done_job, rate_result(0.7, 80.0)).unwrap();
        let mut manifest = ShardManifest::open(&manifest_path).unwrap();
        let done_fp = surepath_runner::job_fingerprint(&done_job);
        manifest.record_assigned(&done_fp, 0, "w1").unwrap();
        manifest.record_done(&done_fp, 0, "w1").unwrap();
        manifest
            .record_assigned("feedbeef00000000", 3, "w2")
            .unwrap();
        let status = format_manifest_status(&manifest, &store);
        assert!(
            status.contains("2 assignment(s), 1 delivered, 1 in flight"),
            "{status}"
        );
        assert!(
            status.contains("feedbeef00000000 (shard 3, assigned to `w2`)"),
            "{status}"
        );
        let _ = std::fs::remove_file(&store_path);
        let _ = std::fs::remove_file(&manifest_path);
    }

    #[test]
    fn report_charts_render_rate_and_batch_campaigns_as_svg() {
        let path = temp_store("charts");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();
        // A two-mechanism rate sweep over two loads, with replicas.
        for mechanism in ["polsp", "omnisp"] {
            for load in [0.3, 0.6] {
                for seed in 1u64..=2 {
                    let mut job = rate_job(mechanism, load, seed);
                    job.campaign = "fig-rate".into();
                    store
                        .append_ok(&job, rate_result(load * 0.9 + seed as f64 * 0.001, 80.0))
                        .unwrap();
                }
            }
        }
        // A batch campaign with sampled throughput.
        let batch_job = JobSpec {
            campaign: "fig10".into(),
            kind: "batch".into(),
            sides: vec![4, 4],
            mechanism: Some("omnisp".into()),
            packets_per_server: Some(60),
            ..JobSpec::default()
        };
        store
            .append_ok(
                &batch_job,
                serde_json::to_value(&dummy_batch("OmniSP", 1500).metrics).unwrap(),
            )
            .unwrap();

        let charts = report_charts(&store);
        assert_eq!(charts.len(), 2, "one artifact per campaign/kind");
        let (rate_stem, rate_svg) = &charts[0];
        assert_eq!(rate_stem, "fig-rate_rate");
        assert!(rate_svg.starts_with("<svg"));
        assert_eq!(rate_svg.matches("<polyline").count(), 2, "two mechanisms");
        assert!(rate_svg.contains("PolSP"), "{rate_stem}");
        let (batch_stem, batch_svg) = &charts[1];
        assert_eq!(batch_stem, "fig10_batch");
        assert!(batch_svg.contains("throughput over time"));
        assert!(batch_svg.contains("<polyline"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_reconstructs_figures_from_a_store_without_simulating() {
        let path = temp_store("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();

        let rate_job = JobSpec {
            campaign: "fig-rate".into(),
            sides: vec![4, 4],
            mechanism: Some("polsp".into()),
            traffic: Some("uniform".into()),
            scenario: Some("none".into()),
            load: Some(0.3),
            ..JobSpec::default()
        };
        let rate_metrics = RateMetrics {
            offered_load: 0.3,
            accepted_load: 0.29,
            generated_load: 0.3,
            average_latency: 88.0,
            max_latency: Some(301),
            jain_generated: 0.999,
            escape_fraction: 0.01,
            average_hops: 1.9,
            delivered_packets: 4242,
            in_flight_at_end: 3,
            stalled: false,
            latency_hist: None,
        };
        store
            .append_ok(&rate_job, serde_json::to_value(&rate_metrics).unwrap())
            .unwrap();

        let batch_job = JobSpec {
            campaign: "fig10".into(),
            kind: "batch".into(),
            sides: vec![4, 4, 4],
            mechanism: Some("omnisp".into()),
            traffic: Some("rpn".into()),
            scenario: Some("star:2,2,2".into()),
            packets_per_server: Some(60),
            sample_window: Some(500),
            ..JobSpec::default()
        };
        store
            .append_ok(
                &batch_job,
                serde_json::to_value(&dummy_batch("OmniSP", 1234).metrics).unwrap(),
            )
            .unwrap();

        let failed_job = JobSpec {
            campaign: "fig-rate".into(),
            seed: 9,
            ..rate_job.clone()
        };
        store
            .append_failed(&failed_job, "simulated crash".into())
            .unwrap();

        // Points come back with paper display names and the stored numbers.
        let points = rate_points_from_store(&store, Some("fig-rate"));
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].mechanism, "PolSP");
        assert_eq!(points[0].traffic, "Uniform");
        assert_eq!(points[0].scenario, "Healthy");
        assert_eq!(points[0].metrics.delivered_packets, 4242);

        let runs = batch_runs_from_store(&store, Some("fig10"));
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].mechanism, "OmniSP");
        assert_eq!(runs[0].scenario, "Star");
        assert_eq!(runs[0].metrics.completion_time, 1234);

        // The full report covers both campaigns and surfaces the failure.
        let report = report_store(&store);
        assert!(
            report.contains("campaign `fig-rate` / kind `rate`"),
            "{report}"
        );
        assert!(
            report.contains("campaign `fig10` / kind `batch`"),
            "{report}"
        );
        assert!(report.contains("OmniSP: completion time 1234 cycles"));
        assert!(report.contains("simulated crash"));

        let csv = report_csv(&store);
        assert!(csv.contains("campaign,mechanism,traffic,scenario"));
        assert!(csv.contains("campaign,mechanism,traffic,scenario,seed,cycle,accepted_load"));
        assert!(csv.contains("fig-rate,PolSP,Uniform,Healthy,"), "{csv}");
        assert!(csv.contains("fig10,OmniSP,"), "{csv}");
        let _ = std::fs::remove_file(&path);
    }

    /// A rate result carrying a `counters` sibling key, as `run_job` writes.
    fn rate_result_with_counters(requests: u64, grants: u64) -> serde::Value {
        let mut registry = CounterRegistry::new();
        registry.add(Counter::AllocRequests, requests);
        registry.add(Counter::AllocGrants, grants);
        let mut value = rate_result(0.5, 90.0);
        if let serde::Value::Object(fields) = &mut value {
            fields.push((
                "counters".to_string(),
                serde_json::to_value(&registry).unwrap(),
            ));
        }
        value
    }

    #[test]
    fn counters_report_merges_by_exact_addition_per_mechanism() {
        let path = temp_store("counters-report");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();
        store
            .append_ok(
                &rate_job("polsp", 0.3, 1),
                rate_result_with_counters(100, 90),
            )
            .unwrap();
        store
            .append_ok(
                &rate_job("polsp", 0.3, 2),
                rate_result_with_counters(50, 40),
            )
            .unwrap();
        store
            .append_ok(&rate_job("omnisp", 0.3, 1), rate_result_with_counters(7, 5))
            .unwrap();
        // A pre-observability record merges as nothing, not as an error.
        store
            .append_ok(&rate_job("minimal", 0.3, 1), rate_result(0.4, 100.0))
            .unwrap();
        let report = format_counters_report(&store);
        assert!(
            report.contains("campaign `replicated` / kind `rate`"),
            "{report}"
        );
        // PolSP column: 100 + 50 requests, 90 + 40 grants.
        let requests_row = report
            .lines()
            .find(|l| l.starts_with("alloc_requests"))
            .unwrap();
        assert!(requests_row.contains("150"), "{requests_row}");
        assert!(requests_row.contains('7'), "{requests_row}");
        let grants_row = report
            .lines()
            .find(|l| l.starts_with("alloc_grants"))
            .unwrap();
        assert!(grants_row.contains("130"), "{grants_row}");
        assert!(report.contains("merged from 3 job(s)"), "{report}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn counters_report_notes_pre_observability_stores() {
        let path = temp_store("counters-report-legacy");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();
        store
            .append_ok(&rate_job("polsp", 0.3, 1), rate_result(0.4, 100.0))
            .unwrap();
        let report = format_counters_report(&store);
        assert!(report.contains("no counters recorded"), "{report}");
        let _ = std::fs::remove_file(&path);
    }

    fn trace_record(fp: &str, packet: u64, cycle: u64, event: &str, hops: u64) -> TraceRecord {
        TraceRecord {
            fp: fp.into(),
            packet,
            cycle,
            event: event.into(),
            switch: 0,
            hops,
            escape_hops: if event == "deliver" && packet == 1 {
                2
            } else {
                0
            },
        }
    }

    #[test]
    fn trace_report_breaks_latency_down_by_hop_count() {
        let records = vec![
            trace_record("aaaa", 0, 10, "inject", 0),
            trace_record("aaaa", 1, 12, "inject", 0),
            trace_record("aaaa", 0, 20, "grant", 0),
            trace_record("aaaa", 0, 25, "block", 1),
            trace_record("aaaa", 0, 110, "deliver", 2),
            trace_record("aaaa", 1, 212, "deliver", 4),
            // A deliver whose inject fell outside the buffer: skipped.
            trace_record("aaaa", 99, 300, "deliver", 3),
            trace_record("bbbb", 5, 7, "inject", 0),
        ];
        let report = format_trace_report(&records, None);
        assert!(report.contains("=== trace: job fp aaaa ==="), "{report}");
        assert!(report.contains("=== trace: job fp bbbb ==="), "{report}");
        assert!(
            report.contains("2 packet(s) injected, 2 delivered"),
            "{report}"
        );
        assert!(report.contains("1 allocation block(s)"), "{report}");
        // Packet 0: latency 100 over 2 hops; packet 1: latency 200 over 4.
        let hop2 = report.lines().find(|l| l.starts_with("2  ")).unwrap();
        assert!(hop2.contains("100.0") && hop2.contains("50.0"), "{hop2}");
        let hop4 = report.lines().find(|l| l.starts_with("4  ")).unwrap();
        assert!(hop4.contains("200.0") && hop4.contains("50.0"), "{hop4}");
        assert!(
            report.contains("escape usage: 1/2 delivered packet(s)"),
            "{report}"
        );
        assert!(report.contains("2.0 escape hop(s)"), "{report}");
        assert_eq!(format_trace_report(&[], None), "(no trace records)\n");
    }

    #[test]
    fn trace_report_labels_jobs_through_the_store() {
        let path = temp_store("trace-report-labels");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();
        let job = rate_job("polsp", 0.3, 1);
        store.append_ok(&job, rate_result(0.5, 90.0)).unwrap();
        let fp = surepath_runner::job_fingerprint(&job);
        let records = vec![
            trace_record(&fp, 0, 10, "inject", 0),
            trace_record(&fp, 0, 110, "deliver", 2),
        ];
        let report = format_trace_report(&records, Some(&store));
        assert!(report.contains(&format!("`{}`", job.label())), "{report}");
        assert!(!report.contains(&format!("fp {fp}")), "{report}");
        let _ = std::fs::remove_file(&path);
    }
}
