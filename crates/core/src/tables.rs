//! Generators for the paper's descriptive tables (Table 3 and Table 4).

use crate::report::{format_table, ReportRow};
use hyperx_topology::{HyperX, TopologyReport};
use serde::Serialize;

/// Renders Table 3 (topological parameters) for a list of HyperX configurations.
pub fn topology_table(configs: &[(&str, HyperX, usize)]) -> String {
    let reports: Vec<(String, TopologyReport)> = configs
        .iter()
        .map(|(name, hx, concentration)| {
            (
                name.to_string(),
                TopologyReport::for_hyperx(hx, *concentration),
            )
        })
        .collect();
    topology_table_from_reports(&reports)
}

/// Renders Table 3 from already-computed reports — the path used when the
/// table is reconstructed from a campaign result store instead of re-running
/// the all-pairs BFS.
pub fn topology_table_from_reports(reports: &[(String, TopologyReport)]) -> String {
    let header = [
        "network",
        "switches",
        "radix",
        "servers/switch",
        "servers",
        "links",
        "diameter",
        "avg distance",
    ];
    let rows: Vec<ReportRow> = reports
        .iter()
        .map(|(name, r)| ReportRow {
            label: name.clone(),
            values: vec![
                r.switches.to_string(),
                r.total_radix.to_string(),
                r.servers_per_switch.to_string(),
                r.total_servers.to_string(),
                r.links.to_string(),
                r.diameter.to_string(),
                format!("{:.3}", r.average_distance),
            ],
        })
        .collect();
    format_table(&header, &rows)
}

/// One row of Table 4: the routing mechanisms and their VC usage.
///
/// Rows are static documentation data (`&'static str` fields), so they are
/// serializable for reports but not deserializable.
#[derive(Clone, Debug, Serialize)]
pub struct MechanismRow {
    /// Mechanism name.
    pub mechanism: &'static str,
    /// Base routing algorithm.
    pub algorithm: &'static str,
    /// Virtual-channel management policy.
    pub vc_management: &'static str,
    /// How the 2n VCs are used in the fair comparison.
    pub vc_usage: &'static str,
    /// Minimum VCs the mechanism needs to work, as a function of the dimension n.
    pub vcs_required: &'static str,
}

/// The rows of Table 4.
pub fn mechanism_table() -> Vec<MechanismRow> {
    vec![
        MechanismRow {
            mechanism: "Minimal",
            algorithm: "Shortest path",
            vc_management: "Ladder",
            vc_usage: "2 VCs for each step",
            vcs_required: "n",
        },
        MechanismRow {
            mechanism: "Valiant",
            algorithm: "Shortest path in each phase",
            vc_management: "Ladder",
            vc_usage: "1 VC for each step",
            vcs_required: "2n",
        },
        MechanismRow {
            mechanism: "OmniWAR",
            algorithm: "Omnidimensional",
            vc_management: "Ladder",
            vc_usage: "n VCs minimal and n VCs for deroutes",
            vcs_required: "2n",
        },
        MechanismRow {
            mechanism: "Polarized",
            algorithm: "Polarized",
            vc_management: "Ladder",
            vc_usage: "1 VC per step",
            vcs_required: "2n",
        },
        MechanismRow {
            mechanism: "OmniSP",
            algorithm: "Omnidimensional",
            vc_management: "SurePath",
            vc_usage: "2n-1 VCs routing + 1 VC Up/Down",
            vcs_required: "2",
        },
        MechanismRow {
            mechanism: "PolSP",
            algorithm: "Polarized",
            vc_management: "SurePath",
            vc_usage: "2n-1 VCs routing + 1 VC Up/Down",
            vcs_required: "2",
        },
    ]
}

/// Renders Table 4 as a plain-text table.
pub fn format_mechanism_table() -> String {
    let header = [
        "mechanism",
        "algorithm",
        "VC management",
        "use of 2n VCs",
        "VCs required",
    ];
    let rows: Vec<ReportRow> = mechanism_table()
        .into_iter()
        .map(|r| ReportRow {
            label: r.mechanism.to_string(),
            values: vec![
                r.algorithm.to_string(),
                r.vc_management.to_string(),
                r.vc_usage.to_string(),
                r.vcs_required.to_string(),
            ],
        })
        .collect();
    format_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_routing::MechanismSpec;

    #[test]
    fn topology_table_contains_paper_values() {
        let s = topology_table(&[
            ("2D HyperX", HyperX::regular(2, 16), 16),
            ("3D HyperX", HyperX::regular(3, 8), 8),
        ]);
        // Table 3 headline numbers.
        assert!(s.contains("256"));
        assert!(s.contains("512"));
        assert!(s.contains("3840"));
        assert!(s.contains("5376"));
        assert!(s.contains("46"));
        assert!(s.contains("29"));
        assert!(s.contains("4096"));
    }

    #[test]
    fn mechanism_table_has_six_rows_matching_the_lineup() {
        let rows = mechanism_table();
        assert_eq!(rows.len(), 6);
        let lineup = MechanismSpec::fault_free_lineup();
        for (row, spec) in rows.iter().zip(lineup.iter()) {
            assert_eq!(row.mechanism, spec.name());
        }
        // SurePath rows require only 2 VCs.
        assert!(rows
            .iter()
            .filter(|r| r.vc_management == "SurePath")
            .all(|r| r.vcs_required == "2"));
    }

    #[test]
    fn formatted_mechanism_table_mentions_surepath() {
        let s = format_mechanism_table();
        assert!(s.contains("SurePath"));
        assert!(s.contains("OmniSP"));
        assert!(s.contains("PolSP"));
        assert!(s.contains("Ladder"));
    }
}
