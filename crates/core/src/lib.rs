//! # surepath-core
//!
//! The high-level API of the SurePath reproduction: describe an experiment
//! (topology, routing mechanism, traffic pattern, fault scenario, simulation
//! parameters), run it, and collect the paper's metrics.
//!
//! ```no_run
//! use surepath_core::{Experiment, TrafficSpec};
//! use hyperx_routing::MechanismSpec;
//!
//! // One point of Figure 5: PolSP on the 8×8×8 HyperX under uniform traffic.
//! let experiment = Experiment::paper_3d(MechanismSpec::PolSP, TrafficSpec::Uniform);
//! let metrics = experiment.run_rate(0.6);
//! println!("accepted load = {:.3}", metrics.accepted_load);
//! ```
//!
//! The crate re-exports the pieces an application typically needs from the
//! lower layers (`hyperx-topology`, `hyperx-routing`, `hyperx-sim`) so that a
//! single dependency suffices for most users.

pub mod ablation;
pub mod campaign;
pub mod experiment;
pub mod plot;
pub mod report;
pub mod scenario;
pub mod stats;
pub mod sweep;
pub mod tables;

pub use ablation::{
    ablation_points_from_store, ablation_to_csv, escape_shortcut_study, format_ablation_table,
    root_placement_study, vc_count_study, AblationPoint,
};
pub use campaign::{
    job_experiment, run_campaign, run_campaign_traced, run_job, run_job_traced,
    run_job_traced_tuned, run_job_tuned, validate_campaign, RunTuning, ViewCache,
    DEFAULT_SAMPLE_WINDOW,
};
pub use experiment::{Experiment, RootPlacement, TrafficSpec};
pub use plot::{throughput_chart, BarChart, BarGroup, LineChart, Series};
pub use report::{
    batch_runs_from_store, batch_samples_csv, completion_ratio, csv_half_width, diff_stores,
    diff_stores_filtered, format_batch_table, format_counters_report, format_manifest_status,
    format_mean_hw, format_rate_table, format_replicated_batch_table, format_replicated_rate_table,
    format_store_diff, format_table, format_timings_table, format_trace_report,
    rate_metrics_to_csv, rate_points_from_store, replicated_batch_points, replicated_rate_points,
    report_charts, report_csv, report_gnuplot, report_store, store_diff_csv, BatchRun,
    GnuplotArtifact, MetricDiff, PointDiff, ReplicatedBatchPoint, ReplicatedStorePoint, ReportRow,
    StoreDiff,
};
pub use scenario::FaultScenario;
pub use stats::{
    compare_tail_percentiles, percentile_level, replicate, PercentileLevel, ReplicatedPoint,
    Summary, LATENCY_PERCENTILES,
};
pub use sweep::{paper_load_grid, quick_load_grid, sweep_loads, sweep_mechanisms, SweepPoint};
pub use tables::{
    format_mechanism_table, mechanism_table, topology_table, topology_table_from_reports,
    MechanismRow,
};

// Re-exports for downstream convenience.
pub use hyperx_routing::{EscapePolicy, MechanismSpec, NetworkView, RoutingMechanism};
pub use hyperx_sim::{BatchMetrics, LatencyHistogram, RateMetrics, SimConfig};
pub use hyperx_topology::{FaultSet, FaultShape, HyperX, RootPolicy, TopologyReport};
pub use surepath_runner::{
    CampaignOutcome, CampaignSpec, JobSpec, ResultStore, ShardManifest, TimingRecord, TopologySpec,
};
