//! Minimal SVG chart emitters for the figure binaries.
//!
//! The paper's figures are line plots (throughput/latency/Jain versus offered
//! load, accepted load versus fault count or time) and grouped bar charts
//! (throughput under the geometric fault shapes). This module renders both
//! directly from the measured series, so a reproduction run can be inspected
//! visually without any external plotting stack. The output is plain SVG 1.1
//! with no dependencies; it is intentionally simple (fixed margins, automatic
//! axis ranges, a small colour palette) rather than a general charting
//! library.

use std::fmt::Write as _;

/// The colour palette used for series, in order.
const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 20.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 55.0;

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// A named series of `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points in plotting order.
    pub points: Vec<(f64, f64)>,
    /// Explicit stroke colour (e.g. the cold→hot percentile ramp of latency
    /// charts); palette-by-index when `None`.
    pub color: Option<String>,
}

impl Series {
    /// Builds a series from a label and points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
            color: None,
        }
    }

    /// Fixes the stroke colour (builder style).
    pub fn with_color(mut self, color: impl Into<String>) -> Self {
        self.color = Some(color.into());
        self
    }
}

/// A line chart with one or more series, in the style of Figures 4–6 and 10.
///
/// ```
/// use surepath_core::{LineChart, Series};
///
/// let svg = LineChart::new("Uniform", "offered load", "accepted load")
///     .with_y_range(0.0, 1.0)
///     .with_series(Series::new("PolSP", vec![(0.1, 0.1), (0.9, 0.73)]))
///     .to_svg();
/// assert!(svg.contains("<polyline"));
/// assert!(svg.contains("PolSP"));
/// ```
#[derive(Clone, Debug)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series to draw.
    pub series: Vec<Series>,
    /// Optional fixed y range; computed from the data when `None`.
    pub y_range: Option<(f64, f64)>,
}

impl LineChart {
    /// Creates an empty chart with the given labels.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            y_range: None,
        }
    }

    /// Adds a series (builder style).
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Fixes the y-axis range (builder style).
    pub fn with_y_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "empty y range");
        self.y_range = Some((lo, hi));
        self
    }

    fn data_ranges(&self) -> ((f64, f64), (f64, f64)) {
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .collect();
        let span = |v: &[f64]| -> (f64, f64) {
            let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if !lo.is_finite() || !hi.is_finite() {
                (0.0, 1.0)
            } else if (hi - lo).abs() < 1e-12 {
                (lo - 0.5, hi + 0.5)
            } else {
                (lo, hi)
            }
        };
        let x = span(&xs);
        let y = match self.y_range {
            Some(r) => r,
            None => span(&ys),
        };
        (x, y)
    }

    /// Renders the chart as an SVG document.
    pub fn to_svg(&self) -> String {
        assert!(
            self.series.iter().any(|s| !s.points.is_empty()),
            "a line chart needs at least one non-empty series"
        );
        let ((x_lo, x_hi), (y_lo, y_hi)) = self.data_ranges();
        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let sx = |x: f64| MARGIN_LEFT + (x - x_lo) / (x_hi - x_lo) * plot_w;
        let sy = |y: f64| MARGIN_TOP + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h;

        let mut svg = svg_header(&self.title);
        axes(&mut svg, &self.x_label, &self.y_label);

        // Tick marks and grid: 5 ticks per axis.
        for i in 0..=5 {
            let fx = x_lo + (x_hi - x_lo) * i as f64 / 5.0;
            let fy = y_lo + (y_hi - y_lo) * i as f64 / 5.0;
            let px = sx(fx);
            let py = sy(fy);
            let _ = writeln!(
                svg,
                r##"  <line x1="{px:.1}" y1="{top:.1}" x2="{px:.1}" y2="{bot:.1}" stroke="#dddddd"/>
  <text x="{px:.1}" y="{label_y:.1}" font-size="11" text-anchor="middle">{fx:.2}</text>
  <line x1="{left:.1}" y1="{py:.1}" x2="{right:.1}" y2="{py:.1}" stroke="#dddddd"/>
  <text x="{ylabel_x:.1}" y="{py:.1}" font-size="11" text-anchor="end" dominant-baseline="middle">{fy:.2}</text>"##,
                top = MARGIN_TOP,
                bot = HEIGHT - MARGIN_BOTTOM,
                label_y = HEIGHT - MARGIN_BOTTOM + 16.0,
                left = MARGIN_LEFT,
                right = WIDTH - MARGIN_RIGHT,
                ylabel_x = MARGIN_LEFT - 6.0,
            );
        }

        // Series polylines and legend.
        for (i, s) in self.series.iter().enumerate() {
            let colour = s.color.as_deref().unwrap_or(PALETTE[i % PALETTE.len()]);
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            let _ = writeln!(
                svg,
                r##"  <polyline fill="none" stroke="{colour}" stroke-width="2" points="{}"/>"##,
                pts.join(" ")
            );
            let ly = MARGIN_TOP + 14.0 * i as f64;
            let _ = writeln!(
                svg,
                r##"  <line x1="{x0:.1}" y1="{ly:.1}" x2="{x1:.1}" y2="{ly:.1}" stroke="{colour}" stroke-width="2"/>
  <text x="{tx:.1}" y="{ly:.1}" font-size="11" dominant-baseline="middle">{name}</text>"##,
                x0 = WIDTH - MARGIN_RIGHT - 150.0,
                x1 = WIDTH - MARGIN_RIGHT - 130.0,
                tx = WIDTH - MARGIN_RIGHT - 125.0,
                name = escape_xml(&s.name),
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

/// One group of bars (e.g. one traffic pattern) in a [`BarChart`].
#[derive(Clone, Debug, PartialEq)]
pub struct BarGroup {
    /// Group label shown under the bars.
    pub label: String,
    /// `(series name, value)` pairs; series names must be consistent across groups.
    pub values: Vec<(String, f64)>,
    /// Optional reference marks (e.g. the healthy-network throughput of Figures 8–9),
    /// one per value, drawn as a horizontal tick above the bar.
    pub references: Vec<Option<f64>>,
}

impl BarGroup {
    /// Builds a group without reference marks.
    pub fn new(label: impl Into<String>, values: Vec<(String, f64)>) -> Self {
        let n = values.len();
        BarGroup {
            label: label.into(),
            values,
            references: vec![None; n],
        }
    }

    /// Attaches one reference mark per value (builder style).
    pub fn with_references(mut self, references: Vec<Option<f64>>) -> Self {
        assert_eq!(references.len(), self.values.len());
        self.references = references;
        self
    }
}

/// A grouped bar chart in the style of Figures 8 and 9.
#[derive(Clone, Debug)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// The bar groups.
    pub groups: Vec<BarGroup>,
    /// Upper bound of the y axis (lower bound is 0).
    pub y_max: f64,
}

impl BarChart {
    /// Creates an empty chart; `y_max` bounds the axis (accepted load uses 1.0).
    pub fn new(title: impl Into<String>, y_label: impl Into<String>, y_max: f64) -> Self {
        assert!(y_max > 0.0, "y_max must be positive");
        BarChart {
            title: title.into(),
            y_label: y_label.into(),
            groups: Vec::new(),
            y_max,
        }
    }

    /// Adds a group (builder style).
    pub fn with_group(mut self, group: BarGroup) -> Self {
        self.groups.push(group);
        self
    }

    /// Renders the chart as an SVG document.
    pub fn to_svg(&self) -> String {
        assert!(
            !self.groups.is_empty(),
            "a bar chart needs at least one group"
        );
        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let sy = |y: f64| MARGIN_TOP + (1.0 - (y / self.y_max).clamp(0.0, 1.0)) * plot_h;

        let mut svg = svg_header(&self.title);
        axes(&mut svg, "", &self.y_label);
        for i in 0..=5 {
            let fy = self.y_max * i as f64 / 5.0;
            let py = sy(fy);
            let _ = writeln!(
                svg,
                r##"  <line x1="{left:.1}" y1="{py:.1}" x2="{right:.1}" y2="{py:.1}" stroke="#dddddd"/>
  <text x="{lx:.1}" y="{py:.1}" font-size="11" text-anchor="end" dominant-baseline="middle">{fy:.2}</text>"##,
                left = MARGIN_LEFT,
                right = WIDTH - MARGIN_RIGHT,
                lx = MARGIN_LEFT - 6.0,
            );
        }

        let group_w = plot_w / self.groups.len() as f64;
        let mut legend: Vec<String> = Vec::new();
        for (gi, group) in self.groups.iter().enumerate() {
            let bars = group.values.len().max(1) as f64;
            let bar_w = (group_w * 0.7) / bars;
            let group_x = MARGIN_LEFT + gi as f64 * group_w;
            for (bi, (name, value)) in group.values.iter().enumerate() {
                if !legend.contains(name) {
                    legend.push(name.clone());
                }
                let colour =
                    PALETTE[legend.iter().position(|n| n == name).unwrap() % PALETTE.len()];
                let x = group_x + group_w * 0.15 + bi as f64 * bar_w;
                let y = sy(*value);
                let h = HEIGHT - MARGIN_BOTTOM - y;
                let _ = writeln!(
                    svg,
                    r##"  <rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{colour}"/>"##,
                    w = bar_w * 0.9,
                );
                if let Some(reference) = group.references.get(bi).copied().flatten() {
                    let ry = sy(reference);
                    let _ = writeln!(
                        svg,
                        r##"  <line x1="{x:.1}" y1="{ry:.1}" x2="{x2:.1}" y2="{ry:.1}" stroke="#000000" stroke-width="1.5" stroke-dasharray="3,2"/>"##,
                        x2 = x + bar_w * 0.9,
                    );
                }
            }
            let _ = writeln!(
                svg,
                r##"  <text x="{cx:.1}" y="{ty:.1}" font-size="11" text-anchor="middle">{label}</text>"##,
                cx = group_x + group_w / 2.0,
                ty = HEIGHT - MARGIN_BOTTOM + 16.0,
                label = escape_xml(&group.label),
            );
        }
        for (i, name) in legend.iter().enumerate() {
            let colour = PALETTE[i % PALETTE.len()];
            let ly = MARGIN_TOP + 14.0 * i as f64;
            let _ = writeln!(
                svg,
                r##"  <rect x="{x:.1}" y="{y:.1}" width="10" height="10" fill="{colour}"/>
  <text x="{tx:.1}" y="{ty:.1}" font-size="11">{name}</text>"##,
                x = WIDTH - MARGIN_RIGHT - 150.0,
                y = ly - 9.0,
                tx = WIDTH - MARGIN_RIGHT - 135.0,
                ty = ly,
                name = escape_xml(name),
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn svg_header(title: &str) -> String {
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">
  <rect width="{WIDTH}" height="{HEIGHT}" fill="#ffffff"/>
  <text x="{cx}" y="22" font-size="15" text-anchor="middle" font-weight="bold">{title}</text>"##,
        cx = WIDTH / 2.0,
        title = escape_xml(title),
    );
    svg
}

fn axes(svg: &mut String, x_label: &str, y_label: &str) {
    let _ = writeln!(
        svg,
        r##"  <line x1="{left}" y1="{bottom}" x2="{right}" y2="{bottom}" stroke="#000000"/>
  <line x1="{left}" y1="{top}" x2="{left}" y2="{bottom}" stroke="#000000"/>
  <text x="{cx}" y="{xl_y}" font-size="12" text-anchor="middle">{x_label}</text>
  <text x="16" y="{cy}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {cy})">{y_label}</text>"##,
        left = MARGIN_LEFT,
        right = WIDTH - MARGIN_RIGHT,
        top = MARGIN_TOP,
        bottom = HEIGHT - MARGIN_BOTTOM,
        cx = (MARGIN_LEFT + WIDTH - MARGIN_RIGHT) / 2.0,
        xl_y = HEIGHT - 14.0,
        cy = (MARGIN_TOP + HEIGHT - MARGIN_BOTTOM) / 2.0,
        x_label = escape_xml(x_label),
        y_label = escape_xml(y_label),
    );
}

/// Builds a throughput-versus-offered-load line chart from sweep points,
/// one series per mechanism (the layout of Figures 4 and 5).
pub fn throughput_chart(title: &str, points: &[crate::sweep::SweepPoint]) -> LineChart {
    let mut chart = LineChart::new(title, "offered load", "accepted load").with_y_range(0.0, 1.0);
    let mut order: Vec<String> = Vec::new();
    for p in points {
        if !order.contains(&p.mechanism) {
            order.push(p.mechanism.clone());
        }
    }
    for mechanism in order {
        let series: Vec<(f64, f64)> = points
            .iter()
            .filter(|p| p.mechanism == mechanism)
            .map(|p| (p.offered_load, p.metrics.accepted_load))
            .collect();
        chart = chart.with_series(Series::new(mechanism, series));
    }
    chart
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepPoint;
    use hyperx_sim::{MeasuredCounters, RateMetrics};

    fn line_chart() -> LineChart {
        LineChart::new("Uniform", "offered load", "accepted load")
            .with_y_range(0.0, 1.0)
            .with_series(Series::new(
                "OmniSP",
                vec![(0.1, 0.1), (0.5, 0.48), (0.9, 0.8)],
            ))
            .with_series(Series::new(
                "PolSP",
                vec![(0.1, 0.1), (0.5, 0.47), (0.9, 0.72)],
            ))
    }

    #[test]
    fn line_chart_svg_contains_every_series_and_labels() {
        let svg = line_chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("OmniSP"));
        assert!(svg.contains("PolSP"));
        assert!(svg.contains("offered load"));
        assert!(svg.contains("accepted load"));
        // Axis ticks render the fixed 0..1 range.
        assert!(svg.contains(">0.00<"));
        assert!(svg.contains(">1.00<"));
    }

    #[test]
    fn line_chart_escapes_markup_in_names() {
        let svg = LineChart::new("a < b", "x", "y")
            .with_series(Series::new("A&B", vec![(0.0, 0.0), (1.0, 1.0)]))
            .to_svg();
        assert!(svg.contains("a &lt; b"));
        assert!(svg.contains("A&amp;B"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    #[should_panic]
    fn line_chart_rejects_empty_data() {
        let _ = LineChart::new("t", "x", "y").to_svg();
    }

    #[test]
    fn line_chart_autoscale_handles_flat_series() {
        let svg = LineChart::new("flat", "x", "y")
            .with_series(Series::new("c", vec![(0.0, 0.5), (1.0, 0.5)]))
            .to_svg();
        // A flat series must not divide by zero; the axis widens around it.
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn bar_chart_svg_contains_groups_references_and_legend() {
        let chart = BarChart::new("Star faults", "accepted load", 1.0)
            .with_group(
                BarGroup::new(
                    "Uniform",
                    vec![("OmniSP".to_string(), 0.73), ("PolSP".to_string(), 0.60)],
                )
                .with_references(vec![Some(0.78), Some(0.71)]),
            )
            .with_group(BarGroup::new(
                "RPN",
                vec![("OmniSP".to_string(), 0.52), ("PolSP".to_string(), 0.51)],
            ));
        let svg = chart.to_svg();
        // 4 bars + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 1 + 4 + 2);
        // 2 dashed reference marks.
        assert_eq!(svg.matches("stroke-dasharray").count(), 2);
        assert!(svg.contains("Uniform"));
        assert!(svg.contains("RPN"));
        assert!(svg.contains("OmniSP"));
    }

    #[test]
    #[should_panic]
    fn bar_chart_rejects_mismatched_references() {
        let _ = BarGroup::new("g", vec![("a".to_string(), 0.5)]).with_references(vec![None, None]);
    }

    #[test]
    fn throughput_chart_builds_one_series_per_mechanism() {
        let metrics = |offered: f64, accepted: f64| {
            let mut c = MeasuredCounters::new(1);
            c.cycles = 100;
            c.delivered_phits = (accepted * 100.0) as u64;
            c.delivered_packets = 1;
            RateMetrics::from_counters(offered, 16, 1, &mut c, 0, false)
        };
        let points = vec![
            SweepPoint {
                mechanism: "OmniSP".into(),
                traffic: "Uniform".into(),
                scenario: "Healthy".into(),
                offered_load: 0.2,
                metrics: metrics(0.2, 20.0),
            },
            SweepPoint {
                mechanism: "PolSP".into(),
                traffic: "Uniform".into(),
                scenario: "Healthy".into(),
                offered_load: 0.2,
                metrics: metrics(0.2, 19.0),
            },
            SweepPoint {
                mechanism: "OmniSP".into(),
                traffic: "Uniform".into(),
                scenario: "Healthy".into(),
                offered_load: 0.4,
                metrics: metrics(0.4, 40.0),
            },
        ];
        let chart = throughput_chart("Fig 5 / Uniform", &points);
        assert_eq!(chart.series.len(), 2);
        assert_eq!(chart.series[0].name, "OmniSP");
        assert_eq!(chart.series[0].points.len(), 2);
        assert_eq!(chart.series[1].points.len(), 1);
        let svg = chart.to_svg();
        assert!(svg.contains("Fig 5 / Uniform"));
    }
}
