//! Offered-load sweeps and mechanism comparisons, parallelised on the
//! campaign runner's bounded work-stealing pool (`surepath-runner`) rather
//! than one OS thread per simulation.

use crate::experiment::{Experiment, TrafficSpec};
use crate::scenario::FaultScenario;
use hyperx_routing::MechanismSpec;
use hyperx_sim::RateMetrics;
use serde::{Deserialize, Serialize};

/// One point of a throughput/latency curve: a mechanism, a traffic pattern, a
/// scenario and an offered load, with the measured metrics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Mechanism under test.
    pub mechanism: String,
    /// Traffic pattern.
    pub traffic: String,
    /// Fault scenario.
    pub scenario: String,
    /// Offered load.
    pub offered_load: f64,
    /// Measured metrics.
    pub metrics: RateMetrics,
}

/// Runs one experiment at every offered load of `loads`, in parallel on the
/// runner's work-stealing pool (bounded by the core count, not by the number
/// of loads). Panics if a simulation panics, preserving the pre-runner
/// fail-fast behaviour.
pub fn sweep_loads(experiment: &Experiment, loads: &[f64]) -> Vec<SweepPoint> {
    let metrics = surepath_runner::parallel_map(loads, None, |&load| experiment.run_rate(load));
    loads
        .iter()
        .zip(metrics)
        .map(|(&offered_load, metrics)| SweepPoint {
            mechanism: experiment.mechanism.name().to_string(),
            traffic: experiment.traffic.name().to_string(),
            scenario: experiment.scenario.name(),
            offered_load,
            metrics,
        })
        .collect()
}

/// Runs a full mechanism comparison (one curve per mechanism) for a fixed
/// traffic pattern and scenario: the building block of Figures 4 and 5.
#[allow(clippy::too_many_arguments)]
pub fn sweep_mechanisms(
    template: &Experiment,
    mechanisms: &[MechanismSpec],
    traffic: TrafficSpec,
    scenario: &FaultScenario,
    loads: &[f64],
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &mechanism in mechanisms {
        let mut exp = template.clone();
        exp.mechanism = mechanism;
        exp.traffic = traffic;
        exp.scenario = scenario.clone();
        // Keep the VC budget fair: every mechanism gets the same 2n VCs the
        // template was built with (paper §4).
        out.extend(sweep_loads(&exp, loads));
    }
    out
}

/// The offered-load grid the paper's throughput plots use (0.05 to 1.0).
pub fn paper_load_grid() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.05).collect()
}

/// A coarser grid for quick runs.
pub fn quick_load_grid() -> Vec<f64> {
    vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment() -> Experiment {
        let mut e = Experiment::quick_2d(MechanismSpec::OmniSP, TrafficSpec::Uniform);
        e.sim.warmup_cycles = 150;
        e.sim.measure_cycles = 400;
        e
    }

    #[test]
    fn sweep_loads_returns_one_point_per_load() {
        let e = tiny_experiment();
        let loads = [0.2, 0.5];
        let points = sweep_loads(&e, &loads);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].offered_load, 0.2);
        assert_eq!(points[1].offered_load, 0.5);
        assert!(points.iter().all(|p| p.mechanism == "OmniSP"));
        // Higher offered load can only increase (or match) accepted load in an
        // unsaturated tiny network.
        assert!(points[1].metrics.accepted_load >= points[0].metrics.accepted_load * 0.8);
    }

    #[test]
    fn sweep_mechanisms_produces_a_curve_per_mechanism() {
        let e = tiny_experiment();
        let points = sweep_mechanisms(
            &e,
            &[MechanismSpec::Minimal, MechanismSpec::PolSP],
            TrafficSpec::Uniform,
            &FaultScenario::None,
            &[0.3],
        );
        assert_eq!(points.len(), 2);
        let names: Vec<&str> = points.iter().map(|p| p.mechanism.as_str()).collect();
        assert!(names.contains(&"Minimal"));
        assert!(names.contains(&"PolSP"));
    }

    #[test]
    fn load_grids_are_sorted_and_bounded() {
        let grid = paper_load_grid();
        assert_eq!(grid.len(), 20);
        assert!((grid[0] - 0.05).abs() < 1e-12);
        assert!((grid[19] - 1.0).abs() < 1e-12);
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        let quick = quick_load_grid();
        assert!(quick.iter().all(|&l| l > 0.0 && l <= 1.0));
    }
}
