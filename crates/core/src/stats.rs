//! Multi-seed replication and summary statistics.
//!
//! The paper reports single simulation runs per point (the convention for
//! cycle-level interconnect studies). For claims that hinge on small
//! differences — e.g. "OmniSP and PolSP provide almost the same throughput" —
//! this reproduction additionally replicates runs across seeds and reports
//! mean, standard deviation and extreme values, so noise and signal can be
//! told apart in EXPERIMENTS.md.

use crate::experiment::Experiment;
use hyperx_sim::RateMetrics;
use serde::{Deserialize, Serialize};

/// Summary statistics of one scalar metric across replications.
///
/// ```
/// use surepath_core::Summary;
///
/// let s = Summary::of(&[0.70, 0.72, 0.71]);
/// assert_eq!(s.n, 3);
/// assert!((s.mean - 0.71).abs() < 1e-12);
/// assert!(s.std_dev < 0.02);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of replications.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `n < 2`).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a slice of observations.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary::default();
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Computes the summary of the *finite* observations in a slice,
    /// silently dropping NaN and infinities. Stalled batch runs can report
    /// non-finite latencies (no packet ever completed); aggregating them
    /// through this keeps every downstream mean/CI NaN-free — the dropped
    /// rows simply shrink `n`.
    pub fn of_finite(values: &[f64]) -> Self {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        Summary::of(&finite)
    }

    /// The same distribution under a linear rescale (e.g. a fraction summary
    /// rendered as a percentage): every statistic multiplies by `factor`.
    pub fn scaled(&self, factor: f64) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean * factor,
            std_dev: self.std_dev * factor.abs(),
            min: self.min * factor,
            max: self.max * factor,
        }
    }

    /// Half-width of the ±2σ/√n interval around the mean (a pragmatic ~95 %
    /// confidence half-width for the small replication counts used here).
    ///
    /// With fewer than two observations the spread is unknown, so the
    /// half-width is **infinite**: a single run can never be declared
    /// significantly different from anything (see [`Summary::differs_from`]).
    pub fn half_width(&self) -> f64 {
        if self.n < 2 {
            f64::INFINITY
        } else {
            2.0 * self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Whether another summary's mean lies outside this one's ±2σ/√n interval
    /// (a cheap "the difference looks real" check). `false` whenever either
    /// side has fewer than two observations — their half-width is infinite —
    /// or a non-finite mean.
    pub fn differs_from(&self, other: &Summary) -> bool {
        (self.mean - other.mean).abs() > self.half_width() + other.half_width()
    }
}

/// One latency percentile surfaced across `--report`, `--diff` and the chart
/// emitters: the derived-metric key used in diff rows/CSV, the column label,
/// and the quantile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PercentileLevel {
    /// Derived-metric key (`latency_p99`), stable across report and diff.
    pub key: &'static str,
    /// Human column label (`p99`).
    pub label: &'static str,
    /// The quantile in `[0, 1]`.
    pub q: f64,
}

/// The tail percentiles the observability layer reports, coldest first.
/// Ordering matters: chart series colors ramp cold→hot along this list.
pub const LATENCY_PERCENTILES: [PercentileLevel; 3] = [
    PercentileLevel {
        key: "latency_p50",
        label: "p50",
        q: 0.50,
    },
    PercentileLevel {
        key: "latency_p99",
        label: "p99",
        q: 0.99,
    },
    PercentileLevel {
        key: "latency_p999",
        label: "p99.9",
        q: 0.999,
    },
];

/// The percentile level behind a derived-metric key, if `key` is one.
pub fn percentile_level(key: &str) -> Option<PercentileLevel> {
    LATENCY_PERCENTILES.iter().copied().find(|l| l.key == key)
}

/// Per-percentile tail comparison: summarises each side's per-replica
/// percentile observations and applies the same conservative CI-overlap test
/// `--diff` uses for means. Returns `(level, baseline, candidate, differs)`
/// per level — `differs` is what gates CI on a tail regression even when the
/// means stay flat.
pub fn compare_tail_percentiles(
    baseline: &[&hyperx_sim::LatencyHistogram],
    candidate: &[&hyperx_sim::LatencyHistogram],
) -> Vec<(PercentileLevel, Summary, Summary, bool)> {
    let side = |hists: &[&hyperx_sim::LatencyHistogram], q: f64| -> Summary {
        let values: Vec<f64> = hists
            .iter()
            .filter_map(|h| h.value_at_quantile(q))
            .map(|v| v as f64)
            .collect();
        Summary::of(&values)
    };
    LATENCY_PERCENTILES
        .iter()
        .map(|&level| {
            let b = side(baseline, level.q);
            let c = side(candidate, level.q);
            let differs = b.differs_from(&c);
            (level, b, c, differs)
        })
        .collect()
}

/// Replicated metrics of one experiment point across seeds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplicatedPoint {
    /// Mechanism under test.
    pub mechanism: String,
    /// Traffic pattern.
    pub traffic: String,
    /// Fault scenario.
    pub scenario: String,
    /// Offered load.
    pub offered_load: f64,
    /// Accepted-load summary across seeds.
    pub accepted_load: Summary,
    /// Latency summary across seeds.
    pub average_latency: Summary,
    /// Jain-index summary across seeds.
    pub jain_generated: Summary,
    /// The raw per-seed metrics, in seed order.
    pub runs: Vec<RateMetrics>,
}

/// Runs `experiment` at `offered_load` once per seed, in parallel on the
/// runner's bounded work-stealing pool, and summarises the headline metrics.
pub fn replicate(experiment: &Experiment, offered_load: f64, seeds: &[u64]) -> ReplicatedPoint {
    assert!(!seeds.is_empty(), "at least one seed is required");
    let runs: Vec<RateMetrics> = surepath_runner::parallel_map(seeds, None, |&seed| {
        experiment.clone().with_seed(seed).run_rate(offered_load)
    });
    let collect = |f: fn(&RateMetrics) -> f64| -> Vec<f64> { runs.iter().map(f).collect() };
    ReplicatedPoint {
        mechanism: experiment.mechanism.name().to_string(),
        traffic: experiment.traffic.name().to_string(),
        scenario: experiment.scenario.name(),
        offered_load,
        accepted_load: Summary::of(&collect(|m| m.accepted_load)),
        average_latency: Summary::of(&collect(|m| m.average_latency)),
        jain_generated: Summary::of(&collect(|m| m.jain_generated)),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TrafficSpec;
    use hyperx_routing::MechanismSpec;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.half_width() > 0.0);
    }

    #[test]
    fn summary_of_single_or_empty_inputs() {
        let one = Summary::of(&[7.0]);
        assert_eq!(one.n, 1);
        assert_eq!(one.std_dev, 0.0);
        assert!(one.half_width().is_infinite(), "n=1 carries no spread info");
        let none = Summary::of(&[]);
        assert_eq!(none.n, 0);
        assert_eq!(none.mean, 0.0);
        assert!(none.half_width().is_infinite());
    }

    #[test]
    fn single_replica_is_never_significantly_different() {
        // n = 1 means an infinite-width CI: even a huge mean separation must
        // not be reported as significant, in either direction.
        let one = Summary::of(&[1.0]);
        let far = Summary::of(&[1000.0, 1000.1, 999.9]);
        assert!(!one.differs_from(&far));
        assert!(!far.differs_from(&one));
        assert!(!one.differs_from(&Summary::of(&[-50.0])));
        assert!(!Summary::of(&[]).differs_from(&far));
    }

    #[test]
    fn identical_replicas_have_zero_variance_and_separate_cleanly() {
        // Zero variance (a deterministic metric replicated across seeds that
        // happen to agree): the CI collapses to a point, so any nonzero mean
        // separation is significant and a zero separation is not.
        let a = Summary::of(&[0.5, 0.5, 0.5]);
        assert_eq!(a.std_dev, 0.0);
        assert_eq!(a.half_width(), 0.0);
        let b = Summary::of(&[0.5, 0.5, 0.5]);
        assert!(!a.differs_from(&b), "identical replicas: no difference");
        let c = Summary::of(&[0.500001, 0.500001, 0.500001]);
        assert!(a.differs_from(&c), "zero-variance summaries separate");
    }

    #[test]
    fn of_finite_drops_nan_and_infinite_observations() {
        // Stalled batch rows can carry NaN latencies; aggregation must stay
        // NaN-free and only shrink n.
        let s = Summary::of_finite(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.mean.is_finite() && s.std_dev.is_finite());
        let all_bad = Summary::of_finite(&[f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(all_bad.n, 0);
        assert_eq!(all_bad.mean, 0.0, "empty aggregation stays finite");
        assert!(!all_bad.differs_from(&s), "n=0 can never be significant");
    }

    #[test]
    fn differs_from_detects_separated_means() {
        let a = Summary::of(&[1.0, 1.01, 0.99]);
        let b = Summary::of(&[2.0, 2.01, 1.99]);
        assert!(a.differs_from(&b));
        let c = Summary::of(&[1.0, 1.2, 0.8]);
        let d = Summary::of(&[1.05, 1.25, 0.85]);
        assert!(!c.differs_from(&d));
    }

    #[test]
    fn replicate_runs_every_seed_and_is_deterministic_per_seed() {
        let mut e = Experiment::quick_2d(MechanismSpec::PolSP, TrafficSpec::Uniform);
        e.sim.warmup_cycles = 150;
        e.sim.measure_cycles = 400;
        let point = replicate(&e, 0.3, &[1, 2, 1]);
        assert_eq!(point.runs.len(), 3);
        assert_eq!(point.accepted_load.n, 3);
        assert!(point.accepted_load.mean > 0.1);
        // Identical seeds give identical runs (seed 1 appears twice).
        assert_eq!(point.runs[0].accepted_load, point.runs[2].accepted_load);
        assert_eq!(point.runs[0].average_latency, point.runs[2].average_latency);
    }

    #[test]
    #[should_panic]
    fn replicate_rejects_empty_seed_list() {
        let e = Experiment::quick_2d(MechanismSpec::PolSP, TrafficSpec::Uniform);
        let _ = replicate(&e, 0.3, &[]);
    }

    #[test]
    fn percentile_levels_resolve_by_key_and_ramp_upward() {
        assert_eq!(percentile_level("latency_p99").unwrap().q, 0.99);
        assert!(percentile_level("accepted_load").is_none());
        assert!(LATENCY_PERCENTILES.windows(2).all(|w| w[0].q < w[1].q));
    }

    #[test]
    fn tail_comparison_flags_a_shifted_tail_even_with_flat_means() {
        use hyperx_sim::LatencyHistogram;
        // Baseline and candidate share the same mean-ish body; the candidate
        // moves its worst 2% of samples out by 8×. Three replicas per side,
        // deterministic per replica, so the percentile CIs collapse to points.
        let build = |tail: u64| {
            let mut h = LatencyHistogram::new();
            for i in 0..98 {
                h.record(100 + (i % 7));
            }
            h.record(tail);
            h.record(tail);
            h
        };
        let base: Vec<LatencyHistogram> = (0..3).map(|_| build(200)).collect();
        let cand: Vec<LatencyHistogram> = (0..3).map(|_| build(1_600)).collect();
        let base_refs: Vec<&LatencyHistogram> = base.iter().collect();
        let cand_refs: Vec<&LatencyHistogram> = cand.iter().collect();
        let rows = compare_tail_percentiles(&base_refs, &cand_refs);
        assert_eq!(rows.len(), LATENCY_PERCENTILES.len());
        let by_key = |k: &str| rows.iter().find(|(l, ..)| l.key == k).unwrap();
        let (_, b50, c50, p50_differs) = by_key("latency_p50");
        assert_eq!(b50.mean, c50.mean, "body unchanged");
        assert!(!*p50_differs);
        let (_, b99, c99, p99_differs) = by_key("latency_p99");
        assert!(*p99_differs, "tail shift must gate");
        assert!(c99.mean > b99.mean);
    }

    #[test]
    fn tail_comparison_with_empty_sides_is_never_significant() {
        let rows = compare_tail_percentiles(&[], &[]);
        assert!(rows.iter().all(|(_, b, c, d)| b.n == 0 && c.n == 0 && !d));
    }
}
