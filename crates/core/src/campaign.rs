//! The bridge between declarative campaign jobs (`surepath-runner`) and
//! runnable [`Experiment`]s.
//!
//! `surepath-runner` is domain-agnostic: it expands specs, schedules jobs
//! and stores results, but a [`JobSpec`] is just names and numbers. This
//! module gives those names their simulation semantics:
//!
//! * [`job_experiment`] — builds the [`Experiment`] a job describes
//!   (parsing mechanism / traffic / scenario strings with the same parsers
//!   the CLI uses);
//! * [`run_job`] — executes one job and returns its metrics as a JSON value
//!   ready for the result store;
//! * [`run_campaign`] — the full pipeline: expand, skip completed
//!   fingerprints, execute on the work-stealing pool, stream to the JSONL
//!   store.
//!
//! Determinism: a job's result depends only on the job itself. The
//! simulator, the traffic permutation draw and the fault sequence are all
//! seeded from `JobSpec::seed` (and scenario-embedded seeds), never from
//! global state, so re-running a fingerprinted job reproduces its bytes.

use crate::experiment::{Experiment, RootPlacement, TrafficSpec};
use crate::scenario::FaultScenario;
use hyperx_routing::MechanismSpec;
use hyperx_sim::SimConfig;
use serde::Value;
use std::path::Path;
use surepath_runner::{CampaignOutcome, CampaignSpec, JobSpec};

/// Builds the [`Experiment`] described by a campaign job.
pub fn job_experiment(job: &JobSpec) -> Result<Experiment, String> {
    if job.sides.is_empty() || job.sides.iter().any(|&k| k < 2) {
        return Err(format!(
            "invalid sides {:?}: need >= 2 per dimension",
            job.sides
        ));
    }
    let dims = job.sides.len();
    let mechanism_name = job
        .mechanism
        .as_deref()
        .ok_or("rate jobs need a mechanism")?;
    let mechanism = MechanismSpec::parse(mechanism_name)
        .ok_or_else(|| format!("unknown mechanism '{mechanism_name}'"))?;
    let traffic = match job.traffic.as_deref() {
        None => TrafficSpec::Uniform,
        Some(name) => {
            TrafficSpec::parse(name).ok_or_else(|| format!("unknown traffic pattern '{name}'"))?
        }
    };
    let scenario = match job.scenario.as_deref() {
        None => FaultScenario::None,
        Some(spec) => FaultScenario::parse(spec, &job.sides)?,
    };
    let concentration = job.concentration.unwrap_or(job.sides[0]);
    if concentration == 0 {
        return Err("concentration must be at least 1".to_string());
    }
    let num_vcs = job.vcs.unwrap_or_else(|| mechanism.default_num_vcs(dims));
    let mut experiment = Experiment {
        sides: job.sides.clone(),
        concentration,
        mechanism,
        num_vcs,
        traffic,
        scenario,
        root: RootPlacement::Suggested,
        sim: SimConfig::paper_defaults(concentration, num_vcs),
    };
    experiment.sim.servers_per_switch = concentration;
    experiment = experiment.with_seed(job.seed);
    if let (Some(warmup), Some(measure)) = (job.warmup, job.measure) {
        experiment = experiment.with_windows(warmup, measure);
    }
    Ok(experiment)
}

/// Executes one campaign job. Currently understands kind `"rate"`
/// (open-loop simulation at `job.load`); other kinds live with their
/// callers (e.g. the figure binaries define analysis kinds on the same
/// runner).
pub fn run_job(job: &JobSpec) -> Result<Value, String> {
    match job.kind.as_str() {
        "rate" => {
            let experiment = job_experiment(job)?;
            let load = job.load.ok_or("rate jobs need a load")?;
            let metrics = experiment.run_rate(load);
            serde_json::to_value(&metrics).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown job kind '{other}'")),
    }
}

/// Checks every job of a campaign before running anything, so a typo in a
/// mechanism name fails in milliseconds instead of after the first hour of
/// simulation.
pub fn validate_campaign(spec: &CampaignSpec) -> Result<(), String> {
    for job in spec.expand()? {
        if job.kind == "rate" {
            job_experiment(&job).map_err(|e| format!("job `{}`: {e}", job.label()))?;
            if job.load.is_none() {
                return Err(format!("job `{}`: rate jobs need a load", job.label()));
            }
        }
    }
    Ok(())
}

/// Runs (or resumes) a simulation campaign end to end: expands `spec`,
/// skips jobs already fingerprint-complete in the store at `store_path`,
/// executes the rest on `threads` workers and streams results to the store.
pub fn run_campaign(
    spec: &CampaignSpec,
    store_path: &Path,
    threads: Option<usize>,
    quiet: bool,
) -> std::io::Result<CampaignOutcome> {
    validate_campaign(spec)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    surepath_runner::run_campaign(spec, store_path, threads, quiet, run_job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use surepath_runner::TopologySpec;

    fn tiny_job() -> JobSpec {
        JobSpec {
            campaign: "bridge-test".into(),
            kind: "rate".into(),
            sides: vec![4, 4],
            concentration: Some(4),
            mechanism: Some("polsp".into()),
            traffic: Some("uniform".into()),
            scenario: Some("random:5:3".into()),
            load: Some(0.3),
            seed: 11,
            vcs: None,
            warmup: Some(150),
            measure: Some(400),
        }
    }

    #[test]
    fn job_experiment_builds_the_described_experiment() {
        let e = job_experiment(&tiny_job()).unwrap();
        assert_eq!(e.sides, vec![4, 4]);
        assert_eq!(e.concentration, 4);
        assert_eq!(e.mechanism, MechanismSpec::PolSP);
        assert_eq!(e.traffic, TrafficSpec::Uniform);
        assert_eq!(e.scenario, FaultScenario::Random { count: 5, seed: 3 });
        assert_eq!(e.sim.seed, 11);
        assert_eq!(e.sim.warmup_cycles, 150);
        assert_eq!(e.sim.measure_cycles, 400);
    }

    #[test]
    fn invalid_jobs_are_rejected_with_messages() {
        let mut j = tiny_job();
        j.mechanism = Some("warp-drive".into());
        assert!(job_experiment(&j).unwrap_err().contains("warp-drive"));

        let mut j = tiny_job();
        j.traffic = Some("gridlock".into());
        assert!(job_experiment(&j).unwrap_err().contains("gridlock"));

        let mut j = tiny_job();
        j.scenario = Some("meteor".into());
        assert!(job_experiment(&j).is_err());

        let mut j = tiny_job();
        j.sides = vec![1, 4];
        assert!(job_experiment(&j).is_err());

        let mut j = tiny_job();
        j.mechanism = None;
        assert!(job_experiment(&j).is_err());

        let mut j = tiny_job();
        j.kind = "teleport".into();
        assert!(run_job(&j).unwrap_err().contains("teleport"));
    }

    #[test]
    fn run_job_produces_rate_metrics_json() {
        let result = run_job(&tiny_job()).unwrap();
        assert!(result["accepted_load"].as_f64().unwrap() > 0.05);
        assert_eq!(result["stalled"].as_bool(), Some(false));
    }

    #[test]
    fn run_job_is_deterministic_per_seed() {
        let a = run_job(&tiny_job()).unwrap();
        let b = run_job(&tiny_job()).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let mut other = tiny_job();
        other.seed = 12;
        let c = run_job(&other).unwrap();
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
    }

    #[test]
    fn validate_campaign_catches_typos_upfront() {
        let spec = CampaignSpec {
            name: "validate".into(),
            kind: None,
            topologies: vec![TopologySpec {
                sides: vec![4, 4],
                concentration: None,
            }],
            mechanisms: Some(vec!["polsp".into(), "nonsense".into()]),
            traffics: Some(vec!["uniform".into()]),
            scenarios: Some(vec!["none".into()]),
            loads: Some(vec![0.2]),
            seeds: None,
            vcs: None,
            warmup: Some(50),
            measure: Some(100),
        };
        let err = validate_campaign(&spec).unwrap_err();
        assert!(err.contains("nonsense"), "{err}");
    }
}
