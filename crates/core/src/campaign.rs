//! The bridge between declarative campaign jobs (`surepath-runner`) and
//! runnable [`Experiment`]s.
//!
//! `surepath-runner` is domain-agnostic: it expands specs, schedules jobs
//! and stores results, but a [`JobSpec`] is just names and numbers. This
//! module gives those names their simulation semantics:
//!
//! * [`job_experiment`] — builds the [`Experiment`] a job describes
//!   (parsing mechanism / traffic / scenario strings with the same parsers
//!   the CLI uses);
//! * [`run_job`] — executes one job and returns its metrics as a JSON value
//!   ready for the result store;
//! * [`run_campaign`] — the full pipeline: expand, skip completed
//!   fingerprints, execute on the work-stealing pool, stream to the JSONL
//!   store.
//!
//! Determinism: a job's result depends only on the job itself. The
//! simulator, the traffic permutation draw and the fault sequence are all
//! seeded from `JobSpec::seed` (and scenario-embedded seeds), never from
//! global state, so re-running a fingerprinted job reproduces its bytes.

use crate::experiment::{Experiment, RootPlacement, TrafficSpec};
use crate::scenario::FaultScenario;
use hyperx_routing::{MechanismSpec, NetworkView};
use hyperx_sim::{PacketTracer, RngContract, SimConfig};
use serde::Value;
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};
use surepath_runner::{
    job_fingerprint, trace_path, CampaignOutcome, CampaignSpec, JobSpec, TraceLog, TraceRecord,
};

/// Default batch throughput-sampling window (cycles) when a batch job does
/// not carry its own, matching the CLI `--batch` default.
pub const DEFAULT_SAMPLE_WINDOW: u64 = 1_000;

/// A campaign-scoped cache of built network views.
///
/// A [`NetworkView`] is the expensive part of simulator construction
/// (topology build, fault application, distance tables) and is immutable
/// during a run, while campaign grids typically sweep mechanisms, loads and
/// seeds over a handful of topology/scenario pairs. Executor threads share
/// one cache per campaign: the first job of each distinct
/// (sides, scenario, root) key builds the view, every later job clones the
/// `Arc`. Views are observations of the job description alone, so sharing
/// them cannot perturb results.
#[derive(Default)]
pub struct ViewCache {
    views: Mutex<HashMap<String, Arc<NetworkView>>>,
}

impl ViewCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct views currently cached.
    pub fn len(&self) -> usize {
        self.views.lock().map(|v| v.len()).unwrap_or(0)
    }

    /// Whether the cache holds no views yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The view of `experiment`, built on first use. `key` must capture
    /// every job field the view depends on (sides, scenario, root) —
    /// [`view_cache_key`] derives it from a [`JobSpec`].
    fn get_or_build(&self, key: String, experiment: &Experiment) -> Arc<NetworkView> {
        if let Some(view) = self.views.lock().ok().and_then(|v| v.get(&key).cloned()) {
            return view;
        }
        // Built outside the lock: view construction dominates small jobs,
        // and two threads racing the same key just build it twice (both
        // results are identical; the second insert wins harmlessly).
        let view = experiment.build_view();
        if let Ok(mut views) = self.views.lock() {
            views.insert(key, view.clone());
        }
        view
    }
}

/// The cache key of a job's network view: exactly the fields
/// [`Experiment::build_view`] reads. Mechanism, traffic, load and seed do
/// not shape the view, so jobs differing only in those share one entry.
fn view_cache_key(job: &JobSpec) -> String {
    format!("{:?}|{:?}|{:?}", job.sides, job.scenario, job.root)
}

/// Builds the [`Experiment`] described by a campaign job.
pub fn job_experiment(job: &JobSpec) -> Result<Experiment, String> {
    if job.sides.is_empty() || job.sides.iter().any(|&k| k < 2) {
        return Err(format!(
            "invalid sides {:?}: need >= 2 per dimension",
            job.sides
        ));
    }
    let dims = job.sides.len();
    let mechanism_name = job
        .mechanism
        .as_deref()
        .ok_or("simulation jobs need a mechanism")?;
    let mechanism = MechanismSpec::parse(mechanism_name)
        .ok_or_else(|| format!("unknown mechanism '{mechanism_name}'"))?;
    let traffic = match job.traffic.as_deref() {
        None => TrafficSpec::Uniform,
        Some(name) => {
            TrafficSpec::parse(name).ok_or_else(|| format!("unknown traffic pattern '{name}'"))?
        }
    };
    let scenario = match job.scenario.as_deref() {
        None => FaultScenario::None,
        Some(spec) => FaultScenario::parse(spec, &job.sides)?,
    };
    let root = match job.root.as_deref() {
        None => RootPlacement::Suggested,
        Some(spec) => RootPlacement::parse(spec)?,
    };
    let concentration = job.concentration.unwrap_or(job.sides[0]);
    if concentration == 0 {
        return Err("concentration must be at least 1".to_string());
    }
    let num_vcs = job.vcs.unwrap_or_else(|| mechanism.default_num_vcs(dims));
    let mut experiment = Experiment {
        sides: job.sides.clone(),
        concentration,
        mechanism,
        num_vcs,
        traffic,
        scenario,
        root,
        sim: SimConfig::paper_defaults(concentration, num_vcs),
    };
    experiment.sim.servers_per_switch = concentration;
    // An absent `rng` means contract v1: every store written before the
    // contract was versioned ran v1, and re-running its jobs must stay
    // byte-identical.
    experiment.sim.rng_contract = match job.rng.as_deref() {
        None | Some("v1") => RngContract::V1PerServer,
        Some("v2") => RngContract::V2Counting,
        Some(other) => return Err(format!("unknown RNG contract '{other}'")),
    };
    experiment = experiment.with_seed(job.seed);
    if let (Some(warmup), Some(measure)) = (job.warmup, job.measure) {
        experiment = experiment.with_windows(warmup, measure);
    }
    Ok(experiment)
}

/// Executes one simulation job, without the diagnostic context wrapper.
/// Returns the result value and, if `tracer` was supplied, the tracer back
/// with its recorded events.
///
/// The simulator is built here (rather than through [`Experiment::run_rate`])
/// so the engine's counter registry survives the run: its serialization is
/// attached to the result as a sibling `counters` key. Counters are
/// observations of a deterministic run, so the key is itself deterministic —
/// and the engine's zero-perturbation contract guarantees the value is
/// byte-identical whether a tracer was attached or not.
fn run_job_inner(
    job: &JobSpec,
    tracer: Option<PacketTracer>,
    tuning: &RunTuning<'_>,
) -> Result<(Value, Option<PacketTracer>), String> {
    let mut experiment = job_experiment(job)?;
    // Partitions are run tuning, never part of the job: the engine's
    // byte-identity contract makes the result bytes independent of the
    // value, so it stays out of fingerprints and stores.
    experiment.sim.partitions = tuning.partitions.max(1);
    let view = match tuning.views {
        Some(cache) => cache.get_or_build(view_cache_key(job), &experiment),
        None => experiment.build_view(),
    };
    let mut sim = experiment.build_simulator_with_view(view);
    sim.set_tracer(tracer);
    let mut value = match job.kind.as_str() {
        "rate" => {
            let load = job.load.ok_or("rate jobs need a load")?;
            let metrics = sim.run_rate(load);
            serde_json::to_value(&metrics).map_err(|e| e.to_string())?
        }
        "batch" => {
            let packets = job
                .packets_per_server
                .ok_or("batch jobs need packets_per_server")?;
            let window = job.sample_window.unwrap_or(DEFAULT_SAMPLE_WINDOW);
            // BatchMetrics serializes whole: completion time, delivered
            // packets, the throughput-over-time samples and the stalled flag.
            let metrics = sim.run_batch(packets, window);
            serde_json::to_value(&metrics).map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown job kind '{other}'")),
    };
    let counters = serde_json::to_value(sim.obs()).map_err(|e| e.to_string())?;
    match &mut value {
        Value::Object(fields) => fields.push(("counters".to_string(), counters)),
        _ => return Err("simulation metrics serialize to an object".to_string()),
    }
    Ok((value, sim.take_tracer()))
}

/// Executes one campaign job. Understands kind `"rate"` (open-loop
/// simulation at `job.load`) and kind `"batch"` (closed-loop completion-time
/// run of `job.packets_per_server` packets per server, Figure 10); other
/// kinds live with their callers (e.g. the figure binaries define analysis
/// kinds on the same runner).
///
/// Errors carry the job's campaign name and fingerprint, so a failed record
/// in a store — or a bad campaign TOML — is diagnosable from the message
/// alone.
pub fn run_job(job: &JobSpec) -> Result<Value, String> {
    run_job_tuned(job, &RunTuning::default())
}

/// Execution knobs that tune *how* a job runs without changing *what* it
/// computes: every combination produces byte-identical results, so none of
/// these enter fingerprints or stores.
#[derive(Default)]
pub struct RunTuning<'a> {
    /// Intra-simulation partition count ([`SimConfig::partitions`]);
    /// `0` and `1` both mean sequential.
    pub partitions: usize,
    /// Shared view cache; `None` builds each job's view from scratch.
    pub views: Option<&'a ViewCache>,
}

/// [`run_job`] with explicit execution tuning (partition count, shared view
/// cache). Results are byte-identical to [`run_job`] for every tuning.
pub fn run_job_tuned(job: &JobSpec, tuning: &RunTuning<'_>) -> Result<Value, String> {
    run_job_inner(job, None, tuning)
        .map(|(value, _)| value)
        .map_err(|e| job_error_context(job, e))
}

/// Executes one campaign job with packet tracing enabled: like [`run_job`],
/// but also returns the recorded lifecycle events as store-agnostic
/// [`TraceRecord`]s tagged with the job's fingerprint. The result value is
/// byte-identical to the untraced one (the zero-perturbation contract).
pub fn run_job_traced(job: &JobSpec, capacity: usize) -> Result<(Value, Vec<TraceRecord>), String> {
    run_job_traced_tuned(job, capacity, &RunTuning::default())
}

/// [`run_job_traced`] with explicit execution tuning.
pub fn run_job_traced_tuned(
    job: &JobSpec,
    capacity: usize,
    tuning: &RunTuning<'_>,
) -> Result<(Value, Vec<TraceRecord>), String> {
    let (value, tracer) = run_job_inner(job, Some(PacketTracer::with_capacity(capacity)), tuning)
        .map_err(|e| job_error_context(job, e))?;
    let fp = job_fingerprint(job);
    let records = tracer
        .map(|mut t| t.take_events())
        .unwrap_or_default()
        .iter()
        .map(|e| TraceRecord {
            fp: fp.clone(),
            packet: e.packet,
            cycle: e.cycle,
            event: e.kind.name().to_string(),
            switch: e.switch,
            hops: e.hops,
            escape_hops: e.escape_hops,
        })
        .collect();
    Ok((value, records))
}

fn job_error_context(job: &JobSpec, e: String) -> String {
    format!(
        "job `{}` (campaign `{}`, fp {}): {e}",
        job.label(),
        job.campaign,
        job_fingerprint(job)
    )
}

/// Checks every job of a campaign before running anything, so a typo in a
/// mechanism name fails in milliseconds instead of after the first hour of
/// simulation. Rejects job kinds the core bridge does not understand —
/// callers with custom kinds (e.g. `diameter`) validate on their own.
pub fn validate_campaign(spec: &CampaignSpec) -> Result<(), String> {
    for (index, job) in spec.expand()?.iter().enumerate() {
        let context = |e: String| {
            format!(
                "campaign `{}` job #{index} `{}` (fp {}): {e}",
                spec.name,
                job.label(),
                job_fingerprint(job)
            )
        };
        match job.kind.as_str() {
            "rate" => {
                job_experiment(job).map_err(&context)?;
                if job.load.is_none() {
                    return Err(context("rate jobs need a load".to_string()));
                }
            }
            "batch" => {
                job_experiment(job).map_err(&context)?;
                if job.packets_per_server.is_none() {
                    return Err(context("batch jobs need packets_per_server".to_string()));
                }
            }
            other => {
                return Err(context(format!(
                    "unknown job kind '{other}' (the core bridge understands `rate` and `batch`)"
                )))
            }
        }
    }
    Ok(())
}

/// Runs (or resumes) a simulation campaign end to end: expands `spec`,
/// skips jobs already fingerprint-complete in the store at `store_path`,
/// executes the rest on `threads` workers and streams results to the store.
pub fn run_campaign(
    spec: &CampaignSpec,
    store_path: &Path,
    threads: Option<usize>,
    quiet: bool,
) -> std::io::Result<CampaignOutcome> {
    validate_campaign(spec)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    // One view cache and one partition count for the whole campaign:
    // `spec.partitions` is run tuning (see `CampaignSpec`), so the store
    // bytes are identical whatever value it holds.
    let views = ViewCache::new();
    let tuning = RunTuning {
        partitions: spec.partitions.unwrap_or(1),
        views: Some(&views),
    };
    surepath_runner::run_campaign(spec, store_path, threads, quiet, |job| {
        run_job_tuned(job, &tuning)
    })
}

/// [`run_campaign`] with packet tracing: every executed job also streams its
/// lifecycle events to the `<store>.trace.jsonl` sidecar. The store itself is
/// byte-identical to an untraced run — traces are observations and ride next
/// to the store, never inside it. Sidecar record order follows job completion
/// order (each record carries its job's fingerprint for grouping).
pub fn run_campaign_traced(
    spec: &CampaignSpec,
    store_path: &Path,
    threads: Option<usize>,
    quiet: bool,
) -> std::io::Result<CampaignOutcome> {
    validate_campaign(spec)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let log = Mutex::new(TraceLog::open(&trace_path(store_path))?);
    let views = ViewCache::new();
    let tuning = RunTuning {
        partitions: spec.partitions.unwrap_or(1),
        views: Some(&views),
    };
    surepath_runner::run_campaign(spec, store_path, threads, quiet, |job| {
        let (value, records) = run_job_traced_tuned(job, PacketTracer::DEFAULT_CAPACITY, &tuning)?;
        // One lock per job, not per event: jobs append their whole batch
        // atomically, so lifecycles are contiguous within the sidecar.
        if let Ok(mut log) = log.lock() {
            for record in &records {
                let _ = log.append(record);
            }
            let _ = log.flush();
        }
        Ok(value)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use surepath_runner::TopologySpec;

    fn tiny_job() -> JobSpec {
        JobSpec {
            campaign: "bridge-test".into(),
            kind: "rate".into(),
            sides: vec![4, 4],
            concentration: Some(4),
            mechanism: Some("polsp".into()),
            traffic: Some("uniform".into()),
            scenario: Some("random:5:3".into()),
            load: Some(0.3),
            seed: 11,
            warmup: Some(150),
            measure: Some(400),
            ..JobSpec::default()
        }
    }

    fn tiny_batch_job() -> JobSpec {
        JobSpec {
            campaign: "bridge-batch-test".into(),
            kind: "batch".into(),
            load: None,
            packets_per_server: Some(20),
            sample_window: Some(250),
            ..tiny_job()
        }
    }

    #[test]
    fn job_experiment_builds_the_described_experiment() {
        let e = job_experiment(&tiny_job()).unwrap();
        assert_eq!(e.sides, vec![4, 4]);
        assert_eq!(e.concentration, 4);
        assert_eq!(e.mechanism, MechanismSpec::PolSP);
        assert_eq!(e.traffic, TrafficSpec::Uniform);
        assert_eq!(e.scenario, FaultScenario::Random { count: 5, seed: 3 });
        assert_eq!(e.sim.seed, 11);
        assert_eq!(e.sim.warmup_cycles, 150);
        assert_eq!(e.sim.measure_cycles, 400);
    }

    #[test]
    fn job_rng_contract_maps_absent_to_v1() {
        // Legacy jobs (no rng field) must re-run under the contract that
        // produced their stores: v1.
        let e = job_experiment(&tiny_job()).unwrap();
        assert_eq!(e.sim.rng_contract, RngContract::V1PerServer);

        let mut j = tiny_job();
        j.rng = Some("v1".into());
        assert_eq!(
            job_experiment(&j).unwrap().sim.rng_contract,
            RngContract::V1PerServer
        );

        let mut j = tiny_job();
        j.rng = Some("v2".into());
        assert_eq!(
            job_experiment(&j).unwrap().sim.rng_contract,
            RngContract::V2Counting
        );

        let mut j = tiny_job();
        j.rng = Some("v7".into());
        assert!(job_experiment(&j).unwrap_err().contains("v7"));
    }

    #[test]
    fn invalid_jobs_are_rejected_with_messages() {
        let mut j = tiny_job();
        j.mechanism = Some("warp-drive".into());
        assert!(job_experiment(&j).unwrap_err().contains("warp-drive"));

        let mut j = tiny_job();
        j.traffic = Some("gridlock".into());
        assert!(job_experiment(&j).unwrap_err().contains("gridlock"));

        let mut j = tiny_job();
        j.scenario = Some("meteor".into());
        assert!(job_experiment(&j).is_err());

        let mut j = tiny_job();
        j.sides = vec![1, 4];
        assert!(job_experiment(&j).is_err());

        let mut j = tiny_job();
        j.mechanism = None;
        assert!(job_experiment(&j).is_err());

        let mut j = tiny_job();
        j.root = Some("volcano".into());
        assert!(job_experiment(&j).unwrap_err().contains("volcano"));

        let mut j = tiny_job();
        j.kind = "teleport".into();
        let err = run_job(&j).unwrap_err();
        assert!(err.contains("teleport"), "{err}");
        // Errors identify the failing job: campaign name and fingerprint.
        assert!(err.contains("bridge-test"), "{err}");
        assert!(err.contains(&surepath_runner::job_fingerprint(&j)), "{err}");
    }

    #[test]
    fn run_job_produces_batch_metrics_json() {
        let result = run_job(&tiny_batch_job()).unwrap();
        assert_eq!(result["stalled"].as_bool(), Some(false));
        assert!(result["completion_time"].as_u64().unwrap() > 0);
        // 4x4 switches x 4 servers x 20 packets.
        assert_eq!(result["delivered_packets"].as_u64(), Some(16 * 4 * 20));
        assert!(
            !result["samples"].as_array().unwrap().is_empty(),
            "throughput-over-time samples are stored"
        );
    }

    #[test]
    fn batch_jobs_are_deterministic_and_need_packets() {
        let a = run_job(&tiny_batch_job()).unwrap();
        let b = run_job(&tiny_batch_job()).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );

        let mut j = tiny_batch_job();
        j.packets_per_server = None;
        let err = run_job(&j).unwrap_err();
        assert!(err.contains("packets_per_server"), "{err}");
    }

    #[test]
    fn run_job_produces_rate_metrics_json() {
        let result = run_job(&tiny_job()).unwrap();
        assert!(result["accepted_load"].as_f64().unwrap() > 0.05);
        assert_eq!(result["stalled"].as_bool(), Some(false));
    }

    #[test]
    fn results_carry_engine_counters() {
        for job in [tiny_job(), tiny_batch_job()] {
            let result = run_job(&job).unwrap();
            let counters = &result["counters"];
            assert_eq!(counters["v"].as_u64(), Some(1), "{}", job.kind);
            let slots = counters["c"].as_array().unwrap();
            assert!(!slots.is_empty(), "{} jobs populate counters", job.kind);
        }
    }

    #[test]
    fn traced_runs_produce_identical_result_bytes_plus_lifecycles() {
        let job = tiny_job();
        let untraced = run_job(&job).unwrap();
        let (traced, records) = run_job_traced(&job, 1 << 20).unwrap();
        // The zero-perturbation contract, observed at the store layer.
        assert_eq!(
            serde_json::to_string(&untraced).unwrap(),
            serde_json::to_string(&traced).unwrap()
        );
        assert!(!records.is_empty());
        let fp = job_fingerprint(&job);
        assert!(records.iter().all(|r| r.fp == fp));
        assert_eq!(records[0].event, "inject");
        assert!(records.iter().any(|r| r.event == "deliver"));
    }

    #[test]
    fn tuned_runs_are_byte_identical_and_share_views() {
        // The tuning knobs change how a job runs, never what it computes:
        // every partition count over a shared view cache must reproduce the
        // untuned bytes exactly. This is the store-level face of the
        // engine's partition-invariance contract.
        let plain = run_job(&tiny_job()).unwrap();
        let plain_batch = run_job(&tiny_batch_job()).unwrap();
        let views = ViewCache::new();
        for partitions in [1, 2, 4] {
            let tuning = RunTuning {
                partitions,
                views: Some(&views),
            };
            let tuned = run_job_tuned(&tiny_job(), &tuning).unwrap();
            assert_eq!(
                serde_json::to_string(&plain).unwrap(),
                serde_json::to_string(&tuned).unwrap(),
                "rate job at {partitions} partitions"
            );
            let tuned_batch = run_job_tuned(&tiny_batch_job(), &tuning).unwrap();
            assert_eq!(
                serde_json::to_string(&plain_batch).unwrap(),
                serde_json::to_string(&tuned_batch).unwrap(),
                "batch job at {partitions} partitions"
            );
        }
        // Both jobs share sides/scenario/root, so one view served all runs.
        assert_eq!(views.len(), 1);
        assert!(!views.is_empty());
    }

    #[test]
    fn run_job_is_deterministic_per_seed() {
        let a = run_job(&tiny_job()).unwrap();
        let b = run_job(&tiny_job()).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let mut other = tiny_job();
        other.seed = 12;
        let c = run_job(&other).unwrap();
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
    }

    #[test]
    fn validate_campaign_catches_typos_upfront() {
        let spec = CampaignSpec {
            name: "validate".into(),
            topologies: vec![TopologySpec {
                sides: vec![4, 4],
                concentration: None,
            }],
            mechanisms: Some(vec!["polsp".into(), "nonsense".into()]),
            traffics: Some(vec!["uniform".into()]),
            scenarios: Some(vec!["none".into()]),
            loads: Some(vec![0.2]),
            warmup: Some(50),
            measure: Some(100),
            ..CampaignSpec::default()
        };
        let err = validate_campaign(&spec).unwrap_err();
        assert!(err.contains("nonsense"), "{err}");
        // The message pins down which grid cell is broken: campaign name,
        // job index and fingerprint.
        assert!(err.contains("campaign `validate` job #1"), "{err}");
        assert!(err.contains("fp "), "{err}");

        let batch = CampaignSpec {
            kind: Some("batch".into()),
            mechanisms: Some(vec!["polsp".into()]),
            loads: None,
            ..spec.clone()
        };
        let err = validate_campaign(&batch).unwrap_err();
        assert!(err.contains("packets_per_server"), "{err}");

        let unknown = CampaignSpec {
            kind: Some("teleport".into()),
            mechanisms: Some(vec!["polsp".into()]),
            ..spec.clone()
        };
        let err = validate_campaign(&unknown).unwrap_err();
        assert!(err.contains("unknown job kind 'teleport'"), "{err}");
        assert!(err.contains("job #0"), "{err}");
    }

    #[test]
    fn batch_campaigns_validate_and_run_end_to_end() {
        let spec = CampaignSpec {
            name: "batch-bridge".into(),
            kind: Some("batch".into()),
            topologies: vec![TopologySpec {
                sides: vec![4, 4],
                concentration: Some(4),
            }],
            mechanisms: Some(vec!["omnisp".into(), "polsp".into()]),
            traffics: Some(vec!["uniform".into()]),
            scenarios: Some(vec!["none".into()]),
            seeds: Some(vec![1]),
            vcs: Some(4),
            packets_per_server: Some(15),
            sample_window: Some(200),
            ..CampaignSpec::default()
        };
        assert!(validate_campaign(&spec).is_ok());
        let dir = std::env::temp_dir().join("surepath-core-batch-campaign");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("batch-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let outcome = run_campaign(&spec, &path, Some(2), true).unwrap();
        assert_eq!(outcome.total, 2);
        assert_eq!(outcome.failed, 0);
        assert!(outcome.is_complete());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn traced_campaigns_write_identical_stores_plus_a_sidecar() {
        let spec = CampaignSpec {
            name: "trace-bridge".into(),
            topologies: vec![TopologySpec {
                sides: vec![4, 4],
                concentration: Some(4),
            }],
            mechanisms: Some(vec!["polsp".into()]),
            traffics: Some(vec!["uniform".into()]),
            scenarios: Some(vec!["none".into()]),
            loads: Some(vec![0.2, 0.4]),
            seeds: Some(vec![7]),
            warmup: Some(100),
            measure: Some(300),
            ..CampaignSpec::default()
        };
        let dir = std::env::temp_dir().join("surepath-core-traced-campaign");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let plain = dir.join(format!("plain-{pid}.jsonl"));
        let traced = dir.join(format!("traced-{pid}.jsonl"));
        let sidecar = trace_path(&traced);
        for p in [&plain, &traced, &sidecar] {
            let _ = std::fs::remove_file(p);
        }
        run_campaign(&spec, &plain, Some(2), true).unwrap();
        let outcome = run_campaign_traced(&spec, &traced, Some(2), true).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(
            std::fs::read(&plain).unwrap(),
            std::fs::read(&traced).unwrap(),
            "tracing must not change store bytes"
        );
        let records = surepath_runner::load_trace(&sidecar).unwrap();
        assert!(!records.is_empty());
        let jobs = spec.expand().unwrap();
        let fps: Vec<String> = jobs.iter().map(job_fingerprint).collect();
        assert!(records.iter().all(|r| fps.contains(&r.fp)));
        for p in [&plain, &traced, &sidecar] {
            let _ = std::fs::remove_file(p);
        }
    }
}
