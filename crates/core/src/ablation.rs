//! Ablation studies of SurePath's design choices.
//!
//! The paper motivates several design decisions without isolating their
//! individual contribution: the opportunistic shortcuts of the escape
//! subnetwork (§3.2), the number of virtual channels SurePath actually needs
//! (§3.1 / §6: "2 VCs suffice, 4 VCs are used in the fault experiments"), and
//! the placement of the escape root (§6: avoid a heavily-faulted switch).
//! This module turns each of those into a runnable study so the claims can be
//! quantified on the same simulator as the main figures:
//!
//! * [`vc_count_study`] — SurePath throughput as a function of its VC budget.
//! * [`escape_shortcut_study`] — the paper's opportunistic escape versus the
//!   pure Up*/Down* tree (ablating the shortcuts).
//! * [`root_placement_study`] — the stressful in-fault root versus the
//!   [`RootPolicy`] alternatives.

use crate::experiment::{Experiment, RootPlacement};
use crate::sweep::SweepPoint;
use hyperx_routing::MechanismSpec;
use hyperx_topology::RootPolicy;
use serde::{Deserialize, Serialize};

/// One measurement of an ablation study: the varied knob, its value and the
/// accepted load / latency it produced at the probe load.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Name of the knob being varied ("vcs", "escape", "root").
    pub knob: String,
    /// Value of the knob for this point.
    pub value: String,
    /// Mechanism under test.
    pub mechanism: String,
    /// Offered load of the probe.
    pub offered_load: f64,
    /// How many replica runs the metrics average over (1 for a direct probe).
    pub replicas: usize,
    /// Accepted load measured (replica mean).
    pub accepted_load: f64,
    /// Average message latency measured (replica mean).
    pub average_latency: f64,
    /// Fraction of delivered packets that used the escape subnetwork
    /// (replica mean).
    pub escape_fraction: f64,
}

impl AblationPoint {
    fn from_sweep(knob: &str, value: String, p: &SweepPoint) -> Self {
        AblationPoint {
            knob: knob.to_string(),
            value,
            mechanism: p.mechanism.clone(),
            offered_load: p.offered_load,
            replicas: 1,
            accepted_load: p.metrics.accepted_load,
            average_latency: p.metrics.average_latency,
            escape_fraction: p.metrics.escape_fraction,
        }
    }
}

fn probe(experiment: &Experiment, load: f64) -> SweepPoint {
    SweepPoint {
        mechanism: experiment.mechanism.name().to_string(),
        traffic: experiment.traffic.name().to_string(),
        scenario: experiment.scenario.name(),
        offered_load: load,
        metrics: experiment.run_rate(load),
    }
}

/// Runs the given SurePath experiment with every VC budget in `vc_counts`
/// (each must be ≥ 2) at the probe load.
///
/// The paper's claim this study quantifies: SurePath keeps its performance
/// with far fewer VCs than the Ladder mechanisms need (2 is functional, 4 is
/// the budget used in the fault experiments, 2n matches the fair comparison).
pub fn vc_count_study(template: &Experiment, vc_counts: &[usize], load: f64) -> Vec<AblationPoint> {
    assert!(
        template.mechanism.is_surepath(),
        "the VC-count study only makes sense for SurePath mechanisms"
    );
    vc_counts
        .iter()
        .map(|&vcs| {
            assert!(vcs >= 2, "SurePath needs at least 2 VCs");
            let exp = template.clone().with_num_vcs(vcs);
            AblationPoint::from_sweep("vcs", vcs.to_string(), &probe(&exp, load))
        })
        .collect()
}

/// Compares each SurePath configuration with its tree-only (no shortcuts)
/// counterpart at the probe load: the ablation of §3.2's opportunistic
/// shortcuts, which the paper credits with lifting the escape subnetwork from
/// "the marginal throughput of a tree" to a usable fallback.
pub fn escape_shortcut_study(template: &Experiment, load: f64) -> Vec<AblationPoint> {
    MechanismSpec::escape_ablation_lineup()
        .iter()
        .map(|&mechanism| {
            let mut exp = template.clone();
            exp.mechanism = mechanism;
            let value = if matches!(
                mechanism,
                MechanismSpec::OmniSPTree | MechanismSpec::PolSPTree
            ) {
                "tree-only".to_string()
            } else {
                "opportunistic".to_string()
            };
            AblationPoint::from_sweep("escape", value, &probe(&exp, load))
        })
        .collect()
}

/// Compares the paper's stressful root placement (inside the fault region)
/// against the [`RootPolicy`] alternatives, for the template's mechanism and
/// scenario, at the probe load.
pub fn root_placement_study(template: &Experiment, load: f64) -> Vec<AblationPoint> {
    assert!(
        template.mechanism.is_surepath(),
        "the root-placement study only makes sense for SurePath mechanisms"
    );
    let mut out = Vec::new();
    let suggested = template.clone().with_root(RootPlacement::Suggested);
    out.push(AblationPoint::from_sweep(
        "root",
        "suggested(in-fault)".to_string(),
        &probe(&suggested, load),
    ));
    for policy in [
        RootPolicy::MaxAliveDegree,
        RootPolicy::MinEccentricity,
        RootPolicy::MinTotalDistance,
    ] {
        let exp = template.clone().with_root(RootPlacement::Policy(policy));
        out.push(AblationPoint::from_sweep(
            "root",
            policy.name(),
            &probe(&exp, load),
        ));
    }
    out
}

/// Reconstructs ablation points from a campaign result store (campaign name
/// + `rate` kind), deriving the varied knob's value from the stored job:
///
/// * `"vcs"` — the job's VC budget;
/// * `"root"` — the job's root-placement spec (`suggested` is labelled
///   `suggested(in-fault)`, matching the studies above);
/// * `"escape"` — `tree-only` for the `*-tree` mechanism variants,
///   `opportunistic` otherwise.
///
/// Records come back in the store's canonical grid order; failed records
/// are skipped (re-run the campaign to heal them). `filter` selects which
/// jobs to render (e.g. one mechanism × traffic section of a study) —
/// pass `|_| true` for everything.
///
/// Replication-aware: records that are replicas of the same grid point
/// (same job minus the seed) collapse into **one** point whose metrics are
/// the replica means (NaN-free; non-finite rows only shrink the sample),
/// with `replicas` recording the sample size.
pub fn ablation_points_from_store(
    store: &surepath_runner::ResultStore,
    campaign: &str,
    knob: &str,
    filter: impl Fn(&surepath_runner::JobSpec) -> bool,
) -> Vec<AblationPoint> {
    let records = store.records_in_order().filter(|r| {
        r.status == "ok" && r.job.kind == "rate" && r.job.campaign == campaign && filter(&r.job)
    });
    surepath_runner::group_replicas(records)
        .into_iter()
        .filter_map(|(_, replicas)| {
            let runs: Vec<hyperx_sim::RateMetrics> = replicas
                .iter()
                .filter_map(|r| serde::Deserialize::deserialize(r.result.as_ref()?).ok())
                .collect();
            if runs.is_empty() {
                return None;
            }
            let job = &replicas[0].job;
            let mechanism_key = job.mechanism.as_deref().unwrap_or_default();
            let mechanism = match MechanismSpec::parse(mechanism_key) {
                Some(spec) => spec.name().to_string(),
                None => mechanism_key.to_string(),
            };
            let value = match knob {
                "vcs" => job.vcs.map_or("default".to_string(), |v| v.to_string()),
                "root" => match job.root.as_deref() {
                    None | Some("suggested") => "suggested(in-fault)".to_string(),
                    Some(root) => root.to_string(),
                },
                "escape" => {
                    let tree_only = matches!(
                        MechanismSpec::parse(mechanism_key),
                        Some(MechanismSpec::OmniSPTree | MechanismSpec::PolSPTree)
                    );
                    if tree_only {
                        "tree-only".to_string()
                    } else {
                        "opportunistic".to_string()
                    }
                }
                other => other.to_string(),
            };
            let mean = |f: fn(&hyperx_sim::RateMetrics) -> f64| -> f64 {
                crate::stats::Summary::of_finite(&runs.iter().map(f).collect::<Vec<_>>()).mean
            };
            Some(AblationPoint {
                knob: knob.to_string(),
                value,
                mechanism,
                offered_load: job.load.unwrap_or(runs[0].offered_load),
                replicas: runs.len(),
                accepted_load: mean(|m| m.accepted_load),
                average_latency: mean(|m| m.average_latency),
                escape_fraction: mean(|m| m.escape_fraction),
            })
        })
        .collect()
}

/// Formats ablation points as an aligned text table.
pub fn format_ablation_table(points: &[AblationPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<22} {:<12} {:>8} {:>3} {:>9} {:>9} {:>8}\n",
        "knob", "value", "mechanism", "offered", "n", "accepted", "latency", "escape%"
    ));
    out.push_str(&"-".repeat(88));
    out.push('\n');
    for p in points {
        out.push_str(&format!(
            "{:<10} {:<22} {:<12} {:>8.2} {:>3} {:>9.3} {:>9.1} {:>8.1}\n",
            p.knob,
            p.value,
            p.mechanism,
            p.offered_load,
            p.replicas,
            p.accepted_load,
            p.average_latency,
            100.0 * p.escape_fraction,
        ));
    }
    out
}

/// Serialises ablation points to CSV.
pub fn ablation_to_csv(points: &[AblationPoint]) -> String {
    let mut out = String::from(
        "knob,value,mechanism,offered_load,replicas,accepted_load,average_latency,escape_fraction\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            p.knob,
            p.value,
            p.mechanism,
            p.offered_load,
            p.replicas,
            p.accepted_load,
            p.average_latency,
            p.escape_fraction
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TrafficSpec;
    use crate::scenario::FaultScenario;

    fn tiny_template(mechanism: MechanismSpec) -> Experiment {
        let mut e = Experiment::quick_2d(mechanism, TrafficSpec::Uniform);
        e.sim.warmup_cycles = 150;
        e.sim.measure_cycles = 400;
        e
    }

    #[test]
    fn vc_count_study_produces_one_point_per_budget() {
        let points = vc_count_study(&tiny_template(MechanismSpec::PolSP), &[2, 4], 0.3);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].value, "2");
        assert_eq!(points[1].value, "4");
        for p in &points {
            assert_eq!(p.knob, "vcs");
            assert!(p.accepted_load > 0.1, "accepted {}", p.accepted_load);
        }
    }

    #[test]
    #[should_panic]
    fn vc_count_study_rejects_ladder_mechanisms() {
        let _ = vc_count_study(&tiny_template(MechanismSpec::Minimal), &[2], 0.3);
    }

    #[test]
    fn escape_shortcut_study_covers_all_four_variants() {
        let points = escape_shortcut_study(&tiny_template(MechanismSpec::OmniSP), 0.3);
        assert_eq!(points.len(), 4);
        assert_eq!(points.iter().filter(|p| p.value == "tree-only").count(), 2);
        assert_eq!(
            points.iter().filter(|p| p.value == "opportunistic").count(),
            2
        );
        for p in &points {
            assert!(p.accepted_load > 0.05);
        }
    }

    #[test]
    fn root_placement_study_reports_all_policies() {
        let template = tiny_template(MechanismSpec::PolSP).with_scenario(FaultScenario::Shape(
            hyperx_topology::FaultShape::Cross {
                center: vec![4, 4],
                margin: 2,
            },
        ));
        let points = root_placement_study(&template, 0.3);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].value, "suggested(in-fault)");
        assert!(points.iter().all(|p| p.knob == "root"));
        assert!(points.iter().all(|p| p.accepted_load > 0.05));
    }

    #[test]
    fn ablation_points_reconstruct_from_a_store() {
        use surepath_runner::{JobSpec, ResultStore};
        let dir = std::env::temp_dir().join("surepath-ablation-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("points-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();

        let metrics = hyperx_sim::RateMetrics {
            offered_load: 0.9,
            accepted_load: 0.7,
            generated_load: 0.9,
            average_latency: 120.0,
            max_latency: Some(400),
            jain_generated: 0.99,
            escape_fraction: 0.04,
            average_hops: 2.1,
            delivered_packets: 999,
            in_flight_at_end: 1,
            stalled: false,
            latency_hist: None,
        };
        let base = JobSpec {
            campaign: "study".into(),
            sides: vec![4, 4, 4],
            mechanism: Some("polsp".into()),
            traffic: Some("uniform".into()),
            load: Some(0.9),
            ..JobSpec::default()
        };
        let jobs = [
            JobSpec {
                vcs: Some(2),
                ..base.clone()
            },
            JobSpec {
                root: Some("max-alive-degree".into()),
                seed: 2,
                ..base.clone()
            },
            JobSpec {
                mechanism: Some("polsp-tree".into()),
                seed: 3,
                ..base.clone()
            },
        ];
        for job in &jobs {
            store
                .append_ok(job, serde_json::to_value(&metrics).unwrap())
                .unwrap();
        }

        let vcs = ablation_points_from_store(&store, "study", "vcs", |_| true);
        assert_eq!(vcs.len(), 3);
        assert_eq!(vcs[0].value, "2");
        assert_eq!(vcs[1].value, "default");
        assert_eq!(vcs[0].mechanism, "PolSP");
        assert!((vcs[0].accepted_load - 0.7).abs() < 1e-12);

        let roots = ablation_points_from_store(&store, "study", "root", |_| true);
        assert_eq!(roots[0].value, "suggested(in-fault)");
        assert_eq!(roots[1].value, "max-alive-degree");

        let escape = ablation_points_from_store(&store, "study", "escape", |_| true);
        assert_eq!(escape[0].value, "opportunistic");
        assert_eq!(escape[2].value, "tree-only");
        assert_eq!(escape[2].mechanism, "PolSP-tree");

        // The filter narrows to a section of the study.
        let filtered = ablation_points_from_store(&store, "study", "vcs", |j| j.seed == 3);
        assert_eq!(filtered.len(), 1);
        assert_eq!(
            ablation_points_from_store(&store, "other", "vcs", |_| true).len(),
            0
        );

        // Replicas of a grid point (same job, different seed) collapse into
        // one point averaging their metrics.
        let mut richer = metrics;
        richer.accepted_load = 0.8;
        store
            .append_ok(
                &JobSpec {
                    vcs: Some(2),
                    seed: 9,
                    ..base.clone()
                },
                serde_json::to_value(&richer).unwrap(),
            )
            .unwrap();
        let vcs = ablation_points_from_store(&store, "study", "vcs", |_| true);
        assert_eq!(vcs.len(), 3, "the new record joined the vcs=2 point");
        assert_eq!(vcs[0].replicas, 2);
        assert!(
            (vcs[0].accepted_load - 0.75).abs() < 1e-12,
            "mean of 0.7/0.8"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tables_and_csv_contain_every_point() {
        let points = vec![
            AblationPoint {
                knob: "vcs".into(),
                value: "2".into(),
                mechanism: "PolSP".into(),
                offered_load: 0.3,
                replicas: 1,
                accepted_load: 0.29,
                average_latency: 120.0,
                escape_fraction: 0.05,
            },
            AblationPoint {
                knob: "vcs".into(),
                value: "4".into(),
                mechanism: "PolSP".into(),
                offered_load: 0.3,
                replicas: 3,
                accepted_load: 0.30,
                average_latency: 110.0,
                escape_fraction: 0.03,
            },
        ];
        let table = format_ablation_table(&points);
        assert!(table.contains("PolSP"));
        assert_eq!(table.lines().count(), 2 + points.len());
        let csv = ablation_to_csv(&points);
        assert_eq!(csv.lines().count(), 1 + points.len());
        assert!(csv.starts_with("knob,value"));
    }
}
