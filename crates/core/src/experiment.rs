//! Experiment description and execution: topology + mechanism + traffic +
//! faults + simulation parameters, bundled into a single runnable value.

use crate::scenario::FaultScenario;
use hyperx_routing::{MechanismSpec, NetworkView};
use hyperx_sim::traffic::{
    DimensionComplementReverse, NeighbourShift, RandomServerPermutation,
    RegularPermutationToNeighbour, ServerLayout, TrafficPattern, Transpose, UniformTraffic,
};
use hyperx_sim::{BatchMetrics, RateMetrics, SimConfig, Simulator};
use hyperx_topology::{HyperX, RootPolicy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The synthetic traffic patterns of the paper, by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficSpec {
    /// Uniform random traffic.
    Uniform,
    /// A fixed random permutation of the servers.
    RandomServerPermutation,
    /// Dimension Complement Reverse (2D and 3D variants).
    DimensionComplementReverse,
    /// Regular Permutation to Neighbour (3D only).
    RegularPermutationToNeighbour,
    /// Coordinate-reversal permutation (extension pattern, not in the paper).
    Transpose,
    /// One-minimal-hop neighbour shift (extension pattern, not in the paper).
    NeighbourShift,
}

impl TrafficSpec {
    /// The patterns evaluated on the 2D HyperX (Figure 4).
    pub fn lineup_2d() -> [TrafficSpec; 3] {
        [
            TrafficSpec::Uniform,
            TrafficSpec::RandomServerPermutation,
            TrafficSpec::DimensionComplementReverse,
        ]
    }

    /// The patterns evaluated on the 3D HyperX (Figure 5).
    pub fn lineup_3d() -> [TrafficSpec; 4] {
        [
            TrafficSpec::Uniform,
            TrafficSpec::RandomServerPermutation,
            TrafficSpec::DimensionComplementReverse,
            TrafficSpec::RegularPermutationToNeighbour,
        ]
    }

    /// Display name matching the paper's figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficSpec::Uniform => "Uniform",
            TrafficSpec::RandomServerPermutation => "Random Server Permutation",
            TrafficSpec::DimensionComplementReverse => "Dimension Complement Reverse",
            TrafficSpec::RegularPermutationToNeighbour => "Regular Permutation to Neighbour",
            TrafficSpec::Transpose => "Transpose",
            TrafficSpec::NeighbourShift => "Neighbour Shift",
        }
    }

    /// Builds the pattern over the given layout; `seed` fixes the random
    /// permutation draw (ignored by the deterministic patterns).
    pub fn build(&self, layout: &ServerLayout, seed: u64) -> Box<dyn TrafficPattern> {
        match self {
            TrafficSpec::Uniform => Box::new(UniformTraffic::new(layout)),
            TrafficSpec::RandomServerPermutation => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_7AB1E);
                Box::new(RandomServerPermutation::new(layout, &mut rng))
            }
            TrafficSpec::DimensionComplementReverse => {
                Box::new(DimensionComplementReverse::new(layout.clone()))
            }
            TrafficSpec::RegularPermutationToNeighbour => {
                Box::new(RegularPermutationToNeighbour::new(layout.clone()))
            }
            TrafficSpec::Transpose => Box::new(Transpose::new(layout.clone())),
            TrafficSpec::NeighbourShift => Box::new(NeighbourShift::new(layout.clone())),
        }
    }

    /// The canonical parse token of this pattern: the inverse of
    /// [`TrafficSpec::parse`], used when generating campaign specs.
    pub fn key(&self) -> &'static str {
        match self {
            TrafficSpec::Uniform => "uniform",
            TrafficSpec::RandomServerPermutation => "rsp",
            TrafficSpec::DimensionComplementReverse => "dcr",
            TrafficSpec::RegularPermutationToNeighbour => "rpn",
            TrafficSpec::Transpose => "transpose",
            TrafficSpec::NeighbourShift => "shift",
        }
    }

    /// Parses a traffic name from a command line (`uniform`, `rsp`, `dcr`, `rpn`,
    /// plus the extension patterns `transpose` and `shift`).
    pub fn parse(name: &str) -> Option<TrafficSpec> {
        match name.to_ascii_lowercase().as_str() {
            "uniform" => Some(TrafficSpec::Uniform),
            "rsp" | "permutation" | "random-server-permutation" => {
                Some(TrafficSpec::RandomServerPermutation)
            }
            "dcr" | "dimension-complement-reverse" => Some(TrafficSpec::DimensionComplementReverse),
            "rpn" | "regular-permutation-to-neighbour" => {
                Some(TrafficSpec::RegularPermutationToNeighbour)
            }
            "transpose" => Some(TrafficSpec::Transpose),
            "shift" | "neighbour-shift" | "neighbor-shift" => Some(TrafficSpec::NeighbourShift),
            _ => None,
        }
    }
}

/// How the escape-subnetwork root is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RootPlacement {
    /// Use the scenario's suggestion: inside the fault region for the
    /// geometric shapes (the paper's stressful choice), switch 0 otherwise.
    Suggested,
    /// A fixed switch.
    Switch(usize),
    /// Select the root with a [`RootPolicy`] evaluated on the *faulty*
    /// network — e.g. [`RootPolicy::MaxAliveDegree`] implements the paper's
    /// §6 advice of avoiding a heavily-faulted root.
    Policy(RootPolicy),
}

impl RootPlacement {
    /// Parses a root-placement spec, as used by the CLI `--root` flag and by
    /// campaign specs: `suggested`, `switch:ID`, `max-degree`
    /// (alias `max-alive-degree`), `min-eccentricity` (alias `min-ecc`),
    /// `min-distance` (alias `min-total-distance`).
    pub fn parse(spec: &str) -> Result<RootPlacement, String> {
        let mut parts = spec.split(':');
        match parts.next().unwrap_or("") {
            "suggested" => Ok(RootPlacement::Suggested),
            "switch" => {
                let id: usize = parts
                    .next()
                    .ok_or("switch root needs an id, e.g. switch:0")?
                    .parse()
                    .map_err(|_| "invalid root switch id")?;
                Ok(RootPlacement::Switch(id))
            }
            "max-degree" | "max-alive-degree" => {
                Ok(RootPlacement::Policy(RootPolicy::MaxAliveDegree))
            }
            "min-eccentricity" | "min-ecc" => {
                Ok(RootPlacement::Policy(RootPolicy::MinEccentricity))
            }
            "min-distance" | "min-total-distance" => {
                Ok(RootPlacement::Policy(RootPolicy::MinTotalDistance))
            }
            other => Err(format!("unknown root spec '{other}'")),
        }
    }

    /// The canonical spec string of this placement: the inverse of
    /// [`RootPlacement::parse`], used when generating campaign specs.
    pub fn key(&self) -> String {
        match self {
            RootPlacement::Suggested => "suggested".to_string(),
            RootPlacement::Switch(id) => format!("switch:{id}"),
            RootPlacement::Policy(policy) => policy.name(),
        }
    }
}

/// A fully described experiment.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// HyperX sides, e.g. `[16, 16]` or `[8, 8, 8]`.
    pub sides: Vec<usize>,
    /// Servers per switch.
    pub concentration: usize,
    /// Routing mechanism under test.
    pub mechanism: MechanismSpec,
    /// Virtual channels per port.
    pub num_vcs: usize,
    /// Traffic pattern.
    pub traffic: TrafficSpec,
    /// Failure scenario.
    pub scenario: FaultScenario,
    /// Escape-subnetwork root placement.
    pub root: RootPlacement,
    /// Simulation parameters.
    pub sim: SimConfig,
}

impl Experiment {
    /// The paper's 2D configuration (16×16 HyperX, 16 servers per switch,
    /// 2n = 4 VCs) with the paper's Table 2 simulation parameters.
    pub fn paper_2d(mechanism: MechanismSpec, traffic: TrafficSpec) -> Self {
        let num_vcs = mechanism.default_num_vcs(2);
        Experiment {
            sides: vec![16, 16],
            concentration: 16,
            mechanism,
            num_vcs,
            traffic,
            scenario: FaultScenario::None,
            root: RootPlacement::Suggested,
            sim: SimConfig::paper_defaults(16, num_vcs),
        }
    }

    /// The paper's 3D configuration (8×8×8 HyperX, 8 servers per switch, 2n = 6 VCs).
    pub fn paper_3d(mechanism: MechanismSpec, traffic: TrafficSpec) -> Self {
        let num_vcs = mechanism.default_num_vcs(3);
        Experiment {
            sides: vec![8, 8, 8],
            concentration: 8,
            mechanism,
            num_vcs,
            traffic,
            scenario: FaultScenario::None,
            root: RootPlacement::Suggested,
            sim: SimConfig::paper_defaults(8, num_vcs),
        }
    }

    /// A scaled-down 2D configuration (8×8, 8 servers per switch) with short
    /// simulation windows, for laptops and tests. The `--quick` mode of every
    /// benchmark binary uses it.
    pub fn quick_2d(mechanism: MechanismSpec, traffic: TrafficSpec) -> Self {
        let num_vcs = mechanism.default_num_vcs(2);
        Experiment {
            sides: vec![8, 8],
            concentration: 8,
            mechanism,
            num_vcs,
            traffic,
            scenario: FaultScenario::None,
            root: RootPlacement::Suggested,
            sim: SimConfig::quick(8, num_vcs),
        }
    }

    /// A scaled-down 3D configuration (4×4×4, 4 servers per switch).
    pub fn quick_3d(mechanism: MechanismSpec, traffic: TrafficSpec) -> Self {
        let num_vcs = mechanism.default_num_vcs(3);
        Experiment {
            sides: vec![4, 4, 4],
            concentration: 4,
            mechanism,
            num_vcs,
            traffic,
            scenario: FaultScenario::None,
            root: RootPlacement::Suggested,
            sim: SimConfig::quick(4, num_vcs),
        }
    }

    /// Sets the fault scenario (and keeps everything else).
    pub fn with_scenario(mut self, scenario: FaultScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Overrides the number of VCs, also updating the simulator configuration.
    pub fn with_num_vcs(mut self, num_vcs: usize) -> Self {
        self.num_vcs = num_vcs;
        self.sim.num_vcs = num_vcs;
        self
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Overrides warmup and measurement windows.
    pub fn with_windows(mut self, warmup: u64, measure: u64) -> Self {
        self.sim.warmup_cycles = warmup;
        self.sim.measure_cycles = measure;
        self
    }

    /// A short human-readable label for reports.
    pub fn label(&self) -> String {
        format!(
            "{}D HyperX side {} / {} / {} / {}",
            self.sides.len(),
            self.sides[0],
            self.mechanism.name(),
            self.traffic.name(),
            self.scenario.name()
        )
    }

    /// Builds the healthy topology of this experiment.
    pub fn topology(&self) -> HyperX {
        HyperX::new(&self.sides)
    }

    /// Overrides the escape-root placement.
    pub fn with_root(mut self, root: RootPlacement) -> Self {
        self.root = root;
        self
    }

    /// Builds the faulty network view this experiment runs on.
    pub fn build_view(&self) -> Arc<NetworkView> {
        let hx = self.topology();
        let faults = self.scenario.faults(&hx);
        let root = match self.root {
            RootPlacement::Suggested => self.scenario.suggested_root(&hx),
            RootPlacement::Switch(s) => s,
            RootPlacement::Policy(policy) => {
                // Evaluate the policy on the faulty network so it can react to
                // the failures (the whole point of the §6 advice).
                let mut faulted = hx.network().clone();
                faults.apply(&mut faulted);
                policy.select(&faulted)
            }
        };
        Arc::new(NetworkView::with_faults(hx, &faults, root))
    }

    /// Builds the simulator ready to run.
    pub fn build_simulator(&self) -> Simulator {
        self.build_simulator_with_view(self.build_view())
    }

    /// Builds the simulator over an already-built network view. The view is
    /// the expensive part of simulator construction (topology, fault
    /// application, distance tables), and it is immutable during a run —
    /// campaigns whose jobs share a topology/scenario pair pass one `Arc`
    /// here instead of rebuilding the view per job.
    ///
    /// `view` must describe the same topology/faults/root this experiment
    /// would build ([`Experiment::build_view`]); passing a mismatched view is
    /// a logic error.
    pub fn build_simulator_with_view(&self, view: Arc<NetworkView>) -> Simulator {
        let (mechanism, pattern, sim_cfg) = self.simulator_parts(&view);
        Simulator::new(view, mechanism, pattern, sim_cfg)
    }

    /// The non-view constructor inputs of a simulator over `view`: the
    /// routing mechanism, the traffic pattern and the completed simulator
    /// configuration. Shared by [`Experiment::build_simulator_with_view`]
    /// and harnesses that feed the exact same inputs to an alternative
    /// engine build (e.g. the bench's frozen v4-layout baseline).
    pub fn simulator_parts(
        &self,
        view: &Arc<NetworkView>,
    ) -> (
        Box<dyn hyperx_routing::RoutingMechanism>,
        Box<dyn TrafficPattern>,
        SimConfig,
    ) {
        let mechanism = self.mechanism.build(view.clone(), self.num_vcs);
        let layout = ServerLayout::new(view.hyperx(), self.concentration);
        let pattern = self.traffic.build(&layout, self.sim.seed);
        let mut sim_cfg = self.sim.clone();
        sim_cfg.servers_per_switch = self.concentration;
        sim_cfg.num_vcs = self.num_vcs;
        (mechanism, pattern, sim_cfg)
    }

    /// Runs the open-loop experiment at the given offered load.
    pub fn run_rate(&self, offered_load: f64) -> RateMetrics {
        self.build_simulator().run_rate(offered_load)
    }

    /// Runs the closed-loop (completion time) experiment.
    pub fn run_batch(&self, packets_per_server: u64, sample_window: u64) -> BatchMetrics {
        self.build_simulator()
            .run_batch(packets_per_server, sample_window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_match_table3_and_table4() {
        let e2 = Experiment::paper_2d(MechanismSpec::OmniSP, TrafficSpec::Uniform);
        assert_eq!(e2.sides, vec![16, 16]);
        assert_eq!(e2.concentration, 16);
        assert_eq!(e2.num_vcs, 4);
        let e3 = Experiment::paper_3d(MechanismSpec::Polarized, TrafficSpec::Uniform);
        assert_eq!(e3.sides, vec![8, 8, 8]);
        assert_eq!(e3.concentration, 8);
        assert_eq!(e3.num_vcs, 6);
    }

    #[test]
    fn traffic_keys_round_trip_through_parse() {
        for traffic in [
            TrafficSpec::Uniform,
            TrafficSpec::RandomServerPermutation,
            TrafficSpec::DimensionComplementReverse,
            TrafficSpec::RegularPermutationToNeighbour,
            TrafficSpec::Transpose,
            TrafficSpec::NeighbourShift,
        ] {
            assert_eq!(TrafficSpec::parse(traffic.key()), Some(traffic));
        }
    }

    #[test]
    fn traffic_spec_lineups_and_names() {
        assert_eq!(TrafficSpec::lineup_2d().len(), 3);
        assert_eq!(TrafficSpec::lineup_3d().len(), 4);
        assert_eq!(TrafficSpec::parse("uniform"), Some(TrafficSpec::Uniform));
        assert_eq!(
            TrafficSpec::parse("rpn"),
            Some(TrafficSpec::RegularPermutationToNeighbour)
        );
        assert_eq!(
            TrafficSpec::parse("dcr"),
            Some(TrafficSpec::DimensionComplementReverse)
        );
        assert_eq!(
            TrafficSpec::parse("rsp"),
            Some(TrafficSpec::RandomServerPermutation)
        );
        assert_eq!(TrafficSpec::parse("junk"), None);
    }

    #[test]
    fn quick_experiment_runs_end_to_end() {
        let mut e = Experiment::quick_2d(MechanismSpec::OmniSP, TrafficSpec::Uniform);
        e.sim.warmup_cycles = 300;
        e.sim.measure_cycles = 800;
        let m = e.run_rate(0.3);
        assert!(!m.stalled);
        assert!(m.accepted_load > 0.15, "accepted {}", m.accepted_load);
    }

    #[test]
    fn faulty_quick_experiment_runs_end_to_end() {
        let mut e = Experiment::quick_2d(MechanismSpec::PolSP, TrafficSpec::Uniform)
            .with_scenario(FaultScenario::Random { count: 10, seed: 4 })
            .with_num_vcs(4);
        e.sim.warmup_cycles = 300;
        e.sim.measure_cycles = 800;
        let m = e.run_rate(0.3);
        assert!(!m.stalled);
        assert!(m.accepted_load > 0.1);
    }

    #[test]
    fn label_mentions_all_components() {
        let e = Experiment::paper_3d(
            MechanismSpec::PolSP,
            TrafficSpec::RegularPermutationToNeighbour,
        )
        .with_scenario(FaultScenario::star_3d());
        let label = e.label();
        assert!(label.contains("PolSP"));
        assert!(label.contains("Regular Permutation"));
        assert!(label.contains("Star"));
        assert!(label.contains("3D"));
    }

    #[test]
    fn build_view_applies_scenario_and_root() {
        let e = Experiment::paper_2d(MechanismSpec::OmniSP, TrafficSpec::Uniform)
            .with_scenario(FaultScenario::cross_2d());
        let view = e.build_view();
        assert_eq!(view.network().num_faults(), 110);
        assert_eq!(view.escape_root(), view.hyperx().switch_id(&[8, 8]));
        assert!(view.is_connected());
    }

    #[test]
    fn policy_root_placement_avoids_the_star_center() {
        let e = Experiment::paper_3d(MechanismSpec::PolSP, TrafficSpec::Uniform)
            .with_scenario(FaultScenario::star_3d())
            .with_root(RootPlacement::Policy(RootPolicy::MaxAliveDegree));
        let view = e.build_view();
        let center = view.hyperx().switch_id(&[4, 4, 4]);
        assert_ne!(view.escape_root(), center);
        assert!(view.network().degree(view.escape_root()) > 3);
    }

    #[test]
    fn extension_traffic_specs_build_and_run() {
        for traffic in [TrafficSpec::Transpose, TrafficSpec::NeighbourShift] {
            let mut e = Experiment::quick_2d(MechanismSpec::PolSP, traffic);
            e.sim.warmup_cycles = 200;
            e.sim.measure_cycles = 500;
            let m = e.run_rate(0.2);
            assert!(!m.stalled, "{} stalled", traffic.name());
            assert!(
                m.accepted_load > 0.05,
                "{} accepted {}",
                traffic.name(),
                m.accepted_load
            );
        }
        assert_eq!(
            TrafficSpec::parse("transpose"),
            Some(TrafficSpec::Transpose)
        );
        assert_eq!(
            TrafficSpec::parse("shift"),
            Some(TrafficSpec::NeighbourShift)
        );
    }

    // key()/parse() round-trips over generated placements live in the
    // property suite (tests/properties.rs); only the alias and rejection
    // behaviour stays hand-picked here.
    #[test]
    fn root_placement_aliases_and_rejections() {
        assert_eq!(
            RootPlacement::parse("max-degree"),
            Ok(RootPlacement::Policy(RootPolicy::MaxAliveDegree))
        );
        assert!(RootPlacement::parse("volcano").is_err());
        assert!(RootPlacement::parse("switch").is_err());
    }

    #[test]
    fn with_helpers_override_fields() {
        let e = Experiment::quick_3d(MechanismSpec::PolSP, TrafficSpec::Uniform)
            .with_num_vcs(4)
            .with_seed(77)
            .with_windows(10, 20);
        assert_eq!(e.num_vcs, 4);
        assert_eq!(e.sim.num_vcs, 4);
        assert_eq!(e.sim.seed, 77);
        assert_eq!(e.sim.warmup_cycles, 10);
        assert_eq!(e.sim.measure_cycles, 20);
    }
}
