//! Fault scenarios: the named failure configurations of Section 6.

use hyperx_topology::{FaultSet, FaultShape, HyperX};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A failure scenario applied to a HyperX before an experiment runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultScenario {
    /// The healthy network.
    None,
    /// The first `count` faults of a reproducible random fault sequence
    /// (Figures 1 and 6). The sequence is derived from `seed` alone, so two
    /// scenarios with the same seed and increasing counts are prefixes of one
    /// another, exactly like the paper's incremental experiment.
    Random {
        /// Number of faulty links.
        count: usize,
        /// Seed of the fault sequence.
        seed: u64,
    },
    /// A geometric fault shape (Figures 7–9).
    Shape(FaultShape),
}

impl FaultScenario {
    /// The paper's 2D *Row* configuration: a full row of the 16×16 HyperX
    /// fails (120 links).
    pub fn row_2d() -> Self {
        FaultScenario::Shape(FaultShape::Row {
            along_dim: 0,
            at: vec![0, 8],
        })
    }

    /// The paper's 2D *Subplane* configuration: a 5×5 sub-grid fails (100 links).
    pub fn subplane_2d() -> Self {
        FaultScenario::Shape(FaultShape::Subgrid {
            low: vec![5, 5],
            size: 5,
        })
    }

    /// The paper's 2D *Cross* configuration: a row and a column through the
    /// escape root with margin 5 fail (110 links).
    pub fn cross_2d() -> Self {
        FaultScenario::Shape(FaultShape::Cross {
            center: vec![8, 8],
            margin: 5,
        })
    }

    /// The paper's 3D *Row* configuration: a full row of the 8×8×8 HyperX fails (28 links).
    pub fn row_3d() -> Self {
        FaultScenario::Shape(FaultShape::Row {
            along_dim: 0,
            at: vec![0, 4, 4],
        })
    }

    /// The paper's 3D *Subcube* configuration: a 3×3×3 subcube fails (81 links).
    pub fn subcube_3d() -> Self {
        FaultScenario::Shape(FaultShape::Subgrid {
            low: vec![2, 2, 2],
            size: 3,
        })
    }

    /// The paper's 3D *Star* configuration: the three rows through the escape
    /// root fail except one link per dimension (63 links, root keeps 3 links).
    pub fn star_3d() -> Self {
        FaultScenario::Shape(FaultShape::Cross {
            center: vec![4, 4, 4],
            margin: 1,
        })
    }

    /// Display name used in reports.
    pub fn name(&self) -> String {
        match self {
            FaultScenario::None => "Healthy".to_string(),
            FaultScenario::Random { count, .. } => format!("Random({count})"),
            FaultScenario::Shape(FaultShape::Row { .. }) => "Row".to_string(),
            FaultScenario::Shape(FaultShape::Subgrid { low, size }) => {
                if low.len() == 2 {
                    format!("Subplane({size}x{size})")
                } else {
                    format!("Subcube({size}^{})", low.len())
                }
            }
            FaultScenario::Shape(FaultShape::Cross { margin, center }) => {
                if center.len() == 3 && *margin == 1 {
                    "Star".to_string()
                } else {
                    format!("Cross(margin {margin})")
                }
            }
        }
    }

    /// The fault set this scenario produces on the given topology.
    pub fn faults(&self, hx: &HyperX) -> FaultSet {
        match self {
            FaultScenario::None => FaultSet::empty(),
            FaultScenario::Random { count, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                FaultSet::random_sequence(hx.network(), *count, &mut rng)
            }
            FaultScenario::Shape(shape) => FaultSet::from_shape(shape, hx),
        }
    }

    /// Parses a scenario string, as used by the CLI `--faults` flag and by
    /// campaign specs: `none`, `random:COUNT[:SEED]`, `row[:DIM[:COORDS]]`,
    /// `subgrid:SIZE[:COORDS]` (aliases `subplane`, `subcube`),
    /// `cross:MARGIN[:COORDS]`, `star[:COORDS]`. `COORDS` is a
    /// comma-separated coordinate vector (`row:0:0,8`, `cross:5:8,8`) fixing
    /// the shape's anchor exactly — the row's `at`, the subgrid's `low`, the
    /// cross/star's `center`. Without it, shapes are centred on the topology
    /// given by `sides` (the subgrid anchors at the origin).
    pub fn parse(spec: &str, sides: &[usize]) -> Result<FaultScenario, String> {
        let mid: Vec<usize> = sides.iter().map(|&k| k / 2).collect();
        let mut parts = spec.split(':');
        let kind = parts.next().unwrap_or("");
        let coords = |part: Option<&str>, default: Vec<usize>| -> Result<Vec<usize>, String> {
            let Some(text) = part else {
                return Ok(default);
            };
            let parsed: Result<Vec<usize>, _> = text.split(',').map(str::parse::<usize>).collect();
            match parsed {
                Ok(v) if v.len() == sides.len() && v.iter().zip(sides).all(|(&c, &k)| c < k) => {
                    Ok(v)
                }
                _ => Err(format!(
                    "invalid coordinates '{text}': expected {} comma-separated values within {sides:?}",
                    sides.len()
                )),
            }
        };
        match kind {
            "none" => Ok(FaultScenario::None),
            "random" => {
                let count: usize = parts
                    .next()
                    .ok_or("random faults need a count, e.g. random:30")?
                    .parse()
                    .map_err(|_| "invalid random fault count")?;
                let seed: u64 = match parts.next() {
                    Some(s) => s.parse().map_err(|_| "invalid random fault seed")?,
                    None => 1,
                };
                Ok(FaultScenario::Random { count, seed })
            }
            "row" => {
                let along_dim: usize = match parts.next() {
                    Some(d) => d.parse().map_err(|_| "invalid row dimension")?,
                    None => 0,
                };
                if along_dim >= sides.len() {
                    return Err(format!(
                        "row dimension {along_dim} out of range for {sides:?}"
                    ));
                }
                let at = coords(parts.next(), mid)?;
                Ok(FaultScenario::Shape(FaultShape::Row { along_dim, at }))
            }
            "subgrid" | "subplane" | "subcube" => {
                let size: usize = parts
                    .next()
                    .ok_or("subgrid faults need a size, e.g. subgrid:3")?
                    .parse()
                    .map_err(|_| "invalid subgrid size")?;
                let low = coords(parts.next(), vec![0; sides.len()])?;
                if low.iter().zip(sides).any(|(&l, &k)| l + size > k) {
                    return Err(format!("subgrid size {size} does not fit the topology"));
                }
                Ok(FaultScenario::Shape(FaultShape::Subgrid { low, size }))
            }
            "cross" => {
                let margin: usize = parts
                    .next()
                    .ok_or("cross faults need a margin, e.g. cross:5")?
                    .parse()
                    .map_err(|_| "invalid cross margin")?;
                if sides.iter().any(|&k| margin >= k) {
                    return Err(format!("cross margin {margin} leaves no faulty links"));
                }
                let center = coords(parts.next(), mid)?;
                Ok(FaultScenario::Shape(FaultShape::Cross { center, margin }))
            }
            "star" => {
                let center = coords(parts.next(), mid)?;
                Ok(FaultScenario::Shape(FaultShape::Cross {
                    center,
                    margin: 1,
                }))
            }
            other => Err(format!("unknown fault spec '{other}'")),
        }
    }

    /// The canonical spec string of this scenario: the inverse of
    /// [`FaultScenario::parse`], used when generating campaign specs from
    /// programmatic scenarios. Coordinates are always explicit, so the
    /// string round-trips on any topology that contains them.
    pub fn key(&self) -> String {
        let join = |coords: &[usize]| -> String {
            coords
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        match self {
            FaultScenario::None => "none".to_string(),
            FaultScenario::Random { count, seed } => format!("random:{count}:{seed}"),
            FaultScenario::Shape(FaultShape::Row { along_dim, at }) => {
                format!("row:{along_dim}:{}", join(at))
            }
            FaultScenario::Shape(FaultShape::Subgrid { low, size }) => {
                format!("subgrid:{size}:{}", join(low))
            }
            FaultScenario::Shape(FaultShape::Cross { center, margin }) => {
                format!("cross:{margin}:{}", join(center))
            }
        }
    }

    /// The switch the paper would pick as the escape-subnetwork root for this
    /// scenario: a switch *inside* the fault region for the geometric shapes
    /// ("seeking for a more stressful situation"), switch 0 otherwise.
    pub fn suggested_root(&self, hx: &HyperX) -> usize {
        match self {
            FaultScenario::None | FaultScenario::Random { .. } => 0,
            FaultScenario::Shape(shape) => match shape {
                FaultShape::Cross { center, .. } => hx.switch_id(center),
                _ => shape
                    .switch_groups(hx)
                    .pop()
                    .and_then(|g| g.into_iter().min())
                    .unwrap_or(0),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_2d_shapes_have_the_documented_link_counts() {
        let hx = HyperX::regular(2, 16);
        assert_eq!(FaultScenario::row_2d().faults(&hx).len(), 120);
        assert_eq!(FaultScenario::subplane_2d().faults(&hx).len(), 100);
        assert_eq!(FaultScenario::cross_2d().faults(&hx).len(), 110);
    }

    #[test]
    fn paper_3d_shapes_have_the_documented_link_counts() {
        let hx = HyperX::regular(3, 8);
        assert_eq!(FaultScenario::row_3d().faults(&hx).len(), 28);
        assert_eq!(FaultScenario::subcube_3d().faults(&hx).len(), 81);
        assert_eq!(FaultScenario::star_3d().faults(&hx).len(), 63);
    }

    #[test]
    fn star_root_keeps_three_links() {
        let hx = HyperX::regular(3, 8);
        let scenario = FaultScenario::star_3d();
        let root = scenario.suggested_root(&hx);
        let mut net = hx.network().clone();
        scenario.faults(&hx).apply(&mut net);
        assert_eq!(net.degree(root), 3);
        assert!(net.is_connected());
    }

    #[test]
    fn cross_root_is_the_center() {
        let hx = HyperX::regular(2, 16);
        let scenario = FaultScenario::cross_2d();
        assert_eq!(scenario.suggested_root(&hx), hx.switch_id(&[8, 8]));
    }

    #[test]
    fn shape_roots_lie_inside_the_fault_region() {
        // Paper §6: "all the configurations are designed such as the root of
        // the escape subnetwork belongs to the set of switches under fault".
        let hx2 = HyperX::regular(2, 16);
        let hx3 = HyperX::regular(3, 8);
        let cases: Vec<(HyperX, FaultScenario)> = vec![
            (hx2.clone(), FaultScenario::row_2d()),
            (hx2.clone(), FaultScenario::subplane_2d()),
            (hx2, FaultScenario::cross_2d()),
            (hx3.clone(), FaultScenario::row_3d()),
            (hx3.clone(), FaultScenario::subcube_3d()),
            (hx3, FaultScenario::star_3d()),
        ];
        for (hx, scenario) in cases {
            let root = scenario.suggested_root(&hx);
            let FaultScenario::Shape(shape) = &scenario else {
                unreachable!()
            };
            let in_region = shape.switch_groups(&hx).iter().any(|g| g.contains(&root));
            assert!(
                in_region,
                "{} root {root} outside the fault region",
                scenario.name()
            );
        }
    }

    #[test]
    fn random_scenarios_with_same_seed_are_prefixes() {
        let hx = HyperX::regular(2, 8);
        let a = FaultScenario::Random { count: 20, seed: 9 }.faults(&hx);
        let b = FaultScenario::Random { count: 50, seed: 9 }.faults(&hx);
        assert_eq!(a.links(), &b.links()[..20]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FaultScenario::None.name(), "Healthy");
        assert_eq!(
            FaultScenario::Random { count: 30, seed: 1 }.name(),
            "Random(30)"
        );
        assert_eq!(FaultScenario::row_2d().name(), "Row");
        assert_eq!(FaultScenario::subplane_2d().name(), "Subplane(5x5)");
        assert_eq!(FaultScenario::cross_2d().name(), "Cross(margin 5)");
        assert_eq!(FaultScenario::star_3d().name(), "Star");
        assert_eq!(FaultScenario::subcube_3d().name(), "Subcube(3^3)");
    }

    #[test]
    fn parse_accepts_explicit_coordinates() {
        let sides = vec![16usize, 16];
        assert_eq!(
            FaultScenario::parse("row:0:0,8", &sides).unwrap(),
            FaultScenario::row_2d()
        );
        assert_eq!(
            FaultScenario::parse("subgrid:5:5,5", &sides).unwrap(),
            FaultScenario::subplane_2d()
        );
        assert_eq!(
            FaultScenario::parse("cross:5:8,8", &sides).unwrap(),
            FaultScenario::cross_2d()
        );
        assert_eq!(
            FaultScenario::parse("star:4,4,4", &[8, 8, 8]).unwrap(),
            FaultScenario::star_3d()
        );
        // Out-of-range coordinates, wrong arity and bad dims are rejected.
        assert!(FaultScenario::parse("row:0:0,16", &sides).is_err());
        assert!(FaultScenario::parse("row:2:0,8", &sides).is_err());
        assert!(FaultScenario::parse("cross:5:8", &sides).is_err());
        assert!(FaultScenario::parse("subgrid:5:13,0", &sides).is_err());
    }

    // key()/parse() round-trips over *generated* scenarios and topologies
    // live in the property suite (tests/properties.rs); `none` stays here as
    // the one case the generators do not emit.
    #[test]
    fn none_key_round_trips() {
        let sides = vec![16usize, 16];
        assert_eq!(
            FaultScenario::parse(&FaultScenario::None.key(), &sides).unwrap(),
            FaultScenario::None
        );
    }

    #[test]
    fn healthy_scenario_produces_no_faults() {
        let hx = HyperX::regular(2, 4);
        assert!(FaultScenario::None.faults(&hx).is_empty());
        assert_eq!(FaultScenario::None.suggested_root(&hx), 0);
    }
}
