//! The `surepath bench` subcommand: the engine perf harness.
//!
//! Runs the pinned micro-campaign matrix of `hyperx_bench::perf` (mechanism
//! × load × size), printing cycles/sec, packets/sec and the SoA-engine vs
//! frozen-v4-layout speedup per cell, and writes the machine-readable report
//! to `BENCH_ENGINE.json` (stable schema) so the repo accumulates a perf
//! trajectory across PRs. Layout divergence — the two engines producing
//! different metrics for the same seed — is a hard error, as is a
//! partitioned run diverging from P=1, so every bench run is also an A/B
//! equivalence check.

use crate::CommandOutput;
use hyperx_bench::perf::{format_bench_report, run_engine_bench, BenchMatrix};

/// The usage string of the `bench` subcommand.
pub const BENCH_USAGE: &str =
    "usage: surepath bench [--quick|--full] [--out <path>] [--repeat N] [--quiet]
  Benchmarks the cycle-level engine over a pinned matrix (mechanism x load
  x topology size), comparing the struct-of-arrays engine against the
  frozen v4 pointer-per-switch layout, plus a second matrix comparing RNG
  contract v1 (per-server Bernoulli scan) against v2 (counting sampler),
  plus a third timing the observability layer (the always-on counter
  registry vs the same run with the packet tracer attached), plus a
  partition-scaling sweep (the SoA engine at 1/2/4 intra-simulation
  partitions on the largest pinned topology). Paired runs share seeds, so
  the bench doubles as an A/B equivalence check: diverging metrics fail
  the command.

  --quick              small topologies and short windows (default)
  --full               larger topologies and longer windows
  --out PATH           JSON report path (default: BENCH_ENGINE.json)
  --repeat N           timed repetitions per engine per cell; the best
                       run is reported (default 1)
  --quiet              suppress per-cell progress on stderr
  --help               this message";

/// A parsed `surepath bench` command line.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCliConfig {
    /// Small matrix (`--quick`, the default) or the larger one (`--full`).
    pub quick: bool,
    /// Where to write the JSON report.
    pub out: String,
    /// Timed repetitions per engine per cell.
    pub repeat: usize,
    /// Suppress per-cell progress output.
    pub quiet: bool,
}

impl Default for BenchCliConfig {
    fn default() -> Self {
        BenchCliConfig {
            quick: true,
            out: "BENCH_ENGINE.json".to_string(),
            repeat: 1,
            quiet: false,
        }
    }
}

/// Parses the arguments of the `bench` subcommand (everything after the
/// literal `bench`).
pub fn parse_bench_args(args: &[String]) -> Result<BenchCliConfig, String> {
    let mut cfg = BenchCliConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--full" => cfg.quick = false,
            "--out" => cfg.out = value("--out")?,
            "--repeat" => {
                cfg.repeat = match value("--repeat")?.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => return Err("--repeat must be a positive integer".to_string()),
                };
            }
            "--quiet" => cfg.quiet = true,
            "--help" | "-h" => return Err(BENCH_USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{BENCH_USAGE}")),
        }
    }
    Ok(cfg)
}

/// Runs the bench, writes the JSON report and returns the table to print.
/// Any metrics divergence between paired runs is an error (nonzero exit).
pub fn run_bench_command(cfg: &BenchCliConfig) -> Result<CommandOutput, String> {
    let matrix = BenchMatrix::pinned(cfg.quick);
    let quiet = cfg.quiet;
    let report = run_engine_bench(&matrix, cfg.repeat, |done, total, cell| {
        if !quiet {
            eprintln!(
                "[bench {done}/{total}] {} {} load {:.2}: {:.2}x",
                cell.mechanism,
                cell.sides
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join("x"),
                cell.load,
                cell.speedup
            );
        }
    });
    let mut json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    json.push('\n');
    std::fs::write(&cfg.out, json).map_err(|e| format!("could not write {}: {e}", cfg.out))?;
    let mut text = format_bench_report(&report);
    text.push_str(&format!("(report written to {})\n", cfg.out));
    if !report.summary.all_metrics_identical {
        return Err(format!(
            "{text}layout divergence: SoA and v4-layout metrics differ — \
             the refactor's determinism contract is broken"
        ));
    }
    if !report.summary.all_rng_v4_identical {
        return Err(format!(
            "{text}RNG contract divergence: v2 SoA and v2 v4-layout metrics \
             differ — the counting sampler's determinism contract is broken"
        ));
    }
    if !report.summary.all_obs_metrics_identical {
        return Err(format!(
            "{text}observability divergence: plain and traced metrics differ — \
             the zero-perturbation contract is broken"
        ));
    }
    if !report.summary.all_partition_metrics_identical {
        return Err(format!(
            "{text}partition divergence: partitioned metrics differ from P=1 — \
             the partition-invariance contract is broken"
        ));
    }
    Ok(CommandOutput { text, exit_code: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bench_args_parse_and_reject() {
        assert_eq!(parse_bench_args(&[]).unwrap(), BenchCliConfig::default());
        let cfg = parse_bench_args(&args(&[
            "--full",
            "--out",
            "perf.json",
            "--repeat",
            "3",
            "--quiet",
        ]))
        .unwrap();
        assert!(!cfg.quick);
        assert_eq!(cfg.out, "perf.json");
        assert_eq!(cfg.repeat, 3);
        assert!(cfg.quiet);
        assert!(parse_bench_args(&args(&["--repeat", "0"])).is_err());
        assert!(parse_bench_args(&args(&["--bogus"])).is_err());
        assert!(parse_bench_args(&args(&["--help"]))
            .unwrap_err()
            .contains("usage"));
    }

    // Running the pinned matrix is too slow for a unit test; the end-to-end
    // command (JSON written, schema fields, exit code) is covered by the CI
    // bench smoke job and by crates/bench's tiny-matrix perf tests.
}
