//! Argument parsing and experiment construction for the `surepath` binary.
//!
//! The command line maps one-to-one onto [`surepath_core::Experiment`]: pick a
//! HyperX, a routing mechanism, a traffic pattern, an optional fault scenario
//! and an operating point, run it, and print the paper's metrics as text or
//! JSON. Everything the figure binaries do can also be scripted through this
//! front end, one point at a time.

pub mod bench;
pub use bench::{parse_bench_args, run_bench_command, BenchCliConfig, BENCH_USAGE};

use hyperx_routing::MechanismSpec;
use surepath_core::{Experiment, FaultScenario, RootPlacement, SimConfig, TrafficSpec};

/// What the simulation should measure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RunMode {
    /// Open-loop run at a fixed offered load (phits/cycle/server).
    Rate(f64),
    /// Closed-loop run: every server sends this many packets, measure completion time.
    Batch(u64),
}

/// A fully parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct CliConfig {
    /// HyperX sides, e.g. `[8, 8, 8]`.
    pub sides: Vec<usize>,
    /// Servers per switch.
    pub concentration: usize,
    /// Routing mechanism.
    pub mechanism: MechanismSpec,
    /// Traffic pattern.
    pub traffic: TrafficSpec,
    /// Fault scenario.
    pub scenario: FaultScenario,
    /// Escape-root placement.
    pub root: RootPlacement,
    /// Virtual channels per port (`None` = the paper's 2n default).
    pub vcs: Option<usize>,
    /// Random seed.
    pub seed: u64,
    /// Warmup and measurement windows (`None` = Table 2 defaults).
    pub windows: Option<(u64, u64)>,
    /// Rate or batch mode.
    pub mode: RunMode,
    /// Print JSON instead of text.
    pub json: bool,
}

impl Default for CliConfig {
    fn default() -> Self {
        CliConfig {
            sides: vec![8, 8, 8],
            concentration: 8,
            mechanism: MechanismSpec::PolSP,
            traffic: TrafficSpec::Uniform,
            scenario: FaultScenario::None,
            root: RootPlacement::Suggested,
            vcs: None,
            seed: 1,
            windows: None,
            mode: RunMode::Rate(0.5),
            json: false,
        }
    }
}

/// The usage string of the `campaign` subcommand.
pub const CAMPAIGN_USAGE: &str = "usage: surepath campaign <spec.toml|spec.json> [options]
       surepath campaign <spec> --serve <addr> | --spawn-local <n> [options]
       surepath campaign --worker <addr> [--threads N] [--partitions N]
                         [--reconnect-retries N] [--backoff-ms N] [--quiet]
       surepath campaign --report <store.jsonl>... [--merge <out.jsonl>] [--csv <out.csv>]
                         [--plots <dir> [--gnuplot]] [--timings]
       surepath campaign --merge <out.jsonl> <store.jsonl>...
       surepath campaign --diff <baseline.jsonl> <candidate.jsonl>
                         [--campaign <name>] [--csv <out.csv>]
  Runs (or resumes) a declarative experiment campaign: the spec's
  topology x mechanism x traffic x scenario x root x VCs x load x seed
  cross-product (with `replicas = N`, each point runs N seeds) is executed
  on a bounded work-stealing thread pool and streamed to a resumable JSONL
  result store. Already-completed jobs (matched by fingerprint) are
  skipped, so re-running a finished campaign is instant.

  Run options:
  --store PATH         result store (default: <spec>.results.jsonl)
  --threads N          worker threads (default: all cores)
  --partitions N       intra-simulation engine partitions per job (default:
                       the spec's `partitions`, else 1); run tuning only —
                       results are byte-identical for every value
  --quiet              suppress per-job progress on stderr
  --dry-run            expand and validate the grid, run nothing
  --trace              also record packet lifecycles (inject/grant/hop/
                       deliver/block) to <store>.trace.jsonl; the store
                       bytes are identical with and without it (render
                       with `surepath trace <store>`)
  A global wall-clock budget (SUREPATH_DEADLINE_SECS env var or the spec's
  `deadline_secs` field) stops dequeuing when exhausted, finalizes the
  partial store cleanly and exits with code 3; re-running resumes the rest.

  Distributed campaigns (coordinator/worker over TCP):
  --serve ADDR         serve the spec's grid to workers connecting on ADDR
                       (e.g. 0.0.0.0:7777); jobs partition by fingerprint
                       prefix into shards, fast workers steal slow workers'
                       tails, lost workers' leases are re-offered, and the
                       finalized store is byte-identical to a local run
  --worker ADDR        run jobs for the coordinator at ADDR until drained;
                       transport failures trigger auto-reconnect with capped
                       exponential backoff, and the campaign fingerprint in
                       the handshake gates resumption (a different campaign
                       on the same address aborts loudly)
  --reconnect-retries N  consecutive failed reconnect attempts before the
                       worker gives up (8; the counter resets whenever a
                       reconnect succeeds)
  --backoff-ms N       initial reconnect backoff in milliseconds (100);
                       doubles per attempt, capped, with deterministic
                       per-worker jitter
  --spawn-local N      serve on an ephemeral local port and fork N worker
                       processes (single-machine scale-out and tests);
                       --threads sets each worker's pool size (default:
                       the machine's cores split across the N workers)
  --lease-secs N       re-offer jobs not delivered within N seconds (60)
  --shards N           static fingerprint-prefix partitions (8)
  --chunk N            max jobs per worker fetch (8)
  --metrics-addr ADDR  with --serve/--spawn-local: also serve live fleet
                       metrics (Prometheus text format) on ADDR — jobs
                       pending/leased per shard, worker liveness,
                       reconnects, lease reclaims; read-only, no effect
                       on scheduling or the store
  Assignments are journalled to <store>.manifest.jsonl so --report can tell
  `missing` from `assigned elsewhere / in-flight`, and a restarted
  coordinator re-offers only unfinished fingerprints.

  Store tooling (no simulation):
  --report             render figures/tables straight from the store(s):
                       rate campaigns as sweep tables (replicated points as
                       mean ± CI), batch campaigns as completion times +
                       throughput-over-time series
  --merge OUT          merge sharded stores into OUT (fingerprint-deduped,
                       ok beats failed, deterministic byte order)
  --diff               compare two stores point by point (aligned by
                       fingerprint minus seed): significant per-metric
                       deltas are tabulated and a regression (significant
                       delta in the worse direction) exits nonzero
  --campaign NAME      with --diff: compare only this campaign's points
  --csv PATH           with --report/--diff: also write the data as CSV
  --plots DIR          with --report: write the core::plot SVG figures to
                       DIR (one per campaign/kind)
  --gnuplot            with --report --plots: also write Gnuplot artifacts
                       (<stem>.gp + <stem>.dat, same data as the SVGs) to
                       DIR; render with `gnuplot <stem>.gp`
  --timings            with --report: print the slowest-jobs table from the
                       <store>.timings.jsonl sidecar(s); a missing sidecar
                       warns instead of failing the report
  --counters           with --report: print the merged engine-counter table
                       (allocator, candidate cache, escape usage, RNG draws)
                       per campaign/kind
  --help               this message";

/// The usage string printed by `--help` and on parse errors.
pub const USAGE: &str = "usage: surepath [options]
       surepath campaign <spec.toml|spec.json> [options]   (see `surepath campaign --help`)
       surepath trace <store.jsonl>                        (see `surepath trace --help`)
       surepath bench [--quick|--full] [options]           (see `surepath bench --help`)
  --sides KxKxK        HyperX sides (default 8x8x8)
  --concentration N    servers per switch (default: the first side)
  --mechanism NAME     minimal|valiant|omniwar|polarized|omnisp|polsp|dor|dal|omnisp-tree|polsp-tree
  --traffic NAME       uniform|rsp|dcr|rpn|transpose|shift
  --faults SPEC        none | random:COUNT[:SEED] | row | subgrid:SIZE | cross:MARGIN | star
  --root SPEC          suggested | switch:ID | max-degree | min-eccentricity | min-distance
  --vcs N              virtual channels per port (default 2n)
  --load F             offered load in phits/cycle/server (default 0.5)
  --batch PACKETS      closed-loop mode: packets per server (overrides --load)
  --seed N             random seed (default 1)
  --warmup N           warmup cycles (with --measure; default: Table 2 windows)
  --measure N          measurement cycles
  --json               print metrics as JSON
  --help               this message";

fn parse_sides(s: &str) -> Result<Vec<usize>, String> {
    let sides: Result<Vec<usize>, _> = s.split('x').map(str::parse::<usize>).collect();
    match sides {
        Ok(v) if !v.is_empty() && v.iter().all(|&k| k >= 2) => Ok(v),
        _ => Err(format!(
            "invalid --sides '{s}': expected e.g. 16x16 or 8x8x8 with sides >= 2"
        )),
    }
}

fn parse_faults(spec: &str, sides: &[usize]) -> Result<FaultScenario, String> {
    // The parser lives in surepath-core so campaign specs share it.
    FaultScenario::parse(spec, sides)
}

fn parse_root(spec: &str) -> Result<RootPlacement, String> {
    // The parser lives in surepath-core so campaign specs share it.
    RootPlacement::parse(spec)
}

/// Parses the command line (without the program name).
pub fn parse_args(args: &[String]) -> Result<CliConfig, String> {
    let mut cfg = CliConfig::default();
    let mut concentration_set = false;
    let mut faults_spec: Option<String> = None;
    let mut warmup: Option<u64> = None;
    let mut measure: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--sides" => cfg.sides = parse_sides(&value("--sides")?)?,
            "--concentration" => {
                cfg.concentration = value("--concentration")?
                    .parse()
                    .map_err(|_| "invalid --concentration")?;
                concentration_set = true;
            }
            "--mechanism" => {
                let name = value("--mechanism")?;
                cfg.mechanism = MechanismSpec::parse(&name)
                    .ok_or_else(|| format!("unknown mechanism '{name}'"))?;
            }
            "--traffic" => {
                let name = value("--traffic")?;
                cfg.traffic = TrafficSpec::parse(&name)
                    .ok_or_else(|| format!("unknown traffic pattern '{name}'"))?;
            }
            "--faults" => faults_spec = Some(value("--faults")?),
            "--root" => cfg.root = parse_root(&value("--root")?)?,
            "--vcs" => cfg.vcs = Some(value("--vcs")?.parse().map_err(|_| "invalid --vcs")?),
            "--load" => {
                let load: f64 = value("--load")?.parse().map_err(|_| "invalid --load")?;
                if !(0.0..=1.0).contains(&load) || load == 0.0 {
                    return Err("--load must be in (0, 1]".to_string());
                }
                cfg.mode = RunMode::Rate(load);
            }
            "--batch" => {
                cfg.mode = RunMode::Batch(value("--batch")?.parse().map_err(|_| "invalid --batch")?)
            }
            "--seed" => cfg.seed = value("--seed")?.parse().map_err(|_| "invalid --seed")?,
            "--warmup" => {
                warmup = Some(value("--warmup")?.parse().map_err(|_| "invalid --warmup")?)
            }
            "--measure" => {
                measure = Some(
                    value("--measure")?
                        .parse()
                        .map_err(|_| "invalid --measure")?,
                )
            }
            "--json" => cfg.json = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if !concentration_set {
        cfg.concentration = cfg.sides[0];
    }
    if cfg.concentration == 0 {
        return Err("--concentration must be at least 1".to_string());
    }
    cfg.scenario = match faults_spec {
        Some(spec) => parse_faults(&spec, &cfg.sides)?,
        None => FaultScenario::None,
    };
    cfg.windows = match (warmup, measure) {
        (None, None) => None,
        (Some(w), Some(m)) => Some((w, m)),
        _ => return Err("--warmup and --measure must be given together".to_string()),
    };
    Ok(cfg)
}

/// Builds the [`Experiment`] described by a parsed configuration.
pub fn build_experiment(cfg: &CliConfig) -> Experiment {
    let dims = cfg.sides.len();
    let num_vcs = cfg
        .vcs
        .unwrap_or_else(|| cfg.mechanism.default_num_vcs(dims));
    let mut experiment = Experiment {
        sides: cfg.sides.clone(),
        concentration: cfg.concentration,
        mechanism: cfg.mechanism,
        num_vcs,
        traffic: cfg.traffic,
        scenario: cfg.scenario.clone(),
        root: cfg.root,
        sim: SimConfig::paper_defaults(cfg.concentration, num_vcs),
    };
    experiment.sim.servers_per_switch = cfg.concentration;
    experiment = experiment.with_seed(cfg.seed);
    if let Some((warmup, measure)) = cfg.windows {
        experiment = experiment.with_windows(warmup, measure);
    }
    experiment
}

/// Runs the experiment and renders the result as text or JSON.
pub fn run(cfg: &CliConfig) -> String {
    let experiment = build_experiment(cfg);
    match cfg.mode {
        RunMode::Rate(load) => {
            let metrics = experiment.run_rate(load);
            if cfg.json {
                serde_json::to_string_pretty(&metrics).expect("metrics serialise")
            } else {
                format!(
                    "{}\noffered {:.3}  accepted {:.3}  latency {:.1}  jain {:.3}  escape {:.1}%  hops {:.2}  stalled {}",
                    experiment.label(),
                    metrics.offered_load,
                    metrics.accepted_load,
                    metrics.average_latency,
                    metrics.jain_generated,
                    100.0 * metrics.escape_fraction,
                    metrics.average_hops,
                    metrics.stalled
                )
            }
        }
        RunMode::Batch(packets) => {
            let metrics = experiment.run_batch(packets, 1000);
            if cfg.json {
                serde_json::to_string_pretty(&metrics).expect("metrics serialise")
            } else {
                format!(
                    "{}\ncompletion {} cycles  delivered {}  latency {:.1}  stalled {}",
                    experiment.label(),
                    metrics.completion_time,
                    metrics.delivered_packets,
                    metrics.average_latency,
                    metrics.stalled
                )
            }
        }
    }
}

/// A parsed `surepath campaign` command line.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignCliConfig {
    /// Path of the TOML/JSON campaign spec.
    pub spec_path: String,
    /// Result store path (`None` = `<spec>.results.jsonl`).
    pub store: Option<String>,
    /// Worker threads (`None` = all cores).
    pub threads: Option<usize>,
    /// Intra-simulation engine partitions per job (`--partitions`; `None` =
    /// the spec's `partitions` field, else 1). Run tuning only — the store
    /// bytes are identical for every value.
    pub partitions: Option<usize>,
    /// Suppress per-job progress output.
    pub quiet: bool,
    /// Validate and expand only; run nothing.
    pub dry_run: bool,
    /// Record packet lifecycles to the `<store>.trace.jsonl` sidecar
    /// (`--trace`). The store bytes are identical either way.
    pub trace: bool,
}

/// What a `surepath campaign` invocation asks for: run a spec (locally or
/// distributed), or operate on existing result stores (report / merge /
/// diff) without simulating anything.
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignCommand {
    /// Run (or resume) the campaign described by a spec file.
    Run(CampaignCliConfig),
    /// Serve the spec's grid to TCP workers (`--serve` / `--spawn-local`).
    Serve {
        /// Path of the TOML/JSON campaign spec.
        spec_path: String,
        /// Result store path (`None` = `<spec>.results.jsonl`).
        store: Option<String>,
        /// The address to listen on (`--serve`; `--spawn-local` alone uses
        /// an ephemeral loopback port).
        addr: String,
        /// Fork this many local worker processes (`--spawn-local`).
        spawn_local: Option<usize>,
        /// Executor threads **per spawned worker** (`--threads`; `None` =
        /// split the machine's cores across the workers). Only meaningful
        /// with `spawn_local` — the coordinator itself executes nothing.
        threads: Option<usize>,
        /// Engine partitions per job on each spawned worker
        /// (`--partitions`). Run tuning only; forwarded to the forked
        /// worker processes.
        partitions: Option<usize>,
        /// Lease duration in seconds before a job is re-offered.
        lease_secs: u64,
        /// Static fingerprint-prefix shard count (`None` = default).
        shards: Option<usize>,
        /// Max jobs per worker fetch (`None` = default).
        chunk: Option<usize>,
        /// Serve live fleet metrics (Prometheus text format) on this
        /// address (`--metrics-addr`). Read-only; `None` = no endpoint.
        metrics_addr: Option<String>,
        /// Suppress per-job progress output.
        quiet: bool,
    },
    /// Run jobs for a coordinator until its grid is drained (`--worker`).
    Worker {
        /// The coordinator's address.
        addr: String,
        /// Executor threads on this worker (`None` = all cores).
        threads: Option<usize>,
        /// Intra-simulation engine partitions per job (`None` = 1). Run
        /// tuning only — result bytes are identical for every value.
        partitions: Option<usize>,
        /// Consecutive failed reconnect attempts before giving up
        /// (`--reconnect-retries`; `None` = the policy default).
        reconnect_retries: Option<usize>,
        /// Initial reconnect backoff in milliseconds (`--backoff-ms`;
        /// `None` = the policy default).
        backoff_ms: Option<u64>,
        /// Suppress progress output.
        quiet: bool,
    },
    /// Render figures/tables from one or more stores; optionally persist the
    /// merged store, a CSV copy, SVG plots and/or the slowest-jobs table.
    Report {
        /// Input store shards (at least one).
        stores: Vec<String>,
        /// Where to write the merged store (`None` = don't persist a merge).
        merge: Option<String>,
        /// Where to write the CSV copy of the report data.
        csv: Option<String>,
        /// Directory for the `core::plot` SVG artifacts (`--plots`).
        plots: Option<String>,
        /// Also write Gnuplot `.gp` + `.dat` artifacts to the plots
        /// directory (`--gnuplot`; requires `--plots`).
        gnuplot: bool,
        /// Print the slowest-jobs table from the timings sidecar(s).
        timings: bool,
        /// Print the merged engine-counter table per campaign/kind
        /// (`--counters`).
        counters: bool,
    },
    /// Merge store shards into one store, nothing else.
    Merge {
        /// Output store path.
        output: String,
        /// Input store shards (at least one).
        inputs: Vec<String>,
    },
    /// Compare two stores point by point (aligned by fingerprint minus
    /// seed) and report significant per-metric deltas; regressions make the
    /// command fail, so `--diff` gates CI and before/after experiments.
    Diff {
        /// The baseline store.
        baseline: String,
        /// The candidate store, judged against the baseline.
        candidate: String,
        /// Compare only this campaign's points (`--campaign`).
        campaign: Option<String>,
        /// Also write the full per-metric comparison as CSV (`--csv`).
        csv: Option<String>,
    },
}

impl CampaignCliConfig {
    /// The effective store path.
    pub fn store_path(&self) -> std::path::PathBuf {
        match &self.store {
            Some(path) => std::path::PathBuf::from(path),
            None => {
                let spec = std::path::Path::new(&self.spec_path);
                spec.with_extension("results.jsonl")
            }
        }
    }
}

/// Parses the arguments of the `campaign` subcommand (everything after the
/// literal `campaign`).
pub fn parse_campaign_args(args: &[String]) -> Result<CampaignCommand, String> {
    let mut positionals: Vec<String> = Vec::new();
    let mut store = None;
    let mut threads = None;
    let mut partitions = None;
    let mut quiet = false;
    let mut dry_run = false;
    let mut report = false;
    let mut diff = false;
    let mut timings = false;
    let mut counters = false;
    let mut trace = false;
    let mut gnuplot = false;
    let mut metrics_addr: Option<String> = None;
    let mut merge: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut plots: Option<String> = None;
    let mut campaign_filter: Option<String> = None;
    let mut serve: Option<String> = None;
    let mut worker: Option<String> = None;
    let mut spawn_local: Option<usize> = None;
    let mut lease_secs: Option<u64> = None;
    let mut shards: Option<usize> = None;
    let mut chunk: Option<usize> = None;
    let mut reconnect_retries: Option<usize> = None;
    let mut backoff_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let positive = |name: &str, raw: String| -> Result<usize, String> {
            match raw.parse::<usize>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!("{name} must be a positive integer")),
            }
        };
        match arg.as_str() {
            "--store" => store = Some(value("--store")?),
            "--threads" => threads = Some(positive("--threads", value("--threads")?)?),
            "--partitions" => partitions = Some(positive("--partitions", value("--partitions")?)?),
            "--quiet" => quiet = true,
            "--dry-run" => dry_run = true,
            "--report" => report = true,
            "--diff" => diff = true,
            "--timings" => timings = true,
            "--counters" => counters = true,
            "--trace" => trace = true,
            "--gnuplot" => gnuplot = true,
            "--metrics-addr" => metrics_addr = Some(value("--metrics-addr")?),
            "--merge" => merge = Some(value("--merge")?),
            "--csv" => csv = Some(value("--csv")?),
            "--plots" => plots = Some(value("--plots")?),
            "--campaign" => campaign_filter = Some(value("--campaign")?),
            "--serve" => serve = Some(value("--serve")?),
            "--worker" => worker = Some(value("--worker")?),
            "--spawn-local" => {
                spawn_local = Some(positive("--spawn-local", value("--spawn-local")?)?)
            }
            "--lease-secs" => {
                lease_secs = Some(positive("--lease-secs", value("--lease-secs")?)? as u64)
            }
            "--shards" => shards = Some(positive("--shards", value("--shards")?)?),
            "--chunk" => chunk = Some(positive("--chunk", value("--chunk")?)?),
            "--reconnect-retries" => {
                reconnect_retries = Some(positive(
                    "--reconnect-retries",
                    value("--reconnect-retries")?,
                )?)
            }
            "--backoff-ms" => {
                backoff_ms = Some(positive("--backoff-ms", value("--backoff-ms")?)? as u64)
            }
            "--help" | "-h" => return Err(CAMPAIGN_USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown argument '{other}'\n{CAMPAIGN_USAGE}"))
            }
            positional => positionals.push(positional.to_string()),
        }
    }
    let distributed_flags = serve.is_some()
        || spawn_local.is_some()
        || lease_secs.is_some()
        || shards.is_some()
        || chunk.is_some();
    if let Some(addr) = worker {
        if distributed_flags
            || report
            || diff
            || dry_run
            || timings
            || counters
            || trace
            || gnuplot
            || metrics_addr.is_some()
            || store.is_some()
            || merge.is_some()
            || csv.is_some()
            || plots.is_some()
            || campaign_filter.is_some()
            || !positionals.is_empty()
        {
            return Err(
                "--worker only combines with --threads, --partitions, --reconnect-retries, \
                 --backoff-ms and --quiet"
                    .to_string(),
            );
        }
        return Ok(CampaignCommand::Worker {
            addr,
            threads,
            partitions,
            reconnect_retries,
            backoff_ms,
            quiet,
        });
    }
    if reconnect_retries.is_some() || backoff_ms.is_some() {
        return Err("--reconnect-retries/--backoff-ms only apply to --worker".to_string());
    }
    if serve.is_some() || spawn_local.is_some() {
        if report
            || diff
            || dry_run
            || timings
            || counters
            || trace
            || gnuplot
            || merge.is_some()
            || csv.is_some()
            || plots.is_some()
            || campaign_filter.is_some()
        {
            return Err(
                "--serve/--spawn-local only combine with --store, --quiet, --lease-secs, \
                 --shards, --chunk and --metrics-addr"
                    .to_string(),
            );
        }
        if (threads.is_some() || partitions.is_some()) && spawn_local.is_none() {
            return Err(
                "--threads/--partitions belong to workers; the coordinator executes nothing \
                 (use them with --worker or --spawn-local)"
                    .to_string(),
            );
        }
        if positionals.len() != 1 {
            return Err(format!(
                "--serve/--spawn-local need exactly one spec file\n{CAMPAIGN_USAGE}"
            ));
        }
        // --spawn-local alone picks an ephemeral loopback port; worker
        // children are told the resolved address after bind.
        let addr = serve.unwrap_or_else(|| "127.0.0.1:0".to_string());
        return Ok(CampaignCommand::Serve {
            spec_path: positionals.pop().expect("checked above"),
            store,
            addr,
            spawn_local,
            threads,
            partitions,
            lease_secs: lease_secs.unwrap_or(60),
            shards,
            chunk,
            metrics_addr,
            quiet,
        });
    }
    if metrics_addr.is_some() {
        return Err("--metrics-addr only applies to --serve/--spawn-local".to_string());
    }
    if diff {
        if report
            || store.is_some()
            || threads.is_some()
            || partitions.is_some()
            || dry_run
            || quiet
            || timings
            || counters
            || trace
            || gnuplot
            || merge.is_some()
            || plots.is_some()
        {
            return Err("--diff takes exactly two stores, --campaign and --csv only".to_string());
        }
        if positionals.len() != 2 {
            return Err(format!(
                "--diff needs exactly two stores (baseline, candidate)\n{CAMPAIGN_USAGE}"
            ));
        }
        let candidate = positionals.pop().expect("checked above");
        let baseline = positionals.pop().expect("checked above");
        return Ok(CampaignCommand::Diff {
            baseline,
            candidate,
            campaign: campaign_filter,
            csv,
        });
    }
    if campaign_filter.is_some() {
        return Err("--campaign only applies to --diff".to_string());
    }
    if report {
        if store.is_some() || threads.is_some() || partitions.is_some() || dry_run || quiet || trace
        {
            return Err(
                "--report only combines with --merge, --csv, --plots, --gnuplot, --timings \
                 and --counters"
                    .to_string(),
            );
        }
        if gnuplot && plots.is_none() {
            return Err("--gnuplot needs --plots <dir> to write into".to_string());
        }
        if positionals.is_empty() {
            return Err(format!(
                "--report needs at least one store\n{CAMPAIGN_USAGE}"
            ));
        }
        return Ok(CampaignCommand::Report {
            stores: positionals,
            merge,
            csv,
            plots,
            gnuplot,
            timings,
            counters,
        });
    }
    if timings {
        return Err("--timings only applies to --report".to_string());
    }
    if counters {
        return Err("--counters only applies to --report".to_string());
    }
    if gnuplot {
        return Err("--gnuplot only applies to --report --plots".to_string());
    }
    if plots.is_some() {
        return Err("--plots only applies to --report".to_string());
    }
    if let Some(output) = merge {
        if store.is_some()
            || threads.is_some()
            || partitions.is_some()
            || dry_run
            || csv.is_some()
            || quiet
            || trace
        {
            return Err("--merge (without --report) only takes input stores".to_string());
        }
        if positionals.is_empty() {
            return Err(format!(
                "--merge needs at least one input store\n{CAMPAIGN_USAGE}"
            ));
        }
        return Ok(CampaignCommand::Merge {
            output,
            inputs: positionals,
        });
    }
    if csv.is_some() {
        return Err("--csv only applies to --report and --diff".to_string());
    }
    if positionals.len() > 1 {
        return Err("campaign takes exactly one spec file".to_string());
    }
    if dry_run && trace {
        return Err("--dry-run executes nothing, so --trace records nothing".to_string());
    }
    Ok(CampaignCommand::Run(CampaignCliConfig {
        spec_path: positionals
            .pop()
            .ok_or_else(|| format!("missing spec file\n{CAMPAIGN_USAGE}"))?,
        store,
        threads,
        partitions,
        quiet,
        dry_run,
        trace,
    }))
}

/// Whether a path names a store *sidecar* (timings/manifest/trace) rather
/// than a result store. Sidecars share the `.jsonl` suffix, so shell globs
/// hand them to `--report` by accident; they must never be parsed as stores.
fn is_sidecar_path(path: &str) -> bool {
    [".timings.jsonl", ".manifest.jsonl", ".trace.jsonl"]
        .iter()
        .any(|suffix| path.ends_with(suffix))
}

/// Rejects input store paths that do not exist — opening them would
/// silently create empty stores and report nothing instead of the mistake.
fn require_stores_exist(paths: &[String]) -> Result<(), String> {
    for path in paths {
        if !std::path::Path::new(path).is_file() {
            return Err(format!("store not found: {path}"));
        }
    }
    Ok(())
}

/// What a successfully executed `campaign` subcommand hands back to `main`:
/// the text to print and the process exit code. Most commands exit 0; a run
/// stopped by the global deadline exits [`EXIT_DEADLINE`] so schedulers can
/// tell "budget exhausted, resume me" from success (0) and errors (2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommandOutput {
    /// The summary to print on stdout.
    pub text: String,
    /// The process exit code.
    pub exit_code: i32,
}

impl CommandOutput {
    fn ok(text: String) -> Self {
        CommandOutput { text, exit_code: 0 }
    }
}

/// Exit code of a run stopped by the global deadline (partial store
/// finalized; re-running resumes).
pub const EXIT_DEADLINE: i32 = 3;

/// Runs a parsed `campaign` subcommand, returning the text to print and the
/// exit code.
pub fn run_campaign_command(cmd: &CampaignCommand) -> Result<CommandOutput, String> {
    match cmd {
        CampaignCommand::Run(cfg) => run_campaign_cli(cfg),
        CampaignCommand::Serve {
            spec_path,
            store,
            addr,
            spawn_local,
            threads,
            partitions,
            lease_secs,
            shards,
            chunk,
            metrics_addr,
            quiet,
        } => run_serve(
            spec_path,
            store.as_deref(),
            addr,
            *spawn_local,
            *threads,
            *partitions,
            *lease_secs,
            *shards,
            *chunk,
            metrics_addr.as_deref(),
            *quiet,
        )
        .map(CommandOutput::ok),
        CampaignCommand::Worker {
            addr,
            threads,
            partitions,
            reconnect_retries,
            backoff_ms,
            quiet,
        } => {
            let worker_id = default_worker_id();
            let defaults = surepath_dist::ReconnectPolicy::default();
            let reconnect = surepath_dist::ReconnectPolicy::with(
                reconnect_retries.unwrap_or(defaults.retries),
                backoff_ms.unwrap_or(defaults.initial_backoff.as_millis() as u64),
            );
            // Partitions and the view cache tune execution only: the result
            // bytes a worker folds into the coordinator's store are
            // byte-identical for every setting.
            let views = surepath_core::ViewCache::new();
            let tuning = surepath_core::RunTuning {
                partitions: partitions.unwrap_or(1),
                views: Some(&views),
            };
            let outcome = surepath_dist::run_worker(
                addr,
                &worker_id,
                &surepath_dist::WorkerOptions {
                    threads: *threads,
                    reconnect,
                    quiet: *quiet,
                    ..surepath_dist::WorkerOptions::default()
                },
                |job| surepath_core::run_job_tuned(job, &tuning),
            )
            .map_err(|e| format!("worker failed: {e}"))?;
            let reconnects = if outcome.reconnects > 0 {
                format!(", {} reconnect(s)", outcome.reconnects)
            } else {
                String::new()
            };
            Ok(CommandOutput::ok(format!(
                "worker `{worker_id}` drained: {} executed, {} failed{reconnects}",
                outcome.executed, outcome.failed
            )))
        }
        CampaignCommand::Merge { output, inputs } => {
            require_stores_exist(inputs)?;
            let paths: Vec<std::path::PathBuf> =
                inputs.iter().map(std::path::PathBuf::from).collect();
            let summary = surepath_runner::merge_stores(std::path::Path::new(output), &paths)
                .map_err(|e| format!("merge failed: {e}"))?;
            Ok(CommandOutput::ok(format!(
                "merged {} stores: {} records read, {} written, {} duplicates dropped\nmerged store: {output}",
                inputs.len(),
                summary.read,
                summary.written,
                summary.duplicates
            )))
        }
        CampaignCommand::Report {
            stores,
            merge,
            csv,
            plots,
            gnuplot,
            timings,
            counters,
        } => {
            // Sidecar files (timings/manifest/trace) ride next to stores and
            // share the .jsonl suffix; a glob like `results/*.jsonl` sweeps
            // them in. They are observations, not results — skip them with a
            // warning instead of parsing them as (empty-looking) stores.
            let mut preamble = String::new();
            let stores: Vec<String> = stores
                .iter()
                .filter(|path| {
                    if is_sidecar_path(path) {
                        preamble.push_str(&format!(
                            "(skipping sidecar {path} — timings/manifest/trace files are not \
                             result stores)\n"
                        ));
                        false
                    } else {
                        true
                    }
                })
                .cloned()
                .collect();
            if stores.is_empty() {
                return Err(format!(
                    "{preamble}--report needs at least one result store (sidecars don't count)"
                ));
            }
            require_stores_exist(&stores)?;
            // With several shards (or an explicit --merge) the report runs
            // over the merged store; a single shard is read directly.
            let (store_path, temp_merge) = match (merge, stores.len()) {
                (Some(out), _) => {
                    let paths: Vec<std::path::PathBuf> =
                        stores.iter().map(std::path::PathBuf::from).collect();
                    surepath_runner::merge_stores(std::path::Path::new(out), &paths)
                        .map_err(|e| format!("merge failed: {e}"))?;
                    (std::path::PathBuf::from(out), None)
                }
                (None, 1) => (std::path::PathBuf::from(&stores[0]), None),
                (None, _) => {
                    let tmp = std::env::temp_dir().join(format!(
                        "surepath-report-merge-{}.jsonl",
                        std::process::id()
                    ));
                    let paths: Vec<std::path::PathBuf> =
                        stores.iter().map(std::path::PathBuf::from).collect();
                    surepath_runner::merge_stores(&tmp, &paths)
                        .map_err(|e| format!("merge failed: {e}"))?;
                    (tmp.clone(), Some(tmp))
                }
            };
            // Read-only: reporting must work on archived stores without
            // write access and must not create files.
            let store = surepath_core::ResultStore::open_read_only(&store_path)
                .map_err(|e| format!("cannot open store {}: {e}", store_path.display()))?;
            let mut out = preamble;
            out.push_str(&surepath_core::report_store(&store));
            // Shard manifests (distributed campaigns): label incomplete
            // points as in-flight/assigned rather than leaving them to look
            // missing. Reported per input store — each coordinator writes
            // its own sidecar.
            for input in &stores {
                let manifest_file = surepath_runner::manifest_path(std::path::Path::new(input));
                if let Ok(manifest) = surepath_core::ShardManifest::open_read_only(&manifest_file) {
                    out.push_str(&format!("[{input}] "));
                    out.push_str(&surepath_core::format_manifest_status(&manifest, &store));
                }
            }
            if *counters {
                out.push_str(&surepath_core::format_counters_report(&store));
            }
            if *timings {
                // Timings are best-effort observations: a missing or
                // truncated sidecar degrades the table, it does not fail the
                // report (archived stores routinely travel without them).
                let mut records: Vec<surepath_core::TimingRecord> = Vec::new();
                for input in &stores {
                    let sidecar = surepath_runner::timings_path(std::path::Path::new(input));
                    match surepath_runner::load_timings(&sidecar) {
                        Ok(mut loaded) => records.append(&mut loaded),
                        Err(_) => out.push_str(&format!(
                            "(warning: no timings sidecar at {} — timed jobs from {input} \
                             are missing from the table)\n",
                            sidecar.display()
                        )),
                    }
                }
                out.push_str("=== slowest jobs (wall-clock) ===\n");
                out.push_str(&surepath_core::format_timings_table(&records, 15));
            }
            if let Some(csv_path) = csv {
                std::fs::write(csv_path, surepath_core::report_csv(&store))
                    .map_err(|e| format!("could not write {csv_path}: {e}"))?;
                out.push_str(&format!("(CSV written to {csv_path})\n"));
            }
            if let Some(dir) = plots {
                let dir_path = std::path::Path::new(dir);
                std::fs::create_dir_all(dir_path)
                    .map_err(|e| format!("could not create {dir}: {e}"))?;
                let charts = surepath_core::report_charts(&store);
                if charts.is_empty() {
                    out.push_str("(no plottable campaigns in the store)\n");
                }
                for (stem, svg) in &charts {
                    let file = dir_path.join(format!("{stem}.svg"));
                    std::fs::write(&file, svg)
                        .map_err(|e| format!("could not write {}: {e}", file.display()))?;
                    out.push_str(&format!("(plot written to {})\n", file.display()));
                }
                if *gnuplot {
                    // Same extraction path as the SVGs (core::report), so
                    // the .gp/.dat artifacts always agree with the charts.
                    for artifact in surepath_core::report_gnuplot(&store) {
                        let gp = dir_path.join(format!("{}.gp", artifact.stem));
                        let dat = dir_path.join(format!("{}.dat", artifact.stem));
                        std::fs::write(&gp, &artifact.script)
                            .map_err(|e| format!("could not write {}: {e}", gp.display()))?;
                        std::fs::write(&dat, &artifact.data)
                            .map_err(|e| format!("could not write {}: {e}", dat.display()))?;
                        out.push_str(&format!(
                            "(gnuplot script written to {}; data to {})\n",
                            gp.display(),
                            dat.display()
                        ));
                    }
                }
            }
            if let Some(tmp) = temp_merge {
                let _ = std::fs::remove_file(tmp);
            }
            Ok(CommandOutput::ok(out))
        }
        CampaignCommand::Diff {
            baseline,
            candidate,
            campaign,
            csv,
        } => {
            require_stores_exist(std::slice::from_ref(baseline))?;
            require_stores_exist(std::slice::from_ref(candidate))?;
            let open = |path: &String| {
                surepath_core::ResultStore::open_read_only(std::path::Path::new(path))
                    .map_err(|e| format!("cannot open store {path}: {e}"))
            };
            let diff = surepath_core::diff_stores_filtered(
                &open(baseline)?,
                &open(candidate)?,
                campaign.as_deref(),
            );
            let mut text = format!(
                "diff: baseline {baseline} vs candidate {candidate}{}\n{}",
                match campaign {
                    Some(name) => format!(" (campaign `{name}`)"),
                    None => String::new(),
                },
                surepath_core::format_store_diff(&diff)
            );
            if let Some(csv_path) = csv {
                std::fs::write(csv_path, surepath_core::store_diff_csv(&diff))
                    .map_err(|e| format!("could not write {csv_path}: {e}"))?;
                text.push_str(&format!("(CSV written to {csv_path})\n"));
            }
            // A regression is the command's failure mode: the caller (CI, a
            // before/after check) gets a nonzero exit code, with the full
            // table on stderr.
            if diff.has_regressions() {
                Err(text)
            } else {
                Ok(CommandOutput::ok(text))
            }
        }
    }
}

/// A worker id unique among concurrent workers: host (when the environment
/// names one) plus pid.
fn default_worker_id() -> String {
    let host = std::env::var("HOSTNAME").unwrap_or_else(|_| "worker".to_string());
    format!("{host}:{}", std::process::id())
}

/// The `--serve` / `--spawn-local` path: validate + expand the spec, bind,
/// optionally fork local worker processes, then coordinate until the grid
/// is drained and the store is finalized.
#[allow(clippy::too_many_arguments)]
fn run_serve(
    spec_path: &str,
    store: Option<&str>,
    addr: &str,
    spawn_local: Option<usize>,
    worker_threads: Option<usize>,
    worker_partitions: Option<usize>,
    lease_secs: u64,
    shards: Option<usize>,
    chunk: Option<usize>,
    metrics_addr: Option<&str>,
    quiet: bool,
) -> Result<String, String> {
    let spec = surepath_runner::load_spec_file(std::path::Path::new(spec_path))?;
    surepath_core::validate_campaign(&spec)?;
    let jobs = spec.expand()?;
    let store_path = CampaignCliConfig {
        spec_path: spec_path.to_string(),
        store: store.map(str::to_string),
        threads: None,
        partitions: None,
        quiet,
        dry_run: false,
        trace: false,
    }
    .store_path();

    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve listen address: {e}"))?;
    if !quiet {
        eprintln!(
            "[dist] serving campaign `{}` ({} jobs) on {local_addr}",
            spec.name,
            jobs.len()
        );
    }

    // A fully complete store needs no workers: serve() will finalize and
    // return immediately, and forked children would only find a closed port.
    let pending = match surepath_runner::ResultStore::open_read_only(&store_path) {
        Ok(existing) => jobs
            .iter()
            .filter(|job| !existing.is_complete(&surepath_runner::job_fingerprint(job)))
            .count(),
        Err(_) => jobs.len(),
    };

    // Fork the local workers *after* binding, so they have something to
    // connect to (they also retry, covering the accept-loop startup).
    let mut children = Vec::new();
    if let Some(n) = spawn_local.filter(|_| pending > 0) {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot locate the surepath binary: {e}"))?;
        // --threads names each worker's pool size; the default splits the
        // machine's cores across the workers instead of oversubscribing
        // every one of them.
        let threads_each =
            worker_threads.unwrap_or_else(|| (surepath_runner::default_threads() / n).max(1));
        // Workers inherit the engine partition count from --partitions or
        // the spec's `partitions` field (run tuning: the folded store is
        // byte-identical either way).
        let partitions_each = worker_partitions.or(spec.partitions);
        for _ in 0..n {
            let mut command = std::process::Command::new(&exe);
            command
                .arg("campaign")
                .arg("--worker")
                .arg(local_addr.to_string())
                .arg("--threads")
                .arg(threads_each.to_string());
            if let Some(partitions) = partitions_each {
                command.arg("--partitions").arg(partitions.to_string());
            }
            let child = command
                .arg("--quiet")
                .spawn()
                .map_err(|e| format!("cannot spawn local worker: {e}"))?;
            children.push(child);
        }
    }

    let opts = surepath_dist::ServeOptions {
        lease: std::time::Duration::from_secs(lease_secs),
        quiet,
        metrics_addr: metrics_addr.map(str::to_string),
        ..surepath_dist::ServeOptions::default()
    };
    let opts = surepath_dist::ServeOptions {
        shards: shards.unwrap_or(opts.shards),
        chunk: chunk.unwrap_or(opts.chunk),
        ..opts
    };
    let outcome = surepath_dist::serve(listener, &spec.name, &jobs, &store_path, &opts)
        .map_err(|e| format!("distributed campaign failed: {e}"))?;

    let mut worker_failures = 0;
    for mut child in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            _ => worker_failures += 1,
        }
    }
    let mut summary = format!(
        "distributed campaign `{}`: {} jobs total, {} skipped (already complete), {} executed, \
         {} failed, {} worker(s), {} re-offered\nresults: {}\nmanifest: {}",
        spec.name,
        outcome.total,
        outcome.skipped,
        outcome.executed,
        outcome.failed,
        outcome.workers,
        outcome.reoffered,
        store_path.display(),
        surepath_runner::manifest_path(&store_path).display(),
    );
    if worker_failures > 0 {
        summary.push_str(&format!(
            "\n(warning: {worker_failures} spawned worker(s) exited nonzero)"
        ));
    }
    Ok(summary)
}

/// Runs the `campaign` subcommand, returning the summary to print and the
/// exit code ([`EXIT_DEADLINE`] when the global deadline cut the run short).
pub fn run_campaign_cli(cfg: &CampaignCliConfig) -> Result<CommandOutput, String> {
    let spec = surepath_runner::load_spec_file(std::path::Path::new(&cfg.spec_path))?;
    if cfg.dry_run {
        // The run path below validates on its own; only the dry run needs
        // the expansion here (for the counts).
        let jobs = spec.expand()?;
        surepath_core::validate_campaign(&spec)?;
        return Ok(CommandOutput::ok(format!(
            "campaign `{}`: {} jobs valid ({} topologies x {} mechanisms x {} traffics x {} scenarios x {} roots x {} VC budgets x {} loads x {} {}); dry run, nothing executed",
            spec.name,
            jobs.len(),
            spec.topologies.len(),
            spec.mechanisms.as_ref().map_or(1, Vec::len),
            spec.traffics.as_ref().map_or(1, Vec::len),
            spec.scenarios.as_ref().map_or(1, Vec::len),
            spec.roots.as_ref().map_or(1, Vec::len),
            spec.vc_counts.as_ref().map_or(1, Vec::len),
            spec.loads.as_ref().map_or(1, Vec::len),
            spec.replica_seeds().len(),
            if spec.replicas.is_some() {
                "replicas"
            } else {
                "seeds"
            },
        )));
    }
    let store_path = cfg.store_path();
    // --partitions overrides the spec's run-tuning field; either way the
    // store bytes are independent of the value.
    let mut spec = spec;
    if cfg.partitions.is_some() {
        spec.partitions = cfg.partitions;
    }
    let outcome = if cfg.trace {
        surepath_core::run_campaign_traced(&spec, &store_path, cfg.threads, cfg.quiet)
    } else {
        surepath_core::run_campaign(&spec, &store_path, cfg.threads, cfg.quiet)
    }
    .map_err(|e| format!("campaign failed: {e}"))?;
    let mut text = format!(
        "campaign `{}`: {} jobs total, {} skipped (already complete), {} executed, {} failed\nresults: {}",
        spec.name,
        outcome.total,
        outcome.skipped,
        outcome.executed,
        outcome.failed,
        store_path.display()
    );
    if cfg.trace {
        text.push_str(&format!(
            "\ntrace: {} (render with `surepath trace {}`)",
            surepath_runner::trace_path(&store_path).display(),
            store_path.display()
        ));
    }
    let exit_code = if outcome.deadline_hit {
        text.push_str("\n(deadline hit: partial store finalized; re-run to resume the rest)");
        EXIT_DEADLINE
    } else {
        0
    };
    Ok(CommandOutput { text, exit_code })
}

/// The usage string of the `trace` subcommand.
pub const TRACE_USAGE: &str = "usage: surepath trace <store.jsonl>
  Renders the packet-trace sidecar (<store>.trace.jsonl, recorded by
  `surepath campaign <spec> --trace`) as per-job lifecycle summaries: a
  latency breakdown of delivered packets bucketed by hop count, plus an
  escape-tree usage summary. Pass either the store or the sidecar path.
  Read-only — nothing is simulated and nothing is written.
  --help               this message";

/// Runs the `trace` subcommand: load the packet-trace sidecar next to a
/// store and render the per-hop latency / escape-usage breakdown.
pub fn run_trace_command(args: &[String]) -> Result<CommandOutput, String> {
    let mut input: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => return Err(TRACE_USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown argument '{other}'\n{TRACE_USAGE}"))
            }
            positional => {
                if input.replace(positional.to_string()).is_some() {
                    return Err(format!("trace takes exactly one store\n{TRACE_USAGE}"));
                }
            }
        }
    }
    let input = input.ok_or_else(|| format!("missing store\n{TRACE_USAGE}"))?;
    // Accept the sidecar itself, too: `surepath trace x.trace.jsonl` renders
    // the same file as `surepath trace x.jsonl`.
    let (store_file, sidecar) = match input.strip_suffix(".trace.jsonl") {
        Some(stem) => (
            std::path::PathBuf::from(format!("{stem}.jsonl")),
            std::path::PathBuf::from(&input),
        ),
        None => {
            let store = std::path::PathBuf::from(&input);
            let sidecar = surepath_runner::trace_path(&store);
            (store, sidecar)
        }
    };
    if !sidecar.is_file() {
        return Err(format!(
            "no trace sidecar at {} — record one with `surepath campaign <spec> --trace`",
            sidecar.display()
        ));
    }
    let records = surepath_runner::load_trace(&sidecar)
        .map_err(|e| format!("cannot read {}: {e}", sidecar.display()))?;
    // Job labels come from the store when it is readable; a sidecar that
    // travelled without its store still renders (fingerprint labels).
    let store = surepath_core::ResultStore::open_read_only(&store_file).ok();
    let mut out = format!(
        "trace: {} record(s) from {}\n",
        records.len(),
        sidecar.display()
    );
    out.push_str(&surepath_core::format_trace_report(
        &records,
        store.as_ref(),
    ));
    Ok(CommandOutput::ok(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use surepath_core::{FaultShape, RootPolicy};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_the_paper_3d_configuration() {
        let cfg = parse_args(&[]).unwrap();
        assert_eq!(cfg.sides, vec![8, 8, 8]);
        assert_eq!(cfg.concentration, 8);
        assert_eq!(cfg.mechanism, MechanismSpec::PolSP);
        assert_eq!(cfg.mode, RunMode::Rate(0.5));
        assert_eq!(cfg.scenario, FaultScenario::None);
        let e = build_experiment(&cfg);
        assert_eq!(e.num_vcs, 6);
        assert_eq!(e.sides, vec![8, 8, 8]);
    }

    #[test]
    fn full_command_line_round_trips() {
        let cfg = parse_args(&args(&[
            "--sides",
            "16x16",
            "--mechanism",
            "omnisp",
            "--traffic",
            "dcr",
            "--faults",
            "cross:5",
            "--vcs",
            "4",
            "--load",
            "0.9",
            "--seed",
            "7",
            "--root",
            "max-degree",
            "--json",
        ]))
        .unwrap();
        assert_eq!(cfg.sides, vec![16, 16]);
        assert_eq!(
            cfg.concentration, 16,
            "concentration defaults to the first side"
        );
        assert_eq!(cfg.mechanism, MechanismSpec::OmniSP);
        assert_eq!(cfg.traffic, TrafficSpec::DimensionComplementReverse);
        assert_eq!(cfg.vcs, Some(4));
        assert_eq!(cfg.mode, RunMode::Rate(0.9));
        assert_eq!(cfg.seed, 7);
        assert!(cfg.json);
        assert_eq!(cfg.root, RootPlacement::Policy(RootPolicy::MaxAliveDegree));
        match &cfg.scenario {
            FaultScenario::Shape(FaultShape::Cross { center, margin }) => {
                assert_eq!(center, &vec![8, 8]);
                assert_eq!(*margin, 5);
            }
            other => panic!("unexpected scenario {other:?}"),
        }
        let e = build_experiment(&cfg);
        assert_eq!(e.num_vcs, 4);
        assert_eq!(e.sim.seed, 7);
    }

    #[test]
    fn fault_specs_cover_every_named_shape() {
        let sides = vec![8usize, 8, 8];
        assert_eq!(parse_faults("none", &sides).unwrap(), FaultScenario::None);
        assert!(matches!(
            parse_faults("random:30:5", &sides).unwrap(),
            FaultScenario::Random { count: 30, seed: 5 }
        ));
        assert!(matches!(
            parse_faults("row", &sides).unwrap(),
            FaultScenario::Shape(FaultShape::Row { along_dim: 0, .. })
        ));
        assert!(matches!(
            parse_faults("subcube:3", &sides).unwrap(),
            FaultScenario::Shape(FaultShape::Subgrid { size: 3, .. })
        ));
        assert!(matches!(
            parse_faults("star", &sides).unwrap(),
            FaultScenario::Shape(FaultShape::Cross { margin: 1, .. })
        ));
        assert!(parse_faults("subgrid:9", &sides).is_err());
        assert!(parse_faults("cross:8", &sides).is_err());
        assert!(parse_faults("meteor", &sides).is_err());
    }

    #[test]
    fn invalid_inputs_are_rejected_with_messages() {
        assert!(parse_args(&args(&["--sides", "1x8"])).is_err());
        assert!(parse_args(&args(&["--mechanism", "nonsense"])).is_err());
        assert!(parse_args(&args(&["--traffic", "nonsense"])).is_err());
        assert!(parse_args(&args(&["--load", "1.5"])).is_err());
        assert!(parse_args(&args(&["--load", "0"])).is_err());
        assert!(
            parse_args(&args(&["--warmup", "10"])).is_err(),
            "warmup without measure"
        );
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["--help"]))
            .unwrap_err()
            .contains("usage"));
    }

    #[test]
    fn batch_mode_and_windows_are_parsed() {
        let cfg = parse_args(&args(&[
            "--sides",
            "4x4",
            "--batch",
            "60",
            "--warmup",
            "100",
            "--measure",
            "400",
        ]))
        .unwrap();
        assert_eq!(cfg.mode, RunMode::Batch(60));
        assert_eq!(cfg.windows, Some((100, 400)));
        let e = build_experiment(&cfg);
        assert_eq!(e.sim.warmup_cycles, 100);
        assert_eq!(e.sim.measure_cycles, 400);
    }

    fn parse_run(list: &[&str]) -> Result<CampaignCliConfig, String> {
        match parse_campaign_args(&args(list))? {
            CampaignCommand::Run(cfg) => Ok(cfg),
            other => Err(format!("expected a run command, got {other:?}")),
        }
    }

    #[test]
    fn campaign_args_parse_and_reject() {
        let cfg = parse_run(&[
            "grid.toml",
            "--threads",
            "4",
            "--quiet",
            "--store",
            "out.jsonl",
        ])
        .unwrap();
        assert_eq!(cfg.spec_path, "grid.toml");
        assert_eq!(cfg.threads, Some(4));
        assert!(cfg.quiet);
        assert_eq!(cfg.store_path(), std::path::PathBuf::from("out.jsonl"));

        let default_store = parse_run(&["grid.toml"]).unwrap();
        assert_eq!(
            default_store.store_path(),
            std::path::PathBuf::from("grid.results.jsonl")
        );

        assert!(parse_campaign_args(&args(&[])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "b.toml"])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "--threads", "0"])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "--bogus"])).is_err());
        assert!(parse_campaign_args(&args(&["--help"]))
            .unwrap_err()
            .contains("campaign"));
    }

    #[test]
    fn report_and_merge_args_parse_and_reject() {
        assert_eq!(
            parse_campaign_args(&args(&["--report", "a.jsonl", "b.jsonl"])).unwrap(),
            CampaignCommand::Report {
                stores: vec!["a.jsonl".into(), "b.jsonl".into()],
                merge: None,
                csv: None,
                plots: None,
                gnuplot: false,
                timings: false,
                counters: false,
            }
        );
        assert_eq!(
            parse_campaign_args(&args(&[
                "--report",
                "a.jsonl",
                "--merge",
                "all.jsonl",
                "--csv",
                "out.csv"
            ]))
            .unwrap(),
            CampaignCommand::Report {
                stores: vec!["a.jsonl".into()],
                merge: Some("all.jsonl".into()),
                csv: Some("out.csv".into()),
                plots: None,
                gnuplot: false,
                timings: false,
                counters: false,
            }
        );
        assert_eq!(
            parse_campaign_args(&args(&["--merge", "all.jsonl", "a.jsonl", "b.jsonl"])).unwrap(),
            CampaignCommand::Merge {
                output: "all.jsonl".into(),
                inputs: vec!["a.jsonl".into(), "b.jsonl".into()],
            }
        );
        // Stores are mandatory, must exist, and the modes do not mix with
        // run flags.
        assert!(parse_campaign_args(&args(&["--report"])).is_err());
        assert!(parse_campaign_args(&args(&["--merge", "all.jsonl"])).is_err());
        let missing = run_campaign_command(&CampaignCommand::Report {
            stores: vec!["/nonexistent/store.jsonl".into()],
            merge: None,
            csv: None,
            plots: None,
            gnuplot: false,
            timings: false,
            counters: false,
        })
        .unwrap_err();
        assert!(missing.contains("store not found"), "{missing}");
        assert!(parse_campaign_args(&args(&["--report", "a.jsonl", "--dry-run"])).is_err());
        assert!(parse_campaign_args(&args(&["--report", "a.jsonl", "--threads", "2"])).is_err());
        assert!(parse_campaign_args(&args(&["--report", "a.jsonl", "--quiet"])).is_err());
        assert!(parse_campaign_args(&args(&["--merge", "o.jsonl", "a.jsonl", "--quiet"])).is_err());
        assert!(parse_campaign_args(&args(&["spec.toml", "--csv", "x.csv"])).is_err());
    }

    #[test]
    fn diff_args_parse_and_reject() {
        assert_eq!(
            parse_campaign_args(&args(&["--diff", "a.jsonl", "b.jsonl"])).unwrap(),
            CampaignCommand::Diff {
                baseline: "a.jsonl".into(),
                candidate: "b.jsonl".into(),
                campaign: None,
                csv: None,
            }
        );
        // Exactly two stores, no other flags.
        assert!(parse_campaign_args(&args(&["--diff"])).is_err());
        assert!(parse_campaign_args(&args(&["--diff", "a.jsonl"])).is_err());
        assert!(parse_campaign_args(&args(&["--diff", "a.jsonl", "b.jsonl", "c.jsonl"])).is_err());
        assert!(parse_campaign_args(&args(&["--diff", "a.jsonl", "b.jsonl", "--quiet"])).is_err());
        assert!(parse_campaign_args(&args(&["--diff", "--report", "a.jsonl", "b.jsonl"])).is_err());
        assert_eq!(
            parse_campaign_args(&args(&[
                "--diff",
                "a.jsonl",
                "b.jsonl",
                "--csv",
                "x.csv",
                "--campaign",
                "fig06"
            ]))
            .unwrap(),
            CampaignCommand::Diff {
                baseline: "a.jsonl".into(),
                candidate: "b.jsonl".into(),
                campaign: Some("fig06".into()),
                csv: Some("x.csv".into()),
            }
        );
        assert!(
            parse_campaign_args(&args(&["--campaign", "fig06", "--report", "a.jsonl"])).is_err(),
            "--campaign belongs to --diff"
        );
        let missing = run_campaign_command(&CampaignCommand::Diff {
            baseline: "/nonexistent/a.jsonl".into(),
            candidate: "/nonexistent/b.jsonl".into(),
            campaign: None,
            csv: None,
        })
        .unwrap_err();
        assert!(missing.contains("store not found"), "{missing}");
    }

    #[test]
    fn distributed_args_parse_and_reject() {
        assert_eq!(
            parse_campaign_args(&args(&["grid.toml", "--serve", "0.0.0.0:7777", "--quiet"]))
                .unwrap(),
            CampaignCommand::Serve {
                spec_path: "grid.toml".into(),
                store: None,
                addr: "0.0.0.0:7777".into(),
                spawn_local: None,
                threads: None,
                partitions: None,
                lease_secs: 60,
                shards: None,
                chunk: None,
                metrics_addr: None,
                quiet: true,
            }
        );
        assert_eq!(
            parse_campaign_args(&args(&[
                "grid.toml",
                "--spawn-local",
                "3",
                "--store",
                "out.jsonl",
                "--lease-secs",
                "5",
                "--shards",
                "4",
                "--chunk",
                "2",
            ]))
            .unwrap(),
            CampaignCommand::Serve {
                spec_path: "grid.toml".into(),
                store: Some("out.jsonl".into()),
                addr: "127.0.0.1:0".into(),
                spawn_local: Some(3),
                threads: None,
                partitions: None,
                lease_secs: 5,
                shards: Some(4),
                chunk: Some(2),
                metrics_addr: None,
                quiet: false,
            }
        );
        assert_eq!(
            parse_campaign_args(&args(&["--worker", "host:7777", "--threads", "2"])).unwrap(),
            CampaignCommand::Worker {
                addr: "host:7777".into(),
                threads: Some(2),
                partitions: None,
                reconnect_retries: None,
                backoff_ms: None,
                quiet: false,
            }
        );
        // Reconnect tuning rides on --worker and nothing else.
        assert_eq!(
            parse_campaign_args(&args(&[
                "--worker",
                "host:7777",
                "--reconnect-retries",
                "3",
                "--backoff-ms",
                "250"
            ]))
            .unwrap(),
            CampaignCommand::Worker {
                addr: "host:7777".into(),
                threads: None,
                partitions: None,
                reconnect_retries: Some(3),
                backoff_ms: Some(250),
                quiet: false,
            }
        );
        assert!(parse_campaign_args(&args(&["a.toml", "--reconnect-retries", "3"])).is_err());
        assert!(
            parse_campaign_args(&args(&["a.toml", "--serve", "h:1", "--backoff-ms", "50"]))
                .is_err()
        );
        assert!(
            parse_campaign_args(&args(&["--worker", "h:1", "--reconnect-retries", "0"])).is_err()
        );
        // --threads with --spawn-local is each forked worker's pool size.
        match parse_campaign_args(&args(&["g.toml", "--spawn-local", "2", "--threads", "4"]))
            .unwrap()
        {
            CampaignCommand::Serve {
                spawn_local,
                threads,
                ..
            } => {
                assert_eq!(spawn_local, Some(2));
                assert_eq!(threads, Some(4));
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        // Serve needs a spec; worker takes none; the modes do not mix.
        assert!(parse_campaign_args(&args(&["--serve", "0.0.0.0:7777"])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "b.toml", "--spawn-local", "2"])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "--spawn-local", "0"])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "--worker", "h:1"])).is_err());
        assert!(parse_campaign_args(&args(&["--worker", "h:1", "--report", "a.jsonl"])).is_err());
        assert!(parse_campaign_args(&args(&["--worker", "h:1", "--serve", "h:2"])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "--serve", "h:1", "--dry-run"])).is_err());
        assert!(
            parse_campaign_args(&args(&["a.toml", "--serve", "h:1", "--threads", "2"])).is_err(),
            "the coordinator executes nothing"
        );
        assert!(parse_campaign_args(&args(&["a.toml", "--lease-secs", "0"])).is_err());
        // Report gains --plots/--timings; they stay report-only.
        assert_eq!(
            parse_campaign_args(&args(&[
                "--report",
                "a.jsonl",
                "--plots",
                "figs",
                "--timings"
            ]))
            .unwrap(),
            CampaignCommand::Report {
                stores: vec!["a.jsonl".into()],
                merge: None,
                csv: None,
                plots: Some("figs".into()),
                gnuplot: false,
                timings: true,
                counters: false,
            }
        );
        assert!(parse_campaign_args(&args(&["a.toml", "--plots", "figs"])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "--timings"])).is_err());
    }

    #[test]
    fn gnuplot_flag_parses_and_rejects() {
        assert_eq!(
            parse_campaign_args(&args(&[
                "--report",
                "a.jsonl",
                "--plots",
                "figs",
                "--gnuplot"
            ]))
            .unwrap(),
            CampaignCommand::Report {
                stores: vec!["a.jsonl".into()],
                merge: None,
                csv: None,
                plots: Some("figs".into()),
                gnuplot: true,
                timings: false,
                counters: false,
            }
        );
        // --gnuplot needs --plots (a directory to write into) and --report.
        assert!(parse_campaign_args(&args(&["--report", "a.jsonl", "--gnuplot"])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "--gnuplot"])).is_err());
        assert!(
            parse_campaign_args(&args(&["--diff", "a.jsonl", "b.jsonl", "--gnuplot"])).is_err()
        );
        assert!(parse_campaign_args(&args(&["--worker", "h:1", "--gnuplot"])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "--serve", "h:1", "--gnuplot"])).is_err());
    }

    #[test]
    fn worker_command_drains_a_real_coordinator() {
        // A coordinator served straight from dist; the CLI-level Worker
        // command (with the real simulation bridge) must drain it.
        let dir = std::env::temp_dir().join("surepath-cli-worker-test");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let store_path = dir.join(format!("worker-{pid}.jsonl"));
        for suffix in ["jsonl", "manifest.jsonl", "timings.jsonl"] {
            let _ = std::fs::remove_file(store_path.with_extension(suffix));
        }
        let spec = surepath_core::CampaignSpec {
            name: "cli-worker".into(),
            topologies: vec![surepath_core::TopologySpec {
                sides: vec![4, 4],
                concentration: None,
            }],
            mechanisms: Some(vec!["polsp".into()]),
            traffics: Some(vec!["uniform".into()]),
            scenarios: Some(vec!["none".into()]),
            loads: Some(vec![0.3]),
            seeds: Some(vec![1, 2]),
            warmup: Some(100),
            measure: Some(250),
            ..surepath_core::CampaignSpec::default()
        };
        let jobs = spec.expand().unwrap();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = {
            let (jobs, store_path) = (jobs.clone(), store_path.clone());
            std::thread::spawn(move || {
                surepath_dist::serve(
                    listener,
                    "cli-worker",
                    &jobs,
                    &store_path,
                    &surepath_dist::ServeOptions {
                        quiet: true,
                        ..surepath_dist::ServeOptions::default()
                    },
                )
            })
        };
        let output = run_campaign_command(&CampaignCommand::Worker {
            addr,
            threads: Some(2),
            partitions: Some(2),
            reconnect_retries: None,
            backoff_ms: None,
            quiet: true,
        })
        .unwrap();
        assert!(
            output.text.contains("2 executed, 0 failed"),
            "{}",
            output.text
        );
        let outcome = server.join().unwrap().unwrap();
        assert!(outcome.is_complete());

        // The distributed store matches a plain local run byte for byte.
        let local_path = dir.join(format!("worker-{pid}-local.jsonl"));
        let _ = std::fs::remove_file(&local_path);
        surepath_core::run_campaign(&spec, &local_path, Some(2), true).unwrap();
        assert_eq!(
            std::fs::read(&store_path).unwrap(),
            std::fs::read(&local_path).unwrap(),
            "distributed (real simulation) store must equal the local bytes"
        );

        // --report sees the manifest sidecar and the timings table.
        let report = run_campaign_command(&CampaignCommand::Report {
            stores: vec![store_path.to_string_lossy().into_owned()],
            merge: None,
            csv: None,
            plots: None,
            gnuplot: false,
            timings: true,
            counters: false,
        })
        .unwrap()
        .text;
        assert!(
            report.contains("2 assignment(s), 2 delivered, 0 in flight"),
            "{report}"
        );
        assert!(report.contains("slowest jobs"), "{report}");
        assert!(report.contains("2 timed jobs"), "{report}");

        for suffix in ["jsonl", "manifest.jsonl", "timings.jsonl"] {
            let _ = std::fs::remove_file(store_path.with_extension(suffix));
        }
        let _ = std::fs::remove_file(&local_path);
        let _ = std::fs::remove_file(surepath_runner::timings_path(&local_path));
    }

    #[test]
    fn replicated_campaign_reports_ci_and_diffs_clean_against_itself() {
        let dir = std::env::temp_dir().join("surepath-cli-diff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let spec_path = dir.join(format!("rep-{pid}.toml"));
        let store_a = dir.join(format!("rep-{pid}-a.jsonl"));
        let store_b = dir.join(format!("rep-{pid}-b.jsonl"));
        for p in [&store_a, &store_b] {
            let _ = std::fs::remove_file(p);
        }
        std::fs::write(
            &spec_path,
            r#"
                name = "rep"
                mechanisms = ["polsp"]
                traffics = ["uniform"]
                scenarios = ["none"]
                loads = [0.3]
                replicas = 3
                warmup = 100
                measure = 250

                [[topologies]]
                sides = [4, 4]
            "#,
        )
        .unwrap();
        for store in [&store_a, &store_b] {
            let summary = run_campaign_cli(&CampaignCliConfig {
                spec_path: spec_path.to_string_lossy().into_owned(),
                store: Some(store.to_string_lossy().into_owned()),
                threads: Some(2),
                partitions: None,
                quiet: true,
                dry_run: false,
                trace: false,
            })
            .unwrap()
            .text;
            assert!(summary.contains("3 jobs total"), "{summary}");
        }
        // Identical runs produce identical stores; the report shows mean ± CI.
        assert_eq!(
            std::fs::read(&store_a).unwrap(),
            std::fs::read(&store_b).unwrap()
        );
        let report = run_campaign_command(&CampaignCommand::Report {
            stores: vec![store_a.to_string_lossy().into_owned()],
            merge: None,
            csv: None,
            plots: None,
            gnuplot: false,
            timings: false,
            counters: false,
        })
        .unwrap()
        .text;
        assert!(
            report.contains('±'),
            "replicated report shows CIs: {report}"
        );

        // Self-diff: zero significant regressions.
        let diff = run_campaign_command(&CampaignCommand::Diff {
            baseline: store_a.to_string_lossy().into_owned(),
            candidate: store_b.to_string_lossy().into_owned(),
            campaign: None,
            csv: None,
        })
        .unwrap()
        .text;
        assert!(diff.contains("result: no regressions"), "{diff}");

        // The dry run reports the replica dimension.
        let dry = run_campaign_cli(&CampaignCliConfig {
            spec_path: spec_path.to_string_lossy().into_owned(),
            store: None,
            threads: None,
            partitions: None,
            quiet: true,
            dry_run: true,
            trace: false,
        })
        .unwrap()
        .text;
        assert!(dry.contains("3 replicas"), "{dry}");

        for p in [&spec_path, &store_a, &store_b] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn report_and_merge_render_stores_without_simulating() {
        let dir = std::env::temp_dir().join("surepath-cli-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let spec_path = dir.join(format!("report-{pid}.toml"));
        let shard_a = dir.join(format!("report-{pid}-a.jsonl"));
        let shard_b = dir.join(format!("report-{pid}-b.jsonl"));
        let merged = dir.join(format!("report-{pid}-all.jsonl"));
        let csv = dir.join(format!("report-{pid}.csv"));
        for p in [&shard_a, &shard_b, &merged, &csv] {
            let _ = std::fs::remove_file(p);
        }
        // Two shards of the same campaign, produced by independent runs
        // (e.g. two machines splitting the seeds).
        let spec_text = |seeds: &str| {
            format!(
                r#"
                    name = "sharded"
                    mechanisms = ["polsp"]
                    traffics = ["uniform"]
                    scenarios = ["none"]
                    loads = [0.3]
                    seeds = [{seeds}]
                    warmup = 100
                    measure = 250

                    [[topologies]]
                    sides = [4, 4]
                "#
            )
        };
        for (seeds, shard) in [("1", &shard_a), ("2", &shard_b)] {
            std::fs::write(&spec_path, spec_text(seeds)).unwrap();
            run_campaign_cli(&CampaignCliConfig {
                spec_path: spec_path.to_string_lossy().into_owned(),
                store: Some(shard.to_string_lossy().into_owned()),
                threads: Some(2),
                partitions: None,
                quiet: true,
                dry_run: false,
                trace: false,
            })
            .unwrap();
        }

        let report = run_campaign_command(&CampaignCommand::Report {
            stores: vec![
                shard_a.to_string_lossy().into_owned(),
                shard_b.to_string_lossy().into_owned(),
            ],
            merge: Some(merged.to_string_lossy().into_owned()),
            csv: Some(csv.to_string_lossy().into_owned()),
            plots: None,
            gnuplot: false,
            timings: false,
            counters: false,
        })
        .unwrap()
        .text;
        assert!(
            report.contains("campaign `sharded` / kind `rate`"),
            "{report}"
        );
        assert!(report.contains("2 ok, 0 failed"), "{report}");
        assert!(report.contains("PolSP"), "{report}");
        assert!(merged.exists(), "--merge persisted the merged store");
        let csv_text = std::fs::read_to_string(&csv).unwrap();
        assert_eq!(csv_text.lines().count(), 3, "header + one line per seed");

        let summary = run_campaign_command(&CampaignCommand::Merge {
            output: merged.to_string_lossy().into_owned(),
            inputs: vec![
                shard_a.to_string_lossy().into_owned(),
                shard_b.to_string_lossy().into_owned(),
            ],
        })
        .unwrap()
        .text;
        assert!(summary.contains("2 written"), "{summary}");

        for p in [&spec_path, &shard_a, &shard_b, &merged, &csv] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn campaign_cli_runs_then_resumes_instantly() {
        let dir = std::env::temp_dir().join("surepath-cli-campaign-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join(format!("quick-{}.toml", std::process::id()));
        let store_path = dir.join(format!("quick-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&store_path);
        std::fs::write(
            &spec_path,
            r#"
                name = "cli-test"
                mechanisms = ["polsp"]
                traffics = ["uniform"]
                scenarios = ["none", "random:4:2"]
                loads = [0.3]
                seeds = [1, 2]
                warmup = 100
                measure = 250

                [[topologies]]
                sides = [4, 4]
            "#,
        )
        .unwrap();
        let cfg = CampaignCliConfig {
            spec_path: spec_path.to_string_lossy().into_owned(),
            store: Some(store_path.to_string_lossy().into_owned()),
            threads: Some(2),
            partitions: None,
            quiet: true,
            dry_run: false,
            trace: false,
        };
        let output = run_campaign_cli(&cfg).unwrap();
        assert_eq!(output.exit_code, 0);
        let summary = output.text;
        assert!(summary.contains("4 jobs total"), "{summary}");
        assert!(summary.contains("4 executed"), "{summary}");
        assert!(summary.contains("0 failed"), "{summary}");

        // Second invocation: everything fingerprint-complete, nothing runs.
        let resumed = run_campaign_cli(&cfg).unwrap().text;
        assert!(resumed.contains("4 skipped"), "{resumed}");
        assert!(resumed.contains("0 executed"), "{resumed}");

        // A dry run validates without touching the store.
        let dry = CampaignCliConfig {
            dry_run: true,
            ..cfg.clone()
        };
        assert!(run_campaign_cli(&dry).unwrap().text.contains("dry run"));

        let _ = std::fs::remove_file(&spec_path);
        let _ = std::fs::remove_file(&store_path);
    }

    #[test]
    fn observability_flags_parse_and_reject() {
        // --trace rides on a plain run.
        assert!(parse_run(&["grid.toml", "--trace"]).unwrap().trace);
        assert!(!parse_run(&["grid.toml"]).unwrap().trace);
        // --counters rides on --report.
        match parse_campaign_args(&args(&["--report", "a.jsonl", "--counters"])).unwrap() {
            CampaignCommand::Report { counters, .. } => assert!(counters),
            other => panic!("expected Report, got {other:?}"),
        }
        // --metrics-addr rides on --serve / --spawn-local.
        match parse_campaign_args(&args(&[
            "g.toml",
            "--serve",
            "h:1",
            "--metrics-addr",
            "127.0.0.1:9100",
        ]))
        .unwrap()
        {
            CampaignCommand::Serve { metrics_addr, .. } => {
                assert_eq!(metrics_addr.as_deref(), Some("127.0.0.1:9100"))
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        // Each flag stays in its lane.
        assert!(parse_campaign_args(&args(&["--report", "a.jsonl", "--trace"])).is_err());
        assert!(parse_campaign_args(&args(&["g.toml", "--serve", "h:1", "--trace"])).is_err());
        assert!(parse_campaign_args(&args(&["--worker", "h:1", "--trace"])).is_err());
        assert!(parse_campaign_args(&args(&["--diff", "a.jsonl", "b.jsonl", "--trace"])).is_err());
        assert!(parse_campaign_args(&args(&["g.toml", "--counters"])).is_err());
        assert!(
            parse_campaign_args(&args(&["--diff", "a.jsonl", "b.jsonl", "--counters"])).is_err()
        );
        assert!(parse_campaign_args(&args(&["--worker", "h:1", "--counters"])).is_err());
        assert!(parse_campaign_args(&args(&["g.toml", "--metrics-addr", "h:9100"])).is_err());
        assert!(
            parse_campaign_args(&args(&["--worker", "h:1", "--metrics-addr", "h:9100"])).is_err()
        );
        assert!(
            parse_campaign_args(&args(&["--report", "a.jsonl", "--metrics-addr", "h:9100"]))
                .is_err()
        );
        assert!(
            parse_campaign_args(&args(&["g.toml", "--dry-run", "--trace"])).is_err(),
            "a dry run executes nothing, so there is nothing to trace"
        );
    }

    #[test]
    fn traced_campaign_keeps_store_bytes_and_renders_everywhere() {
        let dir = std::env::temp_dir().join("surepath-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let spec_path = dir.join(format!("trace-{pid}.toml"));
        let plain = dir.join(format!("trace-{pid}-plain.jsonl"));
        let traced = dir.join(format!("trace-{pid}-traced.jsonl"));
        let sidecar = surepath_runner::trace_path(&traced);
        for p in [&plain, &traced, &sidecar] {
            let _ = std::fs::remove_file(p);
        }
        std::fs::write(
            &spec_path,
            r#"
                name = "traced"
                mechanisms = ["polsp"]
                traffics = ["uniform"]
                scenarios = ["none"]
                loads = [0.3]
                seeds = [1]
                warmup = 100
                measure = 250

                [[topologies]]
                sides = [4, 4]
            "#,
        )
        .unwrap();
        let run = |store: &std::path::Path, trace: bool| {
            run_campaign_cli(&CampaignCliConfig {
                spec_path: spec_path.to_string_lossy().into_owned(),
                store: Some(store.to_string_lossy().into_owned()),
                threads: Some(1),
                partitions: None,
                quiet: true,
                dry_run: false,
                trace,
            })
            .unwrap()
            .text
        };
        run(&plain, false);
        let summary = run(&traced, true);
        assert!(summary.contains("trace:"), "{summary}");
        // The zero-perturbation contract, end to end through the CLI: the
        // traced store is byte-identical, the sidecar is extra.
        assert_eq!(
            std::fs::read(&plain).unwrap(),
            std::fs::read(&traced).unwrap(),
            "tracing must not change the store bytes"
        );
        assert!(sidecar.is_file(), "trace sidecar written");

        // `surepath trace` renders the sidecar, by store path or directly.
        for input in [&traced, &sidecar] {
            let rendered = run_trace_command(&[input.to_string_lossy().into_owned()])
                .unwrap()
                .text;
            assert!(rendered.contains("=== trace: job"), "{rendered}");
            assert!(rendered.contains("packet(s) injected"), "{rendered}");
            assert!(rendered.contains("avg latency"), "{rendered}");
        }
        let missing = run_trace_command(&[plain.to_string_lossy().into_owned()]).unwrap_err();
        assert!(missing.contains("no trace sidecar"), "{missing}");

        // --report --counters prints the merged engine-counter table.
        let report = run_campaign_command(&CampaignCommand::Report {
            stores: vec![traced.to_string_lossy().into_owned()],
            merge: None,
            csv: None,
            plots: None,
            gnuplot: false,
            timings: false,
            counters: true,
        })
        .unwrap()
        .text;
        assert!(report.contains("=== counters:"), "{report}");
        assert!(report.contains("alloc_requests"), "{report}");

        // Sidecar paths handed to --report (e.g. by a shell glob) are
        // skipped with a warning, never parsed as stores.
        let report = run_campaign_command(&CampaignCommand::Report {
            stores: vec![
                traced.to_string_lossy().into_owned(),
                sidecar.to_string_lossy().into_owned(),
            ],
            merge: None,
            csv: None,
            plots: None,
            gnuplot: false,
            timings: false,
            counters: false,
        })
        .unwrap()
        .text;
        assert!(report.contains("skipping sidecar"), "{report}");
        assert!(report.contains("campaign `traced`"), "{report}");
        let only_sidecars = run_campaign_command(&CampaignCommand::Report {
            stores: vec![sidecar.to_string_lossy().into_owned()],
            merge: None,
            csv: None,
            plots: None,
            gnuplot: false,
            timings: false,
            counters: false,
        })
        .unwrap_err();
        assert!(
            only_sidecars.contains("sidecars don't count"),
            "{only_sidecars}"
        );

        // --timings warns (instead of failing) when the sidecar is gone.
        let _ = std::fs::remove_file(surepath_runner::timings_path(&traced));
        let report = run_campaign_command(&CampaignCommand::Report {
            stores: vec![traced.to_string_lossy().into_owned()],
            merge: None,
            csv: None,
            plots: None,
            gnuplot: false,
            timings: true,
            counters: false,
        })
        .unwrap()
        .text;
        assert!(report.contains("warning: no timings sidecar"), "{report}");
        assert!(report.contains("slowest jobs"), "{report}");

        for p in [&spec_path, &plain, &traced, &sidecar] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_file(surepath_runner::timings_path(&plain));
    }

    #[test]
    fn run_produces_text_and_json_output() {
        let mut cfg = parse_args(&args(&[
            "--sides",
            "4x4",
            "--mechanism",
            "polsp",
            "--load",
            "0.3",
            "--warmup",
            "150",
            "--measure",
            "400",
        ]))
        .unwrap();
        cfg.concentration = 4;
        let text = run(&cfg);
        assert!(text.contains("accepted"));
        assert!(text.contains("PolSP"));
        cfg.json = true;
        let json = run(&cfg);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(parsed["accepted_load"].as_f64().unwrap() > 0.1);
        assert_eq!(parsed["stalled"], serde_json::Value::Bool(false));
    }
}
