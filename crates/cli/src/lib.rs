//! Argument parsing and experiment construction for the `surepath` binary.
//!
//! The command line maps one-to-one onto [`surepath_core::Experiment`]: pick a
//! HyperX, a routing mechanism, a traffic pattern, an optional fault scenario
//! and an operating point, run it, and print the paper's metrics as text or
//! JSON. Everything the figure binaries do can also be scripted through this
//! front end, one point at a time.

use hyperx_routing::MechanismSpec;
use surepath_core::{Experiment, FaultScenario, RootPlacement, SimConfig, TrafficSpec};

/// What the simulation should measure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RunMode {
    /// Open-loop run at a fixed offered load (phits/cycle/server).
    Rate(f64),
    /// Closed-loop run: every server sends this many packets, measure completion time.
    Batch(u64),
}

/// A fully parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub struct CliConfig {
    /// HyperX sides, e.g. `[8, 8, 8]`.
    pub sides: Vec<usize>,
    /// Servers per switch.
    pub concentration: usize,
    /// Routing mechanism.
    pub mechanism: MechanismSpec,
    /// Traffic pattern.
    pub traffic: TrafficSpec,
    /// Fault scenario.
    pub scenario: FaultScenario,
    /// Escape-root placement.
    pub root: RootPlacement,
    /// Virtual channels per port (`None` = the paper's 2n default).
    pub vcs: Option<usize>,
    /// Random seed.
    pub seed: u64,
    /// Warmup and measurement windows (`None` = Table 2 defaults).
    pub windows: Option<(u64, u64)>,
    /// Rate or batch mode.
    pub mode: RunMode,
    /// Print JSON instead of text.
    pub json: bool,
}

impl Default for CliConfig {
    fn default() -> Self {
        CliConfig {
            sides: vec![8, 8, 8],
            concentration: 8,
            mechanism: MechanismSpec::PolSP,
            traffic: TrafficSpec::Uniform,
            scenario: FaultScenario::None,
            root: RootPlacement::Suggested,
            vcs: None,
            seed: 1,
            windows: None,
            mode: RunMode::Rate(0.5),
            json: false,
        }
    }
}

/// The usage string of the `campaign` subcommand.
pub const CAMPAIGN_USAGE: &str = "usage: surepath campaign <spec.toml|spec.json> [options]
       surepath campaign --report <store.jsonl>... [--merge <out.jsonl>] [--csv <out.csv>]
       surepath campaign --merge <out.jsonl> <store.jsonl>...
       surepath campaign --diff <baseline.jsonl> <candidate.jsonl>
  Runs (or resumes) a declarative experiment campaign: the spec's
  topology x mechanism x traffic x scenario x root x VCs x load x seed
  cross-product (with `replicas = N`, each point runs N seeds) is executed
  on a bounded work-stealing thread pool and streamed to a resumable JSONL
  result store. Already-completed jobs (matched by fingerprint) are
  skipped, so re-running a finished campaign is instant.

  Run options:
  --store PATH         result store (default: <spec>.results.jsonl)
  --threads N          worker threads (default: all cores)
  --quiet              suppress per-job progress on stderr
  --dry-run            expand and validate the grid, run nothing

  Store tooling (no simulation):
  --report             render figures/tables straight from the store(s):
                       rate campaigns as sweep tables (replicated points as
                       mean ± CI), batch campaigns as completion times +
                       throughput-over-time series
  --merge OUT          merge sharded stores into OUT (fingerprint-deduped,
                       ok beats failed, deterministic byte order)
  --diff               compare two stores point by point (aligned by
                       fingerprint minus seed): significant per-metric
                       deltas are tabulated and a regression (significant
                       delta in the worse direction) exits nonzero
  --csv PATH           with --report: also write the data as CSV
  --help               this message";

/// The usage string printed by `--help` and on parse errors.
pub const USAGE: &str = "usage: surepath [options]
       surepath campaign <spec.toml|spec.json> [options]   (see `surepath campaign --help`)
  --sides KxKxK        HyperX sides (default 8x8x8)
  --concentration N    servers per switch (default: the first side)
  --mechanism NAME     minimal|valiant|omniwar|polarized|omnisp|polsp|dor|dal|omnisp-tree|polsp-tree
  --traffic NAME       uniform|rsp|dcr|rpn|transpose|shift
  --faults SPEC        none | random:COUNT[:SEED] | row | subgrid:SIZE | cross:MARGIN | star
  --root SPEC          suggested | switch:ID | max-degree | min-eccentricity | min-distance
  --vcs N              virtual channels per port (default 2n)
  --load F             offered load in phits/cycle/server (default 0.5)
  --batch PACKETS      closed-loop mode: packets per server (overrides --load)
  --seed N             random seed (default 1)
  --warmup N           warmup cycles (with --measure; default: Table 2 windows)
  --measure N          measurement cycles
  --json               print metrics as JSON
  --help               this message";

fn parse_sides(s: &str) -> Result<Vec<usize>, String> {
    let sides: Result<Vec<usize>, _> = s.split('x').map(str::parse::<usize>).collect();
    match sides {
        Ok(v) if !v.is_empty() && v.iter().all(|&k| k >= 2) => Ok(v),
        _ => Err(format!(
            "invalid --sides '{s}': expected e.g. 16x16 or 8x8x8 with sides >= 2"
        )),
    }
}

fn parse_faults(spec: &str, sides: &[usize]) -> Result<FaultScenario, String> {
    // The parser lives in surepath-core so campaign specs share it.
    FaultScenario::parse(spec, sides)
}

fn parse_root(spec: &str) -> Result<RootPlacement, String> {
    // The parser lives in surepath-core so campaign specs share it.
    RootPlacement::parse(spec)
}

/// Parses the command line (without the program name).
pub fn parse_args(args: &[String]) -> Result<CliConfig, String> {
    let mut cfg = CliConfig::default();
    let mut concentration_set = false;
    let mut faults_spec: Option<String> = None;
    let mut warmup: Option<u64> = None;
    let mut measure: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--sides" => cfg.sides = parse_sides(&value("--sides")?)?,
            "--concentration" => {
                cfg.concentration = value("--concentration")?
                    .parse()
                    .map_err(|_| "invalid --concentration")?;
                concentration_set = true;
            }
            "--mechanism" => {
                let name = value("--mechanism")?;
                cfg.mechanism = MechanismSpec::parse(&name)
                    .ok_or_else(|| format!("unknown mechanism '{name}'"))?;
            }
            "--traffic" => {
                let name = value("--traffic")?;
                cfg.traffic = TrafficSpec::parse(&name)
                    .ok_or_else(|| format!("unknown traffic pattern '{name}'"))?;
            }
            "--faults" => faults_spec = Some(value("--faults")?),
            "--root" => cfg.root = parse_root(&value("--root")?)?,
            "--vcs" => cfg.vcs = Some(value("--vcs")?.parse().map_err(|_| "invalid --vcs")?),
            "--load" => {
                let load: f64 = value("--load")?.parse().map_err(|_| "invalid --load")?;
                if !(0.0..=1.0).contains(&load) || load == 0.0 {
                    return Err("--load must be in (0, 1]".to_string());
                }
                cfg.mode = RunMode::Rate(load);
            }
            "--batch" => {
                cfg.mode = RunMode::Batch(value("--batch")?.parse().map_err(|_| "invalid --batch")?)
            }
            "--seed" => cfg.seed = value("--seed")?.parse().map_err(|_| "invalid --seed")?,
            "--warmup" => {
                warmup = Some(value("--warmup")?.parse().map_err(|_| "invalid --warmup")?)
            }
            "--measure" => {
                measure = Some(
                    value("--measure")?
                        .parse()
                        .map_err(|_| "invalid --measure")?,
                )
            }
            "--json" => cfg.json = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if !concentration_set {
        cfg.concentration = cfg.sides[0];
    }
    if cfg.concentration == 0 {
        return Err("--concentration must be at least 1".to_string());
    }
    cfg.scenario = match faults_spec {
        Some(spec) => parse_faults(&spec, &cfg.sides)?,
        None => FaultScenario::None,
    };
    cfg.windows = match (warmup, measure) {
        (None, None) => None,
        (Some(w), Some(m)) => Some((w, m)),
        _ => return Err("--warmup and --measure must be given together".to_string()),
    };
    Ok(cfg)
}

/// Builds the [`Experiment`] described by a parsed configuration.
pub fn build_experiment(cfg: &CliConfig) -> Experiment {
    let dims = cfg.sides.len();
    let num_vcs = cfg
        .vcs
        .unwrap_or_else(|| cfg.mechanism.default_num_vcs(dims));
    let mut experiment = Experiment {
        sides: cfg.sides.clone(),
        concentration: cfg.concentration,
        mechanism: cfg.mechanism,
        num_vcs,
        traffic: cfg.traffic,
        scenario: cfg.scenario.clone(),
        root: cfg.root,
        sim: SimConfig::paper_defaults(cfg.concentration, num_vcs),
    };
    experiment.sim.servers_per_switch = cfg.concentration;
    experiment = experiment.with_seed(cfg.seed);
    if let Some((warmup, measure)) = cfg.windows {
        experiment = experiment.with_windows(warmup, measure);
    }
    experiment
}

/// Runs the experiment and renders the result as text or JSON.
pub fn run(cfg: &CliConfig) -> String {
    let experiment = build_experiment(cfg);
    match cfg.mode {
        RunMode::Rate(load) => {
            let metrics = experiment.run_rate(load);
            if cfg.json {
                serde_json::to_string_pretty(&metrics).expect("metrics serialise")
            } else {
                format!(
                    "{}\noffered {:.3}  accepted {:.3}  latency {:.1}  jain {:.3}  escape {:.1}%  hops {:.2}  stalled {}",
                    experiment.label(),
                    metrics.offered_load,
                    metrics.accepted_load,
                    metrics.average_latency,
                    metrics.jain_generated,
                    100.0 * metrics.escape_fraction,
                    metrics.average_hops,
                    metrics.stalled
                )
            }
        }
        RunMode::Batch(packets) => {
            let metrics = experiment.run_batch(packets, 1000);
            if cfg.json {
                serde_json::to_string_pretty(&metrics).expect("metrics serialise")
            } else {
                format!(
                    "{}\ncompletion {} cycles  delivered {}  latency {:.1}  stalled {}",
                    experiment.label(),
                    metrics.completion_time,
                    metrics.delivered_packets,
                    metrics.average_latency,
                    metrics.stalled
                )
            }
        }
    }
}

/// A parsed `surepath campaign` command line.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignCliConfig {
    /// Path of the TOML/JSON campaign spec.
    pub spec_path: String,
    /// Result store path (`None` = `<spec>.results.jsonl`).
    pub store: Option<String>,
    /// Worker threads (`None` = all cores).
    pub threads: Option<usize>,
    /// Suppress per-job progress output.
    pub quiet: bool,
    /// Validate and expand only; run nothing.
    pub dry_run: bool,
}

/// What a `surepath campaign` invocation asks for: run a spec, or operate on
/// existing result stores (report / merge) without simulating anything.
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignCommand {
    /// Run (or resume) the campaign described by a spec file.
    Run(CampaignCliConfig),
    /// Render figures/tables from one or more stores; optionally persist the
    /// merged store and/or a CSV copy.
    Report {
        /// Input store shards (at least one).
        stores: Vec<String>,
        /// Where to write the merged store (`None` = don't persist a merge).
        merge: Option<String>,
        /// Where to write the CSV copy of the report data.
        csv: Option<String>,
    },
    /// Merge store shards into one store, nothing else.
    Merge {
        /// Output store path.
        output: String,
        /// Input store shards (at least one).
        inputs: Vec<String>,
    },
    /// Compare two stores point by point (aligned by fingerprint minus
    /// seed) and report significant per-metric deltas; regressions make the
    /// command fail, so `--diff` gates CI and before/after experiments.
    Diff {
        /// The baseline store.
        baseline: String,
        /// The candidate store, judged against the baseline.
        candidate: String,
    },
}

impl CampaignCliConfig {
    /// The effective store path.
    pub fn store_path(&self) -> std::path::PathBuf {
        match &self.store {
            Some(path) => std::path::PathBuf::from(path),
            None => {
                let spec = std::path::Path::new(&self.spec_path);
                spec.with_extension("results.jsonl")
            }
        }
    }
}

/// Parses the arguments of the `campaign` subcommand (everything after the
/// literal `campaign`).
pub fn parse_campaign_args(args: &[String]) -> Result<CampaignCommand, String> {
    let mut positionals: Vec<String> = Vec::new();
    let mut store = None;
    let mut threads = None;
    let mut quiet = false;
    let mut dry_run = false;
    let mut report = false;
    let mut diff = false;
    let mut merge: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--store" => store = Some(value("--store")?),
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads")?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(n);
            }
            "--quiet" => quiet = true,
            "--dry-run" => dry_run = true,
            "--report" => report = true,
            "--diff" => diff = true,
            "--merge" => merge = Some(value("--merge")?),
            "--csv" => csv = Some(value("--csv")?),
            "--help" | "-h" => return Err(CAMPAIGN_USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown argument '{other}'\n{CAMPAIGN_USAGE}"))
            }
            positional => positionals.push(positional.to_string()),
        }
    }
    if diff {
        if report
            || store.is_some()
            || threads.is_some()
            || dry_run
            || quiet
            || merge.is_some()
            || csv.is_some()
        {
            return Err("--diff takes exactly two stores and no other flags".to_string());
        }
        if positionals.len() != 2 {
            return Err(format!(
                "--diff needs exactly two stores (baseline, candidate)\n{CAMPAIGN_USAGE}"
            ));
        }
        let candidate = positionals.pop().expect("checked above");
        let baseline = positionals.pop().expect("checked above");
        return Ok(CampaignCommand::Diff {
            baseline,
            candidate,
        });
    }
    if report {
        if store.is_some() || threads.is_some() || dry_run || quiet {
            return Err("--report only combines with --merge and --csv".to_string());
        }
        if positionals.is_empty() {
            return Err(format!(
                "--report needs at least one store\n{CAMPAIGN_USAGE}"
            ));
        }
        return Ok(CampaignCommand::Report {
            stores: positionals,
            merge,
            csv,
        });
    }
    if let Some(output) = merge {
        if store.is_some() || threads.is_some() || dry_run || csv.is_some() || quiet {
            return Err("--merge (without --report) only takes input stores".to_string());
        }
        if positionals.is_empty() {
            return Err(format!(
                "--merge needs at least one input store\n{CAMPAIGN_USAGE}"
            ));
        }
        return Ok(CampaignCommand::Merge {
            output,
            inputs: positionals,
        });
    }
    if csv.is_some() {
        return Err("--csv only applies to --report".to_string());
    }
    if positionals.len() > 1 {
        return Err("campaign takes exactly one spec file".to_string());
    }
    Ok(CampaignCommand::Run(CampaignCliConfig {
        spec_path: positionals
            .pop()
            .ok_or_else(|| format!("missing spec file\n{CAMPAIGN_USAGE}"))?,
        store,
        threads,
        quiet,
        dry_run,
    }))
}

/// Rejects input store paths that do not exist — opening them would
/// silently create empty stores and report nothing instead of the mistake.
fn require_stores_exist(paths: &[String]) -> Result<(), String> {
    for path in paths {
        if !std::path::Path::new(path).is_file() {
            return Err(format!("store not found: {path}"));
        }
    }
    Ok(())
}

/// Runs a parsed `campaign` subcommand, returning the text to print.
pub fn run_campaign_command(cmd: &CampaignCommand) -> Result<String, String> {
    match cmd {
        CampaignCommand::Run(cfg) => run_campaign_cli(cfg),
        CampaignCommand::Merge { output, inputs } => {
            require_stores_exist(inputs)?;
            let paths: Vec<std::path::PathBuf> =
                inputs.iter().map(std::path::PathBuf::from).collect();
            let summary = surepath_runner::merge_stores(std::path::Path::new(output), &paths)
                .map_err(|e| format!("merge failed: {e}"))?;
            Ok(format!(
                "merged {} stores: {} records read, {} written, {} duplicates dropped\nmerged store: {output}",
                inputs.len(),
                summary.read,
                summary.written,
                summary.duplicates
            ))
        }
        CampaignCommand::Report { stores, merge, csv } => {
            require_stores_exist(stores)?;
            // With several shards (or an explicit --merge) the report runs
            // over the merged store; a single shard is read directly.
            let (store_path, temp_merge) = match (merge, stores.len()) {
                (Some(out), _) => {
                    let paths: Vec<std::path::PathBuf> =
                        stores.iter().map(std::path::PathBuf::from).collect();
                    surepath_runner::merge_stores(std::path::Path::new(out), &paths)
                        .map_err(|e| format!("merge failed: {e}"))?;
                    (std::path::PathBuf::from(out), None)
                }
                (None, 1) => (std::path::PathBuf::from(&stores[0]), None),
                (None, _) => {
                    let tmp = std::env::temp_dir().join(format!(
                        "surepath-report-merge-{}.jsonl",
                        std::process::id()
                    ));
                    let paths: Vec<std::path::PathBuf> =
                        stores.iter().map(std::path::PathBuf::from).collect();
                    surepath_runner::merge_stores(&tmp, &paths)
                        .map_err(|e| format!("merge failed: {e}"))?;
                    (tmp.clone(), Some(tmp))
                }
            };
            // Read-only: reporting must work on archived stores without
            // write access and must not create files.
            let store = surepath_core::ResultStore::open_read_only(&store_path)
                .map_err(|e| format!("cannot open store {}: {e}", store_path.display()))?;
            let mut out = surepath_core::report_store(&store);
            if let Some(csv_path) = csv {
                std::fs::write(csv_path, surepath_core::report_csv(&store))
                    .map_err(|e| format!("could not write {csv_path}: {e}"))?;
                out.push_str(&format!("(CSV written to {csv_path})\n"));
            }
            if let Some(tmp) = temp_merge {
                let _ = std::fs::remove_file(tmp);
            }
            Ok(out)
        }
        CampaignCommand::Diff {
            baseline,
            candidate,
        } => {
            require_stores_exist(std::slice::from_ref(baseline))?;
            require_stores_exist(std::slice::from_ref(candidate))?;
            let open = |path: &String| {
                surepath_core::ResultStore::open_read_only(std::path::Path::new(path))
                    .map_err(|e| format!("cannot open store {path}: {e}"))
            };
            let diff = surepath_core::diff_stores(&open(baseline)?, &open(candidate)?);
            let text = format!(
                "diff: baseline {baseline} vs candidate {candidate}\n{}",
                surepath_core::format_store_diff(&diff)
            );
            // A regression is the command's failure mode: the caller (CI, a
            // before/after check) gets a nonzero exit code, with the full
            // table on stderr.
            if diff.has_regressions() {
                Err(text)
            } else {
                Ok(text)
            }
        }
    }
}

/// Runs the `campaign` subcommand, returning the summary to print.
pub fn run_campaign_cli(cfg: &CampaignCliConfig) -> Result<String, String> {
    let spec = surepath_runner::load_spec_file(std::path::Path::new(&cfg.spec_path))?;
    if cfg.dry_run {
        // The run path below validates on its own; only the dry run needs
        // the expansion here (for the counts).
        let jobs = spec.expand()?;
        surepath_core::validate_campaign(&spec)?;
        return Ok(format!(
            "campaign `{}`: {} jobs valid ({} topologies x {} mechanisms x {} traffics x {} scenarios x {} roots x {} VC budgets x {} loads x {} {}); dry run, nothing executed",
            spec.name,
            jobs.len(),
            spec.topologies.len(),
            spec.mechanisms.as_ref().map_or(1, Vec::len),
            spec.traffics.as_ref().map_or(1, Vec::len),
            spec.scenarios.as_ref().map_or(1, Vec::len),
            spec.roots.as_ref().map_or(1, Vec::len),
            spec.vc_counts.as_ref().map_or(1, Vec::len),
            spec.loads.as_ref().map_or(1, Vec::len),
            spec.replica_seeds().len(),
            if spec.replicas.is_some() {
                "replicas"
            } else {
                "seeds"
            },
        ));
    }
    let store_path = cfg.store_path();
    let outcome = surepath_core::run_campaign(&spec, &store_path, cfg.threads, cfg.quiet)
        .map_err(|e| format!("campaign failed: {e}"))?;
    Ok(format!(
        "campaign `{}`: {} jobs total, {} skipped (already complete), {} executed, {} failed\nresults: {}",
        spec.name,
        outcome.total,
        outcome.skipped,
        outcome.executed,
        outcome.failed,
        store_path.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use surepath_core::{FaultShape, RootPolicy};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_match_the_paper_3d_configuration() {
        let cfg = parse_args(&[]).unwrap();
        assert_eq!(cfg.sides, vec![8, 8, 8]);
        assert_eq!(cfg.concentration, 8);
        assert_eq!(cfg.mechanism, MechanismSpec::PolSP);
        assert_eq!(cfg.mode, RunMode::Rate(0.5));
        assert_eq!(cfg.scenario, FaultScenario::None);
        let e = build_experiment(&cfg);
        assert_eq!(e.num_vcs, 6);
        assert_eq!(e.sides, vec![8, 8, 8]);
    }

    #[test]
    fn full_command_line_round_trips() {
        let cfg = parse_args(&args(&[
            "--sides",
            "16x16",
            "--mechanism",
            "omnisp",
            "--traffic",
            "dcr",
            "--faults",
            "cross:5",
            "--vcs",
            "4",
            "--load",
            "0.9",
            "--seed",
            "7",
            "--root",
            "max-degree",
            "--json",
        ]))
        .unwrap();
        assert_eq!(cfg.sides, vec![16, 16]);
        assert_eq!(
            cfg.concentration, 16,
            "concentration defaults to the first side"
        );
        assert_eq!(cfg.mechanism, MechanismSpec::OmniSP);
        assert_eq!(cfg.traffic, TrafficSpec::DimensionComplementReverse);
        assert_eq!(cfg.vcs, Some(4));
        assert_eq!(cfg.mode, RunMode::Rate(0.9));
        assert_eq!(cfg.seed, 7);
        assert!(cfg.json);
        assert_eq!(cfg.root, RootPlacement::Policy(RootPolicy::MaxAliveDegree));
        match &cfg.scenario {
            FaultScenario::Shape(FaultShape::Cross { center, margin }) => {
                assert_eq!(center, &vec![8, 8]);
                assert_eq!(*margin, 5);
            }
            other => panic!("unexpected scenario {other:?}"),
        }
        let e = build_experiment(&cfg);
        assert_eq!(e.num_vcs, 4);
        assert_eq!(e.sim.seed, 7);
    }

    #[test]
    fn fault_specs_cover_every_named_shape() {
        let sides = vec![8usize, 8, 8];
        assert_eq!(parse_faults("none", &sides).unwrap(), FaultScenario::None);
        assert!(matches!(
            parse_faults("random:30:5", &sides).unwrap(),
            FaultScenario::Random { count: 30, seed: 5 }
        ));
        assert!(matches!(
            parse_faults("row", &sides).unwrap(),
            FaultScenario::Shape(FaultShape::Row { along_dim: 0, .. })
        ));
        assert!(matches!(
            parse_faults("subcube:3", &sides).unwrap(),
            FaultScenario::Shape(FaultShape::Subgrid { size: 3, .. })
        ));
        assert!(matches!(
            parse_faults("star", &sides).unwrap(),
            FaultScenario::Shape(FaultShape::Cross { margin: 1, .. })
        ));
        assert!(parse_faults("subgrid:9", &sides).is_err());
        assert!(parse_faults("cross:8", &sides).is_err());
        assert!(parse_faults("meteor", &sides).is_err());
    }

    #[test]
    fn invalid_inputs_are_rejected_with_messages() {
        assert!(parse_args(&args(&["--sides", "1x8"])).is_err());
        assert!(parse_args(&args(&["--mechanism", "nonsense"])).is_err());
        assert!(parse_args(&args(&["--traffic", "nonsense"])).is_err());
        assert!(parse_args(&args(&["--load", "1.5"])).is_err());
        assert!(parse_args(&args(&["--load", "0"])).is_err());
        assert!(
            parse_args(&args(&["--warmup", "10"])).is_err(),
            "warmup without measure"
        );
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["--help"]))
            .unwrap_err()
            .contains("usage"));
    }

    #[test]
    fn batch_mode_and_windows_are_parsed() {
        let cfg = parse_args(&args(&[
            "--sides",
            "4x4",
            "--batch",
            "60",
            "--warmup",
            "100",
            "--measure",
            "400",
        ]))
        .unwrap();
        assert_eq!(cfg.mode, RunMode::Batch(60));
        assert_eq!(cfg.windows, Some((100, 400)));
        let e = build_experiment(&cfg);
        assert_eq!(e.sim.warmup_cycles, 100);
        assert_eq!(e.sim.measure_cycles, 400);
    }

    fn parse_run(list: &[&str]) -> Result<CampaignCliConfig, String> {
        match parse_campaign_args(&args(list))? {
            CampaignCommand::Run(cfg) => Ok(cfg),
            other => Err(format!("expected a run command, got {other:?}")),
        }
    }

    #[test]
    fn campaign_args_parse_and_reject() {
        let cfg = parse_run(&[
            "grid.toml",
            "--threads",
            "4",
            "--quiet",
            "--store",
            "out.jsonl",
        ])
        .unwrap();
        assert_eq!(cfg.spec_path, "grid.toml");
        assert_eq!(cfg.threads, Some(4));
        assert!(cfg.quiet);
        assert_eq!(cfg.store_path(), std::path::PathBuf::from("out.jsonl"));

        let default_store = parse_run(&["grid.toml"]).unwrap();
        assert_eq!(
            default_store.store_path(),
            std::path::PathBuf::from("grid.results.jsonl")
        );

        assert!(parse_campaign_args(&args(&[])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "b.toml"])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "--threads", "0"])).is_err());
        assert!(parse_campaign_args(&args(&["a.toml", "--bogus"])).is_err());
        assert!(parse_campaign_args(&args(&["--help"]))
            .unwrap_err()
            .contains("campaign"));
    }

    #[test]
    fn report_and_merge_args_parse_and_reject() {
        assert_eq!(
            parse_campaign_args(&args(&["--report", "a.jsonl", "b.jsonl"])).unwrap(),
            CampaignCommand::Report {
                stores: vec!["a.jsonl".into(), "b.jsonl".into()],
                merge: None,
                csv: None,
            }
        );
        assert_eq!(
            parse_campaign_args(&args(&[
                "--report",
                "a.jsonl",
                "--merge",
                "all.jsonl",
                "--csv",
                "out.csv"
            ]))
            .unwrap(),
            CampaignCommand::Report {
                stores: vec!["a.jsonl".into()],
                merge: Some("all.jsonl".into()),
                csv: Some("out.csv".into()),
            }
        );
        assert_eq!(
            parse_campaign_args(&args(&["--merge", "all.jsonl", "a.jsonl", "b.jsonl"])).unwrap(),
            CampaignCommand::Merge {
                output: "all.jsonl".into(),
                inputs: vec!["a.jsonl".into(), "b.jsonl".into()],
            }
        );
        // Stores are mandatory, must exist, and the modes do not mix with
        // run flags.
        assert!(parse_campaign_args(&args(&["--report"])).is_err());
        assert!(parse_campaign_args(&args(&["--merge", "all.jsonl"])).is_err());
        let missing = run_campaign_command(&CampaignCommand::Report {
            stores: vec!["/nonexistent/store.jsonl".into()],
            merge: None,
            csv: None,
        })
        .unwrap_err();
        assert!(missing.contains("store not found"), "{missing}");
        assert!(parse_campaign_args(&args(&["--report", "a.jsonl", "--dry-run"])).is_err());
        assert!(parse_campaign_args(&args(&["--report", "a.jsonl", "--threads", "2"])).is_err());
        assert!(parse_campaign_args(&args(&["--report", "a.jsonl", "--quiet"])).is_err());
        assert!(parse_campaign_args(&args(&["--merge", "o.jsonl", "a.jsonl", "--quiet"])).is_err());
        assert!(parse_campaign_args(&args(&["spec.toml", "--csv", "x.csv"])).is_err());
    }

    #[test]
    fn diff_args_parse_and_reject() {
        assert_eq!(
            parse_campaign_args(&args(&["--diff", "a.jsonl", "b.jsonl"])).unwrap(),
            CampaignCommand::Diff {
                baseline: "a.jsonl".into(),
                candidate: "b.jsonl".into(),
            }
        );
        // Exactly two stores, no other flags.
        assert!(parse_campaign_args(&args(&["--diff"])).is_err());
        assert!(parse_campaign_args(&args(&["--diff", "a.jsonl"])).is_err());
        assert!(parse_campaign_args(&args(&["--diff", "a.jsonl", "b.jsonl", "c.jsonl"])).is_err());
        assert!(parse_campaign_args(&args(&["--diff", "a.jsonl", "b.jsonl", "--quiet"])).is_err());
        assert!(parse_campaign_args(&args(&["--diff", "--report", "a.jsonl", "b.jsonl"])).is_err());
        assert!(
            parse_campaign_args(&args(&["--diff", "a.jsonl", "b.jsonl", "--csv", "x.csv"]))
                .is_err()
        );
        let missing = run_campaign_command(&CampaignCommand::Diff {
            baseline: "/nonexistent/a.jsonl".into(),
            candidate: "/nonexistent/b.jsonl".into(),
        })
        .unwrap_err();
        assert!(missing.contains("store not found"), "{missing}");
    }

    #[test]
    fn replicated_campaign_reports_ci_and_diffs_clean_against_itself() {
        let dir = std::env::temp_dir().join("surepath-cli-diff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let spec_path = dir.join(format!("rep-{pid}.toml"));
        let store_a = dir.join(format!("rep-{pid}-a.jsonl"));
        let store_b = dir.join(format!("rep-{pid}-b.jsonl"));
        for p in [&store_a, &store_b] {
            let _ = std::fs::remove_file(p);
        }
        std::fs::write(
            &spec_path,
            r#"
                name = "rep"
                mechanisms = ["polsp"]
                traffics = ["uniform"]
                scenarios = ["none"]
                loads = [0.3]
                replicas = 3
                warmup = 100
                measure = 250

                [[topologies]]
                sides = [4, 4]
            "#,
        )
        .unwrap();
        for store in [&store_a, &store_b] {
            let summary = run_campaign_cli(&CampaignCliConfig {
                spec_path: spec_path.to_string_lossy().into_owned(),
                store: Some(store.to_string_lossy().into_owned()),
                threads: Some(2),
                quiet: true,
                dry_run: false,
            })
            .unwrap();
            assert!(summary.contains("3 jobs total"), "{summary}");
        }
        // Identical runs produce identical stores; the report shows mean ± CI.
        assert_eq!(
            std::fs::read(&store_a).unwrap(),
            std::fs::read(&store_b).unwrap()
        );
        let report = run_campaign_command(&CampaignCommand::Report {
            stores: vec![store_a.to_string_lossy().into_owned()],
            merge: None,
            csv: None,
        })
        .unwrap();
        assert!(
            report.contains('±'),
            "replicated report shows CIs: {report}"
        );

        // Self-diff: zero significant regressions.
        let diff = run_campaign_command(&CampaignCommand::Diff {
            baseline: store_a.to_string_lossy().into_owned(),
            candidate: store_b.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(diff.contains("result: no regressions"), "{diff}");

        // The dry run reports the replica dimension.
        let dry = run_campaign_cli(&CampaignCliConfig {
            spec_path: spec_path.to_string_lossy().into_owned(),
            store: None,
            threads: None,
            quiet: true,
            dry_run: true,
        })
        .unwrap();
        assert!(dry.contains("3 replicas"), "{dry}");

        for p in [&spec_path, &store_a, &store_b] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn report_and_merge_render_stores_without_simulating() {
        let dir = std::env::temp_dir().join("surepath-cli-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let spec_path = dir.join(format!("report-{pid}.toml"));
        let shard_a = dir.join(format!("report-{pid}-a.jsonl"));
        let shard_b = dir.join(format!("report-{pid}-b.jsonl"));
        let merged = dir.join(format!("report-{pid}-all.jsonl"));
        let csv = dir.join(format!("report-{pid}.csv"));
        for p in [&shard_a, &shard_b, &merged, &csv] {
            let _ = std::fs::remove_file(p);
        }
        // Two shards of the same campaign, produced by independent runs
        // (e.g. two machines splitting the seeds).
        let spec_text = |seeds: &str| {
            format!(
                r#"
                    name = "sharded"
                    mechanisms = ["polsp"]
                    traffics = ["uniform"]
                    scenarios = ["none"]
                    loads = [0.3]
                    seeds = [{seeds}]
                    warmup = 100
                    measure = 250

                    [[topologies]]
                    sides = [4, 4]
                "#
            )
        };
        for (seeds, shard) in [("1", &shard_a), ("2", &shard_b)] {
            std::fs::write(&spec_path, spec_text(seeds)).unwrap();
            run_campaign_cli(&CampaignCliConfig {
                spec_path: spec_path.to_string_lossy().into_owned(),
                store: Some(shard.to_string_lossy().into_owned()),
                threads: Some(2),
                quiet: true,
                dry_run: false,
            })
            .unwrap();
        }

        let report = run_campaign_command(&CampaignCommand::Report {
            stores: vec![
                shard_a.to_string_lossy().into_owned(),
                shard_b.to_string_lossy().into_owned(),
            ],
            merge: Some(merged.to_string_lossy().into_owned()),
            csv: Some(csv.to_string_lossy().into_owned()),
        })
        .unwrap();
        assert!(
            report.contains("campaign `sharded` / kind `rate`"),
            "{report}"
        );
        assert!(report.contains("2 ok, 0 failed"), "{report}");
        assert!(report.contains("PolSP"), "{report}");
        assert!(merged.exists(), "--merge persisted the merged store");
        let csv_text = std::fs::read_to_string(&csv).unwrap();
        assert_eq!(csv_text.lines().count(), 3, "header + one line per seed");

        let summary = run_campaign_command(&CampaignCommand::Merge {
            output: merged.to_string_lossy().into_owned(),
            inputs: vec![
                shard_a.to_string_lossy().into_owned(),
                shard_b.to_string_lossy().into_owned(),
            ],
        })
        .unwrap();
        assert!(summary.contains("2 written"), "{summary}");

        for p in [&spec_path, &shard_a, &shard_b, &merged, &csv] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn campaign_cli_runs_then_resumes_instantly() {
        let dir = std::env::temp_dir().join("surepath-cli-campaign-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join(format!("quick-{}.toml", std::process::id()));
        let store_path = dir.join(format!("quick-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&store_path);
        std::fs::write(
            &spec_path,
            r#"
                name = "cli-test"
                mechanisms = ["polsp"]
                traffics = ["uniform"]
                scenarios = ["none", "random:4:2"]
                loads = [0.3]
                seeds = [1, 2]
                warmup = 100
                measure = 250

                [[topologies]]
                sides = [4, 4]
            "#,
        )
        .unwrap();
        let cfg = CampaignCliConfig {
            spec_path: spec_path.to_string_lossy().into_owned(),
            store: Some(store_path.to_string_lossy().into_owned()),
            threads: Some(2),
            quiet: true,
            dry_run: false,
        };
        let summary = run_campaign_cli(&cfg).unwrap();
        assert!(summary.contains("4 jobs total"), "{summary}");
        assert!(summary.contains("4 executed"), "{summary}");
        assert!(summary.contains("0 failed"), "{summary}");

        // Second invocation: everything fingerprint-complete, nothing runs.
        let resumed = run_campaign_cli(&cfg).unwrap();
        assert!(resumed.contains("4 skipped"), "{resumed}");
        assert!(resumed.contains("0 executed"), "{resumed}");

        // A dry run validates without touching the store.
        let dry = CampaignCliConfig {
            dry_run: true,
            ..cfg.clone()
        };
        assert!(run_campaign_cli(&dry).unwrap().contains("dry run"));

        let _ = std::fs::remove_file(&spec_path);
        let _ = std::fs::remove_file(&store_path);
    }

    #[test]
    fn run_produces_text_and_json_output() {
        let mut cfg = parse_args(&args(&[
            "--sides",
            "4x4",
            "--mechanism",
            "polsp",
            "--load",
            "0.3",
            "--warmup",
            "150",
            "--measure",
            "400",
        ]))
        .unwrap();
        cfg.concentration = 4;
        let text = run(&cfg);
        assert!(text.contains("accepted"));
        assert!(text.contains("PolSP"));
        cfg.json = true;
        let json = run(&cfg);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(parsed["accepted_load"].as_f64().unwrap() > 0.1);
        assert_eq!(parsed["stalled"], serde_json::Value::Bool(false));
    }
}
