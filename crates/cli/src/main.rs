//! `surepath` — run SurePath experiments from the command line.
//!
//! Single experiments:
//!
//! ```text
//! surepath --sides 8x8x8 --mechanism polsp --traffic uniform --load 0.6
//! surepath --sides 16x16 --mechanism omnisp --traffic dcr --faults cross:5 --vcs 4 --load 0.9
//! surepath --sides 8x8x8 --mechanism omnisp --traffic rpn --faults star --batch 500 --json
//! ```
//!
//! Declarative campaigns (experiment matrices on a work-stealing pool with a
//! resumable result store):
//!
//! ```text
//! surepath campaign examples/campaign_quick.toml
//! surepath campaign grid.toml --threads 8 --store results/grid.jsonl
//! surepath campaign --report results/grid.jsonl            # render, no simulation
//! surepath campaign --merge all.jsonl shard1.jsonl shard2.jsonl
//! ```
//!
//! Distributed campaigns (one coordinator, any number of workers; the
//! finalized store is byte-identical to a local run):
//!
//! ```text
//! surepath campaign grid.toml --serve 0.0.0.0:7777      # terminal 1
//! surepath campaign --worker coordinator-host:7777      # terminal 2..n
//! surepath campaign grid.toml --spawn-local 4           # single-machine fan-out
//! ```
//!
//! Engine perf harness (active-set scheduler vs the frozen full-scan
//! baseline; writes `BENCH_ENGINE.json`):
//!
//! ```text
//! surepath bench --quick
//! surepath bench --full --repeat 3 --out BENCH_ENGINE.json
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench") {
        match surepath_cli::parse_bench_args(&args[1..])
            .and_then(|cfg| surepath_cli::run_bench_command(&cfg))
        {
            Ok(output) => {
                println!("{}", output.text);
                if output.exit_code != 0 {
                    std::process::exit(output.exit_code);
                }
            }
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
        return;
    }
    if args.first().map(String::as_str) == Some("trace") {
        match surepath_cli::run_trace_command(&args[1..]) {
            Ok(output) => {
                println!("{}", output.text);
                if output.exit_code != 0 {
                    std::process::exit(output.exit_code);
                }
            }
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
        return;
    }
    if args.first().map(String::as_str) == Some("campaign") {
        match surepath_cli::parse_campaign_args(&args[1..])
            .and_then(|cmd| surepath_cli::run_campaign_command(&cmd))
        {
            Ok(output) => {
                println!("{}", output.text);
                if output.exit_code != 0 {
                    std::process::exit(output.exit_code);
                }
            }
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
        return;
    }
    match surepath_cli::parse_args(&args) {
        Ok(cfg) => println!("{}", surepath_cli::run(&cfg)),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
