//! `surepath` — run SurePath experiments from the command line.
//!
//! Single experiments:
//!
//! ```text
//! surepath --sides 8x8x8 --mechanism polsp --traffic uniform --load 0.6
//! surepath --sides 16x16 --mechanism omnisp --traffic dcr --faults cross:5 --vcs 4 --load 0.9
//! surepath --sides 8x8x8 --mechanism omnisp --traffic rpn --faults star --batch 500 --json
//! ```
//!
//! Declarative campaigns (experiment matrices on a work-stealing pool with a
//! resumable result store):
//!
//! ```text
//! surepath campaign examples/campaign_quick.toml
//! surepath campaign grid.toml --threads 8 --store results/grid.jsonl
//! surepath campaign --report results/grid.jsonl            # render, no simulation
//! surepath campaign --merge all.jsonl shard1.jsonl shard2.jsonl
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("campaign") {
        match surepath_cli::parse_campaign_args(&args[1..])
            .and_then(|cmd| surepath_cli::run_campaign_command(&cmd))
        {
            Ok(summary) => println!("{summary}"),
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(2);
            }
        }
        return;
    }
    match surepath_cli::parse_args(&args) {
        Ok(cfg) => println!("{}", surepath_cli::run(&cfg)),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
