//! `surepath` — run one SurePath experiment from the command line.
//!
//! Examples:
//!
//! ```text
//! surepath --sides 8x8x8 --mechanism polsp --traffic uniform --load 0.6
//! surepath --sides 16x16 --mechanism omnisp --traffic dcr --faults cross:5 --vcs 4 --load 0.9
//! surepath --sides 8x8x8 --mechanism omnisp --traffic rpn --faults star --batch 500 --json
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match surepath_cli::parse_args(&args) {
        Ok(cfg) => println!("{}", surepath_cli::run(&cfg)),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
