//! The engine perf harness behind `surepath bench`.
//!
//! Runs a **pinned micro-campaign matrix** (mechanism × offered load ×
//! topology size) through the cycle-level engine twice per cell — once on
//! the active-set scheduler, once on the frozen pre-refactor full-scan
//! baseline (the `full-scan` feature of `hyperx-sim`) — and reports
//! cycles/sec, packets/sec and the speedup per cell. Because both runs use
//! the same seed, the harness also asserts the two schedulers produced
//! byte-identical metrics, so every bench run doubles as an A/B
//! equivalence check.
//!
//! The report serializes to `BENCH_ENGINE.json` in a stable schema
//! ([`BENCH_SCHEMA`]) so successive PRs accumulate a perf trajectory:
//! wall-clock numbers vary with the host, but the schema, the matrix and
//! the headline ratios are comparable run over run.

use hyperx_routing::MechanismSpec;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use surepath_core::{Experiment, FaultScenario, RootPlacement, SimConfig, TrafficSpec};

/// Schema identifier of the JSON report; bump on breaking layout changes.
/// v2 added the per-cell `latency_p99` field (from the engine's log-bucketed
/// latency histogram), so tail latency accumulates a trajectory across PRs
/// alongside throughput.
pub const BENCH_SCHEMA: &str = "surepath-bench-engine/v2";

/// Loads at or below this value count as "low load" in the summary (the
/// regime active-set scheduling targets: most of the network is idle).
pub const LOW_LOAD_THRESHOLD: f64 = 0.15;

/// One cell of the pinned matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCell {
    /// Routing mechanism under test.
    pub mechanism: MechanismSpec,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Offered load in phits/cycle/server.
    pub load: f64,
}

/// The pinned matrix plus the simulation windows of a bench run.
#[derive(Clone, Debug)]
pub struct BenchMatrix {
    /// Human name of the matrix (`quick` / `full`).
    pub mode: &'static str,
    /// Warmup cycles per run.
    pub warmup_cycles: u64,
    /// Measured cycles per run.
    pub measure_cycles: u64,
    /// The cells, in a fixed order.
    pub cells: Vec<BenchCell>,
}

impl BenchMatrix {
    /// The pinned matrix at the given scale. The cells are deliberately
    /// frozen — comparable across PRs — and span both regimes: low loads
    /// (where the active set is small and the scheduling win dominates)
    /// and saturation (where the win comes from the allocation-free inner
    /// loop and the candidate cache).
    pub fn pinned(quick: bool) -> Self {
        let (sizes, loads, warmup, measure): (&[&[usize]], &[f64], u64, u64) = if quick {
            (&[&[4, 4], &[8, 8]], &[0.05, 0.3, 0.7], 200, 1_000)
        } else {
            (&[&[8, 8], &[16, 16]], &[0.05, 0.3, 0.7], 500, 3_000)
        };
        let mechanisms = [
            MechanismSpec::Minimal,
            MechanismSpec::OmniSP,
            MechanismSpec::PolSP,
        ];
        let mut cells = Vec::new();
        for &sides in sizes {
            for mechanism in mechanisms {
                for &load in loads {
                    cells.push(BenchCell {
                        mechanism,
                        sides: sides.to_vec(),
                        load,
                    });
                }
            }
        }
        BenchMatrix {
            mode: if quick { "quick" } else { "full" },
            warmup_cycles: warmup,
            measure_cycles: measure,
            cells,
        }
    }
}

/// Timing of one engine run over a cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineTiming {
    /// Wall-clock milliseconds of the run (best of `repeat`).
    pub wall_ms: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Delivered packets (whole run, matching the timed span) per
    /// wall-clock second.
    pub packets_per_sec: f64,
}

/// One completed cell of the report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Offered load.
    pub load: f64,
    /// Simulated cycles per run (warmup + measurement).
    pub cycles: u64,
    /// Packets delivered in the measurement window.
    pub delivered_packets: u64,
    /// p99 end-to-end latency (cycles) of the measurement window, from the
    /// active-set run's histogram; `None` when nothing was delivered.
    pub latency_p99: Option<u64>,
    /// Active-set engine timing.
    pub active: EngineTiming,
    /// Frozen full-scan baseline timing.
    pub full_scan: EngineTiming,
    /// `active.cycles_per_sec / full_scan.cycles_per_sec`.
    pub speedup: f64,
    /// Whether both schedulers produced byte-identical metrics (they must).
    pub metrics_identical: bool,
}

/// Aggregates of a bench run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Cells in the matrix.
    pub cells: usize,
    /// Cells that ran to completion (a panicking cell is dropped, so
    /// `completed < cells` marks a broken matrix entry; CI asserts
    /// equality).
    pub completed: usize,
    /// Geometric-mean speedup across all completed cells.
    pub geomean_speedup: f64,
    /// Geometric-mean speedup across the low-load cells
    /// (load ≤ [`LOW_LOAD_THRESHOLD`]).
    pub low_load_geomean_speedup: f64,
    /// Smallest per-cell speedup.
    pub min_speedup: f64,
    /// Largest per-cell speedup.
    pub max_speedup: f64,
    /// Whether every cell's schedulers agreed byte for byte.
    pub all_metrics_identical: bool,
}

/// The full JSON report of a bench run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// [`BENCH_SCHEMA`].
    pub schema: String,
    /// `quick` or `full`.
    pub mode: String,
    /// Warmup cycles per run.
    pub warmup_cycles: u64,
    /// Measured cycles per run.
    pub measure_cycles: u64,
    /// Timed repetitions per engine per cell (best is reported).
    pub repeat: usize,
    /// Per-cell results, matrix order.
    pub cells: Vec<CellResult>,
    /// Aggregates.
    pub summary: BenchSummary,
}

/// Builds the experiment of one cell (uniform traffic, healthy network,
/// paper Table 2 parameters, pinned seed).
fn cell_experiment(cell: &BenchCell, warmup: u64, measure: u64) -> Experiment {
    let dims = cell.sides.len();
    let concentration = cell.sides[0];
    let num_vcs = cell.mechanism.default_num_vcs(dims);
    let mut sim = SimConfig::paper_defaults(concentration, num_vcs);
    sim.warmup_cycles = warmup;
    sim.measure_cycles = measure;
    sim.seed = 1;
    Experiment {
        sides: cell.sides.clone(),
        concentration,
        mechanism: cell.mechanism,
        num_vcs,
        traffic: TrafficSpec::Uniform,
        scenario: FaultScenario::None,
        root: RootPlacement::Suggested,
        sim,
    }
}

/// Runs one engine over one cell `repeat` times, returning the best timing
/// plus the serialized metrics of the first run (for the A/B comparison).
fn time_engine(
    experiment: &Experiment,
    load: f64,
    full_scan: bool,
    repeat: usize,
) -> (EngineTiming, u64, u64, Option<u64>, String) {
    let mut best_ms = f64::INFINITY;
    let mut cycles = 0u64;
    let mut delivered = 0u64;
    let mut total_delivered = 0u64;
    let mut latency_p99 = None;
    let mut metrics_json = String::new();
    for rep in 0..repeat.max(1) {
        let mut sim = experiment.build_simulator();
        sim.set_full_scan(full_scan);
        let started = Instant::now();
        let metrics = sim.run_rate(load);
        let elapsed = started.elapsed().as_secs_f64() * 1_000.0;
        if rep == 0 {
            cycles = sim.cycle();
            delivered = metrics.delivered_packets;
            // The wall clock covers warmup + measurement, so the rates use
            // whole-run counts on both axes (measurement-window deliveries
            // over whole-run time would understate throughput).
            total_delivered = sim.total_delivered();
            latency_p99 = metrics
                .latency_hist
                .as_ref()
                .and_then(|h| h.value_at_quantile(0.99));
            metrics_json = serde_json::to_string(&metrics).expect("metrics serialize");
        }
        best_ms = best_ms.min(elapsed);
    }
    let secs = (best_ms / 1_000.0).max(1e-9);
    (
        EngineTiming {
            wall_ms: best_ms,
            cycles_per_sec: cycles as f64 / secs,
            packets_per_sec: total_delivered as f64 / secs,
        },
        cycles,
        delivered,
        latency_p99,
        metrics_json,
    )
}

/// Runs the whole matrix, calling `progress` after each completed cell
/// (`(done, total, &result)`).
pub fn run_engine_bench(
    matrix: &BenchMatrix,
    repeat: usize,
    mut progress: impl FnMut(usize, usize, &CellResult),
) -> BenchReport {
    let total = matrix.cells.len();
    let mut cells = Vec::with_capacity(total);
    for (i, cell) in matrix.cells.iter().enumerate() {
        // A cell that panics (a bad future matrix entry, a mechanism that
        // rejects the configuration) is dropped rather than killing the
        // run: `summary.completed < summary.cells` then fails the CI gate.
        let outcome = std::panic::catch_unwind(|| {
            let experiment = cell_experiment(cell, matrix.warmup_cycles, matrix.measure_cycles);
            let (active, cycles, delivered, latency_p99, active_json) =
                time_engine(&experiment, cell.load, false, repeat);
            let (full_scan, _, _, _, full_json) = time_engine(&experiment, cell.load, true, repeat);
            CellResult {
                mechanism: cell.mechanism.name().to_string(),
                sides: cell.sides.clone(),
                load: cell.load,
                cycles,
                delivered_packets: delivered,
                latency_p99,
                speedup: active.cycles_per_sec / full_scan.cycles_per_sec.max(1e-9),
                metrics_identical: active_json == full_json,
                active,
                full_scan,
            }
        });
        let Ok(result) = outcome else {
            continue;
        };
        progress(i + 1, total, &result);
        cells.push(result);
    }
    let geomean = |values: &[f64]| -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
    };
    let speedups: Vec<f64> = cells.iter().map(|c| c.speedup).collect();
    let low_load: Vec<f64> = cells
        .iter()
        .filter(|c| c.load <= LOW_LOAD_THRESHOLD)
        .map(|c| c.speedup)
        .collect();
    let summary = BenchSummary {
        cells: total,
        completed: cells.len(),
        geomean_speedup: geomean(&speedups),
        low_load_geomean_speedup: geomean(&low_load),
        min_speedup: speedups.iter().copied().fold(f64::INFINITY, f64::min),
        max_speedup: speedups.iter().copied().fold(0.0, f64::max),
        all_metrics_identical: cells.iter().all(|c| c.metrics_identical),
    };
    BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        mode: matrix.mode.to_string(),
        warmup_cycles: matrix.warmup_cycles,
        measure_cycles: matrix.measure_cycles,
        repeat: repeat.max(1),
        cells,
        summary,
    }
}

/// Renders the report as the aligned table `surepath bench` prints.
pub fn format_bench_report(report: &BenchReport) -> String {
    use surepath_core::{format_table, ReportRow};
    let header = [
        "mechanism",
        "sides",
        "load",
        "active Mcyc/s",
        "full-scan Mcyc/s",
        "speedup",
        "p99 lat",
        "identical",
    ];
    let rows: Vec<ReportRow> = report
        .cells
        .iter()
        .map(|c| ReportRow {
            label: c.mechanism.clone(),
            values: vec![
                c.sides
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join("x"),
                format!("{:.2}", c.load),
                format!("{:.3}", c.active.cycles_per_sec / 1e6),
                format!("{:.3}", c.full_scan.cycles_per_sec / 1e6),
                format!("{:.2}x", c.speedup),
                c.latency_p99
                    .map_or_else(|| "-".to_string(), |v| v.to_string()),
                if c.metrics_identical { "yes" } else { "NO" }.to_string(),
            ],
        })
        .collect();
    let mut out = format_table(&header, &rows);
    out.push_str(&format!(
        "geomean speedup {:.2}x (low-load cells {:.2}x, min {:.2}x, max {:.2}x) over {} cells\n",
        report.summary.geomean_speedup,
        report.summary.low_load_geomean_speedup,
        report.summary.min_speedup,
        report.summary.max_speedup,
        report.summary.completed,
    ));
    if !report.summary.all_metrics_identical {
        out.push_str("WARNING: scheduler metrics diverged — the A/B contract is broken\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_matrix_is_stable_and_covers_both_regimes() {
        let quick = BenchMatrix::pinned(true);
        assert_eq!(quick.mode, "quick");
        assert_eq!(quick.cells.len(), 18, "2 sizes x 3 mechanisms x 3 loads");
        assert!(quick.cells.iter().any(|c| c.load <= LOW_LOAD_THRESHOLD));
        assert!(quick.cells.iter().any(|c| c.load >= 0.7));
        let full = BenchMatrix::pinned(false);
        assert_eq!(full.mode, "full");
        assert!(full.measure_cycles > quick.measure_cycles);
    }

    #[test]
    fn tiny_bench_run_reports_identical_metrics_and_parses_back() {
        // A minimal one-cell matrix: the report must round-trip through its
        // JSON schema and the two schedulers must agree.
        let matrix = BenchMatrix {
            mode: "quick",
            warmup_cycles: 50,
            measure_cycles: 200,
            cells: vec![BenchCell {
                mechanism: MechanismSpec::PolSP,
                sides: vec![4, 4],
                load: 0.1,
            }],
        };
        let mut calls = 0;
        let report = run_engine_bench(&matrix, 1, |done, total, _| {
            calls += 1;
            assert_eq!(total, 1);
            assert_eq!(done, 1);
        });
        assert_eq!(calls, 1);
        assert_eq!(report.schema, BENCH_SCHEMA);
        assert_eq!(report.summary.cells, 1);
        assert_eq!(report.summary.completed, 1);
        assert!(report.summary.all_metrics_identical);
        assert!(report.cells[0].active.cycles_per_sec > 0.0);
        assert!(report.cells[0].full_scan.wall_ms >= 0.0);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let parsed: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.summary.completed, 1);
        let table = format_bench_report(&report);
        assert!(table.contains("PolSP"), "{table}");
        assert!(table.contains("geomean speedup"), "{table}");
    }

    #[test]
    fn a_panicking_cell_is_dropped_and_counted_as_incomplete() {
        // An out-of-range load makes run_rate assert; the run must survive,
        // report the healthy cell and expose the loss via completed < cells.
        let matrix = BenchMatrix {
            mode: "quick",
            warmup_cycles: 50,
            measure_cycles: 100,
            cells: vec![
                BenchCell {
                    mechanism: MechanismSpec::Minimal,
                    sides: vec![4, 4],
                    load: 1.5,
                },
                BenchCell {
                    mechanism: MechanismSpec::Minimal,
                    sides: vec![4, 4],
                    load: 0.1,
                },
            ],
        };
        let report = run_engine_bench(&matrix, 1, |_, _, _| {});
        assert_eq!(report.summary.cells, 2);
        assert_eq!(report.summary.completed, 1);
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].load, 0.1);
    }
}
