//! The engine perf harness behind `surepath bench`.
//!
//! Runs a **pinned micro-campaign matrix** (mechanism × offered load ×
//! topology size) through the cycle-level engine twice per cell — once on
//! the active-set scheduler, once on the frozen pre-refactor full-scan
//! baseline (the `full-scan` feature of `hyperx-sim`) — and reports
//! cycles/sec, packets/sec and the speedup per cell. Because both runs use
//! the same seed, the harness also asserts the two schedulers produced
//! byte-identical metrics, so every bench run doubles as an A/B
//! equivalence check.
//!
//! The report serializes to `BENCH_ENGINE.json` in a stable schema
//! ([`BENCH_SCHEMA`]) so successive PRs accumulate a perf trajectory:
//! wall-clock numbers vary with the host, but the schema, the matrix and
//! the headline ratios are comparable run over run.

use hyperx_routing::MechanismSpec;
use hyperx_sim::{PacketTracer, RngContract};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use surepath_core::{Experiment, FaultScenario, RootPlacement, SimConfig, TrafficSpec};

/// Schema identifier of the JSON report; bump on breaking layout changes.
/// v2 added the per-cell `latency_p99` field (from the engine's log-bucketed
/// latency histogram), so tail latency accumulates a trajectory across PRs
/// alongside throughput. v3 added the `rng_cells` matrix — rate-mode cells
/// comparing RNG contract v1 (per-server Bernoulli scan) against v2 (the
/// counting sampler) — plus the matching `rng_*` summary fields; the main
/// matrix now runs under contract v2 on both engines. v4 added the
/// `obs_cells` matrix — the observability-overhead pair timing the engine
/// with its counters (always on; branch-free `u64` adds) against the same
/// run with the packet tracer attached — plus the `obs_*` summary fields.
pub const BENCH_SCHEMA: &str = "surepath-bench-engine/v4";

/// Loads at or below this value count as "low load" in the summary (the
/// regime active-set scheduling targets: most of the network is idle).
pub const LOW_LOAD_THRESHOLD: f64 = 0.15;

/// One cell of the pinned matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCell {
    /// Routing mechanism under test.
    pub mechanism: MechanismSpec,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Offered load in phits/cycle/server.
    pub load: f64,
}

/// The pinned matrix plus the simulation windows of a bench run.
#[derive(Clone, Debug)]
pub struct BenchMatrix {
    /// Human name of the matrix (`quick` / `full`).
    pub mode: &'static str,
    /// Warmup cycles per run.
    pub warmup_cycles: u64,
    /// Measured cycles per run.
    pub measure_cycles: u64,
    /// The cells, in a fixed order.
    pub cells: Vec<BenchCell>,
    /// The RNG-contract cells: rate-mode points timed under contract v1
    /// (per-server Bernoulli scan) and contract v2 (counting sampler) with
    /// a v2 full-scan cross-check. Pinned like `cells`.
    pub rng_cells: Vec<BenchCell>,
    /// The observability-overhead cells: rate-mode points timed with the
    /// engine's counters (always on) against the same run with the packet
    /// tracer attached. Pinned like `cells`.
    pub obs_cells: Vec<BenchCell>,
}

impl BenchMatrix {
    /// The pinned matrix at the given scale. The cells are deliberately
    /// frozen — comparable across PRs — and span both regimes: low loads
    /// (where the active set is small and the scheduling win dominates)
    /// and saturation (where the win comes from the allocation-free inner
    /// loop and the candidate cache). The RNG-contract cells fix one
    /// mechanism (PolSP, the paper's headline) and sweep size × load, since
    /// the counting sampler's win is a property of generation, not routing.
    pub fn pinned(quick: bool) -> Self {
        let (sizes, loads, warmup, measure): (&[&[usize]], &[f64], u64, u64) = if quick {
            (&[&[4, 4], &[8, 8]], &[0.05, 0.3, 0.7], 200, 1_000)
        } else {
            (&[&[8, 8], &[16, 16]], &[0.05, 0.3, 0.7], 500, 3_000)
        };
        let mechanisms = [
            MechanismSpec::Minimal,
            MechanismSpec::OmniSP,
            MechanismSpec::PolSP,
        ];
        let mut cells = Vec::new();
        let mut rng_cells = Vec::new();
        for &sides in sizes {
            for mechanism in mechanisms {
                for &load in loads {
                    cells.push(BenchCell {
                        mechanism,
                        sides: sides.to_vec(),
                        load,
                    });
                    if mechanism == MechanismSpec::PolSP {
                        rng_cells.push(BenchCell {
                            mechanism,
                            sides: sides.to_vec(),
                            load,
                        });
                    }
                }
            }
        }
        // The observability pair fixes one mechanism (PolSP, the paper's
        // headline — also the mechanism with the most counter traffic) and
        // spans the size x load grid, like the RNG cells.
        let obs_cells = rng_cells.clone();
        BenchMatrix {
            mode: if quick { "quick" } else { "full" },
            warmup_cycles: warmup,
            measure_cycles: measure,
            cells,
            rng_cells,
            obs_cells,
        }
    }

    /// The side lengths of the largest topology in the matrix (by server
    /// count): the cell the RNG-contract acceptance gate keys on.
    pub fn largest_sides(&self) -> Vec<usize> {
        self.cells
            .iter()
            .chain(&self.rng_cells)
            .map(|c| &c.sides)
            .max_by_key(|sides| sides.iter().product::<usize>() * sides[0])
            .cloned()
            .unwrap_or_default()
    }
}

/// Timing of one engine run over a cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineTiming {
    /// Wall-clock milliseconds of the run (best of `repeat`).
    pub wall_ms: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Delivered packets (whole run, matching the timed span) per
    /// wall-clock second.
    pub packets_per_sec: f64,
}

/// One completed cell of the report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Offered load.
    pub load: f64,
    /// Simulated cycles per run (warmup + measurement).
    pub cycles: u64,
    /// Packets delivered in the measurement window.
    pub delivered_packets: u64,
    /// p99 end-to-end latency (cycles) of the measurement window, from the
    /// active-set run's histogram; `None` when nothing was delivered.
    pub latency_p99: Option<u64>,
    /// Active-set engine timing.
    pub active: EngineTiming,
    /// Frozen full-scan baseline timing.
    pub full_scan: EngineTiming,
    /// `active.cycles_per_sec / full_scan.cycles_per_sec`.
    pub speedup: f64,
    /// Whether both schedulers produced byte-identical metrics (they must).
    pub metrics_identical: bool,
}

/// One completed RNG-contract cell: the same rate-mode point timed under
/// contract v1 (per-server Bernoulli full scan — draw order is the
/// contract) and contract v2 (binomial count + without-replacement sample
/// over the active set), plus a v2 full-scan run for the byte-identity
/// cross-check. All three runs share the seed; v1 and v2 are *different
/// RNG streams* by design, so their metrics are compared statistically in
/// the engine's test suite, not byte for byte here.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RngCellResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Offered load.
    pub load: f64,
    /// Simulated cycles per run (warmup + measurement).
    pub cycles: u64,
    /// Contract v1 timing (active-set engine; generation scans by contract).
    pub v1: EngineTiming,
    /// Contract v2 timing (active-set engine, counting sampler).
    pub v2: EngineTiming,
    /// Contract v2 on the frozen full-scan engine (the A/B reference).
    pub v2_full_scan: EngineTiming,
    /// `v2.cycles_per_sec / v1.cycles_per_sec` — the counting sampler's win.
    pub speedup_v2_over_v1: f64,
    /// Whether the v2 active-set and v2 full-scan runs produced
    /// byte-identical metrics (they must: same contract, same draws).
    pub v2_scan_identical: bool,
}

/// One completed observability-overhead cell: the same rate-mode point
/// timed in the engine's production configuration (counter registry on —
/// it always is; the counters are branch-free unconditional `u64` adds, so
/// this leg *is* the pre-observability configuration) and with the packet
/// tracer attached. Both runs share the seed and must produce byte-identical
/// metrics — tracing is an observation, never a perturbation — so every
/// bench run re-proves the zero-perturbation contract under timing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObsCellResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Offered load.
    pub load: f64,
    /// Simulated cycles per run (warmup + measurement).
    pub cycles: u64,
    /// Trace events the tracer captured in the traced run.
    pub trace_events: u64,
    /// Counters on, tracer off (the production default).
    pub plain: EngineTiming,
    /// Counters on, packet tracer attached.
    pub traced: EngineTiming,
    /// `plain.cycles_per_sec` over the matching main-matrix cell's
    /// active-set timing — the tracing-off cost against the pre-observability
    /// baseline (~1.0: the counters are unconditional adds on both sides, so
    /// this is a regression canary, not a measured feature cost). `1.0` when
    /// the main matrix has no matching cell.
    pub plain_vs_baseline: f64,
    /// `traced.cycles_per_sec / plain.cycles_per_sec` — what attaching the
    /// tracer costs.
    pub traced_vs_plain: f64,
    /// Whether the plain and traced runs produced byte-identical metrics
    /// (they must: the tracer never touches RNG or scheduling state).
    pub metrics_identical: bool,
}

/// Aggregates of a bench run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Cells in the matrix.
    pub cells: usize,
    /// Cells that ran to completion (a panicking cell is dropped, so
    /// `completed < cells` marks a broken matrix entry; CI asserts
    /// equality).
    pub completed: usize,
    /// Geometric-mean speedup across all completed cells.
    pub geomean_speedup: f64,
    /// Geometric-mean speedup across the low-load cells
    /// (load ≤ [`LOW_LOAD_THRESHOLD`]).
    pub low_load_geomean_speedup: f64,
    /// Smallest per-cell speedup.
    pub min_speedup: f64,
    /// Largest per-cell speedup.
    pub max_speedup: f64,
    /// Whether every cell's schedulers agreed byte for byte.
    pub all_metrics_identical: bool,
    /// RNG-contract cells in the matrix.
    pub rng_cells: usize,
    /// RNG-contract cells that ran to completion.
    pub rng_completed: usize,
    /// Geometric-mean v2-over-v1 speedup across all RNG-contract cells.
    pub rng_geomean_speedup: f64,
    /// Geometric-mean v2-over-v1 speedup across the low-load RNG-contract
    /// cells on the matrix's **largest** topology — the regime the counting
    /// sampler targets (most servers idle, v1 still scans them all). The
    /// acceptance gate: ≥ 2× here.
    pub rng_low_load_largest_speedup: f64,
    /// Whether every RNG-contract cell's v2 active-set and v2 full-scan
    /// runs agreed byte for byte.
    pub all_rng_scan_identical: bool,
    /// Observability-overhead cells in the matrix.
    pub obs_cells: usize,
    /// Observability-overhead cells that ran to completion.
    pub obs_completed: usize,
    /// Geometric mean of `plain_vs_baseline` — the tracing-off cycles/sec
    /// cost against the main matrix (the acceptance gate: ≥ 0.98, i.e. the
    /// observability layer costs at most 2% with counters on, tracing off).
    pub obs_plain_vs_baseline: f64,
    /// Geometric mean of `traced_vs_plain` — what attaching the tracer
    /// costs.
    pub obs_traced_vs_plain: f64,
    /// Whether every observability cell's plain and traced runs agreed byte
    /// for byte.
    pub all_obs_metrics_identical: bool,
}

/// The full JSON report of a bench run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// [`BENCH_SCHEMA`].
    pub schema: String,
    /// `quick` or `full`.
    pub mode: String,
    /// Warmup cycles per run.
    pub warmup_cycles: u64,
    /// Measured cycles per run.
    pub measure_cycles: u64,
    /// Timed repetitions per engine per cell (best is reported).
    pub repeat: usize,
    /// Per-cell results, matrix order.
    pub cells: Vec<CellResult>,
    /// Per-cell RNG-contract results, matrix order.
    pub rng_cells: Vec<RngCellResult>,
    /// Per-cell observability-overhead results, matrix order.
    pub obs_cells: Vec<ObsCellResult>,
    /// Aggregates.
    pub summary: BenchSummary,
}

/// Builds the experiment of one cell (uniform traffic, healthy network,
/// paper Table 2 parameters, pinned seed) under the given RNG contract.
fn cell_experiment(cell: &BenchCell, warmup: u64, measure: u64, rng: RngContract) -> Experiment {
    let dims = cell.sides.len();
    let concentration = cell.sides[0];
    let num_vcs = cell.mechanism.default_num_vcs(dims);
    let mut sim = SimConfig::paper_defaults(concentration, num_vcs);
    sim.warmup_cycles = warmup;
    sim.measure_cycles = measure;
    sim.seed = 1;
    sim.rng_contract = rng;
    Experiment {
        sides: cell.sides.clone(),
        concentration,
        mechanism: cell.mechanism,
        num_vcs,
        traffic: TrafficSpec::Uniform,
        scenario: FaultScenario::None,
        root: RootPlacement::Suggested,
        sim,
    }
}

/// Runs one engine over one cell `repeat` times, returning the best timing
/// plus the serialized metrics of the first run (for the A/B comparison).
fn time_engine(
    experiment: &Experiment,
    load: f64,
    full_scan: bool,
    repeat: usize,
) -> (EngineTiming, u64, u64, Option<u64>, String) {
    let mut best_ms = f64::INFINITY;
    let mut cycles = 0u64;
    let mut delivered = 0u64;
    let mut total_delivered = 0u64;
    let mut latency_p99 = None;
    let mut metrics_json = String::new();
    for rep in 0..repeat.max(1) {
        let mut sim = experiment.build_simulator();
        sim.set_full_scan(full_scan);
        let started = Instant::now();
        let metrics = sim.run_rate(load);
        let elapsed = started.elapsed().as_secs_f64() * 1_000.0;
        if rep == 0 {
            cycles = sim.cycle();
            delivered = metrics.delivered_packets;
            // The wall clock covers warmup + measurement, so the rates use
            // whole-run counts on both axes (measurement-window deliveries
            // over whole-run time would understate throughput).
            total_delivered = sim.total_delivered();
            latency_p99 = metrics
                .latency_hist
                .as_ref()
                .and_then(|h| h.value_at_quantile(0.99));
            metrics_json = serde_json::to_string(&metrics).expect("metrics serialize");
        }
        best_ms = best_ms.min(elapsed);
    }
    let secs = (best_ms / 1_000.0).max(1e-9);
    (
        EngineTiming {
            wall_ms: best_ms,
            cycles_per_sec: cycles as f64 / secs,
            packets_per_sec: total_delivered as f64 / secs,
        },
        cycles,
        delivered,
        latency_p99,
        metrics_json,
    )
}

/// Runs the active-set engine over one cell `repeat` times, optionally with
/// the packet tracer attached, returning the best timing, the cycle count,
/// the trace-event count (captured + dropped), and the serialized metrics
/// of the first run (for the zero-perturbation A/B comparison).
fn time_engine_obs(
    experiment: &Experiment,
    load: f64,
    traced: bool,
    repeat: usize,
) -> (EngineTiming, u64, u64, String) {
    let mut best_ms = f64::INFINITY;
    let mut cycles = 0u64;
    let mut total_delivered = 0u64;
    let mut events = 0u64;
    let mut metrics_json = String::new();
    for rep in 0..repeat.max(1) {
        let mut sim = experiment.build_simulator();
        if traced {
            sim.set_tracer(Some(PacketTracer::with_capacity(
                PacketTracer::DEFAULT_CAPACITY,
            )));
        }
        let started = Instant::now();
        let metrics = sim.run_rate(load);
        let elapsed = started.elapsed().as_secs_f64() * 1_000.0;
        if rep == 0 {
            cycles = sim.cycle();
            total_delivered = sim.total_delivered();
            events = sim
                .take_tracer()
                .map_or(0, |t| t.events().len() as u64 + t.dropped());
            metrics_json = serde_json::to_string(&metrics).expect("metrics serialize");
        }
        best_ms = best_ms.min(elapsed);
    }
    let secs = (best_ms / 1_000.0).max(1e-9);
    (
        EngineTiming {
            wall_ms: best_ms,
            cycles_per_sec: cycles as f64 / secs,
            packets_per_sec: total_delivered as f64 / secs,
        },
        cycles,
        events,
        metrics_json,
    )
}

/// Runs the whole matrix — the scheduler A/B cells, then the RNG-contract
/// cells — calling `progress` after each completed cell. For RNG-contract
/// cells the `CellResult` handed to `progress` is a synthetic view (v1 as
/// the baseline timing, v2 as the candidate) so one callback covers both.
pub fn run_engine_bench(
    matrix: &BenchMatrix,
    repeat: usize,
    mut progress: impl FnMut(usize, usize, &CellResult),
) -> BenchReport {
    let total = matrix.cells.len() + matrix.rng_cells.len() + matrix.obs_cells.len();
    let mut cells = Vec::with_capacity(matrix.cells.len());
    for (i, cell) in matrix.cells.iter().enumerate() {
        // A cell that panics (a bad future matrix entry, a mechanism that
        // rejects the configuration) is dropped rather than killing the
        // run: `summary.completed < summary.cells` then fails the CI gate.
        let outcome = std::panic::catch_unwind(|| {
            let experiment = cell_experiment(
                cell,
                matrix.warmup_cycles,
                matrix.measure_cycles,
                RngContract::V2Counting,
            );
            let (active, cycles, delivered, latency_p99, active_json) =
                time_engine(&experiment, cell.load, false, repeat);
            let (full_scan, _, _, _, full_json) = time_engine(&experiment, cell.load, true, repeat);
            CellResult {
                mechanism: cell.mechanism.name().to_string(),
                sides: cell.sides.clone(),
                load: cell.load,
                cycles,
                delivered_packets: delivered,
                latency_p99,
                speedup: active.cycles_per_sec / full_scan.cycles_per_sec.max(1e-9),
                metrics_identical: active_json == full_json,
                active,
                full_scan,
            }
        });
        let Ok(result) = outcome else {
            continue;
        };
        progress(i + 1, total, &result);
        cells.push(result);
    }
    let mut rng_cells = Vec::with_capacity(matrix.rng_cells.len());
    for (i, cell) in matrix.rng_cells.iter().enumerate() {
        let outcome = std::panic::catch_unwind(|| {
            let v1_experiment = cell_experiment(
                cell,
                matrix.warmup_cycles,
                matrix.measure_cycles,
                RngContract::V1PerServer,
            );
            let v2_experiment = cell_experiment(
                cell,
                matrix.warmup_cycles,
                matrix.measure_cycles,
                RngContract::V2Counting,
            );
            let (v1, cycles, _, _, _) = time_engine(&v1_experiment, cell.load, false, repeat);
            let (v2, _, _, _, v2_json) = time_engine(&v2_experiment, cell.load, false, repeat);
            let (v2_full_scan, _, _, _, full_json) =
                time_engine(&v2_experiment, cell.load, true, repeat);
            RngCellResult {
                mechanism: cell.mechanism.name().to_string(),
                sides: cell.sides.clone(),
                load: cell.load,
                cycles,
                speedup_v2_over_v1: v2.cycles_per_sec / v1.cycles_per_sec.max(1e-9),
                v2_scan_identical: v2_json == full_json,
                v1,
                v2,
                v2_full_scan,
            }
        });
        let Ok(result) = outcome else {
            continue;
        };
        progress(
            matrix.cells.len() + i + 1,
            total,
            &rng_progress_view(&result),
        );
        rng_cells.push(result);
    }
    let mut obs_cells = Vec::with_capacity(matrix.obs_cells.len());
    for (i, cell) in matrix.obs_cells.iter().enumerate() {
        // The tracing-off leg is judged against the matching main-matrix
        // cell (same mechanism/sides/load, active-set engine) — the closest
        // thing to a pre-observability baseline a single binary offers.
        let baseline_cps = cells
            .iter()
            .find(|c| {
                c.mechanism == cell.mechanism.name() && c.sides == cell.sides && c.load == cell.load
            })
            .map(|c| c.active.cycles_per_sec);
        let outcome = std::panic::catch_unwind(|| {
            let experiment = cell_experiment(
                cell,
                matrix.warmup_cycles,
                matrix.measure_cycles,
                RngContract::V2Counting,
            );
            // Millisecond-scale quick cells are noisy; a best-of-3 floor
            // keeps the overhead ratios meaningful even at --repeat 1.
            let reps = repeat.max(3);
            let (plain, cycles, _, plain_json) =
                time_engine_obs(&experiment, cell.load, false, reps);
            let (traced, _, trace_events, traced_json) =
                time_engine_obs(&experiment, cell.load, true, reps);
            ObsCellResult {
                mechanism: cell.mechanism.name().to_string(),
                sides: cell.sides.clone(),
                load: cell.load,
                cycles,
                trace_events,
                plain_vs_baseline: baseline_cps.map_or(1.0, |b| plain.cycles_per_sec / b.max(1e-9)),
                traced_vs_plain: traced.cycles_per_sec / plain.cycles_per_sec.max(1e-9),
                metrics_identical: plain_json == traced_json,
                plain,
                traced,
            }
        });
        let Ok(result) = outcome else {
            continue;
        };
        progress(
            matrix.cells.len() + matrix.rng_cells.len() + i + 1,
            total,
            &obs_progress_view(&result),
        );
        obs_cells.push(result);
    }
    let geomean = |values: &[f64]| -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
    };
    let speedups: Vec<f64> = cells.iter().map(|c| c.speedup).collect();
    let low_load: Vec<f64> = cells
        .iter()
        .filter(|c| c.load <= LOW_LOAD_THRESHOLD)
        .map(|c| c.speedup)
        .collect();
    let largest = matrix.largest_sides();
    let rng_speedups: Vec<f64> = rng_cells.iter().map(|c| c.speedup_v2_over_v1).collect();
    let rng_low_load_largest: Vec<f64> = rng_cells
        .iter()
        .filter(|c| c.load <= LOW_LOAD_THRESHOLD && c.sides == largest)
        .map(|c| c.speedup_v2_over_v1)
        .collect();
    let summary = BenchSummary {
        cells: matrix.cells.len(),
        completed: cells.len(),
        geomean_speedup: geomean(&speedups),
        low_load_geomean_speedup: geomean(&low_load),
        min_speedup: speedups.iter().copied().fold(f64::INFINITY, f64::min),
        max_speedup: speedups.iter().copied().fold(0.0, f64::max),
        all_metrics_identical: cells.iter().all(|c| c.metrics_identical),
        rng_cells: matrix.rng_cells.len(),
        rng_completed: rng_cells.len(),
        rng_geomean_speedup: geomean(&rng_speedups),
        rng_low_load_largest_speedup: geomean(&rng_low_load_largest),
        all_rng_scan_identical: rng_cells.iter().all(|c| c.v2_scan_identical),
        obs_cells: matrix.obs_cells.len(),
        obs_completed: obs_cells.len(),
        obs_plain_vs_baseline: geomean(
            &obs_cells
                .iter()
                .map(|c| c.plain_vs_baseline)
                .collect::<Vec<_>>(),
        ),
        obs_traced_vs_plain: geomean(
            &obs_cells
                .iter()
                .map(|c| c.traced_vs_plain)
                .collect::<Vec<_>>(),
        ),
        all_obs_metrics_identical: obs_cells.iter().all(|c| c.metrics_identical),
    };
    BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        mode: matrix.mode.to_string(),
        warmup_cycles: matrix.warmup_cycles,
        measure_cycles: matrix.measure_cycles,
        repeat: repeat.max(1),
        cells,
        rng_cells,
        obs_cells,
        summary,
    }
}

/// The synthetic [`CellResult`] view of an RNG-contract cell handed to the
/// progress callback: v1 plays the baseline slot, v2 the candidate, and
/// `speedup` carries the v2-over-v1 ratio.
fn rng_progress_view(cell: &RngCellResult) -> CellResult {
    CellResult {
        mechanism: format!("{} [rng v1→v2]", cell.mechanism),
        sides: cell.sides.clone(),
        load: cell.load,
        cycles: cell.cycles,
        delivered_packets: 0,
        latency_p99: None,
        active: cell.v2.clone(),
        full_scan: cell.v1.clone(),
        speedup: cell.speedup_v2_over_v1,
        metrics_identical: cell.v2_scan_identical,
    }
}

/// The synthetic [`CellResult`] view of an observability cell handed to the
/// progress callback: the plain run plays the baseline slot, the traced run
/// the candidate, and `speedup` carries the traced-over-plain ratio.
fn obs_progress_view(cell: &ObsCellResult) -> CellResult {
    CellResult {
        mechanism: format!("{} [obs trace]", cell.mechanism),
        sides: cell.sides.clone(),
        load: cell.load,
        cycles: cell.cycles,
        delivered_packets: 0,
        latency_p99: None,
        active: cell.traced.clone(),
        full_scan: cell.plain.clone(),
        speedup: cell.traced_vs_plain,
        metrics_identical: cell.metrics_identical,
    }
}

/// Renders the report as the aligned table `surepath bench` prints.
pub fn format_bench_report(report: &BenchReport) -> String {
    use surepath_core::{format_table, ReportRow};
    let header = [
        "mechanism",
        "sides",
        "load",
        "active Mcyc/s",
        "full-scan Mcyc/s",
        "speedup",
        "p99 lat",
        "identical",
    ];
    let rows: Vec<ReportRow> = report
        .cells
        .iter()
        .map(|c| ReportRow {
            label: c.mechanism.clone(),
            values: vec![
                c.sides
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join("x"),
                format!("{:.2}", c.load),
                format!("{:.3}", c.active.cycles_per_sec / 1e6),
                format!("{:.3}", c.full_scan.cycles_per_sec / 1e6),
                format!("{:.2}x", c.speedup),
                c.latency_p99
                    .map_or_else(|| "-".to_string(), |v| v.to_string()),
                if c.metrics_identical { "yes" } else { "NO" }.to_string(),
            ],
        })
        .collect();
    let mut out = format_table(&header, &rows);
    out.push_str(&format!(
        "geomean speedup {:.2}x (low-load cells {:.2}x, min {:.2}x, max {:.2}x) over {} cells\n",
        report.summary.geomean_speedup,
        report.summary.low_load_geomean_speedup,
        report.summary.min_speedup,
        report.summary.max_speedup,
        report.summary.completed,
    ));
    if !report.summary.all_metrics_identical {
        out.push_str("WARNING: scheduler metrics diverged — the A/B contract is broken\n");
    }
    if !report.rng_cells.is_empty() {
        let rng_header = [
            "mechanism",
            "sides",
            "load",
            "v1 Mcyc/s",
            "v2 Mcyc/s",
            "v2/v1",
            "v2 scan identical",
        ];
        let rng_rows: Vec<ReportRow> = report
            .rng_cells
            .iter()
            .map(|c| ReportRow {
                label: c.mechanism.clone(),
                values: vec![
                    c.sides
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join("x"),
                    format!("{:.2}", c.load),
                    format!("{:.3}", c.v1.cycles_per_sec / 1e6),
                    format!("{:.3}", c.v2.cycles_per_sec / 1e6),
                    format!("{:.2}x", c.speedup_v2_over_v1),
                    if c.v2_scan_identical { "yes" } else { "NO" }.to_string(),
                ],
            })
            .collect();
        out.push_str("\nRNG contract cells (v1 per-server scan vs v2 counting sampler):\n");
        out.push_str(&format_table(&rng_header, &rng_rows));
        out.push_str(&format!(
            "rng geomean speedup {:.2}x (low-load largest-topology {:.2}x) over {} cells\n",
            report.summary.rng_geomean_speedup,
            report.summary.rng_low_load_largest_speedup,
            report.summary.rng_completed,
        ));
        if !report.summary.all_rng_scan_identical {
            out.push_str(
                "WARNING: v2 active-set and v2 full-scan metrics diverged — \
                 the RNG contract is broken\n",
            );
        }
    }
    if !report.obs_cells.is_empty() {
        let obs_header = [
            "mechanism",
            "sides",
            "load",
            "plain Mcyc/s",
            "traced Mcyc/s",
            "traced/plain",
            "vs baseline",
            "events",
            "identical",
        ];
        let obs_rows: Vec<ReportRow> = report
            .obs_cells
            .iter()
            .map(|c| ReportRow {
                label: c.mechanism.clone(),
                values: vec![
                    c.sides
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join("x"),
                    format!("{:.2}", c.load),
                    format!("{:.3}", c.plain.cycles_per_sec / 1e6),
                    format!("{:.3}", c.traced.cycles_per_sec / 1e6),
                    format!("{:.2}x", c.traced_vs_plain),
                    format!("{:.2}x", c.plain_vs_baseline),
                    c.trace_events.to_string(),
                    if c.metrics_identical { "yes" } else { "NO" }.to_string(),
                ],
            })
            .collect();
        out.push_str("\nObservability overhead cells (counters on / + packet tracer):\n");
        out.push_str(&format_table(&obs_header, &obs_rows));
        out.push_str(&format!(
            "obs tracing-off vs baseline {:.3}x (geomean; >=0.98 is the <=2% gate), \
             traced vs plain {:.3}x over {} cells\n",
            report.summary.obs_plain_vs_baseline,
            report.summary.obs_traced_vs_plain,
            report.summary.obs_completed,
        ));
        if !report.summary.all_obs_metrics_identical {
            out.push_str(
                "WARNING: plain and traced metrics diverged — \
                 the zero-perturbation contract is broken\n",
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_matrix_is_stable_and_covers_both_regimes() {
        let quick = BenchMatrix::pinned(true);
        assert_eq!(quick.mode, "quick");
        assert_eq!(quick.cells.len(), 18, "2 sizes x 3 mechanisms x 3 loads");
        assert!(quick.cells.iter().any(|c| c.load <= LOW_LOAD_THRESHOLD));
        assert!(quick.cells.iter().any(|c| c.load >= 0.7));
        assert_eq!(quick.rng_cells.len(), 6, "2 sizes x 3 loads, PolSP only");
        assert!(quick
            .rng_cells
            .iter()
            .all(|c| c.mechanism == MechanismSpec::PolSP));
        assert!(quick
            .rng_cells
            .iter()
            .any(|c| c.load <= LOW_LOAD_THRESHOLD && c.sides == quick.largest_sides()));
        assert_eq!(quick.obs_cells.len(), 6, "2 sizes x 3 loads, PolSP only");
        assert!(quick
            .obs_cells
            .iter()
            .all(|c| c.mechanism == MechanismSpec::PolSP));
        assert!(
            quick.obs_cells.iter().all(|obs| quick
                .cells
                .iter()
                .any(|c| c.mechanism == obs.mechanism
                    && c.sides == obs.sides
                    && c.load == obs.load)),
            "every obs cell has a main-matrix baseline cell"
        );
        assert_eq!(quick.largest_sides(), vec![8, 8]);
        let full = BenchMatrix::pinned(false);
        assert_eq!(full.mode, "full");
        assert!(full.measure_cycles > quick.measure_cycles);
        assert_eq!(full.largest_sides(), vec![16, 16]);
    }

    #[test]
    fn tiny_bench_run_reports_identical_metrics_and_parses_back() {
        // A minimal matrix — one scheduler A/B cell, one RNG-contract cell:
        // the report must round-trip through its JSON schema, the two
        // schedulers must agree, and the v2 active/full-scan pair must too.
        let cell = BenchCell {
            mechanism: MechanismSpec::PolSP,
            sides: vec![4, 4],
            load: 0.1,
        };
        let matrix = BenchMatrix {
            mode: "quick",
            warmup_cycles: 50,
            measure_cycles: 200,
            cells: vec![cell.clone()],
            rng_cells: vec![cell.clone()],
            obs_cells: vec![cell],
        };
        let mut calls = 0;
        let report = run_engine_bench(&matrix, 1, |done, total, _| {
            calls += 1;
            assert_eq!(total, 3);
            assert_eq!(done, calls);
        });
        assert_eq!(calls, 3);
        assert_eq!(report.schema, BENCH_SCHEMA);
        assert_eq!(report.summary.cells, 1);
        assert_eq!(report.summary.completed, 1);
        assert!(report.summary.all_metrics_identical);
        assert!(report.cells[0].active.cycles_per_sec > 0.0);
        assert!(report.cells[0].full_scan.wall_ms >= 0.0);
        // The RNG-contract cell: v2 active-set and v2 full-scan byte-agree,
        // and the low-load largest-topology aggregate covers this one cell.
        assert_eq!(report.summary.rng_cells, 1);
        assert_eq!(report.summary.rng_completed, 1);
        assert!(report.summary.all_rng_scan_identical);
        assert!(report.rng_cells[0].v2_scan_identical);
        assert!(report.rng_cells[0].v1.cycles_per_sec > 0.0);
        assert!(report.rng_cells[0].speedup_v2_over_v1 > 0.0);
        assert!(report.summary.rng_low_load_largest_speedup > 0.0);
        // The observability cell: the plain and traced runs byte-agree (the
        // zero-perturbation contract under timing), the tracer actually
        // captured lifecycles, and both overhead ratios are populated.
        assert_eq!(report.summary.obs_cells, 1);
        assert_eq!(report.summary.obs_completed, 1);
        assert!(report.summary.all_obs_metrics_identical);
        assert!(report.obs_cells[0].metrics_identical);
        assert!(report.obs_cells[0].trace_events > 0);
        assert!(report.obs_cells[0].plain.cycles_per_sec > 0.0);
        assert!(report.obs_cells[0].traced_vs_plain > 0.0);
        assert!(report.summary.obs_plain_vs_baseline > 0.0);
        assert!(report.summary.obs_traced_vs_plain > 0.0);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let parsed: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.rng_cells.len(), 1);
        assert_eq!(parsed.obs_cells.len(), 1);
        assert_eq!(parsed.summary.completed, 1);
        let table = format_bench_report(&report);
        assert!(table.contains("PolSP"), "{table}");
        assert!(table.contains("geomean speedup"), "{table}");
        assert!(table.contains("RNG contract cells"), "{table}");
        assert!(table.contains("rng geomean speedup"), "{table}");
        assert!(table.contains("Observability overhead cells"), "{table}");
        assert!(table.contains("traced vs plain"), "{table}");
    }

    #[test]
    fn a_panicking_cell_is_dropped_and_counted_as_incomplete() {
        // An out-of-range load makes run_rate assert; the run must survive,
        // report the healthy cell and expose the loss via completed < cells.
        let matrix = BenchMatrix {
            mode: "quick",
            warmup_cycles: 50,
            measure_cycles: 100,
            cells: vec![
                BenchCell {
                    mechanism: MechanismSpec::Minimal,
                    sides: vec![4, 4],
                    load: 1.5,
                },
                BenchCell {
                    mechanism: MechanismSpec::Minimal,
                    sides: vec![4, 4],
                    load: 0.1,
                },
            ],
            rng_cells: vec![],
            obs_cells: vec![],
        };
        let report = run_engine_bench(&matrix, 1, |_, _, _| {});
        assert_eq!(report.summary.cells, 2);
        assert_eq!(report.summary.completed, 1);
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].load, 0.1);
    }
}
