//! The engine perf harness behind `surepath bench`.
//!
//! Runs a **pinned micro-campaign matrix** (mechanism × offered load ×
//! topology size) through the cycle-level engine twice per cell — once on
//! the struct-of-arrays (SoA) v5 engine, once on the frozen v4
//! pointer-per-switch baseline (the `full-scan` feature of `hyperx-sim`) —
//! and reports cycles/sec, packets/sec and the speedup per cell. Because
//! both runs use the same seed, the harness also asserts the two layouts
//! produced byte-identical metrics, so every bench run doubles as an A/B
//! equivalence check.
//!
//! The report serializes to `BENCH_ENGINE.json` in a stable schema
//! ([`BENCH_SCHEMA`]) so successive PRs accumulate a perf trajectory:
//! wall-clock numbers vary with the host, but the schema, the matrix and
//! the headline ratios are comparable run over run.

use hyperx_routing::MechanismSpec;
use hyperx_sim::{PacketTracer, RngContract, SimulatorV4};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use surepath_core::{Experiment, FaultScenario, RootPlacement, SimConfig, TrafficSpec};

/// Schema identifier of the JSON report; bump on breaking layout changes.
/// v2 added the per-cell `latency_p99` field (from the engine's log-bucketed
/// latency histogram), so tail latency accumulates a trajectory across PRs
/// alongside throughput. v3 added the `rng_cells` matrix — rate-mode cells
/// comparing RNG contract v1 (per-server Bernoulli scan) against v2 (the
/// counting sampler) — plus the matching `rng_*` summary fields; the main
/// matrix now runs under contract v2 on both engines. v4 added the
/// `obs_cells` matrix — the observability-overhead pair timing the engine
/// with its counters (always on; branch-free `u64` adds) against the same
/// run with the packet tracer attached — plus the `obs_*` summary fields.
/// v5 re-bases the A/B: the main matrix now compares the struct-of-arrays
/// engine (`soa`) against the frozen v4 pointer-per-switch layout (`v4`,
/// both on the active-set scheduler), the RNG cross-check runs contract v2
/// on the v4 engine (`v2_v4`), and a new `partition_cells` matrix times the
/// SoA engine at 1/2/4 intra-simulation partitions on the largest pinned
/// topology, byte-comparing every partition count against P=1. The report
/// records `available_parallelism` so scaling numbers are interpretable on
/// single-core runners.
pub const BENCH_SCHEMA: &str = "surepath-bench-engine/v5";

/// Loads at or below this value count as "low load" in the summary (the
/// regime active-set scheduling targets: most of the network is idle).
pub const LOW_LOAD_THRESHOLD: f64 = 0.15;

/// One cell of the pinned matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCell {
    /// Routing mechanism under test.
    pub mechanism: MechanismSpec,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Offered load in phits/cycle/server.
    pub load: f64,
}

/// One cell of the partition-scaling matrix: a [`BenchCell`] pinned to an
/// intra-simulation partition count.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionBenchCell {
    /// The rate-mode point.
    pub cell: BenchCell,
    /// `SimConfig::partitions` of the run.
    pub partitions: usize,
}

/// The pinned matrix plus the simulation windows of a bench run.
#[derive(Clone, Debug)]
pub struct BenchMatrix {
    /// Human name of the matrix (`quick` / `full`).
    pub mode: &'static str,
    /// Warmup cycles per run.
    pub warmup_cycles: u64,
    /// Measured cycles per run.
    pub measure_cycles: u64,
    /// The cells, in a fixed order.
    pub cells: Vec<BenchCell>,
    /// The RNG-contract cells: rate-mode points timed under contract v1
    /// (per-server Bernoulli scan) and contract v2 (counting sampler) with
    /// a v2 run on the frozen v4 engine as cross-check. Pinned like `cells`.
    pub rng_cells: Vec<BenchCell>,
    /// The observability-overhead cells: rate-mode points timed with the
    /// engine's counters (always on) against the same run with the packet
    /// tracer attached. Pinned like `cells`.
    pub obs_cells: Vec<BenchCell>,
    /// The partition-scaling cells: one rate-mode point on the largest
    /// pinned topology, timed at 1, 2 and 4 intra-simulation partitions.
    /// Every partition count must byte-match the P=1 metrics.
    pub partition_cells: Vec<PartitionBenchCell>,
}

impl BenchMatrix {
    /// The pinned matrix at the given scale. The cells are deliberately
    /// frozen — comparable across PRs — and span both regimes: low loads
    /// (where the active set is small and the scheduling win dominates)
    /// and saturation (where the win comes from the allocation-free inner
    /// loop and the candidate cache). The RNG-contract cells fix one
    /// mechanism (PolSP, the paper's headline) and sweep size × load, since
    /// the counting sampler's win is a property of generation, not routing.
    pub fn pinned(quick: bool) -> Self {
        let (sizes, loads, warmup, measure): (&[&[usize]], &[f64], u64, u64) = if quick {
            (&[&[4, 4], &[8, 8]], &[0.05, 0.3, 0.7], 200, 1_000)
        } else {
            (&[&[8, 8], &[16, 16]], &[0.05, 0.3, 0.7], 500, 3_000)
        };
        let mechanisms = [
            MechanismSpec::Minimal,
            MechanismSpec::OmniSP,
            MechanismSpec::PolSP,
        ];
        let mut cells = Vec::new();
        let mut rng_cells = Vec::new();
        for &sides in sizes {
            for mechanism in mechanisms {
                for &load in loads {
                    cells.push(BenchCell {
                        mechanism,
                        sides: sides.to_vec(),
                        load,
                    });
                    if mechanism == MechanismSpec::PolSP {
                        rng_cells.push(BenchCell {
                            mechanism,
                            sides: sides.to_vec(),
                            load,
                        });
                    }
                }
            }
        }
        // The observability pair fixes one mechanism (PolSP, the paper's
        // headline — also the mechanism with the most counter traffic) and
        // spans the size x load grid, like the RNG cells.
        let obs_cells = rng_cells.clone();
        // The partition sweep pins one point — the largest topology at a
        // mid load, so the parallel phases have real work — and exists to
        // track the scaling trajectory and the byte-identity gate, not to
        // re-sweep the grid.
        let largest = sizes
            .iter()
            .max_by_key(|sides| sides.iter().product::<usize>() * sides[0])
            .expect("pinned matrix has sizes");
        let partition_cells = [1usize, 2, 4]
            .iter()
            .map(|&partitions| PartitionBenchCell {
                cell: BenchCell {
                    mechanism: MechanismSpec::PolSP,
                    sides: largest.to_vec(),
                    load: 0.3,
                },
                partitions,
            })
            .collect();
        BenchMatrix {
            mode: if quick { "quick" } else { "full" },
            warmup_cycles: warmup,
            measure_cycles: measure,
            cells,
            rng_cells,
            obs_cells,
            partition_cells,
        }
    }

    /// The side lengths of the largest topology in the matrix (by server
    /// count): the cell the RNG-contract and partition-scaling acceptance
    /// gates key on.
    pub fn largest_sides(&self) -> Vec<usize> {
        self.cells
            .iter()
            .chain(&self.rng_cells)
            .map(|c| &c.sides)
            .max_by_key(|sides| sides.iter().product::<usize>() * sides[0])
            .cloned()
            .unwrap_or_default()
    }
}

/// Timing of one engine run over a cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineTiming {
    /// Wall-clock milliseconds of the run (best of `repeat`).
    pub wall_ms: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Delivered packets (whole run, matching the timed span) per
    /// wall-clock second.
    pub packets_per_sec: f64,
}

/// One completed cell of the report: the same rate-mode point on the
/// struct-of-arrays engine and the frozen v4 pointer-per-switch layout,
/// both on the active-set scheduler and the same seed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Offered load.
    pub load: f64,
    /// Simulated cycles per run (warmup + measurement).
    pub cycles: u64,
    /// Packets delivered in the measurement window.
    pub delivered_packets: u64,
    /// p99 end-to-end latency (cycles) of the measurement window, from the
    /// SoA run's histogram; `None` when nothing was delivered.
    pub latency_p99: Option<u64>,
    /// Struct-of-arrays (v5) engine timing.
    pub soa: EngineTiming,
    /// Frozen v4 pointer-per-switch baseline timing.
    pub v4: EngineTiming,
    /// `soa.cycles_per_sec / v4.cycles_per_sec`.
    pub speedup: f64,
    /// Whether both layouts produced byte-identical metrics (they must).
    pub metrics_identical: bool,
}

/// One completed RNG-contract cell: the same rate-mode point timed under
/// contract v1 (per-server Bernoulli full scan — draw order is the
/// contract) and contract v2 (binomial count + without-replacement sample
/// over the active set), plus a v2 run on the frozen v4 engine for the
/// byte-identity cross-check. All three runs share the seed; v1 and v2 are
/// *different RNG streams* by design, so their metrics are compared
/// statistically in the engine's test suite, not byte for byte here.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RngCellResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Offered load.
    pub load: f64,
    /// Simulated cycles per run (warmup + measurement).
    pub cycles: u64,
    /// Contract v1 timing (SoA engine; generation scans by contract).
    pub v1: EngineTiming,
    /// Contract v2 timing (SoA engine, counting sampler).
    pub v2: EngineTiming,
    /// Contract v2 on the frozen v4 engine (the A/B reference).
    pub v2_v4: EngineTiming,
    /// `v2.cycles_per_sec / v1.cycles_per_sec` — the counting sampler's win.
    pub speedup_v2_over_v1: f64,
    /// Whether the v2 SoA and v2 v4-layout runs produced byte-identical
    /// metrics (they must: same contract, same draws).
    pub v2_v4_identical: bool,
}

/// One completed observability-overhead cell: the same rate-mode point
/// timed in the engine's production configuration (counter registry on —
/// it always is; the counters are branch-free unconditional `u64` adds, so
/// this leg *is* the pre-observability configuration) and with the packet
/// tracer attached. Both runs share the seed and must produce byte-identical
/// metrics — tracing is an observation, never a perturbation — so every
/// bench run re-proves the zero-perturbation contract under timing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObsCellResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Offered load.
    pub load: f64,
    /// Simulated cycles per run (warmup + measurement).
    pub cycles: u64,
    /// Trace events the tracer captured in the traced run.
    pub trace_events: u64,
    /// Counters on, tracer off (the production default).
    pub plain: EngineTiming,
    /// Counters on, packet tracer attached.
    pub traced: EngineTiming,
    /// `plain.cycles_per_sec` over the matching main-matrix cell's SoA
    /// timing — the tracing-off cost against the pre-observability
    /// baseline (~1.0: the counters are unconditional adds on both sides, so
    /// this is a regression canary, not a measured feature cost). `1.0` when
    /// the main matrix has no matching cell.
    pub plain_vs_baseline: f64,
    /// `traced.cycles_per_sec / plain.cycles_per_sec` — what attaching the
    /// tracer costs.
    pub traced_vs_plain: f64,
    /// Whether the plain and traced runs produced byte-identical metrics
    /// (they must: the tracer never touches RNG or scheduling state).
    pub metrics_identical: bool,
}

/// One completed partition-scaling cell: the SoA engine over the same
/// rate-mode point at a fixed partition count. The engine's determinism
/// contract makes the metrics byte-identical for every partition count, so
/// each cell is also a gate: `metrics_identical` compares against the P=1
/// run of the same sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionCellResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Offered load.
    pub load: f64,
    /// Simulated cycles per run (warmup + measurement).
    pub cycles: u64,
    /// Intra-simulation partition count of this run.
    pub partitions: usize,
    /// SoA engine timing at this partition count.
    pub timing: EngineTiming,
    /// `timing.cycles_per_sec` over the P=1 cell's — the scaling win
    /// (1.0 for the P=1 cell itself).
    pub speedup_vs_p1: f64,
    /// Whether this run's metrics byte-match the P=1 run (they must).
    pub metrics_identical: bool,
}

/// Aggregates of a bench run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Cells in the matrix.
    pub cells: usize,
    /// Cells that ran to completion (a panicking cell is dropped, so
    /// `completed < cells` marks a broken matrix entry; CI asserts
    /// equality).
    pub completed: usize,
    /// Geometric-mean SoA-over-v4 speedup across all completed cells (the
    /// layout acceptance gate: ≥ 1.15× single-threaded).
    pub geomean_speedup: f64,
    /// Geometric-mean speedup across the low-load cells
    /// (load ≤ [`LOW_LOAD_THRESHOLD`]).
    pub low_load_geomean_speedup: f64,
    /// Smallest per-cell speedup.
    pub min_speedup: f64,
    /// Largest per-cell speedup.
    pub max_speedup: f64,
    /// Whether every cell's layouts agreed byte for byte.
    pub all_metrics_identical: bool,
    /// RNG-contract cells in the matrix.
    pub rng_cells: usize,
    /// RNG-contract cells that ran to completion.
    pub rng_completed: usize,
    /// Geometric-mean v2-over-v1 speedup across all RNG-contract cells.
    pub rng_geomean_speedup: f64,
    /// Geometric-mean v2-over-v1 speedup across the low-load RNG-contract
    /// cells on the matrix's **largest** topology — the regime the counting
    /// sampler targets (most servers idle, v1 still scans them all). The
    /// acceptance gate: ≥ 2× here.
    pub rng_low_load_largest_speedup: f64,
    /// Whether every RNG-contract cell's v2 SoA and v2 v4-layout runs
    /// agreed byte for byte.
    pub all_rng_v4_identical: bool,
    /// Observability-overhead cells in the matrix.
    pub obs_cells: usize,
    /// Observability-overhead cells that ran to completion.
    pub obs_completed: usize,
    /// Geometric mean of `plain_vs_baseline` — the tracing-off cycles/sec
    /// cost against the main matrix (the acceptance gate: ≥ 0.98, i.e. the
    /// observability layer costs at most 2% with counters on, tracing off).
    pub obs_plain_vs_baseline: f64,
    /// Geometric mean of `traced_vs_plain` — what attaching the tracer
    /// costs.
    pub obs_traced_vs_plain: f64,
    /// Whether every observability cell's plain and traced runs agreed byte
    /// for byte.
    pub all_obs_metrics_identical: bool,
    /// Partition-scaling cells in the matrix.
    pub partition_cells: usize,
    /// Partition-scaling cells that ran to completion.
    pub partition_completed: usize,
    /// `speedup_vs_p1` of the P=4 cell (0.0 when it did not run). The
    /// scaling acceptance gate — ≥ 2× — applies only when
    /// `available_parallelism` ≥ 4; on smaller hosts the number documents
    /// the (expected ~1×) single-core behaviour.
    pub partition_speedup_p4: f64,
    /// Whether every partition count's metrics byte-matched the P=1 run.
    pub all_partition_metrics_identical: bool,
}

/// The full JSON report of a bench run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// [`BENCH_SCHEMA`].
    pub schema: String,
    /// `quick` or `full`.
    pub mode: String,
    /// Warmup cycles per run.
    pub warmup_cycles: u64,
    /// Measured cycles per run.
    pub measure_cycles: u64,
    /// Timed repetitions per engine per cell (best is reported).
    pub repeat: usize,
    /// `std::thread::available_parallelism()` of the host — the context the
    /// partition-scaling numbers (and their gate) must be read in.
    pub available_parallelism: usize,
    /// Per-cell results, matrix order.
    pub cells: Vec<CellResult>,
    /// Per-cell RNG-contract results, matrix order.
    pub rng_cells: Vec<RngCellResult>,
    /// Per-cell observability-overhead results, matrix order.
    pub obs_cells: Vec<ObsCellResult>,
    /// Per-cell partition-scaling results, matrix order.
    pub partition_cells: Vec<PartitionCellResult>,
    /// Aggregates.
    pub summary: BenchSummary,
}

/// Builds the experiment of one cell (uniform traffic, healthy network,
/// paper Table 2 parameters, pinned seed) under the given RNG contract.
fn cell_experiment(cell: &BenchCell, warmup: u64, measure: u64, rng: RngContract) -> Experiment {
    let dims = cell.sides.len();
    let concentration = cell.sides[0];
    let num_vcs = cell.mechanism.default_num_vcs(dims);
    let mut sim = SimConfig::paper_defaults(concentration, num_vcs);
    sim.warmup_cycles = warmup;
    sim.measure_cycles = measure;
    sim.seed = 1;
    sim.rng_contract = rng;
    Experiment {
        sides: cell.sides.clone(),
        concentration,
        mechanism: cell.mechanism,
        num_vcs,
        traffic: TrafficSpec::Uniform,
        scenario: FaultScenario::None,
        root: RootPlacement::Suggested,
        sim,
    }
}

/// Runs the SoA engine over one cell `repeat` times at the given partition
/// count, returning the best timing plus the serialized metrics of the
/// first run (for the A/B comparisons).
fn time_soa(
    experiment: &Experiment,
    load: f64,
    partitions: usize,
    repeat: usize,
) -> (EngineTiming, u64, u64, Option<u64>, String) {
    let mut experiment = experiment.clone();
    experiment.sim.partitions = partitions;
    let mut best_ms = f64::INFINITY;
    let mut cycles = 0u64;
    let mut delivered = 0u64;
    let mut total_delivered = 0u64;
    let mut latency_p99 = None;
    let mut metrics_json = String::new();
    for rep in 0..repeat.max(1) {
        let mut sim = experiment.build_simulator();
        let started = Instant::now();
        let metrics = sim.run_rate(load);
        let elapsed = started.elapsed().as_secs_f64() * 1_000.0;
        if rep == 0 {
            cycles = sim.cycle();
            delivered = metrics.delivered_packets;
            // The wall clock covers warmup + measurement, so the rates use
            // whole-run counts on both axes (measurement-window deliveries
            // over whole-run time would understate throughput).
            total_delivered = sim.total_delivered();
            latency_p99 = metrics
                .latency_hist
                .as_ref()
                .and_then(|h| h.value_at_quantile(0.99));
            metrics_json = serde_json::to_string(&metrics).expect("metrics serialize");
        }
        best_ms = best_ms.min(elapsed);
    }
    let secs = (best_ms / 1_000.0).max(1e-9);
    (
        EngineTiming {
            wall_ms: best_ms,
            cycles_per_sec: cycles as f64 / secs,
            packets_per_sec: total_delivered as f64 / secs,
        },
        cycles,
        delivered,
        latency_p99,
        metrics_json,
    )
}

/// Runs the frozen v4-layout engine over one cell `repeat` times (same
/// seed, same mechanism/traffic/config inputs as the SoA runs), returning
/// the best timing and the serialized metrics of the first run.
fn time_v4(experiment: &Experiment, load: f64, repeat: usize) -> (EngineTiming, u64, String) {
    let mut best_ms = f64::INFINITY;
    let mut cycles = 0u64;
    let mut total_delivered = 0u64;
    let mut metrics_json = String::new();
    for rep in 0..repeat.max(1) {
        let view = experiment.build_view();
        let (mechanism, pattern, cfg) = experiment.simulator_parts(&view);
        let mut sim = SimulatorV4::new(view, mechanism, pattern, cfg);
        let started = Instant::now();
        let metrics = sim.run_rate(load);
        let elapsed = started.elapsed().as_secs_f64() * 1_000.0;
        if rep == 0 {
            cycles = sim.cycle();
            total_delivered = sim.total_delivered();
            metrics_json = serde_json::to_string(&metrics).expect("metrics serialize");
        }
        best_ms = best_ms.min(elapsed);
    }
    let secs = (best_ms / 1_000.0).max(1e-9);
    (
        EngineTiming {
            wall_ms: best_ms,
            cycles_per_sec: cycles as f64 / secs,
            packets_per_sec: total_delivered as f64 / secs,
        },
        cycles,
        metrics_json,
    )
}

/// Runs the SoA engine over one cell `repeat` times, optionally with
/// the packet tracer attached, returning the best timing, the cycle count,
/// the trace-event count (captured + dropped), and the serialized metrics
/// of the first run (for the zero-perturbation A/B comparison).
fn time_engine_obs(
    experiment: &Experiment,
    load: f64,
    traced: bool,
    repeat: usize,
) -> (EngineTiming, u64, u64, String) {
    let mut best_ms = f64::INFINITY;
    let mut cycles = 0u64;
    let mut total_delivered = 0u64;
    let mut events = 0u64;
    let mut metrics_json = String::new();
    for rep in 0..repeat.max(1) {
        let mut sim = experiment.build_simulator();
        if traced {
            sim.set_tracer(Some(PacketTracer::with_capacity(
                PacketTracer::DEFAULT_CAPACITY,
            )));
        }
        let started = Instant::now();
        let metrics = sim.run_rate(load);
        let elapsed = started.elapsed().as_secs_f64() * 1_000.0;
        if rep == 0 {
            cycles = sim.cycle();
            total_delivered = sim.total_delivered();
            events = sim
                .take_tracer()
                .map_or(0, |t| t.events().len() as u64 + t.dropped());
            metrics_json = serde_json::to_string(&metrics).expect("metrics serialize");
        }
        best_ms = best_ms.min(elapsed);
    }
    let secs = (best_ms / 1_000.0).max(1e-9);
    (
        EngineTiming {
            wall_ms: best_ms,
            cycles_per_sec: cycles as f64 / secs,
            packets_per_sec: total_delivered as f64 / secs,
        },
        cycles,
        events,
        metrics_json,
    )
}

/// Runs the whole matrix — the layout A/B cells, the RNG-contract cells,
/// the observability pairs, then the partition-scaling sweep — calling
/// `progress` after each completed cell. For non-main cells the
/// `CellResult` handed to `progress` is a synthetic view (baseline timing
/// in the `v4` slot, candidate in `soa`) so one callback covers all four
/// matrices.
pub fn run_engine_bench(
    matrix: &BenchMatrix,
    repeat: usize,
    mut progress: impl FnMut(usize, usize, &CellResult),
) -> BenchReport {
    let total = matrix.cells.len()
        + matrix.rng_cells.len()
        + matrix.obs_cells.len()
        + matrix.partition_cells.len();
    let mut cells = Vec::with_capacity(matrix.cells.len());
    for (i, cell) in matrix.cells.iter().enumerate() {
        // A cell that panics (a bad future matrix entry, a mechanism that
        // rejects the configuration) is dropped rather than killing the
        // run: `summary.completed < summary.cells` then fails the CI gate.
        let outcome = std::panic::catch_unwind(|| {
            let experiment = cell_experiment(
                cell,
                matrix.warmup_cycles,
                matrix.measure_cycles,
                RngContract::V2Counting,
            );
            let (soa, cycles, delivered, latency_p99, soa_json) =
                time_soa(&experiment, cell.load, 1, repeat);
            let (v4, _, v4_json) = time_v4(&experiment, cell.load, repeat);
            CellResult {
                mechanism: cell.mechanism.name().to_string(),
                sides: cell.sides.clone(),
                load: cell.load,
                cycles,
                delivered_packets: delivered,
                latency_p99,
                speedup: soa.cycles_per_sec / v4.cycles_per_sec.max(1e-9),
                metrics_identical: soa_json == v4_json,
                soa,
                v4,
            }
        });
        let Ok(result) = outcome else {
            continue;
        };
        progress(i + 1, total, &result);
        cells.push(result);
    }
    let mut rng_cells = Vec::with_capacity(matrix.rng_cells.len());
    for (i, cell) in matrix.rng_cells.iter().enumerate() {
        let outcome = std::panic::catch_unwind(|| {
            let v1_experiment = cell_experiment(
                cell,
                matrix.warmup_cycles,
                matrix.measure_cycles,
                RngContract::V1PerServer,
            );
            let v2_experiment = cell_experiment(
                cell,
                matrix.warmup_cycles,
                matrix.measure_cycles,
                RngContract::V2Counting,
            );
            let (v1, cycles, _, _, _) = time_soa(&v1_experiment, cell.load, 1, repeat);
            let (v2, _, _, _, v2_json) = time_soa(&v2_experiment, cell.load, 1, repeat);
            let (v2_v4, _, v4_json) = time_v4(&v2_experiment, cell.load, repeat);
            RngCellResult {
                mechanism: cell.mechanism.name().to_string(),
                sides: cell.sides.clone(),
                load: cell.load,
                cycles,
                speedup_v2_over_v1: v2.cycles_per_sec / v1.cycles_per_sec.max(1e-9),
                v2_v4_identical: v2_json == v4_json,
                v1,
                v2,
                v2_v4,
            }
        });
        let Ok(result) = outcome else {
            continue;
        };
        progress(
            matrix.cells.len() + i + 1,
            total,
            &rng_progress_view(&result),
        );
        rng_cells.push(result);
    }
    let mut obs_cells = Vec::with_capacity(matrix.obs_cells.len());
    for (i, cell) in matrix.obs_cells.iter().enumerate() {
        // The tracing-off leg is judged against the matching main-matrix
        // cell (same mechanism/sides/load, SoA engine) — the closest
        // thing to a pre-observability baseline a single binary offers.
        let baseline_cps = cells
            .iter()
            .find(|c| {
                c.mechanism == cell.mechanism.name() && c.sides == cell.sides && c.load == cell.load
            })
            .map(|c| c.soa.cycles_per_sec);
        let outcome = std::panic::catch_unwind(|| {
            let experiment = cell_experiment(
                cell,
                matrix.warmup_cycles,
                matrix.measure_cycles,
                RngContract::V2Counting,
            );
            // Millisecond-scale quick cells are noisy; a best-of-3 floor
            // keeps the overhead ratios meaningful even at --repeat 1.
            let reps = repeat.max(3);
            let (plain, cycles, _, plain_json) =
                time_engine_obs(&experiment, cell.load, false, reps);
            let (traced, _, trace_events, traced_json) =
                time_engine_obs(&experiment, cell.load, true, reps);
            ObsCellResult {
                mechanism: cell.mechanism.name().to_string(),
                sides: cell.sides.clone(),
                load: cell.load,
                cycles,
                trace_events,
                plain_vs_baseline: baseline_cps.map_or(1.0, |b| plain.cycles_per_sec / b.max(1e-9)),
                traced_vs_plain: traced.cycles_per_sec / plain.cycles_per_sec.max(1e-9),
                metrics_identical: plain_json == traced_json,
                plain,
                traced,
            }
        });
        let Ok(result) = outcome else {
            continue;
        };
        progress(
            matrix.cells.len() + matrix.rng_cells.len() + i + 1,
            total,
            &obs_progress_view(&result),
        );
        obs_cells.push(result);
    }
    let mut partition_cells = Vec::with_capacity(matrix.partition_cells.len());
    // The P=1 run anchors both comparisons: every other partition count's
    // speedup and byte-identity are judged against it.
    let mut p1: Option<(EngineTiming, String)> = None;
    for (i, pcell) in matrix.partition_cells.iter().enumerate() {
        let baseline = p1.clone();
        let outcome = std::panic::catch_unwind(|| {
            let experiment = cell_experiment(
                &pcell.cell,
                matrix.warmup_cycles,
                matrix.measure_cycles,
                RngContract::V2Counting,
            );
            // Partition dispatch overhead is per cycle; a best-of-3 floor
            // keeps the quick-mode scaling ratios meaningful.
            let reps = repeat.max(3);
            let (timing, cycles, _, _, json) =
                time_soa(&experiment, pcell.cell.load, pcell.partitions, reps);
            let (speedup_vs_p1, metrics_identical) = match &baseline {
                Some((p1_timing, p1_json)) => (
                    timing.cycles_per_sec / p1_timing.cycles_per_sec.max(1e-9),
                    json == *p1_json,
                ),
                // The first (P=1) cell is its own reference.
                None => (1.0, true),
            };
            (
                PartitionCellResult {
                    mechanism: pcell.cell.mechanism.name().to_string(),
                    sides: pcell.cell.sides.clone(),
                    load: pcell.cell.load,
                    cycles,
                    partitions: pcell.partitions,
                    timing,
                    speedup_vs_p1,
                    metrics_identical,
                },
                json,
            )
        });
        let Ok((result, json)) = outcome else {
            continue;
        };
        if p1.is_none() {
            p1 = Some((result.timing.clone(), json));
        }
        progress(
            matrix.cells.len() + matrix.rng_cells.len() + matrix.obs_cells.len() + i + 1,
            total,
            &partition_progress_view(&result),
        );
        partition_cells.push(result);
    }
    let geomean = |values: &[f64]| -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
    };
    let speedups: Vec<f64> = cells.iter().map(|c| c.speedup).collect();
    let low_load: Vec<f64> = cells
        .iter()
        .filter(|c| c.load <= LOW_LOAD_THRESHOLD)
        .map(|c| c.speedup)
        .collect();
    let largest = matrix.largest_sides();
    let rng_speedups: Vec<f64> = rng_cells.iter().map(|c| c.speedup_v2_over_v1).collect();
    let rng_low_load_largest: Vec<f64> = rng_cells
        .iter()
        .filter(|c| c.load <= LOW_LOAD_THRESHOLD && c.sides == largest)
        .map(|c| c.speedup_v2_over_v1)
        .collect();
    let summary = BenchSummary {
        cells: matrix.cells.len(),
        completed: cells.len(),
        geomean_speedup: geomean(&speedups),
        low_load_geomean_speedup: geomean(&low_load),
        min_speedup: speedups.iter().copied().fold(f64::INFINITY, f64::min),
        max_speedup: speedups.iter().copied().fold(0.0, f64::max),
        all_metrics_identical: cells.iter().all(|c| c.metrics_identical),
        rng_cells: matrix.rng_cells.len(),
        rng_completed: rng_cells.len(),
        rng_geomean_speedup: geomean(&rng_speedups),
        rng_low_load_largest_speedup: geomean(&rng_low_load_largest),
        all_rng_v4_identical: rng_cells.iter().all(|c| c.v2_v4_identical),
        obs_cells: matrix.obs_cells.len(),
        obs_completed: obs_cells.len(),
        obs_plain_vs_baseline: geomean(
            &obs_cells
                .iter()
                .map(|c| c.plain_vs_baseline)
                .collect::<Vec<_>>(),
        ),
        obs_traced_vs_plain: geomean(
            &obs_cells
                .iter()
                .map(|c| c.traced_vs_plain)
                .collect::<Vec<_>>(),
        ),
        all_obs_metrics_identical: obs_cells.iter().all(|c| c.metrics_identical),
        partition_cells: matrix.partition_cells.len(),
        partition_completed: partition_cells.len(),
        partition_speedup_p4: partition_cells
            .iter()
            .find(|c| c.partitions == 4)
            .map_or(0.0, |c| c.speedup_vs_p1),
        all_partition_metrics_identical: partition_cells.iter().all(|c| c.metrics_identical),
    };
    BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        mode: matrix.mode.to_string(),
        warmup_cycles: matrix.warmup_cycles,
        measure_cycles: matrix.measure_cycles,
        repeat: repeat.max(1),
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cells,
        rng_cells,
        obs_cells,
        partition_cells,
        summary,
    }
}

/// The synthetic [`CellResult`] view of an RNG-contract cell handed to the
/// progress callback: v1 plays the baseline slot, v2 the candidate, and
/// `speedup` carries the v2-over-v1 ratio.
fn rng_progress_view(cell: &RngCellResult) -> CellResult {
    CellResult {
        mechanism: format!("{} [rng v1→v2]", cell.mechanism),
        sides: cell.sides.clone(),
        load: cell.load,
        cycles: cell.cycles,
        delivered_packets: 0,
        latency_p99: None,
        soa: cell.v2.clone(),
        v4: cell.v1.clone(),
        speedup: cell.speedup_v2_over_v1,
        metrics_identical: cell.v2_v4_identical,
    }
}

/// The synthetic [`CellResult`] view of an observability cell handed to the
/// progress callback: the plain run plays the baseline slot, the traced run
/// the candidate, and `speedup` carries the traced-over-plain ratio.
fn obs_progress_view(cell: &ObsCellResult) -> CellResult {
    CellResult {
        mechanism: format!("{} [obs trace]", cell.mechanism),
        sides: cell.sides.clone(),
        load: cell.load,
        cycles: cell.cycles,
        delivered_packets: 0,
        latency_p99: None,
        soa: cell.traced.clone(),
        v4: cell.plain.clone(),
        speedup: cell.traced_vs_plain,
        metrics_identical: cell.metrics_identical,
    }
}

/// The synthetic [`CellResult`] view of a partition-scaling cell handed to
/// the progress callback: the candidate slot carries this partition count's
/// timing, `speedup` the vs-P=1 ratio.
fn partition_progress_view(cell: &PartitionCellResult) -> CellResult {
    CellResult {
        mechanism: format!("{} [P={}]", cell.mechanism, cell.partitions),
        sides: cell.sides.clone(),
        load: cell.load,
        cycles: cell.cycles,
        delivered_packets: 0,
        latency_p99: None,
        soa: cell.timing.clone(),
        v4: cell.timing.clone(),
        speedup: cell.speedup_vs_p1,
        metrics_identical: cell.metrics_identical,
    }
}

/// Renders the report as the aligned table `surepath bench` prints.
pub fn format_bench_report(report: &BenchReport) -> String {
    use surepath_core::{format_table, ReportRow};
    let header = [
        "mechanism",
        "sides",
        "load",
        "soa Mcyc/s",
        "v4 Mcyc/s",
        "speedup",
        "p99 lat",
        "identical",
    ];
    let rows: Vec<ReportRow> = report
        .cells
        .iter()
        .map(|c| ReportRow {
            label: c.mechanism.clone(),
            values: vec![
                c.sides
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join("x"),
                format!("{:.2}", c.load),
                format!("{:.3}", c.soa.cycles_per_sec / 1e6),
                format!("{:.3}", c.v4.cycles_per_sec / 1e6),
                format!("{:.2}x", c.speedup),
                c.latency_p99
                    .map_or_else(|| "-".to_string(), |v| v.to_string()),
                if c.metrics_identical { "yes" } else { "NO" }.to_string(),
            ],
        })
        .collect();
    let mut out = format_table(&header, &rows);
    out.push_str(&format!(
        "geomean speedup {:.2}x (low-load cells {:.2}x, min {:.2}x, max {:.2}x) over {} cells\n",
        report.summary.geomean_speedup,
        report.summary.low_load_geomean_speedup,
        report.summary.min_speedup,
        report.summary.max_speedup,
        report.summary.completed,
    ));
    if !report.summary.all_metrics_identical {
        out.push_str("WARNING: layout metrics diverged — the SoA A/B contract is broken\n");
    }
    if !report.rng_cells.is_empty() {
        let rng_header = [
            "mechanism",
            "sides",
            "load",
            "v1 Mcyc/s",
            "v2 Mcyc/s",
            "v2/v1",
            "v2 v4 identical",
        ];
        let rng_rows: Vec<ReportRow> = report
            .rng_cells
            .iter()
            .map(|c| ReportRow {
                label: c.mechanism.clone(),
                values: vec![
                    c.sides
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join("x"),
                    format!("{:.2}", c.load),
                    format!("{:.3}", c.v1.cycles_per_sec / 1e6),
                    format!("{:.3}", c.v2.cycles_per_sec / 1e6),
                    format!("{:.2}x", c.speedup_v2_over_v1),
                    if c.v2_v4_identical { "yes" } else { "NO" }.to_string(),
                ],
            })
            .collect();
        out.push_str("\nRNG contract cells (v1 per-server scan vs v2 counting sampler):\n");
        out.push_str(&format_table(&rng_header, &rng_rows));
        out.push_str(&format!(
            "rng geomean speedup {:.2}x (low-load largest-topology {:.2}x) over {} cells\n",
            report.summary.rng_geomean_speedup,
            report.summary.rng_low_load_largest_speedup,
            report.summary.rng_completed,
        ));
        if !report.summary.all_rng_v4_identical {
            out.push_str(
                "WARNING: v2 SoA and v2 v4-layout metrics diverged — \
                 the RNG contract is broken\n",
            );
        }
    }
    if !report.obs_cells.is_empty() {
        let obs_header = [
            "mechanism",
            "sides",
            "load",
            "plain Mcyc/s",
            "traced Mcyc/s",
            "traced/plain",
            "vs baseline",
            "events",
            "identical",
        ];
        let obs_rows: Vec<ReportRow> = report
            .obs_cells
            .iter()
            .map(|c| ReportRow {
                label: c.mechanism.clone(),
                values: vec![
                    c.sides
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join("x"),
                    format!("{:.2}", c.load),
                    format!("{:.3}", c.plain.cycles_per_sec / 1e6),
                    format!("{:.3}", c.traced.cycles_per_sec / 1e6),
                    format!("{:.2}x", c.traced_vs_plain),
                    format!("{:.2}x", c.plain_vs_baseline),
                    c.trace_events.to_string(),
                    if c.metrics_identical { "yes" } else { "NO" }.to_string(),
                ],
            })
            .collect();
        out.push_str("\nObservability overhead cells (counters on / + packet tracer):\n");
        out.push_str(&format_table(&obs_header, &obs_rows));
        out.push_str(&format!(
            "obs tracing-off vs baseline {:.3}x (geomean; >=0.98 is the <=2% gate), \
             traced vs plain {:.3}x over {} cells\n",
            report.summary.obs_plain_vs_baseline,
            report.summary.obs_traced_vs_plain,
            report.summary.obs_completed,
        ));
        if !report.summary.all_obs_metrics_identical {
            out.push_str(
                "WARNING: plain and traced metrics diverged — \
                 the zero-perturbation contract is broken\n",
            );
        }
    }
    if !report.partition_cells.is_empty() {
        let part_header = [
            "mechanism",
            "sides",
            "load",
            "P",
            "Mcyc/s",
            "vs P=1",
            "identical",
        ];
        let part_rows: Vec<ReportRow> = report
            .partition_cells
            .iter()
            .map(|c| ReportRow {
                label: c.mechanism.clone(),
                values: vec![
                    c.sides
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join("x"),
                    format!("{:.2}", c.load),
                    c.partitions.to_string(),
                    format!("{:.3}", c.timing.cycles_per_sec / 1e6),
                    format!("{:.2}x", c.speedup_vs_p1),
                    if c.metrics_identical { "yes" } else { "NO" }.to_string(),
                ],
            })
            .collect();
        out.push_str("\nPartition scaling cells (SoA engine, largest pinned topology):\n");
        out.push_str(&format_table(&part_header, &part_rows));
        out.push_str(&format!(
            "partition P=4 speedup {:.2}x over {} cells ({} hardware threads; \
             the >=2x gate applies at >=4)\n",
            report.summary.partition_speedup_p4,
            report.summary.partition_completed,
            report.available_parallelism,
        ));
        if !report.summary.all_partition_metrics_identical {
            out.push_str(
                "WARNING: partitioned metrics diverged from P=1 — \
                 the partition-invariance contract is broken\n",
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_matrix_is_stable_and_covers_both_regimes() {
        let quick = BenchMatrix::pinned(true);
        assert_eq!(quick.mode, "quick");
        assert_eq!(quick.cells.len(), 18, "2 sizes x 3 mechanisms x 3 loads");
        assert!(quick.cells.iter().any(|c| c.load <= LOW_LOAD_THRESHOLD));
        assert!(quick.cells.iter().any(|c| c.load >= 0.7));
        assert_eq!(quick.rng_cells.len(), 6, "2 sizes x 3 loads, PolSP only");
        assert!(quick
            .rng_cells
            .iter()
            .all(|c| c.mechanism == MechanismSpec::PolSP));
        assert!(quick
            .rng_cells
            .iter()
            .any(|c| c.load <= LOW_LOAD_THRESHOLD && c.sides == quick.largest_sides()));
        assert_eq!(quick.obs_cells.len(), 6, "2 sizes x 3 loads, PolSP only");
        assert!(quick
            .obs_cells
            .iter()
            .all(|c| c.mechanism == MechanismSpec::PolSP));
        assert!(
            quick.obs_cells.iter().all(|obs| quick
                .cells
                .iter()
                .any(|c| c.mechanism == obs.mechanism
                    && c.sides == obs.sides
                    && c.load == obs.load)),
            "every obs cell has a main-matrix baseline cell"
        );
        assert_eq!(quick.largest_sides(), vec![8, 8]);
        // The partition sweep pins P = 1, 2, 4 on the largest topology.
        assert_eq!(
            quick
                .partition_cells
                .iter()
                .map(|c| c.partitions)
                .collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert!(quick
            .partition_cells
            .iter()
            .all(|c| c.cell.sides == quick.largest_sides()));
        let full = BenchMatrix::pinned(false);
        assert_eq!(full.mode, "full");
        assert!(full.measure_cycles > quick.measure_cycles);
        assert_eq!(full.largest_sides(), vec![16, 16]);
        assert!(full
            .partition_cells
            .iter()
            .all(|c| c.cell.sides == vec![16, 16]));
    }

    #[test]
    fn tiny_bench_run_reports_identical_metrics_and_parses_back() {
        // A minimal matrix — one cell per sub-matrix (two for partitions):
        // the report must round-trip through its JSON schema, the two
        // layouts must agree byte for byte, the v2 SoA/v4 pair must too,
        // and every partition count must byte-match P=1.
        let cell = BenchCell {
            mechanism: MechanismSpec::PolSP,
            sides: vec![4, 4],
            load: 0.1,
        };
        let matrix = BenchMatrix {
            mode: "quick",
            warmup_cycles: 50,
            measure_cycles: 200,
            cells: vec![cell.clone()],
            rng_cells: vec![cell.clone()],
            obs_cells: vec![cell.clone()],
            partition_cells: vec![
                PartitionBenchCell {
                    cell: cell.clone(),
                    partitions: 1,
                },
                PartitionBenchCell {
                    cell,
                    partitions: 2,
                },
            ],
        };
        let mut calls = 0;
        let report = run_engine_bench(&matrix, 1, |done, total, _| {
            calls += 1;
            assert_eq!(total, 5);
            assert_eq!(done, calls);
        });
        assert_eq!(calls, 5);
        assert_eq!(report.schema, BENCH_SCHEMA);
        assert!(report.available_parallelism >= 1);
        assert_eq!(report.summary.cells, 1);
        assert_eq!(report.summary.completed, 1);
        assert!(report.summary.all_metrics_identical);
        assert!(report.cells[0].soa.cycles_per_sec > 0.0);
        assert!(report.cells[0].v4.wall_ms >= 0.0);
        // The RNG-contract cell: v2 on the SoA and v4 engines byte-agree,
        // and the low-load largest-topology aggregate covers this one cell.
        assert_eq!(report.summary.rng_cells, 1);
        assert_eq!(report.summary.rng_completed, 1);
        assert!(report.summary.all_rng_v4_identical);
        assert!(report.rng_cells[0].v2_v4_identical);
        assert!(report.rng_cells[0].v1.cycles_per_sec > 0.0);
        assert!(report.rng_cells[0].speedup_v2_over_v1 > 0.0);
        assert!(report.summary.rng_low_load_largest_speedup > 0.0);
        // The observability cell: the plain and traced runs byte-agree (the
        // zero-perturbation contract under timing), the tracer actually
        // captured lifecycles, and both overhead ratios are populated.
        assert_eq!(report.summary.obs_cells, 1);
        assert_eq!(report.summary.obs_completed, 1);
        assert!(report.summary.all_obs_metrics_identical);
        assert!(report.obs_cells[0].metrics_identical);
        assert!(report.obs_cells[0].trace_events > 0);
        assert!(report.obs_cells[0].plain.cycles_per_sec > 0.0);
        assert!(report.obs_cells[0].traced_vs_plain > 0.0);
        assert!(report.summary.obs_plain_vs_baseline > 0.0);
        assert!(report.summary.obs_traced_vs_plain > 0.0);
        // The partition sweep: P=2 byte-matches P=1 (the invariance gate),
        // and the P=4 summary slot reports 0 because P=4 did not run here.
        assert_eq!(report.summary.partition_cells, 2);
        assert_eq!(report.summary.partition_completed, 2);
        assert!(report.summary.all_partition_metrics_identical);
        assert!(report
            .partition_cells
            .iter()
            .all(|c| c.metrics_identical && c.timing.cycles_per_sec > 0.0));
        assert_eq!(report.summary.partition_speedup_p4, 0.0);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let parsed: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.cells.len(), 1);
        assert_eq!(parsed.rng_cells.len(), 1);
        assert_eq!(parsed.obs_cells.len(), 1);
        assert_eq!(parsed.partition_cells.len(), 2);
        assert_eq!(parsed.summary.completed, 1);
        let table = format_bench_report(&report);
        assert!(table.contains("PolSP"), "{table}");
        assert!(table.contains("geomean speedup"), "{table}");
        assert!(table.contains("RNG contract cells"), "{table}");
        assert!(table.contains("rng geomean speedup"), "{table}");
        assert!(table.contains("Observability overhead cells"), "{table}");
        assert!(table.contains("traced vs plain"), "{table}");
        assert!(table.contains("Partition scaling cells"), "{table}");
        assert!(table.contains("hardware threads"), "{table}");
    }

    #[test]
    fn a_panicking_cell_is_dropped_and_counted_as_incomplete() {
        // An out-of-range load makes run_rate assert; the run must survive,
        // report the healthy cell and expose the loss via completed < cells.
        let matrix = BenchMatrix {
            mode: "quick",
            warmup_cycles: 50,
            measure_cycles: 100,
            cells: vec![
                BenchCell {
                    mechanism: MechanismSpec::Minimal,
                    sides: vec![4, 4],
                    load: 1.5,
                },
                BenchCell {
                    mechanism: MechanismSpec::Minimal,
                    sides: vec![4, 4],
                    load: 0.1,
                },
            ],
            rng_cells: vec![],
            obs_cells: vec![],
            partition_cells: vec![],
        };
        let report = run_engine_bench(&matrix, 1, |_, _, _| {});
        assert_eq!(report.summary.cells, 2);
        assert_eq!(report.summary.completed, 1);
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].load, 0.1);
    }
}
