//! # hyperx-bench
//!
//! The benchmark harness of the SurePath reproduction. Each binary in
//! `src/bin/` regenerates the data behind one table or figure of the paper
//! (see DESIGN.md for the experiment index); the Criterion benches in
//! `benches/` measure the hot paths of the topology, routing and simulation
//! layers.
//!
//! Every figure binary accepts:
//!
//! * `--quick` (default) — scaled-down topologies (8×8 and 4×4×4) and short
//!   measurement windows, so the whole suite runs on a laptop in minutes;
//! * `--full` — the paper's 16×16 and 8×8×8 networks with Table 2 windows
//!   (hours of CPU time; the shapes are the same, the absolute numbers larger);
//! * `--csv <path>` — additionally write the results as CSV.
//!
//! Every experiment binary executes on the **campaign runner**: it builds a
//! declarative [`CampaignSpec`], runs it on the bounded work-stealing pool
//! (`--threads`) against a resumable JSONL result store (`--store`), and
//! renders its figure/table **from the store** — so re-running skips every
//! fingerprint-complete point, and `surepath campaign --report <store>`
//! reproduces the output without simulating.

pub mod perf;

use hyperx_routing::MechanismSpec;
use surepath_core::{CampaignSpec, Experiment, ResultStore, TrafficSpec};

/// Which topology/window scale a figure binary runs at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down topologies and short windows (default).
    Quick,
    /// The paper's full-size topologies and windows.
    Paper,
}

/// Command-line options shared by every figure binary.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    /// Scale of the experiment.
    pub scale: Scale,
    /// Optional path for a CSV copy of the results.
    pub csv: Option<String>,
    /// Campaign result store path override (`--store`); binaries ported onto
    /// the campaign runner resume from this JSONL file.
    pub store: Option<String>,
    /// Worker thread count override (`--threads`).
    pub threads: Option<usize>,
    /// Fan the campaigns out to this many TCP workers (`--distributed N`)
    /// instead of the in-process pool. The store stays byte-identical either
    /// way; this exercises (and scales on) the coordinator/worker path.
    pub distributed: Option<usize>,
}

const HARNESS_USAGE: &str = "usage: [--quick|--full] [--csv <path>] [--store <results.jsonl>] \
     [--threads <n>] [--distributed <workers>]";

impl HarnessOptions {
    /// Parses the options from `std::env::args`, exiting with a usage message
    /// on unknown flags.
    pub fn from_args() -> Self {
        let mut scale = Scale::Quick;
        let mut csv = None;
        let mut store = None;
        let mut threads = None;
        let mut distributed = None;
        let mut args = std::env::args().skip(1);
        let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => scale = Scale::Quick,
                "--full" | "--paper" => scale = Scale::Paper,
                "--csv" => csv = Some(value(&mut args, "--csv")),
                "--store" => store = Some(value(&mut args, "--store")),
                "--threads" => {
                    let n: usize = value(&mut args, "--threads").parse().unwrap_or(0);
                    if n == 0 {
                        eprintln!("--threads must be a positive integer");
                        std::process::exit(2);
                    }
                    threads = Some(n);
                }
                "--distributed" => {
                    let n: usize = value(&mut args, "--distributed").parse().unwrap_or(0);
                    if n == 0 {
                        eprintln!("--distributed must be a positive worker count");
                        std::process::exit(2);
                    }
                    distributed = Some(n);
                }
                "--help" | "-h" => {
                    println!("{HARNESS_USAGE}");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other}");
                    eprintln!("{HARNESS_USAGE}");
                    std::process::exit(2);
                }
            }
        }
        HarnessOptions {
            scale,
            csv,
            store,
            threads,
            distributed,
        }
    }

    /// The campaign store path for a figure binary: `--store` if given, else
    /// `results/<stem>_<scale>.jsonl`.
    pub fn store_path(&self, stem: &str) -> std::path::PathBuf {
        match &self.store {
            Some(path) => std::path::PathBuf::from(path),
            None => {
                let scale = match self.scale {
                    Scale::Quick => "quick",
                    Scale::Paper => "full",
                };
                std::path::PathBuf::from(format!("results/{stem}_{scale}.jsonl"))
            }
        }
    }

    /// Writes `contents` to the CSV path if one was requested.
    pub fn maybe_write_csv(&self, contents: &str) {
        if let Some(path) = &self.csv {
            std::fs::write(path, contents).unwrap_or_else(|e| {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            });
            println!("(results also written to {path})");
        }
    }
}

/// Runs every campaign against the shared store at `opts.store_path(stem)`
/// (skipping fingerprint-complete points, so interrupted runs resume) and
/// reopens the store for rendering. Prints per-campaign outcomes on stderr
/// and exits with a message if a campaign cannot run.
///
/// With `--distributed N` the campaigns fan out over the coordinator/worker
/// TCP path instead of the in-process pool: N workers connect over
/// loopback, each running the same simulation bridge. The resulting store
/// is byte-identical either way — that is the distributed driver's
/// determinism contract.
pub fn run_campaigns_to_store(
    opts: &HarnessOptions,
    stem: &str,
    campaigns: &[CampaignSpec],
) -> ResultStore {
    let store_path = opts.store_path(stem);
    for campaign in campaigns {
        match opts.distributed {
            None => {
                let outcome =
                    surepath_core::run_campaign(campaign, &store_path, opts.threads, true)
                        .unwrap_or_else(|e| {
                            eprintln!("campaign `{}` failed: {e}", campaign.name);
                            std::process::exit(1);
                        });
                eprintln!(
                    "{}: {} points ({} skipped, {} executed, {} failed)",
                    campaign.name, outcome.total, outcome.skipped, outcome.executed, outcome.failed
                );
            }
            Some(workers) => {
                let outcome = run_campaign_distributed(campaign, &store_path, workers, opts)
                    .unwrap_or_else(|e| {
                        eprintln!("distributed campaign `{}` failed: {e}", campaign.name);
                        std::process::exit(1);
                    });
                eprintln!(
                    "{}: {} points ({} skipped, {} executed, {} failed) on {} workers",
                    campaign.name,
                    outcome.total,
                    outcome.skipped,
                    outcome.executed,
                    outcome.failed,
                    outcome.workers
                );
            }
        }
    }
    eprintln!(
        "(campaign store: {}; rerun to resume/skip)",
        store_path.display()
    );
    ResultStore::open_read_only(&store_path).unwrap_or_else(|e| {
        eprintln!("cannot reopen store {}: {e}", store_path.display());
        std::process::exit(1);
    })
}

/// The `--distributed` execution path: a loopback coordinator plus
/// `workers` in-process worker threads, all running `run_job`. The
/// coordinator's machinery (shard partitioning, leases, the manifest
/// sidecar) is exactly what a multi-host run uses — only the transport
/// distance differs.
fn run_campaign_distributed(
    campaign: &CampaignSpec,
    store_path: &std::path::Path,
    workers: usize,
    opts: &HarnessOptions,
) -> Result<surepath_dist::ServeOutcome, String> {
    surepath_core::validate_campaign(campaign)?;
    let jobs = campaign.expand()?;
    let listener = std::net::TcpListener::bind("127.0.0.1:0")
        .map_err(|e| format!("cannot bind a loopback coordinator: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve coordinator address: {e}"))?
        .to_string();
    let threads_each = opts
        .threads
        .unwrap_or_else(surepath_runner::default_threads)
        .div_ceil(workers)
        .max(1);
    let handles: Vec<_> = (0..workers)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                surepath_dist::run_worker(
                    &addr,
                    &format!("bench-worker-{i}"),
                    &surepath_dist::WorkerOptions {
                        threads: Some(threads_each),
                        ..surepath_dist::WorkerOptions::default()
                    },
                    surepath_core::run_job,
                )
            })
        })
        .collect();
    let outcome = surepath_dist::serve(
        listener,
        &campaign.name,
        &jobs,
        store_path,
        &surepath_dist::ServeOptions {
            quiet: true,
            ..surepath_dist::ServeOptions::default()
        },
    )
    .map_err(|e| e.to_string())?;
    for handle in handles {
        handle
            .join()
            .map_err(|_| "worker thread panicked".to_string())?
            .map_err(|e| format!("worker failed: {e}"))?;
    }
    Ok(outcome)
}

/// Renders a Figures-8/9-style fault-shape comparison from the store: one
/// section per shape with faulty vs healthy accepted load (replica mean ±
/// CI) and the drop percentage of the means, for every (traffic, SurePath
/// mechanism) pair, appending CSV rows. `label_width` sizes the
/// `traffic / mechanism` column (the 3D pattern names are longer).
pub fn render_fault_shape_figure(
    figure: &str,
    label_width: usize,
    store: &ResultStore,
    campaign: &str,
    patterns: &[TrafficSpec],
    shapes: &[(&str, surepath_core::FaultScenario)],
    csv: &mut String,
) {
    use surepath_core::{csv_half_width, format_mean_hw, FaultScenario};
    // Index replica-aggregated accepted loads by (mechanism, traffic,
    // scenario) display names.
    let mut accepted = std::collections::HashMap::new();
    for p in surepath_core::replicated_rate_points(store, Some(campaign)) {
        accepted.insert(
            (p.mechanism.clone(), p.traffic.clone(), p.scenario.clone()),
            p.accepted_load,
        );
    }
    for (shape_name, scenario) in shapes {
        println!("=== {figure} / {shape_name} faults ===");
        println!(
            "{:>label_width$}  {:>14}  {:>14}  {:>8}",
            "traffic / mechanism", "faulty", "healthy", "drop%"
        );
        for &traffic in patterns {
            for mechanism in MechanismSpec::surepath_lineup() {
                let key = |s: &FaultScenario| {
                    (
                        mechanism.name().to_string(),
                        traffic.name().to_string(),
                        s.name(),
                    )
                };
                let (Some(faulty), Some(healthy)) = (
                    accepted.get(&key(scenario)),
                    accepted.get(&key(&FaultScenario::None)),
                ) else {
                    println!(
                        "{:>label_width$}  (missing from store; rerun to retry)",
                        format!("{} / {}", traffic.name(), mechanism.name())
                    );
                    continue;
                };
                let drop = if healthy.mean > 0.0 {
                    100.0 * (1.0 - faulty.mean / healthy.mean)
                } else {
                    0.0
                };
                println!(
                    "{:>label_width$}  {:>14}  {:>14}  {drop:>8.1}",
                    format!("{} / {}", traffic.name(), mechanism.name()),
                    format_mean_hw(faulty, 3),
                    format_mean_hw(healthy, 3),
                );
                csv.push_str(&format!(
                    "{shape_name},{},{},{},{:.6},{},{:.6},{},{drop:.2}\n",
                    traffic.name().replace(',', ";"),
                    mechanism.name(),
                    faulty.n,
                    faulty.mean,
                    csv_half_width(faulty, 6),
                    healthy.mean,
                    csv_half_width(healthy, 6),
                ));
            }
        }
        println!();
    }
}

/// The mechanism keys (campaign-spec form) of a lineup.
pub fn mechanism_keys(lineup: &[MechanismSpec]) -> Vec<String> {
    lineup
        .iter()
        .map(|m| m.name().to_ascii_lowercase())
        .collect()
}

/// The traffic keys (campaign-spec form) of a lineup.
pub fn traffic_keys(lineup: &[TrafficSpec]) -> Vec<String> {
    lineup.iter().map(|t| t.key().to_string()).collect()
}

/// The 2D experiment template at the given scale.
pub fn experiment_2d(scale: Scale, mechanism: MechanismSpec, traffic: TrafficSpec) -> Experiment {
    match scale {
        Scale::Quick => Experiment::quick_2d(mechanism, traffic),
        Scale::Paper => Experiment::paper_2d(mechanism, traffic),
    }
}

/// The 3D experiment template at the given scale.
pub fn experiment_3d(scale: Scale, mechanism: MechanismSpec, traffic: TrafficSpec) -> Experiment {
    match scale {
        Scale::Quick => Experiment::quick_3d(mechanism, traffic),
        Scale::Paper => Experiment::paper_3d(mechanism, traffic),
    }
}

/// The offered-load grid used by the fault-free sweeps at the given scale.
pub fn load_grid(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
        Scale::Paper => surepath_core::paper_load_grid(),
    }
}

/// The random-fault counts of Figure 6 at the given scale.
pub fn fault_steps(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => (0..=5).map(|i| i * 10).collect(),
        Scale::Paper => (0..=10).map(|i| i * 10).collect(),
    }
}

/// The offered load the bar-chart fault experiments (Figures 8 and 9) use:
/// high enough to be at or past saturation for every mechanism.
pub fn saturation_load() -> f64 {
    0.9
}

/// The replication factor of the figure campaigns at the given scale: every
/// grid point runs this many seeds, so the rendered tables carry a mean ±
/// CI instead of a single draw. Kept small at quick scale (the suite stays
/// laptop-sized) and a bit deeper at paper scale.
pub fn replicas(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 3,
        Scale::Paper => 5,
    }
}

/// The (warmup, measure) simulation windows at the given scale, for campaign
/// specs (matching `SimConfig::quick` and Table 2 respectively).
pub fn windows(scale: Scale) -> (u64, u64) {
    match scale {
        Scale::Quick => (1_000, 2_000),
        Scale::Paper => (5_000, 10_000),
    }
}

/// The 2D/3D topology sides at the given scale.
pub fn sides_2d(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![8, 8],
        Scale::Paper => vec![16, 16],
    }
}

/// See [`sides_2d`].
pub fn sides_3d(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![4, 4, 4],
        Scale::Paper => vec![8, 8, 8],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_pick_the_right_topologies() {
        let q = experiment_2d(Scale::Quick, MechanismSpec::OmniSP, TrafficSpec::Uniform);
        assert_eq!(q.sides, vec![8, 8]);
        let p = experiment_2d(Scale::Paper, MechanismSpec::OmniSP, TrafficSpec::Uniform);
        assert_eq!(p.sides, vec![16, 16]);
        let q3 = experiment_3d(Scale::Quick, MechanismSpec::PolSP, TrafficSpec::Uniform);
        assert_eq!(q3.sides, vec![4, 4, 4]);
        let p3 = experiment_3d(Scale::Paper, MechanismSpec::PolSP, TrafficSpec::Uniform);
        assert_eq!(p3.sides, vec![8, 8, 8]);
    }

    #[test]
    fn grids_are_well_formed() {
        assert_eq!(load_grid(Scale::Paper).len(), 20);
        assert_eq!(load_grid(Scale::Quick).len(), 10);
        assert_eq!(fault_steps(Scale::Quick).last(), Some(&50));
        assert_eq!(fault_steps(Scale::Paper).last(), Some(&100));
        assert!(saturation_load() > 0.8);
        assert!(replicas(Scale::Quick) >= 2, "CIs need at least 2 replicas");
        assert!(replicas(Scale::Paper) >= replicas(Scale::Quick));
    }

    #[test]
    fn campaign_helpers_match_experiment_templates() {
        // The campaign-spec helpers must describe the same configurations the
        // Experiment constructors build, or fingerprints would quietly drift.
        let q2 = experiment_2d(Scale::Quick, MechanismSpec::OmniSP, TrafficSpec::Uniform);
        assert_eq!(sides_2d(Scale::Quick), q2.sides);
        assert_eq!(
            windows(Scale::Quick),
            (q2.sim.warmup_cycles, q2.sim.measure_cycles)
        );
        let p3 = experiment_3d(Scale::Paper, MechanismSpec::PolSP, TrafficSpec::Uniform);
        assert_eq!(sides_3d(Scale::Paper), p3.sides);
        assert_eq!(
            windows(Scale::Paper),
            (p3.sim.warmup_cycles, p3.sim.measure_cycles)
        );
        let opts = HarnessOptions {
            scale: Scale::Quick,
            csv: None,
            store: None,
            threads: None,
            distributed: None,
        };
        assert_eq!(
            opts.store_path("fig06"),
            std::path::PathBuf::from("results/fig06_quick.jsonl")
        );
    }
}
