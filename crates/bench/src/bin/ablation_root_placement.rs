//! Ablation: escape-root placement under the Star fault configuration.
//!
//! Section 6 closes its Star analysis with "some of the issues can be
//! addressed by avoiding to choose a switch with many faulty links as the
//! root of the escape subnetwork". This binary compares the paper's stressful
//! in-fault root with the alternative policies implemented in
//! `hyperx_topology::RootPolicy`, under the Star faults and both the Uniform
//! and Regular Permutation to Neighbour patterns of Figure 9/10.
//!
//! Ported onto the campaign runner: the root placement is a grid dimension
//! (`roots`), so the whole study is one declarative campaign with a
//! resumable store, rendered from the store.

use hyperx_bench::{
    mechanism_keys, replicas, run_campaigns_to_store, saturation_load, sides_3d, windows,
    HarnessOptions, Scale,
};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{
    ablation_points_from_store, ablation_to_csv, format_ablation_table, CampaignSpec,
    FaultScenario, TopologySpec, TrafficSpec,
};

fn star(scale: Scale) -> FaultScenario {
    match scale {
        Scale::Paper => FaultScenario::star_3d(),
        Scale::Quick => FaultScenario::Shape(FaultShape::Cross {
            center: vec![2, 2, 2],
            margin: 1,
        }),
    }
}

fn campaign(scale: Scale) -> CampaignSpec {
    let (warmup, measure) = windows(scale);
    CampaignSpec {
        name: "ablation-root".to_string(),
        topologies: vec![TopologySpec {
            sides: sides_3d(scale),
            concentration: None,
        }],
        mechanisms: Some(mechanism_keys(&MechanismSpec::surepath_lineup())),
        traffics: Some(vec!["uniform".to_string(), "rpn".to_string()]),
        scenarios: Some(vec![star(scale).key()]),
        roots: Some(vec![
            "suggested".to_string(),
            "max-alive-degree".to_string(),
            "min-eccentricity".to_string(),
            "min-total-distance".to_string(),
        ]),
        loads: Some(vec![saturation_load()]),
        // Replica means per placement instead of single draws.
        replicas: Some(replicas(scale)),
        vcs: Some(4),
        warmup: Some(warmup),
        measure: Some(measure),
        ..CampaignSpec::default()
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let load = saturation_load();
    let traffics = [
        TrafficSpec::Uniform,
        TrafficSpec::RegularPermutationToNeighbour,
    ];
    let spec = campaign(opts.scale);
    let store = run_campaigns_to_store(&opts, "ablation_root", std::slice::from_ref(&spec));

    let mut all = Vec::new();
    for mechanism in MechanismSpec::surepath_lineup() {
        for traffic in traffics {
            println!(
                "=== Root-placement ablation / Star faults / {} / {} / offered {:.2} ===",
                mechanism.name(),
                traffic.name(),
                load
            );
            let points = ablation_points_from_store(&store, &spec.name, "root", |job| {
                job.mechanism.as_deref() == Some(&mechanism.name().to_ascii_lowercase())
                    && job.traffic.as_deref() == Some(traffic.key())
            });
            print!("{}", format_ablation_table(&points));
            println!();
            all.extend(points);
        }
    }

    println!("Claim to check (§6): moving the root away from the almost-isolated Star centre");
    println!("relieves the in-cast pressure on its three surviving links, so the policy-selected");
    println!("roots should match or beat the paper's deliberately stressful in-fault root.");
    opts.maybe_write_csv(&ablation_to_csv(&all));
}
