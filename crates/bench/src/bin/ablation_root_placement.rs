//! Ablation: escape-root placement under the Star fault configuration.
//!
//! Section 6 closes its Star analysis with "some of the issues can be
//! addressed by avoiding to choose a switch with many faulty links as the
//! root of the escape subnetwork". This binary compares the paper's stressful
//! in-fault root with the alternative policies implemented in
//! `hyperx_topology::RootPolicy`, under the Star faults and both the Uniform
//! and Regular Permutation to Neighbour patterns of Figure 9/10.

use hyperx_bench::{experiment_3d, saturation_load, HarnessOptions, Scale};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{
    ablation_to_csv, format_ablation_table, root_placement_study, FaultScenario, TrafficSpec,
};

fn star(scale: Scale) -> FaultScenario {
    match scale {
        Scale::Paper => FaultScenario::star_3d(),
        Scale::Quick => FaultScenario::Shape(FaultShape::Cross {
            center: vec![2, 2, 2],
            margin: 1,
        }),
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let load = saturation_load();
    let traffics = [
        TrafficSpec::Uniform,
        TrafficSpec::RegularPermutationToNeighbour,
    ];
    let mut all = Vec::new();

    for mechanism in MechanismSpec::surepath_lineup() {
        for traffic in traffics {
            println!(
                "=== Root-placement ablation / Star faults / {} / {} / offered {:.2} ===",
                mechanism.name(),
                traffic.name(),
                load
            );
            let template = experiment_3d(opts.scale, mechanism, traffic)
                .with_scenario(star(opts.scale))
                .with_num_vcs(4);
            let points = root_placement_study(&template, load);
            print!("{}", format_ablation_table(&points));
            println!();
            all.extend(points);
        }
    }

    println!("Claim to check (§6): moving the root away from the almost-isolated Star centre");
    println!("relieves the in-cast pressure on its three surviving links, so the policy-selected");
    println!("roots should match or beat the paper's deliberately stressful in-fault root.");
    opts.maybe_write_csv(&ablation_to_csv(&all));
}
