//! Figure 4: fault-free performance on the 2D HyperX — accepted throughput,
//! average latency and Jain fairness versus offered load, for the six routing
//! mechanisms under Uniform, Random Server Permutation and Dimension
//! Complement Reverse traffic.

use hyperx_bench::{experiment_2d, load_grid, HarnessOptions};
use hyperx_routing::MechanismSpec;
use surepath_core::{
    format_rate_table, rate_metrics_to_csv, sweep_mechanisms, FaultScenario, TrafficSpec,
};

fn main() {
    let opts = HarnessOptions::from_args();
    let loads = load_grid(opts.scale);
    let mechanisms = MechanismSpec::fault_free_lineup();
    let mut all_points = Vec::new();
    for traffic in TrafficSpec::lineup_2d() {
        println!("=== Figure 4 / {} ===", traffic.name());
        let template = experiment_2d(opts.scale, MechanismSpec::OmniSP, traffic);
        let points = sweep_mechanisms(
            &template,
            &mechanisms,
            traffic,
            &FaultScenario::None,
            &loads,
        );
        println!("{}", format_rate_table(&points));
        all_points.extend(points);
    }
    println!("Paper shapes to check: Valiant caps near 0.5 under Uniform; Minimal saturates early");
    println!("under DCR; OmniSP/PolSP match or beat OmniWAR/Polarized everywhere.");
    opts.maybe_write_csv(&rate_metrics_to_csv(&all_points));
}
