//! Figure 4: fault-free performance on the 2D HyperX — accepted throughput,
//! average latency and Jain fairness versus offered load, for the six routing
//! mechanisms under Uniform, Random Server Permutation and Dimension
//! Complement Reverse traffic.
//!
//! Ported onto the campaign runner: the whole (mechanism × traffic × load)
//! grid is one declarative [`CampaignSpec`] executed on the work-stealing
//! pool and streamed to a resumable JSONL store, and the tables below are
//! rendered **from the store** — `surepath campaign --report` reproduces
//! them without re-simulating.

use hyperx_bench::{
    load_grid, mechanism_keys, run_campaigns_to_store, sides_2d, traffic_keys, windows,
    HarnessOptions, Scale,
};
use hyperx_routing::MechanismSpec;
use surepath_core::{
    format_rate_table, rate_metrics_to_csv, rate_points_from_store, CampaignSpec, TopologySpec,
    TrafficSpec,
};

fn campaign(scale: Scale) -> CampaignSpec {
    let (warmup, measure) = windows(scale);
    CampaignSpec {
        name: "fig04-2d".to_string(),
        topologies: vec![TopologySpec {
            sides: sides_2d(scale),
            concentration: None,
        }],
        mechanisms: Some(mechanism_keys(&MechanismSpec::fault_free_lineup())),
        traffics: Some(traffic_keys(&TrafficSpec::lineup_2d())),
        scenarios: Some(vec!["none".to_string()]),
        loads: Some(load_grid(scale)),
        // Fair comparison: every mechanism gets its default 2n VCs (vcs: None).
        warmup: Some(warmup),
        measure: Some(measure),
        ..CampaignSpec::default()
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let spec = campaign(opts.scale);
    let store = run_campaigns_to_store(&opts, "fig04", std::slice::from_ref(&spec));

    let points = rate_points_from_store(&store, Some(&spec.name));
    let mut all_points = Vec::new();
    for traffic in TrafficSpec::lineup_2d() {
        println!("=== Figure 4 / {} ===", traffic.name());
        let group: Vec<_> = points
            .iter()
            .filter(|p| p.traffic == traffic.name())
            .cloned()
            .collect();
        println!("{}", format_rate_table(&group));
        all_points.extend(group);
    }
    println!("Paper shapes to check: Valiant caps near 0.5 under Uniform; Minimal saturates early");
    println!("under DCR; OmniSP/PolSP match or beat OmniWAR/Polarized everywhere.");
    opts.maybe_write_csv(&rate_metrics_to_csv(&all_points));
}
