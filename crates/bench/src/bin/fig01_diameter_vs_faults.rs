//! Figure 1: evolution of the HyperX diameter as random link failures
//! accumulate, for several independent fault sequences.
//!
//! The paper uses the 8×8×8 HyperX (`--full`); `--quick` uses 4×4×4 so the
//! all-pairs BFS stays cheap.

use hyperx_bench::{HarnessOptions, Scale};
use hyperx_topology::{diameter_under_fault_sequence, FaultSet, HyperX};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let opts = HarnessOptions::from_args();
    let (hx, step, sequences) = match opts.scale {
        Scale::Quick => (HyperX::regular(3, 4), 8, 3usize),
        Scale::Paper => (HyperX::regular(3, 8), 40, 4usize),
    };
    let total_links = hx.network().num_links();
    println!(
        "Figure 1: diameter vs random link failures on a {}^3 HyperX ({} links)",
        hx.side(0),
        total_links
    );
    println!();

    let mut csv = String::from("sequence,faults,fault_ratio,diameter\n");
    for seq_idx in 0..sequences {
        let mut rng = ChaCha8Rng::seed_from_u64(1000 + seq_idx as u64);
        let sequence = FaultSet::random_sequence(hx.network(), total_links, &mut rng);
        let samples = diameter_under_fault_sequence(hx.network(), &sequence, step);
        println!("sequence {seq_idx}:");
        let mut last_reported = usize::MAX;
        let mut first_diameter_jump = None;
        for s in &samples {
            let label = match s.diameter {
                Some(d) => d.to_string(),
                None => "disconnected".to_string(),
            };
            csv.push_str(&format!(
                "{seq_idx},{},{:.4},{}\n",
                s.faults,
                s.faults as f64 / total_links as f64,
                label
            ));
            // Print only the transitions to keep the console output readable.
            let current = s.diameter.unwrap_or(usize::MAX - 1);
            if current != last_reported {
                println!(
                    "  {:>5} faults ({:>5.1}% of links): diameter {}",
                    s.faults,
                    100.0 * s.faults as f64 / total_links as f64,
                    label
                );
                if first_diameter_jump.is_none() && s.diameter == Some(samples[0].diameter.unwrap() + 1)
                {
                    first_diameter_jump = Some(s.faults);
                }
                last_reported = current;
            }
            if s.diameter.is_none() {
                break;
            }
        }
        if let Some(f) = first_diameter_jump {
            println!("  -> first diameter increase after {f} faults");
        }
        println!();
    }
    println!(
        "Paper reference (8x8x8): ~80 faults to reach diameter 4, ~35% of links for diameter 5, \
         ~75% to disconnect."
    );
    opts.maybe_write_csv(&csv);
}
