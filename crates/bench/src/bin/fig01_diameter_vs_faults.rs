//! Figure 1: evolution of the HyperX diameter as random link failures
//! accumulate, for several independent fault sequences.
//!
//! The paper uses the 8×8×8 HyperX (`--full`); `--quick` uses 4×4×4 so the
//! all-pairs BFS stays cheap.
//!
//! Ported onto the campaign runner with a custom `diameter` job kind: one
//! job per fault sequence, run in parallel on the work-stealing pool and
//! streamed to a resumable JSONL store — a worked example of a non-simulation
//! analysis campaign (the runner is domain-agnostic; the closure below gives
//! `diameter` jobs their meaning).

use hyperx_bench::{HarnessOptions, Scale};
use hyperx_topology::{diameter_under_fault_sequence, DiameterSample, FaultSet, HyperX};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use surepath_core::{CampaignSpec, FaultScenario, ResultStore, TopologySpec};
use surepath_runner::{job_fingerprint, JobSpec};

fn campaign(scale: Scale) -> (CampaignSpec, usize) {
    let (side, step, sequences) = match scale {
        Scale::Quick => (4usize, 8usize, 3usize),
        Scale::Paper => (8, 40, 4),
    };
    let hx = HyperX::regular(3, side);
    let total_links = hx.network().num_links();
    let spec = CampaignSpec {
        name: "fig01-diameter".to_string(),
        kind: Some("diameter".to_string()),
        topologies: vec![TopologySpec {
            sides: vec![side; 3],
            concentration: None,
        }],
        // One fault sequence per scenario; the scenario string carries both
        // the sequence length (all links) and the sequence seed.
        scenarios: Some(
            (0..sequences)
                .map(|i| format!("random:{total_links}:{}", 1000 + i as u64))
                .collect(),
        ),
        // Reuse the measure field as the diameter sampling step so the
        // fingerprint captures it (a different step is a different curve).
        measure: Some(step as u64),
        ..CampaignSpec::default()
    };
    (spec, total_links)
}

/// Executes one `diameter` job: replay the scenario's fault sequence and
/// sample the diameter every `measure` faults.
fn run_diameter_job(job: &JobSpec) -> Result<serde::Value, String> {
    if job.kind != "diameter" {
        return Err(format!(
            "fig01 only understands diameter jobs, got '{}'",
            job.kind
        ));
    }
    let scenario = job
        .scenario
        .as_deref()
        .ok_or("diameter jobs need a scenario")?;
    let FaultScenario::Random { count, seed } = FaultScenario::parse(scenario, &job.sides)? else {
        return Err(format!(
            "diameter jobs need a random:<count>:<seed> scenario, got '{scenario}'"
        ));
    };
    let step = job
        .measure
        .ok_or("diameter jobs store their step in `measure`")? as usize;
    let hx = HyperX::new(&job.sides);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sequence = FaultSet::random_sequence(hx.network(), count, &mut rng);
    let samples = diameter_under_fault_sequence(hx.network(), &sequence, step);
    serde_json::to_value(&samples).map_err(|e| e.to_string())
}

fn main() {
    let opts = HarnessOptions::from_args();
    let (spec, total_links) = campaign(opts.scale);
    let store_path = opts.store_path("fig01");
    let side = spec.topologies[0].sides[0];
    println!(
        "Figure 1: diameter vs random link failures on a {side}^3 HyperX ({total_links} links)"
    );
    println!();

    let outcome =
        surepath_runner::run_campaign(&spec, &store_path, opts.threads, true, run_diameter_job)
            .unwrap_or_else(|e| {
                eprintln!("campaign failed: {e}");
                std::process::exit(1);
            });
    eprintln!(
        "fig01: {} sequences ({} skipped, {} executed, {} failed)",
        outcome.total, outcome.skipped, outcome.executed, outcome.failed
    );

    let store = ResultStore::open_read_only(&store_path).unwrap_or_else(|e| {
        eprintln!("cannot reopen store {}: {e}", store_path.display());
        std::process::exit(1);
    });
    let jobs = spec.expand().expect("fig01 campaign expands");
    let mut csv = String::from("sequence,faults,fault_ratio,diameter\n");
    for (seq_idx, job) in jobs.iter().enumerate() {
        let record = match store.record(&job_fingerprint(job)) {
            Some(record) if record.status == "ok" => record,
            Some(failed) => {
                eprintln!(
                    "sequence {seq_idx}: failed ({}); rerun to retry",
                    failed.error.as_deref().unwrap_or("unknown error")
                );
                continue;
            }
            None => {
                eprintln!("sequence {seq_idx}: missing from store; rerun to retry");
                continue;
            }
        };
        let result = record.result.clone().expect("ok records carry results");
        let samples: Vec<DiameterSample> =
            serde_json::from_value(result).expect("diameter samples deserialize");
        println!("sequence {seq_idx}:");
        let mut last_reported = usize::MAX;
        let mut first_diameter_jump = None;
        for s in &samples {
            let label = match s.diameter {
                Some(d) => d.to_string(),
                None => "disconnected".to_string(),
            };
            csv.push_str(&format!(
                "{seq_idx},{},{:.4},{}\n",
                s.faults,
                s.faults as f64 / total_links as f64,
                label
            ));
            // Print only the transitions to keep the console output readable.
            let current = s.diameter.unwrap_or(usize::MAX - 1);
            if current != last_reported {
                println!(
                    "  {:>5} faults ({:>5.1}% of links): diameter {}",
                    s.faults,
                    100.0 * s.faults as f64 / total_links as f64,
                    label
                );
                if first_diameter_jump.is_none()
                    && s.diameter == Some(samples[0].diameter.unwrap() + 1)
                {
                    first_diameter_jump = Some(s.faults);
                }
                last_reported = current;
            }
            if s.diameter.is_none() {
                break;
            }
        }
        if let Some(f) = first_diameter_jump {
            println!("  -> first diameter increase after {f} faults");
        }
        println!();
    }
    println!(
        "Paper reference (8x8x8): ~80 faults to reach diameter 4, ~35% of links for diameter 5, \
         ~75% to disconnect."
    );
    println!(
        "(campaign store: {}; rerun to resume/skip)",
        store_path.display()
    );
    opts.maybe_write_csv(&csv);
}
