//! Figure 10: completion time of a fixed batch of Regular Permutation to
//! Neighbour traffic under the Star fault configuration, for OmniSP and PolSP.
//!
//! The paper sends 8000 phits (500 packets of 16 phits) per server and shows
//! that although OmniSP sustains a higher peak accepted load, its completion
//! time is about 2.8× PolSP's because the servers at the almost-isolated
//! escape root become stragglers.
//!
//! Ported onto the campaign runner with the core bridge's `kind = "batch"`:
//! the two closed-loop runs are a declarative campaign carrying
//! `packets_per_server` and `sample_window`, executed in parallel with a
//! resumable store, and everything below — the completion-time lines, the
//! throughput-over-time series and the OmniSP/PolSP ratio — renders from
//! the store (`surepath campaign --report` reproduces it).

use hyperx_bench::{mechanism_keys, run_campaigns_to_store, sides_3d, HarnessOptions, Scale};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{
    batch_runs_from_store, batch_samples_csv, completion_ratio, format_batch_table, CampaignSpec,
    FaultScenario, TopologySpec,
};

fn campaign(scale: Scale) -> (CampaignSpec, u64) {
    let (scenario, packets_per_server, sample_window) = match scale {
        Scale::Paper => (FaultScenario::star_3d(), 500u64, 5_000u64),
        Scale::Quick => (
            FaultScenario::Shape(FaultShape::Cross {
                center: vec![2, 2, 2],
                margin: 1,
            }),
            60u64,
            1_000u64,
        ),
    };
    let spec = CampaignSpec {
        name: "fig10-batch".to_string(),
        kind: Some("batch".to_string()),
        topologies: vec![TopologySpec {
            sides: sides_3d(scale),
            concentration: None,
        }],
        mechanisms: Some(mechanism_keys(&MechanismSpec::surepath_lineup())),
        traffics: Some(vec!["rpn".to_string()]),
        scenarios: Some(vec![scenario.key()]),
        vcs: Some(4),
        packets_per_server: Some(packets_per_server),
        sample_window: Some(sample_window),
        ..CampaignSpec::default()
    };
    (spec, packets_per_server)
}

fn main() {
    let opts = HarnessOptions::from_args();
    let (spec, packets_per_server) = campaign(opts.scale);
    println!(
        "Figure 10: completion time, Regular Permutation to Neighbour, Star faults, {} packets/server",
        packets_per_server
    );
    println!();

    let store = run_campaigns_to_store(&opts, "fig10", std::slice::from_ref(&spec));
    let runs = batch_runs_from_store(&store, Some(&spec.name));
    print!("{}", format_batch_table(&runs));
    println!();

    // Throughput-over-time series (the curve of Figure 10).
    for run in &runs {
        println!("accepted load over time for {}:", run.mechanism);
        for sample in &run.metrics.samples {
            println!("  cycle {:>8}: {:.3}", sample.cycle, sample.accepted_load);
        }
        println!();
    }

    match completion_ratio(&runs, "OmniSP", "PolSP") {
        Some(ratio) => println!(
            "OmniSP completion time is {ratio:.2}x PolSP's (the paper reports about 2.8x on the \
             full-size network)."
        ),
        None => println!(
            "OmniSP/PolSP completion ratio unavailable: the store has {} completed run(s) \
             ({}); rerun to retry missing jobs.",
            runs.len(),
            if runs.is_empty() {
                "none".to_string()
            } else {
                runs.iter()
                    .map(|r| r.mechanism.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        ),
    }
    opts.maybe_write_csv(&batch_samples_csv(&runs));
}
