//! Figure 10: completion time of a fixed batch of Regular Permutation to
//! Neighbour traffic under the Star fault configuration, for OmniSP and PolSP.
//!
//! The paper sends 8000 phits (500 packets of 16 phits) per server and shows
//! that although OmniSP sustains a higher peak accepted load, its completion
//! time is about 2.8× PolSP's because the servers at the almost-isolated
//! escape root become stragglers.

use hyperx_bench::{experiment_3d, HarnessOptions, Scale};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{BatchMetrics, FaultScenario, TrafficSpec};

fn main() {
    let opts = HarnessOptions::from_args();
    let (scenario, packets_per_server, sample_window) = match opts.scale {
        Scale::Paper => (FaultScenario::star_3d(), 500u64, 5_000u64),
        Scale::Quick => (
            FaultScenario::Shape(FaultShape::Cross {
                center: vec![2, 2, 2],
                margin: 1,
            }),
            60u64,
            1_000u64,
        ),
    };
    println!(
        "Figure 10: completion time, Regular Permutation to Neighbour, Star faults, {} packets/server",
        packets_per_server
    );
    println!();

    let mut results: Vec<(&str, BatchMetrics)> = Vec::new();
    for mechanism in MechanismSpec::surepath_lineup() {
        let experiment = experiment_3d(
            opts.scale,
            mechanism,
            TrafficSpec::RegularPermutationToNeighbour,
        )
        .with_scenario(scenario.clone())
        .with_num_vcs(4);
        let metrics = experiment.run_batch(packets_per_server, sample_window);
        println!(
            "{}: completion time {} cycles, {} packets delivered, average latency {:.1} cycles{}",
            mechanism.name(),
            metrics.completion_time,
            metrics.delivered_packets,
            metrics.average_latency,
            if metrics.stalled { " (STALLED)" } else { "" }
        );
        results.push((mechanism.name(), metrics));
    }
    println!();

    // Throughput-over-time series (the curve of Figure 10).
    let mut csv = String::from("mechanism,cycle,accepted_load\n");
    for (name, metrics) in &results {
        println!("accepted load over time for {name}:");
        for sample in &metrics.samples {
            println!("  cycle {:>8}: {:.3}", sample.cycle, sample.accepted_load);
            csv.push_str(&format!(
                "{name},{},{:.6}\n",
                sample.cycle, sample.accepted_load
            ));
        }
        println!();
    }

    if results.len() == 2 {
        let omni = results.iter().find(|(n, _)| *n == "OmniSP").unwrap();
        let pol = results.iter().find(|(n, _)| *n == "PolSP").unwrap();
        let ratio = omni.1.completion_time as f64 / pol.1.completion_time.max(1) as f64;
        println!(
            "OmniSP completion time is {ratio:.2}x PolSP's (the paper reports about 2.8x on the \
             full-size network)."
        );
    }
    opts.maybe_write_csv(&csv);
}
