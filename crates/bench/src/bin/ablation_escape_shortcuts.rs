//! Ablation: opportunistic escape shortcuts versus a pure Up*/Down* tree.
//!
//! The escape subnetwork of §3.2 is a plain Up*/Down* construction *plus*
//! opportunistic horizontal shortcuts, which the paper presents as one of its
//! original contributions ("prevents performance degradation"). This binary
//! removes the shortcuts (OmniSP-tree / PolSP-tree) and measures the drop, on
//! the healthy network and under the stressful Cross/Star faults, where the
//! escape subnetwork carries the most forced traffic.
//!
//! Ported onto the campaign runner: each case is a small declarative
//! campaign over the four-mechanism escape lineup, all sharing one
//! resumable store, rendered from the store.

use hyperx_bench::{
    mechanism_keys, replicas, run_campaigns_to_store, saturation_load, sides_2d, sides_3d, windows,
    HarnessOptions, Scale,
};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{
    ablation_points_from_store, ablation_to_csv, format_ablation_table, CampaignSpec,
    FaultScenario, TopologySpec,
};

fn cross_2d(scale: Scale) -> FaultScenario {
    match scale {
        Scale::Paper => FaultScenario::cross_2d(),
        Scale::Quick => FaultScenario::Shape(FaultShape::Cross {
            center: vec![4, 4],
            margin: 2,
        }),
    }
}

fn star_3d(scale: Scale) -> FaultScenario {
    match scale {
        Scale::Paper => FaultScenario::star_3d(),
        Scale::Quick => FaultScenario::Shape(FaultShape::Cross {
            center: vec![2, 2, 2],
            margin: 1,
        }),
    }
}

struct Case {
    label: &'static str,
    slug: &'static str,
    sides: Vec<usize>,
    traffic: &'static str,
    scenario: FaultScenario,
    /// `None` = the fair 2n default; the faulty cases use the paper's 4 VCs.
    vcs: Option<usize>,
}

fn cases(scale: Scale) -> Vec<Case> {
    vec![
        Case {
            label: "2D / Healthy / Uniform",
            slug: "2d-healthy",
            sides: sides_2d(scale),
            traffic: "uniform",
            scenario: FaultScenario::None,
            vcs: None,
        },
        Case {
            label: "2D / Cross / Uniform",
            slug: "2d-cross",
            sides: sides_2d(scale),
            traffic: "uniform",
            scenario: cross_2d(scale),
            vcs: Some(4),
        },
        Case {
            label: "3D / Healthy / DCR",
            slug: "3d-healthy",
            sides: sides_3d(scale),
            traffic: "dcr",
            scenario: FaultScenario::None,
            vcs: None,
        },
        Case {
            label: "3D / Star / Uniform",
            slug: "3d-star",
            sides: sides_3d(scale),
            traffic: "uniform",
            scenario: star_3d(scale),
            vcs: Some(4),
        },
    ]
}

fn campaign(scale: Scale, case: &Case) -> CampaignSpec {
    let (warmup, measure) = windows(scale);
    CampaignSpec {
        name: format!("ablation-escape-{}", case.slug),
        topologies: vec![TopologySpec {
            sides: case.sides.clone(),
            concentration: None,
        }],
        mechanisms: Some(mechanism_keys(&MechanismSpec::escape_ablation_lineup())),
        traffics: Some(vec![case.traffic.to_string()]),
        scenarios: Some(vec![case.scenario.key()]),
        loads: Some(vec![saturation_load()]),
        // Replica means per variant instead of single draws.
        replicas: Some(replicas(scale)),
        vcs: case.vcs,
        warmup: Some(warmup),
        measure: Some(measure),
        ..CampaignSpec::default()
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let load = saturation_load();
    let cases = cases(opts.scale);
    let campaigns: Vec<CampaignSpec> = cases.iter().map(|c| campaign(opts.scale, c)).collect();
    let store = run_campaigns_to_store(&opts, "ablation_escape", &campaigns);

    let mut all = Vec::new();
    for (case, spec) in cases.iter().zip(&campaigns) {
        println!(
            "=== Escape-shortcut ablation / {} / offered {load:.2} ===",
            case.label
        );
        let points = ablation_points_from_store(&store, &spec.name, "escape", |_| true);
        print!("{}", format_ablation_table(&points));
        println!();
        all.extend(points);
    }

    println!("Claim to check (§3.2): without shortcuts the escape subnetwork degenerates into a");
    println!("tree, so the tree-only variants lose throughput — most visibly when faults force");
    println!("traffic through the escape subnetwork.");
    opts.maybe_write_csv(&ablation_to_csv(&all));
}
