//! Ablation: opportunistic escape shortcuts versus a pure Up*/Down* tree.
//!
//! The escape subnetwork of §3.2 is a plain Up*/Down* construction *plus*
//! opportunistic horizontal shortcuts, which the paper presents as one of its
//! original contributions ("prevents performance degradation"). This binary
//! removes the shortcuts (OmniSP-tree / PolSP-tree) and measures the drop, on
//! the healthy network and under the stressful Cross/Star faults, where the
//! escape subnetwork carries the most forced traffic.

use hyperx_bench::{experiment_2d, experiment_3d, saturation_load, HarnessOptions, Scale};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{
    ablation_to_csv, escape_shortcut_study, format_ablation_table, Experiment, FaultScenario,
    TrafficSpec,
};

fn cross_2d(scale: Scale) -> FaultScenario {
    match scale {
        Scale::Paper => FaultScenario::cross_2d(),
        Scale::Quick => FaultScenario::Shape(FaultShape::Cross {
            center: vec![4, 4],
            margin: 2,
        }),
    }
}

fn star_3d(scale: Scale) -> FaultScenario {
    match scale {
        Scale::Paper => FaultScenario::star_3d(),
        Scale::Quick => FaultScenario::Shape(FaultShape::Cross {
            center: vec![2, 2, 2],
            margin: 1,
        }),
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let load = saturation_load();
    let mut all = Vec::new();

    let cases: Vec<(&str, Experiment)> = vec![
        (
            "2D / Healthy / Uniform",
            experiment_2d(opts.scale, MechanismSpec::OmniSP, TrafficSpec::Uniform),
        ),
        (
            "2D / Cross / Uniform",
            experiment_2d(opts.scale, MechanismSpec::OmniSP, TrafficSpec::Uniform)
                .with_scenario(cross_2d(opts.scale))
                .with_num_vcs(4),
        ),
        (
            "3D / Healthy / DCR",
            experiment_3d(
                opts.scale,
                MechanismSpec::OmniSP,
                TrafficSpec::DimensionComplementReverse,
            ),
        ),
        (
            "3D / Star / Uniform",
            experiment_3d(opts.scale, MechanismSpec::OmniSP, TrafficSpec::Uniform)
                .with_scenario(star_3d(opts.scale))
                .with_num_vcs(4),
        ),
    ];

    for (label, template) in cases {
        println!("=== Escape-shortcut ablation / {label} / offered {load:.2} ===");
        let points = escape_shortcut_study(&template, load);
        print!("{}", format_ablation_table(&points));
        println!();
        all.extend(points);
    }

    println!("Claim to check (§3.2): without shortcuts the escape subnetwork degenerates into a");
    println!("tree, so the tree-only variants lose throughput — most visibly when faults force");
    println!("traffic through the escape subnetwork.");
    opts.maybe_write_csv(&ablation_to_csv(&all));
}
