//! Figure 6: accepted load of OmniSP and PolSP as random link failures
//! accumulate (0 to 100 faults in the paper), for every traffic pattern, in
//! both the 2D and the 3D HyperX. SurePath runs with 4 VCs (3 routing + 1
//! escape), the configuration the paper highlights as a 33% VC saving.

use hyperx_bench::{experiment_2d, experiment_3d, fault_steps, saturation_load, HarnessOptions, Scale};
use hyperx_routing::MechanismSpec;
use surepath_core::{Experiment, FaultScenario, TrafficSpec};

const FAULT_SEED: u64 = 20_240_404;

fn run_network(
    name: &str,
    patterns: &[TrafficSpec],
    make: impl Fn(MechanismSpec, TrafficSpec) -> Experiment,
    steps: &[usize],
    csv: &mut String,
) {
    println!("=== Figure 6 / {name} ===");
    let load = saturation_load();
    print!("{:>28} ", "pattern / mechanism");
    for count in steps {
        print!("{:>8}", format!("f={count}"));
    }
    println!();
    for &traffic in patterns {
        for mechanism in MechanismSpec::surepath_lineup() {
            print!("{:>28} ", format!("{} / {}", traffic.name(), mechanism.name()));
            for &count in steps {
                let experiment = make(mechanism, traffic)
                    .with_scenario(FaultScenario::Random {
                        count,
                        seed: FAULT_SEED,
                    })
                    .with_num_vcs(4);
                let metrics = experiment.run_rate(load);
                print!("{:>8.3}", metrics.accepted_load);
                csv.push_str(&format!(
                    "{name},{},{},{count},{:.6},{:.3},{:.5}\n",
                    mechanism.name(),
                    traffic.name().replace(',', ";"),
                    metrics.accepted_load,
                    metrics.average_latency,
                    metrics.jain_generated
                ));
            }
            println!();
        }
    }
    println!();
}

fn main() {
    let opts = HarnessOptions::from_args();
    let steps = fault_steps(opts.scale);
    let mut csv =
        String::from("network,mechanism,traffic,faults,accepted_load,average_latency,jain\n");

    let patterns_2d = TrafficSpec::lineup_2d();
    run_network(
        "2D HyperX",
        &patterns_2d,
        |m, t| experiment_2d(opts.scale, m, t),
        &steps,
        &mut csv,
    );

    let patterns_3d: Vec<TrafficSpec> = if opts.scale == Scale::Quick {
        TrafficSpec::lineup_3d().to_vec()
    } else {
        TrafficSpec::lineup_3d().to_vec()
    };
    run_network(
        "3D HyperX",
        &patterns_3d,
        |m, t| experiment_3d(opts.scale, m, t),
        &steps,
        &mut csv,
    );

    println!("Paper shape to check: degradation is smooth — Uniform drops roughly from 0.9 to 0.8");
    println!("over 100 faults on the full-size networks, the adversarial patterns barely move.");
    opts.maybe_write_csv(&csv);
}
