//! Figure 6: accepted load of OmniSP and PolSP as random link failures
//! accumulate (0 to 100 faults in the paper), for every traffic pattern, in
//! both the 2D and the 3D HyperX. SurePath runs with 4 VCs (3 routing + 1
//! escape), the configuration the paper highlights as a 33% VC saving.
//!
//! Ported onto the campaign runner: the whole grid is one declarative
//! [`CampaignSpec`] per network, executed on a bounded work-stealing pool
//! and streamed to a resumable JSONL store (`--store`, default
//! `results/fig06_<scale>.jsonl`). Re-running the binary skips every
//! fingerprint-complete point, so an interrupted `--full` run resumes where
//! it stopped instead of starting over.

use hyperx_bench::{
    fault_steps, replicas, saturation_load, sides_2d, sides_3d, windows, HarnessOptions, Scale,
};
use hyperx_routing::MechanismSpec;
use surepath_core::{replicated_rate_points, CampaignSpec, ResultStore, TopologySpec, TrafficSpec};

const FAULT_SEED: u64 = 20_240_404;

fn network_campaign(
    label: &str,
    scale: Scale,
    sides: Vec<usize>,
    patterns: &[TrafficSpec],
    steps: &[usize],
) -> CampaignSpec {
    let (warmup, measure) = windows(scale);
    CampaignSpec {
        name: format!("fig06-{label}"),
        topologies: vec![TopologySpec {
            sides,
            concentration: None,
        }],
        mechanisms: Some(hyperx_bench::mechanism_keys(
            &MechanismSpec::surepath_lineup(),
        )),
        traffics: Some(patterns.iter().map(|t| t.key().to_string()).collect()),
        scenarios: Some(
            steps
                .iter()
                .map(|count| format!("random:{count}:{FAULT_SEED}"))
                .collect(),
        ),
        loads: Some(vec![saturation_load()]),
        // Every (pattern, fault-count) point replicates across derived seeds
        // — the figure reports the replica mean, the CSV carries the CI.
        replicas: Some(replicas(scale)),
        // The paper's 4-VC SurePath configuration (3 routing + 1 escape).
        vcs: Some(4),
        warmup: Some(warmup),
        measure: Some(measure),
        ..CampaignSpec::default()
    }
}

/// `random:COUNT:SEED` → COUNT.
fn fault_count(scenario: &str) -> usize {
    scenario
        .split(':')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("fig06 scenarios are random:COUNT:SEED")
}

fn render_network(
    name: &str,
    store: &ResultStore,
    campaign: &CampaignSpec,
    patterns: &[TrafficSpec],
    steps: &[usize],
    csv: &mut String,
) {
    println!("=== Figure 6 / {name} ===");
    print!("{:>28} ", "pattern / mechanism");
    for count in steps {
        print!("{:>8}", format!("f={count}"));
    }
    println!();
    // Index the replica-aggregated points by (mechanism, traffic, fault
    // count). Only keyed lookups below — the render order comes from the
    // fixed lineups. The table prints the replica mean; the CSV carries the
    // sample size and ±2σ/√n half-widths.
    let mut cells = std::collections::HashMap::new();
    for point in replicated_rate_points(store, Some(&campaign.name)) {
        let key = (
            point.job.mechanism.clone().unwrap_or_default(),
            point.job.traffic.clone().unwrap_or_default(),
            fault_count(point.job.scenario.as_deref().unwrap_or_default()),
        );
        cells.insert(key, point);
    }
    for &traffic in patterns {
        for mechanism in MechanismSpec::surepath_lineup() {
            print!(
                "{:>28} ",
                format!("{} / {}", traffic.name(), mechanism.name())
            );
            for &count in steps {
                let key = (
                    mechanism.name().to_ascii_lowercase(),
                    traffic.key().to_string(),
                    count,
                );
                let Some(point) = cells.get(&key) else {
                    print!("{:>8}", "-");
                    continue;
                };
                print!("{:>8.3}", point.accepted_load.mean);
                csv.push_str(&format!(
                    "{name},{},{},{count},{},{:.6},{},{:.3},{},{:.5}\n",
                    mechanism.name(),
                    traffic.name().replace(',', ";"),
                    point.n,
                    point.accepted_load.mean,
                    surepath_core::csv_half_width(&point.accepted_load, 6),
                    point.average_latency.mean,
                    surepath_core::csv_half_width(&point.average_latency, 3),
                    point.jain_generated.mean,
                ));
            }
            println!();
        }
    }
    println!();
}

fn main() {
    let opts = HarnessOptions::from_args();
    let steps = fault_steps(opts.scale);
    let store_path = opts.store_path("fig06");
    let mut csv = String::from(
        "network,mechanism,traffic,faults,replicas,accepted_mean,accepted_hw,latency_mean,latency_hw,jain_mean\n",
    );

    let patterns_2d = TrafficSpec::lineup_2d();
    let patterns_3d = TrafficSpec::lineup_3d();
    let networks: Vec<(&str, CampaignSpec, &[TrafficSpec])> = vec![
        (
            "2D HyperX",
            network_campaign("2d", opts.scale, sides_2d(opts.scale), &patterns_2d, &steps),
            &patterns_2d,
        ),
        (
            "3D HyperX",
            network_campaign("3d", opts.scale, sides_3d(opts.scale), &patterns_3d, &steps),
            &patterns_3d,
        ),
    ];

    // Runs locally by default; `--distributed N` fans the same grids out to
    // N TCP workers (the store is byte-identical either way).
    let specs: Vec<surepath_core::CampaignSpec> = networks
        .iter()
        .map(|(_, campaign, _)| campaign.clone())
        .collect();
    let store = hyperx_bench::run_campaigns_to_store(&opts, "fig06", &specs);
    for (name, campaign, patterns) in &networks {
        render_network(name, &store, campaign, patterns, &steps, &mut csv);
    }

    println!("Paper shape to check: degradation is smooth — Uniform drops roughly from 0.9 to 0.8");
    println!("over 100 faults on the full-size networks, the adversarial patterns barely move.");
    println!(
        "(campaign store: {}; rerun to resume/skip)",
        store_path.display()
    );
    opts.maybe_write_csv(&csv);
}
