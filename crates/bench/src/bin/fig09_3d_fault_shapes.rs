//! Figure 9: accepted load of OmniSP and PolSP on the 3D HyperX under the
//! Row, Subcube and Star fault shapes for all four traffic patterns, with the
//! healthy-network reference.

use hyperx_bench::{experiment_3d, saturation_load, HarnessOptions, Scale};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{FaultScenario, TrafficSpec};

fn scenarios(scale: Scale) -> Vec<(&'static str, FaultScenario)> {
    match scale {
        Scale::Paper => vec![
            ("Row", FaultScenario::row_3d()),
            ("Subcube", FaultScenario::subcube_3d()),
            ("Star", FaultScenario::star_3d()),
        ],
        // 4×4×4 analogues; the Star still leaves the escape root with one
        // live link per dimension.
        Scale::Quick => vec![
            (
                "Row",
                FaultScenario::Shape(FaultShape::Row {
                    along_dim: 0,
                    at: vec![0, 2, 2],
                }),
            ),
            (
                "Subcube",
                FaultScenario::Shape(FaultShape::Subgrid {
                    low: vec![1, 1, 1],
                    size: 2,
                }),
            ),
            (
                "Star",
                FaultScenario::Shape(FaultShape::Cross {
                    center: vec![2, 2, 2],
                    margin: 1,
                }),
            ),
        ],
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let load = saturation_load();
    let mut csv =
        String::from("shape,traffic,mechanism,accepted_load,healthy_reference,drop_percent\n");
    for (shape_name, scenario) in scenarios(opts.scale) {
        println!("=== Figure 9 / {shape_name} faults ===");
        println!(
            "{:>44}  {:>8}  {:>8}  {:>8}",
            "traffic / mechanism", "faulty", "healthy", "drop%"
        );
        for traffic in TrafficSpec::lineup_3d() {
            for mechanism in MechanismSpec::surepath_lineup() {
                let faulty = experiment_3d(opts.scale, mechanism, traffic)
                    .with_scenario(scenario.clone())
                    .with_num_vcs(4)
                    .run_rate(load);
                let healthy = experiment_3d(opts.scale, mechanism, traffic)
                    .with_num_vcs(4)
                    .run_rate(load);
                let drop = if healthy.accepted_load > 0.0 {
                    100.0 * (1.0 - faulty.accepted_load / healthy.accepted_load)
                } else {
                    0.0
                };
                println!(
                    "{:>44}  {:>8.3}  {:>8.3}  {:>8.1}",
                    format!("{} / {}", traffic.name(), mechanism.name()),
                    faulty.accepted_load,
                    healthy.accepted_load,
                    drop
                );
                csv.push_str(&format!(
                    "{shape_name},{},{},{:.6},{:.6},{:.2}\n",
                    traffic.name().replace(',', ";"),
                    mechanism.name(),
                    faulty.accepted_load,
                    healthy.accepted_load,
                    drop
                ));
            }
        }
        println!();
    }
    println!("Paper shapes to check: Row and Subcube behave like the 2D case; the Star is the");
    println!("extreme one. Under Star + Regular Permutation to Neighbour, OmniSP's peak accepted");
    println!("load beats PolSP (the in-cast at the root floods Polarized's many routes), the");
    println!("surprising inversion Figure 10 then explains via completion time.");
    opts.maybe_write_csv(&csv);
}
