//! Figure 9: accepted load of OmniSP and PolSP on the 3D HyperX under the
//! Row, Subcube and Star fault shapes for all four traffic patterns, with the
//! healthy-network reference.
//!
//! Runs as one declarative campaign (explicit-coordinate scenario strings,
//! healthy reference included) with a resumable store; rendered from the
//! store (see fig08).

use hyperx_bench::{
    mechanism_keys, render_fault_shape_figure, run_campaigns_to_store, saturation_load, sides_3d,
    traffic_keys, windows, HarnessOptions, Scale,
};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{CampaignSpec, FaultScenario, TopologySpec, TrafficSpec};

fn scenarios(scale: Scale) -> Vec<(&'static str, FaultScenario)> {
    match scale {
        Scale::Paper => vec![
            ("Row", FaultScenario::row_3d()),
            ("Subcube", FaultScenario::subcube_3d()),
            ("Star", FaultScenario::star_3d()),
        ],
        // 4×4×4 analogues; the Star still leaves the escape root with one
        // live link per dimension.
        Scale::Quick => vec![
            (
                "Row",
                FaultScenario::Shape(FaultShape::Row {
                    along_dim: 0,
                    at: vec![0, 2, 2],
                }),
            ),
            (
                "Subcube",
                FaultScenario::Shape(FaultShape::Subgrid {
                    low: vec![1, 1, 1],
                    size: 2,
                }),
            ),
            (
                "Star",
                FaultScenario::Shape(FaultShape::Cross {
                    center: vec![2, 2, 2],
                    margin: 1,
                }),
            ),
        ],
    }
}

fn campaign(scale: Scale, shapes: &[(&str, FaultScenario)]) -> CampaignSpec {
    let (warmup, measure) = windows(scale);
    let mut scenario_keys = vec!["none".to_string()];
    scenario_keys.extend(shapes.iter().map(|(_, s)| s.key()));
    CampaignSpec {
        name: "fig09-3d".to_string(),
        topologies: vec![TopologySpec {
            sides: sides_3d(scale),
            concentration: None,
        }],
        mechanisms: Some(mechanism_keys(&MechanismSpec::surepath_lineup())),
        traffics: Some(traffic_keys(&TrafficSpec::lineup_3d())),
        scenarios: Some(scenario_keys),
        loads: Some(vec![saturation_load()]),
        // Mean ± CI per point (see fig08).
        replicas: Some(hyperx_bench::replicas(scale)),
        vcs: Some(4),
        warmup: Some(warmup),
        measure: Some(measure),
        ..CampaignSpec::default()
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let shapes = scenarios(opts.scale);
    let spec = campaign(opts.scale, &shapes);
    let store = run_campaigns_to_store(&opts, "fig09", std::slice::from_ref(&spec));

    let mut csv = String::from(
        "shape,traffic,mechanism,replicas,accepted_mean,accepted_hw,healthy_mean,healthy_hw,drop_percent\n",
    );
    render_fault_shape_figure(
        "Figure 9",
        44,
        &store,
        &spec.name,
        &TrafficSpec::lineup_3d(),
        &shapes,
        &mut csv,
    );
    println!("Paper shapes to check: Row and Subcube behave like the 2D case; the Star is the");
    println!("extreme one. Under Star + Regular Permutation to Neighbour, OmniSP's peak accepted");
    println!("load beats PolSP (the in-cast at the root floods Polarized's many routes), the");
    println!("surprising inversion Figure 10 then explains via completion time.");
    opts.maybe_write_csv(&csv);
}
