//! Table 4: the routing mechanisms evaluated and their virtual-channel usage.
//!
//! Unlike every other binary here, this table is static documentation data
//! (`surepath_core::mechanism_table`) — there is no simulation or analysis
//! to execute, so there is nothing for the campaign runner to schedule,
//! fingerprint or resume. It stays a plain formatter.

use hyperx_bench::HarnessOptions;
use surepath_core::format_mechanism_table;

fn main() {
    let opts = HarnessOptions::from_args();
    let table = format_mechanism_table();
    println!("Table 4: routing mechanisms evaluated");
    println!();
    println!("{table}");
    println!(
        "All mechanisms are compared with the same 2n VCs per port (4 in 2D, 6 in 3D); the \
         SurePath configurations additionally run the fault experiments with only 4 VCs."
    );
    opts.maybe_write_csv(&table);
}
