//! Figure 8: accepted load of OmniSP and PolSP on the 2D HyperX when all the
//! links of a geometric shape fail — Row, Subplane and Cross — under Uniform,
//! Random Server Permutation and Dimension Complement Reverse traffic, with
//! the healthy-network value as a reference mark.
//!
//! Ported onto the campaign runner: faulty shapes and the healthy reference
//! are one declarative grid (the scenario strings carry explicit shape
//! coordinates, `FaultScenario::key()`), executed on the work-stealing pool
//! with a resumable store and rendered from the store.

use hyperx_bench::{
    mechanism_keys, render_fault_shape_figure, run_campaigns_to_store, saturation_load, sides_2d,
    traffic_keys, windows, HarnessOptions, Scale,
};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{CampaignSpec, FaultScenario, TopologySpec, TrafficSpec};

fn scenarios(scale: Scale) -> Vec<(&'static str, FaultScenario)> {
    match scale {
        Scale::Paper => vec![
            ("Row", FaultScenario::row_2d()),
            ("Subplane", FaultScenario::subplane_2d()),
            ("Cross", FaultScenario::cross_2d()),
        ],
        // Scaled-down analogues on the 8×8 network, keeping the defining
        // property of each shape (Cross still goes through the escape root).
        Scale::Quick => vec![
            (
                "Row",
                FaultScenario::Shape(FaultShape::Row {
                    along_dim: 0,
                    at: vec![0, 4],
                }),
            ),
            (
                "Subplane",
                FaultScenario::Shape(FaultShape::Subgrid {
                    low: vec![2, 2],
                    size: 3,
                }),
            ),
            (
                "Cross",
                FaultScenario::Shape(FaultShape::Cross {
                    center: vec![4, 4],
                    margin: 2,
                }),
            ),
        ],
    }
}

fn campaign(scale: Scale, shapes: &[(&str, FaultScenario)]) -> CampaignSpec {
    let (warmup, measure) = windows(scale);
    let mut scenario_keys = vec!["none".to_string()];
    scenario_keys.extend(shapes.iter().map(|(_, s)| s.key()));
    CampaignSpec {
        name: "fig08-2d".to_string(),
        topologies: vec![TopologySpec {
            sides: sides_2d(scale),
            concentration: None,
        }],
        mechanisms: Some(mechanism_keys(&MechanismSpec::surepath_lineup())),
        traffics: Some(traffic_keys(&TrafficSpec::lineup_2d())),
        scenarios: Some(scenario_keys),
        loads: Some(vec![saturation_load()]),
        // Every point replicates across derived seeds: the figure reports
        // mean ± CI instead of a single draw.
        replicas: Some(hyperx_bench::replicas(scale)),
        // The paper's 4-VC SurePath configuration, healthy reference included.
        vcs: Some(4),
        warmup: Some(warmup),
        measure: Some(measure),
        ..CampaignSpec::default()
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let shapes = scenarios(opts.scale);
    let spec = campaign(opts.scale, &shapes);
    let store = run_campaigns_to_store(&opts, "fig08", std::slice::from_ref(&spec));

    let mut csv = String::from(
        "shape,traffic,mechanism,replicas,accepted_mean,accepted_hw,healthy_mean,healthy_hw,drop_percent\n",
    );
    render_fault_shape_figure(
        "Figure 8",
        32,
        &store,
        &spec.name,
        &TrafficSpec::lineup_2d(),
        &shapes,
        &mut csv,
    );
    println!("Paper shape to check: Row and Subplane lose around 11%, the Cross (which removes");
    println!("two thirds of the escape root's links) is the stressful one with a ~37% drop under Uniform.");
    opts.maybe_write_csv(&csv);
}
