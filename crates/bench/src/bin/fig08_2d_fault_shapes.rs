//! Figure 8: accepted load of OmniSP and PolSP on the 2D HyperX when all the
//! links of a geometric shape fail — Row, Subplane and Cross — under Uniform,
//! Random Server Permutation and Dimension Complement Reverse traffic, with
//! the healthy-network value as a reference mark.

use hyperx_bench::{experiment_2d, saturation_load, HarnessOptions, Scale};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{FaultScenario, TrafficSpec};

fn scenarios(scale: Scale) -> Vec<(&'static str, FaultScenario)> {
    match scale {
        Scale::Paper => vec![
            ("Row", FaultScenario::row_2d()),
            ("Subplane", FaultScenario::subplane_2d()),
            ("Cross", FaultScenario::cross_2d()),
        ],
        // Scaled-down analogues on the 8×8 network, keeping the defining
        // property of each shape (Cross still goes through the escape root).
        Scale::Quick => vec![
            (
                "Row",
                FaultScenario::Shape(FaultShape::Row {
                    along_dim: 0,
                    at: vec![0, 4],
                }),
            ),
            (
                "Subplane",
                FaultScenario::Shape(FaultShape::Subgrid {
                    low: vec![2, 2],
                    size: 3,
                }),
            ),
            (
                "Cross",
                FaultScenario::Shape(FaultShape::Cross {
                    center: vec![4, 4],
                    margin: 2,
                }),
            ),
        ],
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let load = saturation_load();
    let mut csv =
        String::from("shape,traffic,mechanism,accepted_load,healthy_reference,drop_percent\n");
    for (shape_name, scenario) in scenarios(opts.scale) {
        println!("=== Figure 8 / {shape_name} faults ===");
        println!(
            "{:>32}  {:>8}  {:>8}  {:>8}",
            "traffic / mechanism", "faulty", "healthy", "drop%"
        );
        for traffic in TrafficSpec::lineup_2d() {
            for mechanism in MechanismSpec::surepath_lineup() {
                let faulty = experiment_2d(opts.scale, mechanism, traffic)
                    .with_scenario(scenario.clone())
                    .with_num_vcs(4)
                    .run_rate(load);
                let healthy = experiment_2d(opts.scale, mechanism, traffic)
                    .with_num_vcs(4)
                    .run_rate(load);
                let drop = if healthy.accepted_load > 0.0 {
                    100.0 * (1.0 - faulty.accepted_load / healthy.accepted_load)
                } else {
                    0.0
                };
                println!(
                    "{:>32}  {:>8.3}  {:>8.3}  {:>8.1}",
                    format!("{} / {}", traffic.name(), mechanism.name()),
                    faulty.accepted_load,
                    healthy.accepted_load,
                    drop
                );
                csv.push_str(&format!(
                    "{shape_name},{},{},{:.6},{:.6},{:.2}\n",
                    traffic.name().replace(',', ";"),
                    mechanism.name(),
                    faulty.accepted_load,
                    healthy.accepted_load,
                    drop
                ));
            }
        }
        println!();
    }
    println!("Paper shape to check: Row and Subplane lose around 11%, the Cross (which removes");
    println!("two thirds of the escape root's links) is the stressful one with a ~37% drop under Uniform.");
    opts.maybe_write_csv(&csv);
}
