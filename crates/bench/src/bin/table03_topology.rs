//! Table 3: topological parameters of the evaluated HyperX networks.
//!
//! Ported onto the campaign runner with a custom `topology` job kind (like
//! fig01's `diameter` kind): one job per network, each computing a
//! [`TopologyReport`] (the all-pairs BFS behind the diameter and average
//! distance columns) on the work-stealing pool. Results are fingerprinted
//! and cached in the store, so re-rendering the table is instant.

use hyperx_bench::HarnessOptions;
use hyperx_topology::{HyperX, TopologyReport};
use surepath_core::{topology_table_from_reports, CampaignSpec, ResultStore, TopologySpec};
use surepath_runner::{job_fingerprint, JobSpec};

/// The networks of Table 3 (paper sizes plus the `--quick` analogues), with
/// their display names and concentrations.
fn networks() -> Vec<(&'static str, Vec<usize>, usize)> {
    vec![
        ("2D HyperX 16x16", vec![16, 16], 16),
        ("3D HyperX 8x8x8", vec![8, 8, 8], 8),
        ("quick 2D 8x8", vec![8, 8], 8),
        ("quick 3D 4x4x4", vec![4, 4, 4], 4),
    ]
}

fn campaign() -> CampaignSpec {
    CampaignSpec {
        name: "table03-topology".to_string(),
        kind: Some("topology".to_string()),
        topologies: networks()
            .into_iter()
            .map(|(_, sides, concentration)| TopologySpec {
                sides,
                concentration: Some(concentration),
            })
            .collect(),
        ..CampaignSpec::default()
    }
}

/// Executes one `topology` job: compute the Table 3 report of the job's
/// HyperX at its concentration.
fn run_topology_job(job: &JobSpec) -> Result<serde::Value, String> {
    if job.kind != "topology" {
        return Err(format!(
            "table03 only understands topology jobs, got '{}'",
            job.kind
        ));
    }
    let hx = HyperX::new(&job.sides);
    let concentration = job.concentration.unwrap_or(job.sides[0]);
    let report = TopologyReport::for_hyperx(&hx, concentration);
    serde_json::to_value(&report).map_err(|e| e.to_string())
}

fn main() {
    let opts = HarnessOptions::from_args();
    let spec = campaign();
    let store_path = opts.store_path("table03");
    let outcome =
        surepath_runner::run_campaign(&spec, &store_path, opts.threads, true, run_topology_job)
            .unwrap_or_else(|e| {
                eprintln!("campaign failed: {e}");
                std::process::exit(1);
            });
    eprintln!(
        "table03: {} networks ({} skipped, {} executed, {} failed)",
        outcome.total, outcome.skipped, outcome.executed, outcome.failed
    );

    let store = ResultStore::open_read_only(&store_path).unwrap_or_else(|e| {
        eprintln!("cannot reopen store {}: {e}", store_path.display());
        std::process::exit(1);
    });
    let jobs = spec.expand().expect("table03 campaign expands");
    let mut reports: Vec<(String, TopologyReport)> = Vec::new();
    for ((name, _, _), job) in networks().iter().zip(&jobs) {
        match store.record(&job_fingerprint(job)) {
            Some(record) if record.status == "ok" => {
                let report: TopologyReport = serde_json::from_value(
                    record.result.clone().expect("ok records carry results"),
                )
                .expect("topology reports deserialize");
                reports.push((name.to_string(), report));
            }
            _ => eprintln!("{name}: missing from store; rerun to retry"),
        }
    }

    println!("Table 3: topological parameters");
    println!();
    let table = topology_table_from_reports(&reports);
    println!("{table}");
    println!(
        "Paper values (2D): 256 switches, radix 46, 4096 servers, 3840 links, diameter 2, avg 1.8"
    );
    println!("Paper values (3D): 512 switches, radix 29, 4096 servers, 5376 links, diameter 3, avg 2.625");
    println!(
        "(campaign store: {}; rerun to resume/skip)",
        store_path.display()
    );
    opts.maybe_write_csv(&table);
}
