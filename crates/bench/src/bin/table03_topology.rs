//! Table 3: topological parameters of the evaluated HyperX networks.

use hyperx_bench::HarnessOptions;
use hyperx_topology::HyperX;
use surepath_core::topology_table;

fn main() {
    let opts = HarnessOptions::from_args();
    let table = topology_table(&[
        ("2D HyperX 16x16", HyperX::regular(2, 16), 16),
        ("3D HyperX 8x8x8", HyperX::regular(3, 8), 8),
        ("quick 2D 8x8", HyperX::regular(2, 8), 8),
        ("quick 3D 4x4x4", HyperX::regular(3, 4), 4),
    ]);
    println!("Table 3: topological parameters");
    println!();
    println!("{table}");
    println!(
        "Paper values (2D): 256 switches, radix 46, 4096 servers, 3840 links, diameter 2, avg 1.8"
    );
    println!("Paper values (3D): 512 switches, radix 29, 4096 servers, 5376 links, diameter 3, avg 2.625");
    opts.maybe_write_csv(&table);
}
