//! Figure 5: fault-free performance on the 3D HyperX — the same sweep as
//! Figure 4 plus the Regular Permutation to Neighbour pattern that separates
//! Omnidimensional routes from Polarized routes.

use hyperx_bench::{experiment_3d, load_grid, HarnessOptions};
use hyperx_routing::MechanismSpec;
use surepath_core::{
    format_rate_table, rate_metrics_to_csv, sweep_mechanisms, FaultScenario, TrafficSpec,
};

fn main() {
    let opts = HarnessOptions::from_args();
    let loads = load_grid(opts.scale);
    let mechanisms = MechanismSpec::fault_free_lineup();
    let mut all_points = Vec::new();
    for traffic in TrafficSpec::lineup_3d() {
        println!("=== Figure 5 / {} ===", traffic.name());
        let template = experiment_3d(opts.scale, MechanismSpec::OmniSP, traffic);
        let points = sweep_mechanisms(
            &template,
            &mechanisms,
            traffic,
            &FaultScenario::None,
            &loads,
        );
        println!("{}", format_rate_table(&points));
        all_points.extend(points);
    }
    println!("Paper shapes to check: under Regular Permutation to Neighbour, OmniWAR/OmniSP stay");
    println!(
        "near 0.5 while Polarized/PolSP exceed it; SurePath variants lead the other patterns."
    );
    opts.maybe_write_csv(&rate_metrics_to_csv(&all_points));
}
