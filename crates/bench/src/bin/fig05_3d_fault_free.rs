//! Figure 5: fault-free performance on the 3D HyperX — the same sweep as
//! Figure 4 plus the Regular Permutation to Neighbour pattern that separates
//! Omnidimensional routes from Polarized routes.
//!
//! Runs as one declarative campaign on the work-stealing pool with a
//! resumable store; the tables are rendered from the store (see fig04).

use hyperx_bench::{
    load_grid, mechanism_keys, run_campaigns_to_store, sides_3d, traffic_keys, windows,
    HarnessOptions, Scale,
};
use hyperx_routing::MechanismSpec;
use surepath_core::{
    format_rate_table, rate_metrics_to_csv, rate_points_from_store, CampaignSpec, TopologySpec,
    TrafficSpec,
};

fn campaign(scale: Scale) -> CampaignSpec {
    let (warmup, measure) = windows(scale);
    CampaignSpec {
        name: "fig05-3d".to_string(),
        topologies: vec![TopologySpec {
            sides: sides_3d(scale),
            concentration: None,
        }],
        mechanisms: Some(mechanism_keys(&MechanismSpec::fault_free_lineup())),
        traffics: Some(traffic_keys(&TrafficSpec::lineup_3d())),
        scenarios: Some(vec!["none".to_string()]),
        loads: Some(load_grid(scale)),
        // Fair comparison: every mechanism gets its default 2n VCs (vcs: None).
        warmup: Some(warmup),
        measure: Some(measure),
        ..CampaignSpec::default()
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let spec = campaign(opts.scale);
    let store = run_campaigns_to_store(&opts, "fig05", std::slice::from_ref(&spec));

    let points = rate_points_from_store(&store, Some(&spec.name));
    let mut all_points = Vec::new();
    for traffic in TrafficSpec::lineup_3d() {
        println!("=== Figure 5 / {} ===", traffic.name());
        let group: Vec<_> = points
            .iter()
            .filter(|p| p.traffic == traffic.name())
            .cloned()
            .collect();
        println!("{}", format_rate_table(&group));
        all_points.extend(group);
    }
    println!("Paper shapes to check: under Regular Permutation to Neighbour, OmniWAR/OmniSP stay");
    println!(
        "near 0.5 while Polarized/PolSP exceed it; SurePath variants lead the other patterns."
    );
    opts.maybe_write_csv(&rate_metrics_to_csv(&all_points));
}
