//! Ablation: SurePath throughput as a function of its virtual-channel budget.
//!
//! The paper argues (§3.1, §6) that SurePath needs only 2 VCs to function
//! (1 routing + 1 escape), uses 4 VCs in the fault experiments, and matches
//! the Ladder mechanisms' 2n VCs in the fair fault-free comparison. This
//! binary quantifies that claim by sweeping the VC budget for OmniSP and
//! PolSP on the 3D network, healthy and under the Star faults.

use hyperx_bench::{experiment_3d, saturation_load, HarnessOptions, Scale};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{
    ablation_to_csv, format_ablation_table, vc_count_study, FaultScenario, TrafficSpec,
};

fn star(scale: Scale) -> FaultScenario {
    match scale {
        Scale::Paper => FaultScenario::star_3d(),
        Scale::Quick => FaultScenario::Shape(FaultShape::Cross {
            center: vec![2, 2, 2],
            margin: 1,
        }),
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let load = saturation_load();
    let vc_counts = [2usize, 3, 4, 6];
    let mut all = Vec::new();

    for (scenario_name, scenario) in [("Healthy", FaultScenario::None), ("Star", star(opts.scale))]
    {
        for mechanism in MechanismSpec::surepath_lineup() {
            println!(
                "=== VC-count ablation / {} / {} / Uniform / offered {:.2} ===",
                scenario_name,
                mechanism.name(),
                load
            );
            let template = experiment_3d(opts.scale, mechanism, TrafficSpec::Uniform)
                .with_scenario(scenario.clone());
            let points = vc_count_study(&template, &vc_counts, load);
            print!("{}", format_ablation_table(&points));
            println!();
            all.extend(points);
        }
    }

    println!("Paper claim to check: accepted load barely moves between 2 and 2n VCs for SurePath,");
    println!(
        "whereas the Ladder mechanisms cannot even run with fewer than 2n VCs on long routes."
    );
    opts.maybe_write_csv(&ablation_to_csv(&all));
}
