//! Ablation: SurePath throughput as a function of its virtual-channel budget.
//!
//! The paper argues (§3.1, §6) that SurePath needs only 2 VCs to function
//! (1 routing + 1 escape), uses 4 VCs in the fault experiments, and matches
//! the Ladder mechanisms' 2n VCs in the fair fault-free comparison. This
//! binary quantifies that claim by sweeping the VC budget for OmniSP and
//! PolSP on the 3D network, healthy and under the Star faults.
//!
//! Ported onto the campaign runner: the VC budget is a grid dimension
//! (`vc_counts`), one declarative campaign per scenario, both resumable in
//! the shared store and rendered from it.

use hyperx_bench::{
    mechanism_keys, replicas, run_campaigns_to_store, saturation_load, sides_3d, windows,
    HarnessOptions, Scale,
};
use hyperx_routing::MechanismSpec;
use hyperx_topology::FaultShape;
use surepath_core::{
    ablation_points_from_store, ablation_to_csv, format_ablation_table, CampaignSpec,
    FaultScenario, TopologySpec,
};

fn star(scale: Scale) -> FaultScenario {
    match scale {
        Scale::Paper => FaultScenario::star_3d(),
        Scale::Quick => FaultScenario::Shape(FaultShape::Cross {
            center: vec![2, 2, 2],
            margin: 1,
        }),
    }
}

fn campaign(scale: Scale, label: &str, scenario: &FaultScenario) -> CampaignSpec {
    let (warmup, measure) = windows(scale);
    CampaignSpec {
        name: format!("ablation-vc-{label}"),
        topologies: vec![TopologySpec {
            sides: sides_3d(scale),
            concentration: None,
        }],
        mechanisms: Some(mechanism_keys(&MechanismSpec::surepath_lineup())),
        traffics: Some(vec!["uniform".to_string()]),
        scenarios: Some(vec![scenario.key()]),
        loads: Some(vec![saturation_load()]),
        // Replica means per VC budget instead of single draws.
        replicas: Some(replicas(scale)),
        vc_counts: Some(vec![2, 3, 4, 6]),
        warmup: Some(warmup),
        measure: Some(measure),
        ..CampaignSpec::default()
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let load = saturation_load();
    let cases = [
        ("Healthy", "healthy", FaultScenario::None),
        ("Star", "star", star(opts.scale)),
    ];
    let campaigns: Vec<CampaignSpec> = cases
        .iter()
        .map(|(_, label, scenario)| campaign(opts.scale, label, scenario))
        .collect();
    let store = run_campaigns_to_store(&opts, "ablation_vc", &campaigns);

    let mut all = Vec::new();
    for ((scenario_name, _, _), spec) in cases.iter().zip(&campaigns) {
        let points = ablation_points_from_store(&store, &spec.name, "vcs", |_| true);
        for mechanism in MechanismSpec::surepath_lineup() {
            println!(
                "=== VC-count ablation / {} / {} / Uniform / offered {:.2} ===",
                scenario_name,
                mechanism.name(),
                load
            );
            let group: Vec<_> = points
                .iter()
                .filter(|p| p.mechanism == mechanism.name())
                .cloned()
                .collect();
            print!("{}", format_ablation_table(&group));
            println!();
        }
        all.extend(points);
    }

    println!("Paper claim to check: accepted load barely moves between 2 and 2n VCs for SurePath,");
    println!(
        "whereas the Ladder mechanisms cannot even run with fewer than 2n VCs on long routes."
    );
    opts.maybe_write_csv(&ablation_to_csv(&all));
}
