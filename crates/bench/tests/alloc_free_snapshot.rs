//! Micro-assert: deriving a metrics snapshot from the engine's counters is
//! allocation-free.
//!
//! `RateMetrics::from_counters` moves the 976-bucket latency histogram out
//! of the counters (`std::mem::take` on an inline array) instead of cloning
//! it, and streams the Jain index over the per-server counts instead of
//! materialising a load vector. This test pins that property with a counting
//! global allocator: any future clone, `to_vec` or boxed histogram in the
//! snapshot path fails here before it shows up in the bench numbers.
//!
//! Lives in its own integration-test binary because a `#[global_allocator]`
//! is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hyperx_sim::{MeasuredCounters, RateMetrics};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn metrics_snapshot_does_not_allocate() {
    // A populated counter set: per-server generation counts plus a latency
    // histogram with records spread across its bucket range.
    let servers = 512;
    let mut counters = MeasuredCounters::new(servers);
    counters.cycles = 10_000;
    counters.delivered_packets = 40_000;
    counters.delivered_phits = 640_000;
    counters.latency_sum = 3_200_000;
    counters.latency_max = 9_751;
    counters.delivered_via_escape = 1_024;
    counters.hop_sum = 120_000;
    counters.escape_hop_sum = 2_048;
    for (i, count) in counters.generated_per_server.iter_mut().enumerate() {
        *count = (i as u64 * 7) % 97;
    }
    for lat in (1..2_000).step_by(13) {
        counters.latency_hist.record(lat);
    }
    counters.latency_hist.record(9_751);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let metrics = RateMetrics::from_counters(0.5, 16, servers, &mut counters, 37, false);
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "RateMetrics::from_counters must not allocate: the histogram moves \
         via mem::take and the Jain index streams over the counters"
    );
    // The histogram really moved: the snapshot has the records, the
    // counters are left with an empty (taken) histogram.
    let hist = metrics
        .latency_hist
        .expect("snapshot carries the histogram");
    assert!(hist.count() > 0);
    assert!(counters.latency_hist.is_empty());
    assert_eq!(metrics.delivered_packets, 40_000);
}
