//! Criterion micro-benchmarks of the topology substrate: HyperX construction,
//! all-pairs BFS, Up/Down escape construction and fault-shape expansion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hyperx_topology::{DistanceMatrix, FaultSet, FaultShape, HyperX, UpDownEscape};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology/construction");
    group.bench_function("hyperx_16x16", |b| {
        b.iter(|| black_box(HyperX::regular(2, 16)));
    });
    group.bench_function("hyperx_8x8x8", |b| {
        b.iter(|| black_box(HyperX::regular(3, 8)));
    });
    group.finish();
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology/distances");
    group.sample_size(20);
    let hx2 = HyperX::regular(2, 16);
    let hx3 = HyperX::regular(3, 8);
    group.bench_function("all_pairs_bfs_16x16", |b| {
        b.iter(|| black_box(DistanceMatrix::compute(hx2.network())));
    });
    group.bench_function("all_pairs_bfs_8x8x8", |b| {
        b.iter(|| black_box(DistanceMatrix::compute(hx3.network())));
    });
    group.finish();
}

fn bench_escape_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology/updown_escape");
    group.sample_size(20);
    let hx2 = HyperX::regular(2, 16);
    let hx3 = HyperX::regular(3, 8);
    group.bench_function("build_16x16", |b| {
        b.iter(|| black_box(UpDownEscape::new(hx2.network(), 0)));
    });
    group.bench_function("build_8x8x8", |b| {
        b.iter(|| black_box(UpDownEscape::new(hx3.network(), 0)));
    });
    // Rebuild after a failure: the cost the paper attributes to fault recovery.
    group.bench_function("rebuild_after_star_fault_8x8x8", |b| {
        let shape = FaultShape::Cross {
            center: vec![4, 4, 4],
            margin: 1,
        };
        let faults = FaultSet::from_shape(&shape, &hx3);
        b.iter_batched(
            || {
                let mut net = hx3.network().clone();
                faults.apply(&mut net);
                net
            },
            |net| black_box(UpDownEscape::new(&net, hx3.switch_id(&[4, 4, 4]))),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_fault_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology/faults");
    let hx3 = HyperX::regular(3, 8);
    group.bench_function("random_sequence_100_faults", |b| {
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(7),
            |mut rng| black_box(FaultSet::random_sequence(hx3.network(), 100, &mut rng)),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("star_shape_expansion", |b| {
        let shape = FaultShape::Cross {
            center: vec![4, 4, 4],
            margin: 1,
        };
        b.iter(|| black_box(shape.links(&hx3)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_distances,
    bench_escape_tables,
    bench_fault_models
);
criterion_main!(benches);
