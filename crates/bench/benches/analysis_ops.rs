//! Criterion benchmarks of the structural-analysis layer added on top of the
//! paper's substrate: shortest-path counting, edge-disjoint path diversity,
//! survivability reports and root-selection policies. These are the
//! operations a fabric manager would run after every failure event, so their
//! cost matters even though they are off the simulator's critical path.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperx_topology::{
    edge_disjoint_paths, shortest_path_count, survivability_under_faults, DistanceHistogram,
    FaultSet, HyperX, RootPolicy,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_path_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/paths");
    let hx = HyperX::regular(3, 8);
    let a = hx.switch_id(&[0, 0, 0]);
    let b = hx.switch_id(&[7, 7, 7]);
    group.bench_function("shortest_path_count_8x8x8", |bch| {
        bch.iter(|| black_box(shortest_path_count(hx.network(), a, b)))
    });
    group.bench_function("edge_disjoint_paths_8x8x8", |bch| {
        bch.iter(|| black_box(edge_disjoint_paths(hx.network(), a, b)))
    });
    group.finish();
}

fn bench_histograms_and_survivability(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/global");
    group.sample_size(10);
    let hx = HyperX::regular(2, 16);
    group.bench_function("distance_histogram_16x16", |bch| {
        bch.iter(|| black_box(DistanceHistogram::from_network(hx.network())))
    });
    let healthy = hx.network().clone();
    let mut faulty = healthy.clone();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    FaultSet::random_sequence(&healthy, 100, &mut rng).apply(&mut faulty);
    group.bench_function("survivability_100faults_200pairs", |bch| {
        bch.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            black_box(survivability_under_faults(
                &healthy,
                &faulty,
                Some(200),
                &mut rng,
            ))
        })
    });
    group.finish();
}

fn bench_root_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/root_selection");
    group.sample_size(10);
    let hx = HyperX::regular(3, 8);
    let mut net = hx.network().clone();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    FaultSet::random_sequence(&net, 100, &mut rng).apply(&mut net);
    group.bench_function("max_alive_degree_8x8x8", |bch| {
        bch.iter(|| black_box(RootPolicy::MaxAliveDegree.select(&net)))
    });
    group.bench_function("min_eccentricity_8x8x8", |bch| {
        bch.iter(|| black_box(RootPolicy::MinEccentricity.select(&net)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_path_analysis,
    bench_histograms_and_survivability,
    bench_root_selection
);
criterion_main!(benches);
