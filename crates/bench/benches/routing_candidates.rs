//! Criterion micro-benchmarks of candidate generation — the per-packet,
//! per-switch hot path of the simulator — for every routing mechanism.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperx_routing::{Candidate, MechanismSpec, NetworkView};
use hyperx_topology::{FaultSet, HyperX};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::sync::Arc;

fn bench_mechanism_candidates(c: &mut Criterion) {
    let view = Arc::new(NetworkView::healthy(HyperX::regular(3, 8), 0));
    let mut group = c.benchmark_group("routing/candidates_8x8x8");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    // A representative set of (source, destination) pairs at various distances.
    let pairs: Vec<(usize, usize)> = (0..64)
        .map(|i| (i * 7 % 512, (i * 13 + 101) % 512))
        .filter(|(a, b)| a != b)
        .collect();
    for spec in MechanismSpec::fault_free_lineup() {
        let mech = spec.build_default(view.clone());
        let states: Vec<_> = pairs
            .iter()
            .map(|&(s, d)| (s, mech.init_packet(s, d, &mut rng)))
            .collect();
        group.bench_function(spec.name(), |b| {
            let mut out: Vec<Candidate> = Vec::with_capacity(64);
            b.iter(|| {
                let mut total = 0usize;
                for (current, state) in &states {
                    out.clear();
                    mech.candidates(state, *current, &mut out);
                    total += out.len();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_candidates_under_faults(c: &mut Criterion) {
    let hx = HyperX::regular(3, 8);
    let mut frng = ChaCha8Rng::seed_from_u64(3);
    let faults = FaultSet::random_sequence(hx.network(), 100, &mut frng);
    let view = Arc::new(NetworkView::with_faults(hx, &faults, 0));
    let mut group = c.benchmark_group("routing/candidates_8x8x8_100_faults");
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let pairs: Vec<(usize, usize)> = (0..64)
        .map(|i| (i * 11 % 512, (i * 17 + 31) % 512))
        .filter(|(a, b)| a != b)
        .collect();
    for spec in MechanismSpec::surepath_lineup() {
        let mech = spec.build(view.clone(), 4);
        let states: Vec<_> = pairs
            .iter()
            .map(|&(s, d)| (s, mech.init_packet(s, d, &mut rng)))
            .collect();
        group.bench_function(spec.name(), |b| {
            let mut out: Vec<Candidate> = Vec::with_capacity(64);
            b.iter(|| {
                let mut total = 0usize;
                for (current, state) in &states {
                    out.clear();
                    mech.candidates(state, *current, &mut out);
                    total += out.len();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_view_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing/view_rebuild");
    group.sample_size(20);
    group.bench_function("healthy_8x8x8", |b| {
        b.iter(|| black_box(NetworkView::healthy(HyperX::regular(3, 8), 0)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mechanism_candidates,
    bench_candidates_under_faults,
    bench_view_construction
);
criterion_main!(benches);
