//! Criterion micro-benchmarks of the simulation engine: cycles per second at
//! a moderate load for the SurePath mechanisms on the quick topologies.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hyperx_routing::MechanismSpec;
use std::hint::black_box;
use surepath_core::{Experiment, TrafficSpec};

fn warm_simulator(spec: MechanismSpec, dims: usize) -> hyperx_sim::Simulator {
    let mut e = match dims {
        2 => Experiment::quick_2d(spec, TrafficSpec::Uniform),
        _ => Experiment::quick_3d(spec, TrafficSpec::Uniform),
    };
    // Fill the network with traffic before measuring per-cycle cost.
    e.sim.warmup_cycles = 500;
    e.sim.measure_cycles = 1;
    let mut sim = e.build_simulator();
    sim.run_rate(0.6);
    sim
}

fn bench_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/cycles_at_load_0.6");
    group.sample_size(10);
    for (name, spec, dims) in [
        ("OmniSP_8x8", MechanismSpec::OmniSP, 2usize),
        ("PolSP_8x8", MechanismSpec::PolSP, 2),
        ("PolSP_4x4x4", MechanismSpec::PolSP, 3),
        ("Minimal_8x8", MechanismSpec::Minimal, 2),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched_ref(
                || warm_simulator(spec, dims),
                |sim| {
                    for _ in 0..200 {
                        sim.step();
                    }
                    black_box(sim.total_delivered())
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_simulator_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/construction");
    group.sample_size(10);
    group.bench_function("quick_3d_polsp", |b| {
        b.iter(|| {
            let e = Experiment::quick_3d(MechanismSpec::PolSP, TrafficSpec::Uniform);
            black_box(e.build_simulator())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cycles, bench_simulator_construction);
criterion_main!(benches);
