//! Criterion benchmarks of whole figure-sized experiment points (scaled-down
//! topologies, short windows), one per experiment family. These track the
//! end-to-end cost of regenerating the paper's evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperx_routing::MechanismSpec;
use hyperx_topology::{diameter_under_fault_sequence, FaultSet, HyperX};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use surepath_core::{Experiment, FaultScenario, TrafficSpec};

fn point(mechanism: MechanismSpec, traffic: TrafficSpec, scenario: FaultScenario) -> Experiment {
    let mut e = Experiment::quick_3d(mechanism, traffic).with_scenario(scenario);
    e.sim.warmup_cycles = 200;
    e.sim.measure_cycles = 600;
    e
}

fn bench_figure_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/one_point_quick3d");
    group.sample_size(10);
    group.bench_function("fig5_uniform_polsp", |b| {
        let e = point(
            MechanismSpec::PolSP,
            TrafficSpec::Uniform,
            FaultScenario::None,
        );
        b.iter(|| black_box(e.run_rate(0.6)))
    });
    group.bench_function("fig5_rpn_omnisp", |b| {
        let e = point(
            MechanismSpec::OmniSP,
            TrafficSpec::RegularPermutationToNeighbour,
            FaultScenario::None,
        );
        b.iter(|| black_box(e.run_rate(0.6)))
    });
    group.bench_function("fig6_30faults_polsp", |b| {
        let e = point(
            MechanismSpec::PolSP,
            TrafficSpec::Uniform,
            FaultScenario::Random { count: 30, seed: 5 },
        )
        .with_num_vcs(4);
        b.iter(|| black_box(e.run_rate(0.8)))
    });
    group.finish();
}

fn bench_figure1_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig1_diameter_curve");
    group.sample_size(10);
    let hx = HyperX::regular(3, 4);
    group.bench_function("quick_sequence", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let seq = FaultSet::random_sequence(hx.network(), 100, &mut rng);
            black_box(diameter_under_fault_sequence(hx.network(), &seq, 10))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_figure_points, bench_figure1_analysis);
criterion_main!(benches);
