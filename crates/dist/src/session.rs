//! Session identity and reconnect policy for distributed campaigns.
//!
//! A long-running campaign sees coordinators restart and links flap. Two
//! pieces of identity make that survivable without ever corrupting a store:
//!
//! * the **campaign fingerprint** — a stable hash of the campaign name and
//!   every job fingerprint in its expanded grid. It is the same for every
//!   (re)start of the same campaign and different for any other grid, so a
//!   reconnecting worker can tell "same coordinator restarted, resume" from
//!   "this port now serves a different campaign — abort loudly";
//! * the **session nonce** — fresh per coordinator process. It does not
//!   gate anything (the fingerprint does), but lets both sides log whether
//!   a reconnect landed on the same process or a restarted one.
//!
//! [`ReconnectPolicy`] is the worker's dial plan after a transport failure:
//! capped exponential backoff with **deterministic jitter** (ChaCha8 keyed
//! by worker id and attempt), so a fleet of workers losing the same
//! coordinator does not stampede the listener in lockstep, yet every test
//! run sleeps the exact same schedule.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;
use surepath_runner::fingerprint::fnv1a64;
use surepath_runner::{job_fingerprint, JobSpec};

/// The stable identity of a campaign grid: FNV-1a over the campaign name
/// and the *sorted* set of job fingerprints. Sorting makes the value a
/// function of the grid as a set — the same jobs always fingerprint
/// identically, however the spec happened to enumerate them.
pub fn campaign_fingerprint(campaign: &str, jobs: &[JobSpec]) -> String {
    let mut fps: Vec<String> = jobs.iter().map(job_fingerprint).collect();
    fps.sort_unstable();
    let mut material = String::with_capacity(campaign.len() + 1 + fps.len() * 17);
    material.push_str(campaign);
    for fp in &fps {
        material.push('\n');
        material.push_str(fp);
    }
    format!("{:016x}", fnv1a64(material.as_bytes()))
}

/// A nonce naming one coordinator process's serving session: pid plus a
/// wall-clock stamp. Unique enough to distinguish "same process" from
/// "restarted process" — the only question it answers.
pub fn session_nonce() -> String {
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("{}-{stamp:x}", std::process::id())
}

/// Whether an I/O error is worth retrying: the peer (or the network) was
/// unreachable or dropped us, conditions that a coordinator restart cures.
/// Anything else — invalid address, permission denied, protocol violations
/// surfaced as `InvalidData` — fails fast: retrying cannot fix it.
pub fn is_transient(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::NotConnected
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::Interrupted
    )
}

/// The worker's re-dial plan after a transport failure mid-campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Consecutive failed reconnect attempts before giving up. The counter
    /// resets on every successful `Welcome`, so a link that flaps once a
    /// minute never exhausts it — only a coordinator that stays gone does.
    pub retries: usize,
    /// Backoff before the first reconnect attempt; doubles per attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling for the exponential growth.
    pub max_backoff: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        // 100ms, 200, 400, ... capped at 2s: eight attempts span ~9s of
        // coordinator downtime, comfortably covering a restart.
        ReconnectPolicy {
            retries: 8,
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl ReconnectPolicy {
    /// A policy with `retries` attempts and `backoff_ms` as the initial
    /// backoff, keeping the default ceiling (or the initial backoff, if
    /// that is larger — the schedule never shrinks mid-flight).
    pub fn with(retries: usize, backoff_ms: u64) -> Self {
        let initial = Duration::from_millis(backoff_ms);
        let default = ReconnectPolicy::default();
        ReconnectPolicy {
            retries,
            initial_backoff: initial,
            max_backoff: default.max_backoff.max(initial),
        }
    }

    /// The delay before reconnect `attempt` (1-based): exponential from
    /// `initial_backoff`, capped at `max_backoff`, plus a deterministic
    /// jitter in `[0, step/2]` drawn from ChaCha8 keyed by the worker id
    /// and the attempt number. Two workers never share a schedule; one
    /// worker's schedule never changes between runs.
    pub fn delay(&self, attempt: usize, worker_id: &str) -> Duration {
        let exponent = attempt.saturating_sub(1).min(20) as u32;
        let step = self
            .initial_backoff
            .saturating_mul(2u32.saturating_pow(exponent))
            .min(self.max_backoff);
        let half = step.as_millis() as u64 / 2;
        if half == 0 {
            return step;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(
            fnv1a64(worker_id.as_bytes()) ^ (attempt as u64).rotate_left(32),
        );
        step + Duration::from_millis(rng.next_u64() % (half + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seed: u64) -> JobSpec {
        JobSpec {
            campaign: "session".into(),
            sides: vec![4, 4],
            mechanism: Some("polsp".into()),
            load: Some(0.5),
            seed,
            ..JobSpec::default()
        }
    }

    #[test]
    fn campaign_fingerprint_is_order_blind_and_content_sensitive() {
        let jobs = vec![job(1), job(2), job(3)];
        let reversed: Vec<JobSpec> = jobs.iter().rev().cloned().collect();
        let fp = campaign_fingerprint("c", &jobs);
        assert_eq!(fp, campaign_fingerprint("c", &reversed), "order-blind");
        assert_ne!(fp, campaign_fingerprint("d", &jobs), "name-sensitive");
        assert_ne!(fp, campaign_fingerprint("c", &jobs[..2]), "grid-sensitive");
        assert_eq!(fp.len(), 16, "fixed-width hex");
    }

    #[test]
    fn session_nonces_differ_and_name_the_process() {
        let a = session_nonce();
        let b = session_nonce();
        assert_ne!(a, b, "nanosecond stamp separates calls");
        assert!(a.starts_with(&format!("{}-", std::process::id())));
    }

    #[test]
    fn transient_kinds_are_exactly_the_network_failures() {
        assert!(is_transient(std::io::ErrorKind::ConnectionRefused));
        assert!(is_transient(std::io::ErrorKind::ConnectionReset));
        assert!(is_transient(std::io::ErrorKind::UnexpectedEof));
        assert!(is_transient(std::io::ErrorKind::TimedOut));
        assert!(!is_transient(std::io::ErrorKind::InvalidData));
        assert!(!is_transient(std::io::ErrorKind::PermissionDenied));
        assert!(!is_transient(std::io::ErrorKind::InvalidInput));
        assert!(!is_transient(std::io::ErrorKind::NotFound));
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let policy = ReconnectPolicy::default();
        let d1 = policy.delay(1, "w");
        let d4 = policy.delay(4, "w");
        // Exponential growth with jitter in [step, 1.5*step].
        assert!(
            d1 >= Duration::from_millis(100) && d1 <= Duration::from_millis(150),
            "{d1:?}"
        );
        assert!(
            d4 >= Duration::from_millis(800) && d4 <= Duration::from_millis(1200),
            "{d4:?}"
        );
        // The cap holds whatever the attempt number.
        let late = policy.delay(30, "w");
        assert!(late <= Duration::from_secs(3), "{late:?}");
        // Deterministic per (worker, attempt); distinct across workers.
        assert_eq!(policy.delay(2, "w"), policy.delay(2, "w"));
        assert_ne!(policy.delay(2, "w"), policy.delay(2, "other-worker"));
    }

    #[test]
    fn with_raises_the_cap_when_the_initial_backoff_exceeds_it() {
        let policy = ReconnectPolicy::with(3, 5_000);
        assert_eq!(policy.retries, 3);
        assert_eq!(policy.initial_backoff, Duration::from_secs(5));
        assert_eq!(policy.max_backoff, Duration::from_secs(5));
    }
}
