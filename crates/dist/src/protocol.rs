//! The coordinator/worker wire protocol.
//!
//! One JSON document per line over a plain TCP stream (`std::net` only — the
//! build environment has no crates.io, and a length-prefixed binary framing
//! would buy nothing for messages this small). The conversation is entirely
//! **worker-driven**: the worker introduces itself, then alternates between
//! asking for jobs and streaming results back; the coordinator only ever
//! replies. That keeps the coordinator's per-connection state machine
//! trivial — read one request, answer it — and means a dead worker is
//! detected exactly where it matters, on the blocking read of its next
//! request.
//!
//! Messages are the vendored serde's externally tagged enum encoding, e.g.
//! `{"Fetch":{"max":8}}` and `"Drained"`. Results travel as full
//! [`StoreRecord`]s — the same JSON the store writes — so the coordinator
//! folds them in without re-deriving anything, and the final store is
//! byte-identical to a local run's.

use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use surepath_runner::{JobSpec, StoreRecord};

/// How long a worker backs off after a `Wait` reply before its next
/// `Fetch`, in milliseconds. The coordinator quotes this value in `Wait`
/// replies; [`DRAIN_LINGER_MILLIS`] is derived from it — change them
/// together.
pub const WAIT_BACKOFF_MILLIS: u64 = 100;

/// How long the coordinator keeps a silent connection open after the
/// campaign completes, so a worker sleeping through a `Wait` backoff still
/// gets its final `Drained` instead of a closed socket. Must comfortably
/// exceed [`WAIT_BACKOFF_MILLIS`] (10x here): a worker that slept the full
/// backoff plus scheduling noise must still find the connection alive.
pub const DRAIN_LINGER_MILLIS: u64 = WAIT_BACKOFF_MILLIS * 10;

/// What a worker sends to the coordinator.
// `Deliver` dwarfs the other variants (it carries a whole store record);
// boxing it would complicate the derived wire format for no win — requests
// are transient, one per read.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// First message on a connection: who is asking.
    Hello {
        /// A human-diagnosable worker id (host + pid or a test name). It
        /// keys leases and manifest rows; two concurrent workers must not
        /// share one.
        worker: String,
        /// The session nonce from a previous `Welcome`, if this is a
        /// reconnect (`None` on a fresh connection). Purely diagnostic: the
        /// coordinator reclaims stale leases by worker id either way, but
        /// the nonce lets both sides log "resumed session" vs "joined".
        session: Option<String>,
    },
    /// Ask for up to `max` jobs.
    Fetch {
        /// Upper bound on the batch size (the worker's appetite).
        max: usize,
    },
    /// Deliver one finished job, in store-record form, plus its wall-clock
    /// (which goes to the timings sidecar, never the store).
    Deliver {
        /// The completed record (`ok` or `failed`), exactly as a local run
        /// would have appended it.
        record: StoreRecord,
        /// Wall-clock milliseconds the job took on the worker.
        millis: u64,
    },
}

/// What the coordinator replies.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// Answer to `Hello`: the campaign being served and the worker's home
    /// shard (its preferred queue; stealing crosses shards automatically).
    Welcome {
        /// Name of the campaign whose grid is being served.
        campaign: String,
        /// The worker's home shard index.
        shard: usize,
        /// This coordinator process's session nonce. A reconnecting worker
        /// seeing a new nonce knows the coordinator restarted (informational
        /// — the campaign fingerprint is what gates resumption).
        session: String,
        /// Fingerprint of the campaign grid being served (name + every job
        /// fingerprint). A reconnecting worker that sees a different value
        /// is talking to a *different campaign* and must abort loudly
        /// instead of folding foreign results.
        fingerprint: String,
    },
    /// Answer to `Fetch`/`Deliver`: jobs to run.
    Assign {
        /// The leased jobs (at most the requested `max`).
        jobs: Vec<JobSpec>,
    },
    /// Answer to `Fetch`: nothing to hand out right now, but leased jobs
    /// are still in flight elsewhere — ask again after `millis`.
    Wait {
        /// Suggested back-off before the next `Fetch`.
        millis: u64,
    },
    /// Answer to `Fetch`: the grid is drained; the worker can exit.
    Drained,
    /// The request violated the protocol (first message not `Hello`, a
    /// record for a job that was never part of the grid, …).
    ProtocolError {
        /// What went wrong.
        message: String,
    },
}

/// Writes one message as a JSON line and flushes it.
pub fn write_message<T: Serialize>(writer: &mut impl Write, message: &T) -> std::io::Result<()> {
    let line = serde_json::to_string(message).expect("protocol message serializes");
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Reads one message line. `Ok(None)` is a clean EOF (the peer hung up
/// between messages); a parse failure is an error (the peer is not speaking
/// the protocol).
pub fn read_message<T: Deserialize>(reader: &mut impl BufRead) -> std::io::Result<Option<T>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    serde_json::from_str(line.trim_end())
        .map(Some)
        .map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed protocol message: {e}"),
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn job(seed: u64) -> JobSpec {
        JobSpec {
            campaign: "wire".into(),
            sides: vec![4, 4],
            mechanism: Some("polsp".into()),
            load: Some(0.5),
            seed,
            ..JobSpec::default()
        }
    }

    #[test]
    fn messages_round_trip_through_the_line_framing() {
        let requests = vec![
            Request::Hello {
                worker: "host:1234".into(),
                session: None,
            },
            Request::Hello {
                worker: "host:1234".into(),
                session: Some("sess-1".into()),
            },
            Request::Fetch { max: 8 },
            Request::Deliver {
                record: StoreRecord {
                    fp: surepath_runner::job_fingerprint(&job(1)),
                    status: "ok".into(),
                    job: job(1),
                    result: Some(serde::Value::Bool(true)),
                    error: None,
                },
                millis: 42,
            },
        ];
        let mut buf: Vec<u8> = Vec::new();
        for r in &requests {
            write_message(&mut buf, r).unwrap();
        }
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 4);
        let mut reader = BufReader::new(buf.as_slice());
        for expected in &requests {
            let got: Request = read_message(&mut reader).unwrap().unwrap();
            assert_eq!(&got, expected);
        }
        assert_eq!(read_message::<Request>(&mut reader).unwrap(), None, "EOF");
    }

    #[test]
    fn replies_round_trip_including_unit_variants() {
        let replies = vec![
            Reply::Welcome {
                campaign: "fig06".into(),
                shard: 3,
                session: "pid-1234-0".into(),
                fingerprint: "cafe0000cafe0000".into(),
            },
            Reply::Assign {
                jobs: vec![job(1), job(2)],
            },
            Reply::Wait { millis: 150 },
            Reply::Drained,
            Reply::ProtocolError {
                message: "hello first".into(),
            },
        ];
        let mut buf: Vec<u8> = Vec::new();
        for r in &replies {
            write_message(&mut buf, r).unwrap();
        }
        let mut reader = BufReader::new(buf.as_slice());
        for expected in &replies {
            let got: Reply = read_message(&mut reader).unwrap().unwrap();
            assert_eq!(&got, expected);
        }
    }

    #[test]
    fn garbage_is_an_error_not_a_silent_eof() {
        let mut reader = BufReader::new(b"not json at all\n".as_slice());
        let err = read_message::<Request>(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
