//! # surepath-dist
//!
//! The distributed campaign driver: fan one expanded campaign grid out to
//! many worker processes/machines over plain TCP (`std::net` only), and
//! fold the streamed results into **one store byte-identical to a local
//! run** — whatever the worker count, join order, or mid-run losses.
//!
//! The three moving parts:
//!
//! * [`protocol`] — the JSONL-over-TCP wire format: a worker-driven
//!   `Hello` / `Fetch` / `Deliver` conversation with `Assign` / `Wait` /
//!   `Drained` replies;
//! * [`coordinator`] — [`serve`]: partitions pending jobs **statically by
//!   fingerprint prefix** into shard queues, then work-steals across them
//!   so fast workers drain slow workers' tails; journals every assignment
//!   to the `<store>.manifest.jsonl` sidecar; leases expire and lost
//!   workers' jobs are re-offered;
//! * [`worker`] — [`run_worker`]: pulls batches, runs them on the runner's
//!   work-stealing executor (panic isolation included), streams
//!   store-format records back with per-job wall-clock; transport failures
//!   send it through [`session::ReconnectPolicy`]'s backoff loop and it
//!   resumes the campaign (the fingerprint in `Welcome` gates resumption).
//!
//! Two supporting modules: [`session`] (campaign fingerprint, session
//! nonce, reconnect policy) and [`faultnet`] (seeded socket fault
//! injection — the test harness that proves the fault tolerance).
//!
//! Like `surepath-runner`, this crate is **domain-agnostic**: the caller
//! supplies the closure that turns one job into one JSON result
//! (`surepath-core` provides `run_job` for simulation campaigns, and the
//! CLI wires it up as `surepath campaign --serve` / `--worker` /
//! `--spawn-local`).
//!
//! ```no_run
//! use surepath_dist::{serve, run_worker, ServeOptions, WorkerOptions};
//! use surepath_runner::spec::load_spec_file;
//!
//! let spec = load_spec_file(std::path::Path::new("grid.toml")).unwrap();
//! let jobs = spec.expand().unwrap();
//! let listener = std::net::TcpListener::bind("0.0.0.0:7777").unwrap();
//! // Coordinator (blocks until the grid is drained):
//! let outcome = serve(
//!     listener,
//!     &spec.name,
//!     &jobs,
//!     std::path::Path::new("grid.results.jsonl"),
//!     &ServeOptions::default(),
//! )
//! .unwrap();
//! println!("{} executed by {} workers", outcome.executed, outcome.workers);
//! // Elsewhere, any number of times:
//! run_worker("coordinator-host:7777", "worker-1", &WorkerOptions::default(), |job| {
//!     Ok(serde_json::to_value(&job.seed).unwrap())
//! })
//! .unwrap();
//! ```

pub mod coordinator;
pub mod faultnet;
pub mod protocol;
pub mod session;
pub mod worker;

pub use coordinator::{serve, ServeOptions, ServeOutcome};
pub use faultnet::{Fault, FaultConfig, FaultPlan, FaultyProxy, FaultyStream};
pub use protocol::{read_message, write_message, Reply, Request};
pub use session::{campaign_fingerprint, is_transient, session_nonce, ReconnectPolicy};
pub use worker::{run_worker, WorkerOptions, WorkerOutcome};
