//! The campaign worker: pull job batches over TCP, run them on the local
//! work-stealing executor, stream store-format results back.
//!
//! The worker is domain-agnostic like the runner: the caller supplies the
//! closure that turns one [`JobSpec`] into one JSON result (the CLI and the
//! figure binaries pass `surepath_core::run_job`). Panics inside the
//! closure are caught by the executor and delivered as `failed` records —
//! exactly the semantics of a local campaign — so one crashing simulation
//! costs one grid cell, not a worker.

use crate::protocol::{read_message, write_message, Reply, Request};
use serde::Value;
use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use surepath_runner::{job_fingerprint, run_work_stealing, JobOutcome, JobSpec, StoreRecord};

/// Tuning knobs of [`run_worker`].
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Executor threads on this worker (`None` = all cores).
    pub threads: Option<usize>,
    /// Jobs requested per `Fetch` (`None` = 2x the thread count, so the
    /// executor always has a next job while results stream out).
    pub chunk: Option<usize>,
    /// How long to keep retrying the initial connection (the coordinator
    /// may still be binding, or a `--spawn-local` parent may win the race).
    pub connect_retry: Duration,
    /// Suppress per-batch progress output.
    pub quiet: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            threads: None,
            chunk: None,
            connect_retry: Duration::from_secs(10),
            quiet: true,
        }
    }
}

/// What a worker did before the coordinator drained it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Jobs executed on this worker.
    pub executed: usize,
    /// Of those, how many failed (error or panic).
    pub failed: usize,
}

/// Connects to `addr`, retrying until `retry_for` elapses.
fn connect_with_retry(addr: &str, retry_for: Duration) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + retry_for;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("cannot reach coordinator at {addr}: {e}"),
                ))
            }
        }
    }
}

/// Builds the store-format record for one executed job — the same record a
/// local campaign would append, so the coordinator's store stays
/// byte-identical to a local run's.
fn record_for(job: &JobSpec, outcome: JobOutcome<Result<Value, String>>) -> StoreRecord {
    let fp = job_fingerprint(job);
    match outcome {
        JobOutcome::Completed(Ok(result)) => StoreRecord {
            fp,
            status: "ok".to_string(),
            job: job.clone(),
            result: Some(result),
            error: None,
        },
        JobOutcome::Completed(Err(error)) => StoreRecord {
            fp,
            status: "failed".to_string(),
            job: job.clone(),
            result: None,
            error: Some(error),
        },
        JobOutcome::Panicked(message) => StoreRecord {
            fp,
            status: "failed".to_string(),
            job: job.clone(),
            result: None,
            error: Some(format!("panic: {message}")),
        },
    }
}

/// Runs a worker against the coordinator at `addr` until the campaign is
/// drained. `worker_id` names this worker in leases, manifests and timing
/// records — it must be unique among concurrent workers (host + pid is the
/// CLI's choice). Each fetched batch runs on the runner's work-stealing
/// executor with `opts.threads` workers; results stream back one by one as
/// they finish.
pub fn run_worker<F>(
    addr: &str,
    worker_id: &str,
    opts: &WorkerOptions,
    job_fn: F,
) -> std::io::Result<WorkerOutcome>
where
    F: Fn(&JobSpec) -> Result<Value, String> + Sync,
{
    let stream = connect_with_retry(addr, opts.connect_retry)?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    write_message(
        &mut writer,
        &Request::Hello {
            worker: worker_id.to_string(),
        },
    )?;
    let welcome: Reply = read_message(&mut reader)?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "coordinator hung up during handshake",
        )
    })?;
    let campaign = match welcome {
        Reply::Welcome { campaign, .. } => campaign,
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected Welcome, got {other:?}"),
            ))
        }
    };

    let threads = opts
        .threads
        .unwrap_or_else(surepath_runner::default_threads);
    let chunk = opts.chunk.unwrap_or(threads.saturating_mul(2).max(1));
    let mut executed = 0usize;
    let mut failed = 0usize;
    let mut drained = false;

    while !drained {
        write_message(&mut writer, &Request::Fetch { max: chunk })?;
        let reply: Reply = match read_message(&mut reader)? {
            Some(reply) => reply,
            // The coordinator hangs up without Drained only when it (or the
            // network) died, or it wrote this worker off: surface it — a
            // silent success here would mask a half-finished campaign.
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "coordinator hung up before draining the campaign",
                ))
            }
        };
        match reply {
            Reply::Assign { jobs } => {
                if !opts.quiet {
                    eprintln!(
                        "[worker {worker_id}] {} job(s) of campaign `{campaign}`",
                        jobs.len()
                    );
                }
                // Results stream back from the executor's consumer callback
                // as they finish; a delivery failure stops the pool (the
                // coordinator is gone, nothing can be persisted).
                let mut io_error: Option<std::io::Error> = None;
                run_work_stealing(
                    &jobs,
                    threads,
                    |_, job| {
                        let started = Instant::now();
                        let result = job_fn(job);
                        (result, started.elapsed().as_millis() as u64)
                    },
                    |idx, outcome| {
                        let (outcome, millis) = match outcome {
                            JobOutcome::Completed((result, millis)) => {
                                (JobOutcome::Completed(result), millis)
                            }
                            JobOutcome::Panicked(message) => (JobOutcome::Panicked(message), 0),
                        };
                        let record = record_for(&jobs[idx], outcome);
                        executed += 1;
                        if record.status != "ok" {
                            failed += 1;
                        }
                        let sent = write_message(&mut writer, &Request::Deliver { record, millis });
                        match sent.and_then(|()| read_message::<Reply>(&mut reader)) {
                            Ok(Some(Reply::Drained)) => {
                                drained = true;
                                false
                            }
                            Ok(Some(Reply::ProtocolError { message })) => {
                                io_error = Some(std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    message,
                                ));
                                false
                            }
                            Ok(Some(_)) => true,
                            Ok(None) => {
                                // EOF instead of a delivery ack: the
                                // coordinator is gone mid-batch. Not a clean
                                // drain — report it.
                                io_error = Some(std::io::Error::new(
                                    std::io::ErrorKind::UnexpectedEof,
                                    "coordinator hung up mid-delivery",
                                ));
                                false
                            }
                            Err(e) => {
                                io_error = Some(e);
                                false
                            }
                        }
                    },
                );
                if let Some(e) = io_error {
                    return Err(e);
                }
            }
            Reply::Wait { millis } => {
                std::thread::sleep(Duration::from_millis(millis.min(1_000)));
            }
            Reply::Drained => drained = true,
            Reply::ProtocolError { message } => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    message,
                ))
            }
            Reply::Welcome { .. } => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "unexpected second Welcome",
                ))
            }
        }
    }
    if !opts.quiet {
        eprintln!("[worker {worker_id}] drained: {executed} executed, {failed} failed");
    }
    Ok(WorkerOutcome { executed, failed })
}
